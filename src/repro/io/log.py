"""candump-compatible text logs.

Format (one frame per line, as produced by ``candump -L``)::

    (1620000123.456789) can0 1A4#DEADBEEF

The fractional seconds carry microsecond resolution, which matches the
simulator clock exactly.  Two optional trailing comment fields carry the
simulator's ground truth so traces can round-trip losslessly::

    (0.012345) can0 1A4#DEADBEEF ; src=ECU_Powertrain attack=0

Files named ``*.gz`` are read and written gzip-compressed,
transparently: every reader produces results identical to reading the
uncompressed file.
"""

from __future__ import annotations

import io
import re
import sys
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

import numpy as np

from repro.can.constants import MAX_BASE_ID, SECOND_US
from repro.exceptions import TraceFormatError
from repro.io._builder import ColumnBuilder, rechunk_parts
from repro.io._gz import (
    DEFAULT_BLOCK_BYTES,
    iter_line_blocks,
    open_text,
    read_bytes,
)
from repro.io.columnar import ColumnTrace
from repro.io.trace import Trace, TraceRecord
from repro.io.vectorparse import parse_candump_bytes

_LINE_RE = re.compile(
    r"^\((?P<secs>\d+)\.(?P<usecs>\d{6})\)\s+"
    r"(?P<iface>\S+)\s+"
    r"(?P<id>[0-9A-Fa-f]{3,8})#(?P<data>(?:[0-9A-Fa-f]{2})*)"
    r"(?:\s*;\s*src=(?P<src>\S+)\s+attack=(?P<attack>[01]))?\s*$"
)



def format_record(record: TraceRecord, iface: str = "can0") -> str:
    """Render one record as a candump line (with ground-truth comment)."""
    secs, usecs = divmod(record.timestamp_us, SECOND_US)
    width = 8 if record.extended else 3
    data = record.data.hex().upper()
    src = record.source or "-"
    return (
        f"({secs}.{usecs:06d}) {iface} {record.can_id:0{width}X}#{data}"
        f" ; src={src} attack={1 if record.is_attack else 0}"
    )


def parse_line(line: str) -> TraceRecord:
    """Parse one candump line into a :class:`TraceRecord`.

    Lines without the ground-truth comment get ``source=''`` and
    ``is_attack=False``.
    """
    match = _LINE_RE.match(line.strip())
    if match is None:
        raise TraceFormatError(f"unparseable candump line: {line!r}")
    timestamp_us = int(match["secs"]) * SECOND_US + int(match["usecs"])
    id_text = match["id"]
    can_id = int(id_text, 16)
    extended = len(id_text) > 3 or can_id > MAX_BASE_ID
    source = match["src"] if match["src"] not in (None, "-") else ""
    is_attack = match["attack"] == "1"
    return TraceRecord(
        timestamp_us=timestamp_us,
        can_id=can_id,
        data=bytes.fromhex(match["data"]),
        extended=extended,
        source=source,
        is_attack=is_attack,
    )


def write_candump(
    trace: Iterable[TraceRecord],
    path: Union[str, Path],
    iface: str = "can0",
) -> None:
    """Write a trace to ``path`` in candump format (gzipped for ``.gz``)."""
    with open_text(path, "w") as handle:
        for record in trace:
            handle.write(format_record(record, iface))
            handle.write("\n")


def read_candump(path: Union[str, Path]) -> Trace:
    """Read a candump file back into a :class:`Trace`.

    Blank lines and lines starting with ``#`` are skipped.
    """
    trace = Trace()
    with open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                trace.append(parse_line(stripped))
            except TraceFormatError as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
    return trace


# ----------------------------------------------------------------------
# Columnar-native path (no per-frame TraceRecord allocation)
# ----------------------------------------------------------------------

#: Exactly the identifier alphabet the strict regex accepts.
_HEX_CHARS = frozenset("0123456789abcdefABCDEF")


def _append_candump_line(
    builder: ColumnBuilder, line: str, lineno: int, path
) -> None:
    """Parse one candump line straight into the builder's columns.

    The fast path splits on whitespace and validates each field by hand;
    anything it cannot digest is re-parsed with the strict regex — valid
    lines with unusual (but regex-accepted) spacing still load, and
    malformed lines fail with :func:`parse_line`'s diagnostics.
    """
    try:
        parts = line.split()
        stamp, id_data = parts[0], parts[2]
        if stamp[0] != "(" or stamp[-1] != ")":
            raise ValueError
        secs, _, usecs = stamp[1:-1].partition(".")
        if len(usecs) != 6 or not secs.isdigit() or not usecs.isdigit():
            raise ValueError
        id_text, sep, data_hex = id_data.partition("#")
        if (
            not sep
            or not 3 <= len(id_text) <= 8
            # int(, 16) is laxer than the regex ("0x" prefixes,
            # underscores, unicode digits) — require literal hex.
            or not _HEX_CHARS.issuperset(id_text)
            or len(data_hex) % 2
        ):
            raise ValueError
        if len(parts) == 3:
            source, attack = "", False
        elif (
            len(parts) == 6
            and parts[3] == ";"
            and parts[4].startswith("src=")
            and parts[5] in ("attack=0", "attack=1")
        ):
            src = parts[4][4:]
            source = "" if src == "-" else src
            attack = parts[5] == "attack=1"
        else:
            raise ValueError
        can_id = int(id_text, 16)
    except (ValueError, IndexError):
        try:
            record = parse_line(line)
        except TraceFormatError as exc:
            raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
        builder.append(
            record.timestamp_us,
            record.can_id,
            record.data.hex(),
            record.extended,
            record.source,
            record.is_attack,
            lineno,
        )
        return
    builder.append(
        int(secs) * SECOND_US + int(usecs),
        can_id,
        data_hex,
        len(id_text) > 3 or can_id > MAX_BASE_ID,
        source,
        attack,
        lineno,
    )


def _iter_candump_columns_lines(
    path: Union[str, Path], chunk_frames: int
) -> Iterator[ColumnTrace]:
    """The per-line chunked reader (the pre-vectorised implementation).

    Kept verbatim as the diagnostics path behind
    :func:`_read_candump_columns_robust` and as the baseline the ingest
    throughput experiment measures the block-vectorised reader against.
    """
    if chunk_frames <= 0:
        raise TraceFormatError(
            f"chunk_frames must be positive, got {chunk_frames}"
        )
    last_timestamp: Optional[int] = None
    builder = ColumnBuilder()
    with open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            _append_candump_line(builder, stripped, lineno, path)
            if len(builder) >= chunk_frames:
                chunk = builder.build(path, last_timestamp)
                last_timestamp = chunk.end_us
                builder = ColumnBuilder()
                yield chunk
    if len(builder):
        yield builder.build(path, last_timestamp)


def _candump_block_fallback(
    data: bytes, lineno_base: int, path, last_end: Optional[int]
) -> ColumnTrace:
    """Per-line parse of one byte block, with exact line diagnostics.

    Text-mode semantics match the per-line reader exactly (ASCII
    decode, universal newline splitting, ``strip``), so a block the
    vector parser rejects — comments, blank lines, unusual spacing,
    malformed frames — loads or fails precisely as the whole file would
    have under the per-line reader.
    """
    builder = ColumnBuilder()
    wrapper = io.TextIOWrapper(io.BytesIO(data), encoding="ascii", newline="")
    for offset, line in enumerate(wrapper):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        _append_candump_line(builder, stripped, lineno_base + offset + 1, path)
    return builder.build(path, last_end)


def _candump_block_parts(
    path: Union[str, Path], block_bytes: int
) -> Iterator[ColumnTrace]:
    """Parse a candump file block by block into validated column parts.

    Each block of whole lines goes through the vectorised
    :func:`repro.io.vectorparse.parse_candump_bytes`; a block it cannot
    digest (or whose frames violate time order) re-parses line by line
    with full diagnostics — the same contract as the whole-file reader,
    scoped to the one offending block.
    """
    last_end: Optional[int] = None
    for data, lineno_base in iter_line_blocks(path, block_bytes):
        part: Optional[ColumnTrace] = None
        cols = parse_candump_bytes(np.frombuffer(data, dtype=np.uint8))
        if cols:
            try:
                part = ColumnTrace(**cols)
            except TraceFormatError:
                part = None  # re-parse names the offending line
            else:
                if last_end is not None and part.start_us < last_end:
                    part = None
        elif cols is not None:  # pragma: no cover - blocks are never empty
            continue
        if part is None:
            part = _candump_block_fallback(data, lineno_base, path, last_end)
        if len(part):
            last_end = part.end_us
            yield part


def iter_candump_columns(
    path: Union[str, Path],
    chunk_frames: int,
    *,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> Iterator[ColumnTrace]:
    """Stream a candump file as :class:`ColumnTrace` chunks.

    Yields consecutive chunks of exactly ``chunk_frames`` frames (the
    last may be short), so a capture larger than RAM streams through in
    bounded memory.  Parsing is block-vectorised: the file reads as
    ``block_bytes``-sized byte blocks of whole lines (gzip decompresses
    block-wise too) and each block takes the same
    :func:`~repro.io.vectorparse.parse_candump_bytes` fast path as the
    whole-file reader, falling back to per-line parsing with exact line
    diagnostics only for blocks the vector parser cannot digest.
    Chunks split only on frame boundaries; timestamp monotonicity is
    enforced across block and chunk boundaries too.  Bit-identical to
    :func:`read_candump_columns` on any input.
    """
    if chunk_frames <= 0:
        raise TraceFormatError(
            f"chunk_frames must be positive, got {chunk_frames}"
        )
    return rechunk_parts(
        _candump_block_parts(path, block_bytes), chunk_frames
    )


def _read_candump_columns_robust(path: Union[str, Path]) -> ColumnTrace:
    """Line-by-line columnar read with per-line diagnostics.

    The fallback for :func:`read_candump_columns` when the whole-file
    fast path cannot account for every data line: re-parses each line
    (as one unbounded chunk of the per-line reader) so errors carry the
    exact offending line number.
    """
    for chunk in _iter_candump_columns_lines(path, chunk_frames=sys.maxsize):
        return chunk
    return ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))


def read_candump_columns(path: Union[str, Path]) -> ColumnTrace:
    """Read a candump file straight into a :class:`ColumnTrace`.

    Parses the same format as :func:`read_candump` — bit-identically,
    including the ground-truth comments — but builds the columns
    directly, skipping the per-frame :class:`TraceRecord` round trip:
    the whole file loads as one byte buffer and
    :func:`repro.io.vectorparse.parse_candump_bytes` extracts every
    column with vectorised passes.  Files the vector parser cannot
    digest (comments, unusual spacing) re-parse line by line; either
    way the result is identical to ``read_candump(path).to_columns()``.
    An order of magnitude faster than loading via records (the archive
    throughput experiment measures it).  ``.gz`` files decompress into
    the byte buffer first and take the same vectorised path.
    """
    buf = np.frombuffer(read_bytes(path), dtype=np.uint8)
    cols = parse_candump_bytes(buf)
    if cols is None:
        return _read_candump_columns_robust(path)
    if not cols:
        return ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
    try:
        return ColumnTrace(**cols)
    except TraceFormatError:
        # Re-parse for an error message naming the offending line.
        return _read_candump_columns_robust(path)


#: Rows rendered per strip by the columnar text writers.  Strip-wise
#: rendering keeps peak memory at O(strip) — a multi-hundred-MB capture
#: (the ooc_smoke ingest experiment writes one) never holds the whole
#: rendered text in RAM.
_WRITE_STRIP_ROWS = 262_144


def write_candump_columns(
    ct: ColumnTrace, path: Union[str, Path], iface: str = "can0"
) -> None:
    """Write a :class:`ColumnTrace` in candump format.

    Byte-identical to ``write_candump(ct.to_trace(), path)`` but renders
    straight from the columns, one :data:`_WRITE_STRIP_ROWS` strip at a
    time (bounded memory for arbitrarily large captures).  Bus tags are
    columnar-only metadata and are not written (see ``ARCHITECTURE.md``).
    """
    with open_text(path, "w") as handle:
        for strip_lo in range(0, len(ct), _WRITE_STRIP_ROWS):
            strip = ct.slice(strip_lo, strip_lo + _WRITE_STRIP_ROWS)
            n = len(strip)
            base = int(strip.payload_offsets[0]) if n else 0
            hex_all = strip.payload_bytes().tobytes().hex().upper()
            offsets = ((strip.payload_offsets - base) * 2).tolist()
            times = strip.timestamp_us.tolist()
            ids = strip.can_id.tolist()
            ext = strip.extended.tolist()
            att = strip.is_attack.tolist()
            sources = strip.sources()
            lines = []
            for i in range(n):
                secs, usecs = divmod(times[i], SECOND_US)
                width = 8 if ext[i] else 3
                lines.append(
                    f"({secs}.{usecs:06d}) {iface} {ids[i]:0{width}X}"
                    f"#{hex_all[offsets[i]:offsets[i + 1]]}"
                    f" ; src={sources[i] or '-'} attack={1 if att[i] else 0}\n"
                )
            handle.write("".join(lines))

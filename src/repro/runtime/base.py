"""The execution protocol behind every archive-scale scan.

Every scan path in the repository — cold ``analyze_archive``,
incremental ``watch_scan``, fleet-wide ``analyze_fleet`` — reduces to
the same *shard task*: given a detection context and a capture file
path, load the capture through the columnar readers and return the
per-window verdicts.  :class:`Executor` is the protocol over that task:

* :meth:`Executor.run` takes a :class:`ScanSpec` (the per-capture work
  description) and a sequence of capture paths, and returns one result
  per path **in input order**, no matter which backend ran which task
  when — order stability is what makes every backend bit-identical to
  a serial scan.

Four backends implement it:

* :class:`~repro.runtime.serial.SerialExecutor` — one process, one
  loop; the reference semantics;
* :class:`~repro.runtime.pool.PoolExecutor` — the ``multiprocessing``
  pool extracted from the original ``ShardedScanner``;
* :class:`~repro.runtime.queue.WorkQueueExecutor` — a filesystem work
  queue; independent ``repro-ids worker`` processes (on this host or
  any host sharing the directory) claim tasks via atomic rename and
  upload ledger-protocol result dicts;
* :class:`~repro.runtime.net.NetExecutor` — the same protocol over an
  asyncio TCP coordinator (``repro-ids serve``); workers need only a
  route to the coordinator's port, no shared disk.

A :class:`ScanSpec` describes the work one capture needs.
:class:`EntropyScanSpec` (the paper's detector) is additionally
*portable*: it serialises to a JSON payload so the distributed
backends can ship it to workers that share nothing but a directory or
a socket.  :class:`BaselineScanSpec` carries a fitted baseline object —
picklable (serial/pool) but not portable, which the distributed
backends refuse explicitly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.baselines.base import BaselineIDS, BaselineVerdict
from repro.core.alerts import AlertSink
from repro.core.config import IDSConfig
from repro.core.detector import WindowResult
from repro.core.engine import BatchEntropyEngine
from repro.core.template import GoldenTemplate
from repro.exceptions import DetectorError
from repro.io.archive import load_capture_columns, open_capture_stream

__all__ = [
    "BaselineScanSpec",
    "EntropyScanSpec",
    "Executor",
    "ScanSpec",
    "resolve_executor",
    "spec_from_payload",
]

#: Work-queue task payload schema version; bump on incompatible changes.
SPEC_VERSION = 1


class ScanSpec(ABC):
    """Description of the work one capture path needs.

    A spec is *stateless work context*: :meth:`make_scanner` builds the
    actual per-process scanner (engine or fitted baseline) exactly once
    per worker, and the returned callable maps ``path -> result``.
    Specs must be picklable (the pool backend ships them to workers via
    the pool initializer) and results must round-trip unchanged through
    whatever transport the executor uses.
    """

    #: True when the spec serialises to JSON (:meth:`to_payload`) and
    #: can therefore cross host boundaries through the work queue.
    portable = False

    @abstractmethod
    def make_scanner(self) -> Callable[[str], list]:
        """Build the per-process ``path -> result`` callable."""

    def to_payload(self) -> dict:
        """JSON task payload for the work-queue backend."""
        raise DetectorError(
            f"{type(self).__name__} cannot be shipped through a work "
            f"queue; use the serial or pool executor"
        )

    def encode_result(self, result: list) -> list:
        """Serialise one task's result for transport (portable specs)."""
        raise DetectorError(
            f"{type(self).__name__} results cannot cross a work queue"
        )

    def decode_result(self, payload: list) -> list:
        """Inverse of :meth:`encode_result`."""
        raise DetectorError(
            f"{type(self).__name__} results cannot cross a work queue"
        )


@dataclass(frozen=True)
class EntropyScanSpec(ScanSpec):
    """The paper's detector over one capture: ``BatchEntropyEngine.scan``.

    Results are ``List[WindowResult]`` — exactly what the serial scan
    produces, and (via the lossless ``WindowResult`` dict round trip)
    exactly what a remote worker uploads.

    ``chunk_windows`` switches the worker to the out-of-core path:
    captures are loaded lazily (memory-mapped for ``.npz``) and scanned
    through :meth:`BatchEntropyEngine.scan_stream` in chunks of that
    many detection windows — bit-identical results, bounded memory.
    """

    template: GoldenTemplate
    config: IDSConfig
    chunk_windows: Optional[int] = None

    portable = True

    def make_scanner(self) -> Callable[[str], List[WindowResult]]:
        engine = BatchEntropyEngine(self.template, self.config, AlertSink())
        if self.chunk_windows is None:
            return lambda path: engine.scan(load_capture_columns(path))
        chunk_windows = int(self.chunk_windows)

        def scan_stream(path: str) -> List[WindowResult]:
            # Streaming sources (mapped npz, block-compressed npb) keep
            # the worker's memory bounded; the reader handle — if the
            # source has one — is released when the scan ends.
            source = open_capture_stream(path)
            try:
                return engine.scan_stream(source, chunk_windows)
            finally:
                close = getattr(source, "close", None)
                if close is not None:
                    close()

        return scan_stream

    def to_payload(self) -> dict:
        payload = {
            "version": SPEC_VERSION,
            "kind": "entropy",
            "template": self.template.to_dict(),
            "config": {
                "n_bits": self.config.n_bits,
                "window_us": self.config.window_us,
                "min_window_messages": self.config.min_window_messages,
                "alpha": self.config.alpha,
            },
        }
        if self.chunk_windows is not None:
            # Additive optional key: workers predating it ignore it and
            # scan in-RAM — same bits, just unbounded memory there.
            payload["chunk_windows"] = int(self.chunk_windows)
        return payload

    def encode_result(self, result: List[WindowResult]) -> list:
        # The ledger protocol: WindowResult dicts round-trip bit-exactly
        # (JSON floats are shortest-repr float64), so an uploaded result
        # is indistinguishable from a locally computed one.
        return [w.to_dict() for w in result]

    def decode_result(self, payload: list) -> List[WindowResult]:
        return [WindowResult.from_dict(w) for w in payload]


@dataclass(frozen=True)
class BaselineScanSpec(ScanSpec):
    """A fitted baseline's ``scan`` over one capture."""

    baseline: BaselineIDS

    def __post_init__(self) -> None:
        if not self.baseline._fitted:
            raise DetectorError(f"{self.baseline.name}: scan before fit")

    def make_scanner(self) -> Callable[[str], List[BaselineVerdict]]:
        baseline = self.baseline
        return lambda path: baseline.scan(load_capture_columns(path))


def spec_from_payload(payload: dict) -> EntropyScanSpec:
    """Rebuild a portable spec from its work-queue JSON payload."""
    try:
        if payload["version"] != SPEC_VERSION:
            raise DetectorError(
                f"task spec version {payload['version']!r} not supported"
            )
        kind = payload["kind"]
        if kind != "entropy":
            raise DetectorError(f"unknown task spec kind {kind!r}")
        template = GoldenTemplate.from_dict(payload["template"])
        config = IDSConfig(
            alpha=float(payload["config"]["alpha"]),
            n_bits=int(payload["config"]["n_bits"]),
            window_us=int(payload["config"]["window_us"]),
            min_window_messages=int(payload["config"]["min_window_messages"]),
        )
        chunk_windows = payload.get("chunk_windows")
        if chunk_windows is not None:
            chunk_windows = int(chunk_windows)
    except (KeyError, TypeError, ValueError) as exc:
        raise DetectorError(f"malformed task spec payload: {exc}") from exc
    return EntropyScanSpec(template, config, chunk_windows)


class Executor(ABC):
    """Submit per-capture shard tasks, collect order-stable results.

    The single correctness contract every backend must honour: for any
    spec and path sequence, ``run`` returns ``[scan(paths[0]),
    scan(paths[1]), ...]`` — the exact results a fresh serial loop would
    produce, in input order.  The parity suite
    (``tests/test_runtime_executors.py``) asserts this bit for bit
    across all backends at several worker counts.
    """

    @abstractmethod
    def run(self, spec: ScanSpec, paths: Sequence[Union[str, Path]]) -> List[list]:
        """Execute the spec over every path; results in input order."""

    def describe(self) -> str:
        """Short human-readable backend name for status lines."""
        return type(self).__name__


def resolve_executor(
    executor: Union[str, Executor, None],
    workers: Optional[int] = None,
    queue_dir: Union[str, Path, None] = None,
    queue_drain: bool = True,
    connect: Optional[str] = None,
) -> Optional["Executor"]:
    """Turn a CLI-style executor choice into an :class:`Executor`.

    ``executor`` may be an instance (returned as-is), one of the names
    ``"serial"`` / ``"pool"`` / ``"queue"`` / ``"net"``, or ``None``
    (returns ``None`` — callers fall back to their default pool
    behaviour, which keeps the historical ``workers=`` semantics
    intact).  ``"queue"`` requires ``queue_dir``; ``"net"`` requires
    ``connect`` (``host:port`` of a running ``repro-ids serve``).
    ``queue_drain=False`` (CLI: ``--no-drain``) forbids the coordinator
    from executing its own tasks — every task must be served by a
    worker, with a bounded timeout so a worker-less fabric errors
    instead of hanging.
    """
    if executor is None or isinstance(executor, Executor):
        return executor
    from repro.runtime.net import NetExecutor
    from repro.runtime.pool import PoolExecutor
    from repro.runtime.queue import WorkQueueExecutor
    from repro.runtime.serial import SerialExecutor

    if executor == "serial":
        return SerialExecutor()
    if executor == "pool":
        return PoolExecutor(workers=workers)
    if executor == "queue":
        if queue_dir is None:
            raise DetectorError(
                "the queue executor needs a queue directory (--queue-dir)"
            )
        return WorkQueueExecutor(
            queue_dir,
            coordinator_drains=queue_drain,
            timeout_s=None if queue_drain else 600.0,
        )
    if executor == "net":
        if connect is None:
            raise DetectorError(
                "the net executor needs a coordinator address (--connect)"
            )
        return NetExecutor(
            connect,
            drain=queue_drain,
            timeout_s=None if queue_drain else 600.0,
        )
    raise DetectorError(
        f"unknown executor {executor!r}; expected serial, pool, queue "
        f"or net"
    )

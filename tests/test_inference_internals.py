"""White-box tests of the inference engine's internal machinery.

These pin down the algorithmic pieces the black-box suite exercises only
in aggregate: the unanimity member filter, the batched least-squares set
fitter, and the beam search's recall behaviour under member-share skew.
"""

import numpy as np
import pytest

from repro.core.config import IDSConfig
from repro.core.inference import InferenceEngine
from repro.core.template import TemplateBuilder
from repro.io.trace import Trace, TraceRecord


def bits_of(can_id, n_bits=11):
    return np.array([(can_id >> (n_bits - 1 - i)) & 1 for i in range(n_bits)], float)


@pytest.fixture(scope="module")
def engine():
    rng = np.random.default_rng(17)
    pool = sorted(int(i) for i in rng.choice(0x7FF, size=60, replace=False))
    config = IDSConfig(min_window_messages=10, template_windows=2)
    builder = TemplateBuilder(config)
    trace = Trace(
        TraceRecord(timestamp_us=i * 100, can_id=c)
        for i, c in enumerate(pool * 20)
    )
    builder.add_trace(trace)
    builder.add_trace(trace)
    return pool, InferenceEngine(pool, builder.build(), config)


def exact_mixture(pool, weights_by_id):
    base = np.mean([bits_of(i) for i in pool], axis=0)
    total = sum(weights_by_id.values())
    mixed = (1 - total) * base
    for can_id, weight in weights_by_id.items():
        mixed = mixed + weight * bits_of(can_id)
    return mixed


class TestUnanimityFilter:
    def test_true_member_survives_moderate_fraction(self, engine):
        pool, eng = engine
        member = pool[7]
        p = exact_mixture(pool, {member: 0.25})
        delta = p - eng.template.mean_p
        noise = eng._noise_scale(5000)
        surviving = eng._candidate_members(1, delta, noise, 0.25)
        # The true member always survives its own unanimity constraints.
        assert pool.index(member) in surviving

    def test_dominant_mixture_prunes_pool(self, engine):
        """At high injected fractions the conservative composition still
        reaches the unanimity margins and the filter genuinely prunes."""
        pool, eng = engine
        member = pool[7]
        p = exact_mixture(pool, {member: 0.85})
        delta = p - eng.template.mean_p
        noise = eng._noise_scale(20_000)
        surviving = eng._candidate_members(1, delta, noise, 0.85)
        assert pool.index(member) in surviving
        assert len(surviving) < len(pool)

    def test_overtight_filter_falls_back_to_full_pool(self, engine):
        pool, eng = engine
        # A delta pointing outside the pool's realisable compositions:
        # all-ones shift that no pool id can satisfy on every bit.
        delta = np.ones(11) * 0.3
        noise = eng._noise_scale(5000)
        surviving = eng._candidate_members(4, delta, noise, 0.3)
        assert len(surviving) >= 4

    def test_filter_never_excludes_true_members_of_k3(self, engine):
        pool, eng = engine
        members = [pool[3], pool[21], pool[44]]
        p = exact_mixture(pool, {m: 0.1 for m in members})
        delta = p - eng.template.mean_p
        noise = eng._noise_scale(5000)
        surviving = set(eng._candidate_members(3, delta, noise, 0.3))
        for member in members:
            assert pool.index(member) in surviving


class TestFitSets:
    def test_recovers_exact_weights(self, engine):
        pool, eng = engine
        a, b = pool[5], pool[30]
        p = exact_mixture(pool, {a: 0.18, b: 0.07})
        delta = p - eng.template.mean_p
        sets_idx = np.asarray([[pool.index(a), pool.index(b)]])
        weights, objective = eng._fit_sets(
            sets_idx, delta, np.ones(11), penalize_degenerate=False
        )
        assert weights[0][0] == pytest.approx(0.18, abs=1e-6)
        assert weights[0][1] == pytest.approx(0.07, abs=1e-6)
        assert objective[0] == pytest.approx(0.0, abs=1e-12)

    def test_wrong_set_has_positive_residual(self, engine):
        pool, eng = engine
        p = exact_mixture(pool, {pool[5]: 0.2})
        delta = p - eng.template.mean_p
        wrong = np.asarray([[pool.index(pool[6]), pool.index(pool[7])]])
        _w, objective = eng._fit_sets(
            wrong, delta, np.ones(11), penalize_degenerate=False
        )
        assert objective[0] > 1e-6

    def test_negative_solutions_clipped(self, engine):
        pool, eng = engine
        # A *negative* mixture direction cannot be explained with
        # non-negative weights: fitted weights stay >= 0.
        p = exact_mixture(pool, {pool[5]: 0.2})
        delta = -(p - eng.template.mean_p)
        sets_idx = np.asarray([[pool.index(pool[5]), pool.index(pool[9])]])
        weights, _obj = eng._fit_sets(
            sets_idx, delta, np.ones(11), penalize_degenerate=False
        )
        assert np.all(weights >= 0.0)

    def test_degenerate_penalty_orders_sets(self, engine):
        pool, eng = engine
        a, b, c = pool[5], pool[30], pool[50]
        p = exact_mixture(pool, {a: 0.2})  # truly a 1-mixture
        delta = p - eng.template.mean_p
        pair = np.asarray(
            [[pool.index(a), pool.index(b)], [pool.index(a), pool.index(c)]]
        )
        _w, plain = eng._fit_sets(pair, delta, np.ones(11), penalize_degenerate=False)
        _w, penalized = eng._fit_sets(
            pair, delta, np.ones(11), penalize_degenerate=True
        )
        # Both sets fit perfectly via w2=0, so both get penalised.
        assert np.all(penalized >= plain)


class TestBeamRecall:
    def test_skewed_shares_recovered(self, engine):
        """Shares 5:1 — the weaker member must still be found."""
        pool, eng = engine
        a, b = pool[12], pool[48]
        p = exact_mixture(pool, {a: 0.25, b: 0.05})
        delta = p - eng.template.mean_p
        members, shares = eng._reconstruct_set(2, delta, 8000, 0.3)
        assert set(members) == {a, b}
        share_map = dict(zip(members, shares))
        assert share_map[a] > 3 * share_map[b]

    def test_four_member_recall_on_exact_data(self, engine):
        pool, eng = engine
        chosen = [pool[2], pool[19], pool[33], pool[55]]
        p = exact_mixture(pool, {m: 0.07 for m in chosen})
        delta = p - eng.template.mean_p
        members, _shares = eng._reconstruct_set(4, delta, 8000, 0.28)
        assert set(members) == set(chosen)

    def test_members_sorted_ascending(self, engine):
        pool, eng = engine
        chosen = [pool[40], pool[3]]
        p = exact_mixture(pool, {m: 0.12 for m in chosen})
        delta = p - eng.template.mean_p
        members, shares = eng._reconstruct_set(2, delta, 8000, 0.24)
        assert members == sorted(members)
        assert len(shares) == len(members)
        assert sum(shares) == pytest.approx(1.0, abs=1e-9)


class TestNoiseScale:
    def test_binomial_floor_shrinks_with_population(self, engine):
        _pool, eng = engine
        small = eng._noise_scale(100)
        large = eng._noise_scale(100_000)
        assert np.all(small >= large)

    def test_never_below_absolute_floor(self, engine):
        _pool, eng = engine
        assert np.all(eng._noise_scale(10**9) >= 1e-4)

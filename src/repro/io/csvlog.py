"""Vehicle-Spy-like CSV trace format.

The paper's raw data was captured with Vehicle Spy 3 Professional, which
exports CSV.  We implement a compact equivalent with an explicit header
so traces round-trip losslessly, including the simulator ground truth::

    time_us,can_id_hex,extended,dlc,data_hex,source,is_attack
    12345,1A4,0,4,DEADBEEF,ECU_Powertrain,0
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Union

from repro.exceptions import TraceFormatError
from repro.io.trace import Trace, TraceRecord

HEADER = ["time_us", "can_id_hex", "extended", "dlc", "data_hex", "source", "is_attack"]


def write_csv(trace: Iterable[TraceRecord], path: Union[str, Path]) -> None:
    """Write a trace to ``path`` as CSV with the module header."""
    with open(path, "w", encoding="ascii", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(HEADER)
        for record in trace:
            writer.writerow(
                [
                    record.timestamp_us,
                    f"{record.can_id:X}",
                    int(record.extended),
                    record.dlc,
                    record.data.hex().upper(),
                    record.source,
                    int(record.is_attack),
                ]
            )


def read_csv(path: Union[str, Path]) -> Trace:
    """Read a CSV trace written by :func:`write_csv`."""
    trace = Trace()
    with open(path, "r", encoding="ascii", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != HEADER:
            raise TraceFormatError(
                f"{path}: unexpected CSV header {header!r}; expected {HEADER!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(HEADER):
                raise TraceFormatError(
                    f"{path}:{lineno}: expected {len(HEADER)} fields, got {len(row)}"
                )
            try:
                time_us, id_hex, extended, dlc, data_hex, source, is_attack = row
                record = TraceRecord(
                    timestamp_us=int(time_us),
                    can_id=int(id_hex, 16),
                    data=bytes.fromhex(data_hex),
                    extended=bool(int(extended)),
                    source=source,
                    is_attack=bool(int(is_attack)),
                )
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
            if record.dlc != int(dlc):
                raise TraceFormatError(
                    f"{path}:{lineno}: dlc field {dlc} disagrees with payload "
                    f"length {record.dlc}"
                )
            trace.append(record)
    return trace

"""The ``repro.obs`` telemetry layer: registry, sinks, on/off semantics.

The layer's contract, unit-tested here:

* histograms share fixed log-scale bucket bounds, so merging two
  histograms is *exact* — bit-equal to having observed every value in
  one histogram;
* spans nest (parent attribution) and record into the histogram of the
  same name;
* every emitted event is versioned and timestamped;
* disabled telemetry is the default, and the module-level helpers are
  true no-ops when off.
"""

import json

import pytest

from repro import obs
from repro.obs import (
    BUCKET_BOUNDS,
    OBS_VERSION,
    Histogram,
    JsonlSink,
    MemorySink,
    Registry,
)


@pytest.fixture(autouse=True)
def telemetry_off():
    """Every test starts and ends with the process-global registry off."""
    obs.disable()
    yield
    obs.disable()


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = Registry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        reg.gauge("b").set(2.5)
        assert reg.counter("a").value == 5
        assert reg.gauge("b").value == 2.5
        # get-or-create returns the same object, not a fresh zero.
        assert reg.counter("a") is reg.counter("a")

    def test_bucket_bounds_are_fixed_and_sorted(self):
        assert BUCKET_BOUNDS == tuple(sorted(BUCKET_BOUNDS))
        assert BUCKET_BOUNDS[0] == 2.0 ** -20
        assert BUCKET_BOUNDS[-1] == 2.0 ** 12

    def test_histogram_observe(self):
        hist = Histogram("h")
        for v in (0.25, 1.0, 8.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(9.25)
        assert hist.min == 0.25
        assert hist.max == 8.0
        assert hist.mean == pytest.approx(9.25 / 3)

    def test_histogram_overflow_bucket(self):
        hist = Histogram("h")
        hist.observe(10_000.0)  # beyond the last bound (~68 min)
        assert hist.buckets == {len(BUCKET_BOUNDS): 1}

    def test_merge_is_exact(self):
        """The design reason for fixed bounds: merged bucket counts are
        plain integer addition — identical to one histogram having seen
        every value, with no re-binning error.  (``total`` is a float
        sum, so only its rounding order differs.)"""
        values_a = [1e-6, 0.003, 0.5, 2.0, 7.25]
        values_b = [4e-5, 0.003, 64.0, 9000.0]
        a, b, one = Histogram("h"), Histogram("h"), Histogram("h")
        for v in values_a:
            a.observe(v)
            one.observe(v)
        for v in values_b:
            b.observe(v)
            one.observe(v)
        a.merge(b)
        assert a.buckets == one.buckets
        assert (a.count, a.min, a.max) == (one.count, one.min, one.max)
        assert a.total == pytest.approx(one.total)

    def test_dict_round_trip(self):
        hist = Histogram("h")
        for v in (0.001, 0.5, 123.0):
            hist.observe(v)
        clone = Histogram.from_dict("h", json.loads(json.dumps(hist.to_dict())))
        assert clone.to_dict() == hist.to_dict()

    def test_empty_histogram_round_trip(self):
        hist = Histogram("h")
        assert Histogram.from_dict("h", hist.to_dict()).to_dict() == (
            hist.to_dict()
        )


class TestRegistry:
    def test_emit_stamps_version_and_time(self):
        sink = MemorySink()
        reg = Registry(sinks=[sink])
        event = reg.emit("custom", detail="x")
        assert event["v"] == OBS_VERSION
        assert event["kind"] == "custom"
        assert event["detail"] == "x"
        assert event["ts"] > 0
        assert sink.events == [event]

    def test_span_records_histogram_and_event(self):
        sink = MemorySink()
        reg = Registry(sinks=[sink])
        with reg.span("stage.outer"):
            pass
        assert reg.histograms["stage.outer"].count == 1
        (event,) = sink.events
        assert event["kind"] == "span"
        assert event["name"] == "stage.outer"
        assert event["parent"] is None
        assert event["dur_s"] >= 0.0

    def test_spans_nest_with_parent_attribution(self):
        sink = MemorySink()
        reg = Registry(sinks=[sink])
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        inner, outer = sink.events  # inner closes (and emits) first
        assert inner["name"] == "inner" and inner["parent"] == "outer"
        assert outer["name"] == "outer" and outer["parent"] is None

    def test_span_records_even_when_the_block_raises(self):
        reg = Registry()
        with pytest.raises(RuntimeError):
            with reg.span("doomed"):
                raise RuntimeError("boom")
        assert reg.histograms["doomed"].count == 1

    def test_snapshot_and_exact_merge(self):
        reg = Registry()
        reg.counter("tasks").inc(3)
        reg.gauge("depth").set(7.0)
        with reg.span("stage"):
            pass
        snapshot = json.loads(json.dumps(reg.snapshot()))  # wire trip
        assert snapshot["v"] == OBS_VERSION

        other = Registry()
        other.counter("tasks").inc(2)
        other.merge_snapshot(snapshot)
        assert other.counters["tasks"].value == 5
        assert other.gauges["depth"].value == 7.0
        assert other.histograms["stage"].to_dict() == (
            reg.histograms["stage"].to_dict()
        )

    def test_merge_rejects_foreign_versions(self):
        with pytest.raises(ValueError, match="version"):
            Registry().merge_snapshot({"v": 99})

    def test_bench_records_schema(self):
        reg = Registry()
        reg.counter("jobs").inc(2)
        reg.gauge("depth").set(1.5)
        with reg.span("stage"):
            pass
        records = reg.bench_records("obs")
        by_metric = {r["metric"]: r for r in records}
        assert by_metric["jobs"]["value"] == 2.0
        assert by_metric["depth"]["value"] == 1.5
        assert by_metric["stage.total"]["params"]["count"] == 1
        assert "stage.mean" in by_metric
        assert all(r["section"] == "obs" for r in records)


class TestOnOff:
    def test_disabled_is_the_default(self):
        assert obs.active() is None
        assert not obs.enabled()

    def test_enable_disable_round_trip(self):
        reg = obs.enable()
        assert obs.active() is reg and obs.enabled()
        assert obs.disable() is reg
        assert obs.active() is None

    def test_capture_restores_off_even_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.capture() as reg:
                assert obs.active() is reg
                raise RuntimeError("boom")
        assert obs.active() is None

    def test_module_helpers_are_noops_when_off(self):
        with obs.span("nothing", ignored=1):
            pass
        assert obs.emit("nothing") is None

    def test_module_helpers_record_when_on(self):
        sink = MemorySink()
        with obs.capture(sinks=[sink]) as reg:
            with obs.span("stage"):
                pass
            assert obs.emit("custom")["kind"] == "custom"
        assert reg.histograms["stage"].count == 1
        assert [e["kind"] for e in sink.events] == ["span", "custom"]


class TestSinks:
    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            reg = Registry(sinks=[sink])
            reg.emit("one", n=1)
            reg.emit("two", n=2)
        events = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["kind"] for e in events] == ["one", "two"]
        assert all(e["v"] == OBS_VERSION and "ts" in e for e in events)

    def test_jsonl_sink_drops_writes_after_close(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        sink.close()
        sink.write({"kind": "late"})  # must not raise into the hot path
        sink.close()  # idempotent
        assert (tmp_path / "events.jsonl").read_text() == ""

    def test_write_bench_snapshot(self, tmp_path):
        reg = Registry()
        reg.counter("tasks").inc(4)
        path = obs.write_bench_snapshot(
            tmp_path / "BENCH_obs.json", "obs", reg
        )
        records = json.loads(path.read_text())
        assert records == [
            {"section": "obs", "metric": "tasks", "value": 4.0,
             "unit": "count", "params": {}},
        ]

"""One-call demonstration of the whole reproduction.

:func:`quick_demo` builds the synthetic vehicle, learns a golden
template from clean driving, injects a single-ID attack, and returns the
detection report — the fastest way to see the system end to end (it is
also what ``examples/quickstart.py`` walks through step by step).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks import SingleIDAttacker
from repro.core import DetectionReport, IDSConfig, IDSPipeline, build_template
from repro.vehicle import VehicleSimulation, ford_fusion_catalog
from repro.vehicle.traffic import record_template_windows


def quick_demo(
    seed: int = 0,
    attack_frequency_hz: float = 50.0,
    attack_id: Optional[int] = None,
    config: Optional[IDSConfig] = None,
) -> DetectionReport:
    """Run the end-to-end pipeline once and return its report.

    Parameters
    ----------
    seed:
        Seeds the vehicle, the template drives and the attacker.
    attack_frequency_hz:
        Injection attempt frequency (the paper sweeps 100/50/20/10 Hz).
    attack_id:
        Injected identifier; defaults to a mid-priority catalog ID.
    config:
        IDS configuration override.
    """
    config = config or IDSConfig(template_windows=12)
    catalog = ford_fusion_catalog(seed=0)
    rng = np.random.default_rng(seed)

    windows = record_template_windows(
        n_windows=config.template_windows,
        window_s=config.window_us / 1e6,
        seed=seed,
        catalog=catalog,
    )
    template = build_template(windows, config)

    if attack_id is None:
        attack_id = catalog.ids[len(catalog.ids) // 4]
    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=seed + 1)
    attacker = SingleIDAttacker(
        can_id=attack_id,
        frequency_hz=attack_frequency_hz,
        start_s=2.0,
        duration_s=6.0,
        seed=int(rng.integers(1 << 31)),
    )
    sim.add_node(attacker)
    trace = sim.run(10.0)

    pipeline = IDSPipeline(template, config, id_pool=catalog.ids)
    return pipeline.analyze(trace, infer_k=1)

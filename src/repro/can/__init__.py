"""Bit-accurate, event-driven CAN bus simulator.

This subpackage is the hardware substitute for the paper's test setup (a
2016 Ford Fusion tapped through OBD-II plus an Arduino UNO / CAN-shield
attack prototype).  It implements the parts of ISO 11898 that the paper's
argument rests on:

* frames with 11-bit (base) and 29-bit (extended) identifiers, CRC-15 and
  bit stuffing (:mod:`repro.can.frame`, :mod:`repro.can.bits`);
* bitwise dominant-0 arbitration — the reason every priority-seeking
  injection must alter ID bits (:mod:`repro.can.arbitration`);
* an event-driven bus with retransmission, configurable per-frame error
  injection and error counters (:mod:`repro.can.bus`,
  :mod:`repro.can.errors`);
* the transceiver zero-overload guard that shuts down a node flooding the
  fully-dominant identifier (:mod:`repro.can.transceiver`);
* a gateway whitelist filter (:mod:`repro.can.gateway`).
"""

from repro.can.arbitration import ArbitrationResult, arbitration_key, resolve_arbitration
from repro.can.bits import (
    crc15,
    frame_bitstream,
    frame_wire_bits,
    id_bits,
    id_from_bits,
    stuff_bits,
    unstuff_bits,
)
from repro.can.bus import Bus, BusConfig, BusMonitor, BusStats
from repro.can.constants import (
    ACK_FIELD_BITS,
    BASE_ID_BITS,
    BAUD_HS_CAN,
    BAUD_MS_CAN,
    EOF_BITS,
    EXT_ID_BITS,
    IFS_BITS,
    MAX_BASE_ID,
    MAX_DLC,
    MAX_EXT_ID,
)
from repro.can.errors import ErrorCounters, ErrorState
from repro.can.frame import CANFrame
from repro.can.gateway import GatewayAlert, GatewayFilter
from repro.can.node import MessageSpec, Node, PeriodicECU
from repro.can.transceiver import TransceiverEvent, TransceiverGuard

__all__ = [
    "ACK_FIELD_BITS",
    "ArbitrationResult",
    "BASE_ID_BITS",
    "BAUD_HS_CAN",
    "BAUD_MS_CAN",
    "Bus",
    "BusConfig",
    "BusMonitor",
    "BusStats",
    "CANFrame",
    "EOF_BITS",
    "EXT_ID_BITS",
    "ErrorCounters",
    "ErrorState",
    "GatewayAlert",
    "GatewayFilter",
    "IFS_BITS",
    "MAX_BASE_ID",
    "MAX_DLC",
    "MAX_EXT_ID",
    "MessageSpec",
    "Node",
    "PeriodicECU",
    "TransceiverEvent",
    "TransceiverGuard",
    "arbitration_key",
    "crc15",
    "frame_bitstream",
    "frame_wire_bits",
    "id_bits",
    "id_from_bits",
    "resolve_arbitration",
    "stuff_bits",
    "unstuff_bits",
]

"""Drift-triggered re-baselining of a vehicle's golden template.

The drift CUSUM (:mod:`repro.fleet.drift`) answers *"is this vehicle's
clean traffic still the traffic its template was trained on?"* — and
when the answer is no, the right response is not an alarm storm but a
**re-baseline**: rebuild the template from the vehicle's *recent* clean
traffic and judge future drives against reality instead of history.

:func:`retrain_vehicle` is that response, closed-loop safe:

* training reuses the fleet-train path —
  :meth:`TemplateBuilder.add_trace_windows` with
  ``exclude_attacked=True`` — so ground-truth-attacked windows can
  never launder an ongoing injection into the new baseline;
* the new template is persisted atomically through the store, and the
  ledger's **context hash** does the invalidation: the next scan of
  this vehicle (and only this vehicle) is forcibly cold, re-judging
  every capture against the new baseline;
* every re-baseline appends an event to the vehicle's retrain log
  (:meth:`FleetStore.append_retrain_event`): when, why, from which
  captures, replacing which template digest — a fleet operator can
  audit exactly which verdicts were produced under which baseline.

:func:`should_retrain` is the watch daemon's idempotence guard: a drift
alarm with *no new clean captures since the last re-baseline* would
rebuild the same template from the same bytes, so the daemon skips it
instead of looping — one drift episode, one retrain event.
"""

from __future__ import annotations

import hashlib
import json
from datetime import datetime, timezone
from pathlib import Path
from typing import List, Optional, Union

from repro.core.config import IDSConfig
from repro.core.template import GoldenTemplate, TemplateBuilder
from repro.exceptions import TemplateError
from repro.fleet.store import FleetStore
from repro.io.archive import load_capture_columns
from repro.io.fingerprint import fingerprint_file

__all__ = [
    "retrain_vehicle",
    "should_retrain",
    "template_digest",
    "training_captures",
]


def template_digest(template: GoldenTemplate) -> str:
    """Short content digest identifying a template in retrain events."""
    blob = json.dumps(template.to_dict(), sort_keys=True).encode("ascii")
    return hashlib.blake2b(blob, digest_size=8).hexdigest()


def _natural_key(name: str):
    from repro.fleet.drift import _natural_name_key  # one ordering, one home

    return _natural_name_key(name)


def training_captures(
    store: FleetStore, vehicle_id: str, max_captures: Optional[int] = None
) -> List[Path]:
    """The vehicle's most recent ``max_captures`` capture files.

    "Recent" follows the fleet's chronology convention (numeric-aware
    name ordering — the same order the drift CUSUM aggregates in), so a
    template retrained after drift learns from the traffic that
    *caused* the drift, not from the pre-drift history that the stale
    template already describes.  ``None`` trains from everything.
    """
    paths = sorted(
        store.archive(vehicle_id).paths, key=lambda p: _natural_key(p.name)
    )
    if max_captures is not None and max_captures > 0:
        paths = paths[-max_captures:]
    return paths


def should_retrain(
    store: FleetStore, vehicle_id: str, max_captures: Optional[int] = None
) -> bool:
    """False when the last retrain already used exactly these *bytes*.

    Retraining is deterministic in its inputs: same captures, same
    config → same template → same ledger context.  Re-running it would
    burn a template rebuild per cycle while changing nothing, so the
    daemon consults this guard before acting on a persistent drift
    alarm.  Inputs are compared by name *and* content fingerprint — a
    capture re-recorded in place (``add_capture(overwrite=True)``) is
    new data even though its name is not, and must re-enable
    retraining.  Events written before fingerprints were recorded fall
    back to name comparison.
    """
    events = store.retrain_events(vehicle_id)
    if not events:
        return True
    last = events[-1]
    planned = training_captures(store, vehicle_id, max_captures)
    if last.get("captures") != [p.name for p in planned]:
        return True
    recorded = last.get("fingerprints")
    if recorded is None:
        return False  # legacy event: names matched, nothing else known
    return recorded != [fingerprint_file(p) for p in planned]


def retrain_vehicle(
    store: Union[FleetStore, str, Path],
    vehicle_id: str,
    config: Optional[IDSConfig] = None,
    max_captures: Optional[int] = None,
    reason: str = "drift",
) -> GoldenTemplate:
    """Rebuild a vehicle's golden template from its recent clean traffic.

    Loads the vehicle's most recent ``max_captures`` captures, trains a
    fresh template from their clean windows (ground-truth-attacked
    windows excluded), persists it (atomic write; the recorded training
    window rides along), and appends a retrain event to the vehicle's
    log.  Raises :class:`TemplateError` when fewer than two clean
    windows exist — a vehicle under sustained attack keeps its old
    baseline rather than training on poisoned traffic.

    The caller's next scan picks the invalidation up for free: the new
    template changes the detection context hash, so the vehicle's scan
    ledger rebuilds and every capture cold-rescans against the new
    baseline — and no other vehicle's ledger is touched.
    """
    if not isinstance(store, FleetStore):
        store = FleetStore(store)
    config = config or IDSConfig()
    paths = training_captures(store, vehicle_id, max_captures)
    if not paths:
        raise TemplateError(
            f"vehicle {vehicle_id!r} has no captures to retrain from"
        )
    builder = TemplateBuilder(config)
    for path in paths:
        builder.add_trace_windows(
            load_capture_columns(path), exclude_attacked=True
        )
    if builder.n_windows < 2:
        raise TemplateError(
            f"vehicle {vehicle_id!r} has {builder.n_windows} clean window(s) "
            f"({builder.excluded_attacked} attacked excluded) in its recent "
            f"captures; need >= 2 to re-baseline"
        )
    old_digest = (
        template_digest(store.load_template(vehicle_id))
        if store.has_template(vehicle_id)
        else None
    )
    template = builder.build()
    store.save_template(vehicle_id, template, window_us=config.window_us)
    store.append_retrain_event(
        vehicle_id,
        {
            "time": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "vehicle": vehicle_id,
            "reason": reason,
            "captures": [p.name for p in paths],
            "fingerprints": [fingerprint_file(p) for p in paths],
            "n_windows": template.n_windows,
            "excluded_attacked": builder.excluded_attacked,
            "window_us": config.window_us,
            "old_template": old_digest,
            "new_template": template_digest(template),
        },
    )
    return template

"""Throughput experiment: streaming vs. batch detection at scale.

The paper's Section V.E argues the bit-slice method is light-weight; the
ROADMAP's production target demands the reproduction actually *runs*
light-weight on capture sizes comparable to the multi-million-frame
datasets used by CANet and the ROAD comparative study.  This experiment
measures both detection paths on one large synthetic capture from the
columnar drive generator:

* **streaming** — ``EntropyDetector.feed`` record by record, the
  embedded / live-bus deployment path (timed on a capped sample and
  reported as messages/second, since running the interpreter loop over
  the full capture would only repeat the same number);
* **batch** — ``BatchEntropyEngine.scan`` over the ``ColumnTrace``,
  the recorded-capture path.

Both paths produce bit-identical verdicts (the parity suite asserts
it); the experiment quantifies the cost gap between them.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro.core import BatchEntropyEngine, EntropyDetector, IDSConfig
from repro.core.shard import ShardedScanner
from repro.core.template import GoldenTemplate
from repro.io.archive import CaptureArchive
from repro.io.columnar import ColumnTrace
from repro.io.csvlog import read_csv, read_csv_columns, write_csv_columns
from repro.io.log import read_candump, read_candump_columns, write_candump_columns
from repro.vehicle.ids_catalog import VehicleCatalog
from repro.vehicle.traffic import generate_drive_columns

#: Default capture size: ten million frames, the multi-million-frame
#: regime of the comparative CAN-IDS studies.
DEFAULT_FRAMES = 10_000_000

#: Frames fed through the streaming path to estimate its rate.
DEFAULT_STREAMING_SAMPLE = 200_000


@dataclass(frozen=True)
class ThroughputResult:
    """Measured rates of the two detection paths on one capture."""

    n_frames: int
    capture_s: float
    n_windows: int
    streaming_frames: int
    streaming_mps: float
    batch_mps: float

    @property
    def speedup(self) -> float:
        """Batch messages/second over streaming messages/second."""
        return self.batch_mps / self.streaming_mps if self.streaming_mps else 0.0

    def render(self) -> str:
        """The experiment's artifact table."""
        lines = [
            "Throughput: streaming feed() vs batch ColumnTrace scan",
            f"capture: {self.n_frames} frames over {self.capture_s:.0f}s "
            f"simulated driving, {self.n_windows} detection windows",
            f"{'path':>12} {'frames':>12} {'msg/s':>14}",
            f"{'streaming':>12} {self.streaming_frames:>12} {self.streaming_mps:>14,.0f}",
            f"{'batch':>12} {self.n_frames:>12} {self.batch_mps:>14,.0f}",
            f"speedup: {self.speedup:.1f}x",
        ]
        return "\n".join(lines)


def run(
    template: GoldenTemplate,
    config: Optional[IDSConfig] = None,
    n_frames: int = DEFAULT_FRAMES,
    streaming_sample: int = DEFAULT_STREAMING_SAMPLE,
    seed: int = 29,
    scenario: str = "city",
    catalog: Optional[VehicleCatalog] = None,
    capture: Optional[ColumnTrace] = None,
) -> ThroughputResult:
    """Measure both detection paths on one large synthetic capture.

    The capture comes from :func:`generate_drive_columns`, sized by
    first estimating the scenario's message rate on a short probe drive.
    Pass ``capture`` to measure an existing columnar trace instead.
    """
    config = config or IDSConfig()
    if capture is None:
        probe = generate_drive_columns(
            10.0, scenario=scenario, seed=seed, catalog=catalog
        )
        rate = max(probe.message_rate_hz(), 1.0)
        duration_s = n_frames / rate * 1.02 + 1.0
        capture = generate_drive_columns(
            duration_s, scenario=scenario, seed=seed, catalog=catalog,
            with_payloads=False,
        ).slice(0, n_frames)
    n = len(capture)

    start = time.perf_counter()
    windows = BatchEntropyEngine(template, config).scan(capture)
    batch_elapsed = time.perf_counter() - start
    batch_mps = n / batch_elapsed if batch_elapsed else 0.0

    sample_n = min(streaming_sample, n)
    sample = capture.slice(0, sample_n).to_trace()  # conversion untimed
    detector = EntropyDetector(template, config)
    start = time.perf_counter()
    detector.scan(sample)
    streaming_elapsed = time.perf_counter() - start
    streaming_mps = sample_n / streaming_elapsed if streaming_elapsed else 0.0

    return ThroughputResult(
        n_frames=n,
        capture_s=capture.duration_us / 1e6,
        n_windows=len(windows),
        streaming_frames=sample_n,
        streaming_mps=streaming_mps,
        batch_mps=batch_mps,
    )


# ----------------------------------------------------------------------
# Archive-scale benchmarks (loading + sharded scanning)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ArchiveThroughputResult:
    """Measured archive loading and sharded-scan rates."""

    n_captures: int
    frames_per_capture: int
    candump_record_fps: float
    candump_columnar_fps: float
    csv_record_fps: float
    csv_columnar_fps: float
    #: ``(workers, frames_per_second)`` per measured pool size.
    scan_scaling: Tuple[Tuple[int, float], ...]
    cpus: int

    @property
    def total_frames(self) -> int:
        return self.n_captures * self.frames_per_capture

    @property
    def candump_load_speedup(self) -> float:
        """Columnar candump loading over the record round-trip."""
        return (
            self.candump_columnar_fps / self.candump_record_fps
            if self.candump_record_fps
            else 0.0
        )

    @property
    def csv_load_speedup(self) -> float:
        """Columnar CSV loading over the record round-trip."""
        return (
            self.csv_columnar_fps / self.csv_record_fps
            if self.csv_record_fps
            else 0.0
        )

    def scan_speedup(self, workers: int) -> float:
        """Sharded scan rate at ``workers`` over the 1-worker rate."""
        rates = dict(self.scan_scaling)
        if workers not in rates or not rates.get(1):
            return 0.0
        return rates[workers] / rates[1]

    def render(self) -> str:
        """The experiment's artifact table."""
        lines = [
            "Archive throughput: columnar-native loading + sharded scanning",
            f"archive: {self.n_captures} captures x {self.frames_per_capture} "
            f"frames ({self.total_frames} total)",
            f"loading (frames/s):   {'record-path':>14} {'columnar':>14} {'speedup':>9}",
            f"{'candump':>10}           {self.candump_record_fps:>14,.0f} "
            f"{self.candump_columnar_fps:>14,.0f} {self.candump_load_speedup:>8.1f}x",
            f"{'csv':>10}           {self.csv_record_fps:>14,.0f} "
            f"{self.csv_columnar_fps:>14,.0f} {self.csv_load_speedup:>8.1f}x",
            "sharded scan (load + detect, whole archive):",
        ]
        for workers, fps in self.scan_scaling:
            speedup = self.scan_speedup(workers)
            lines.append(
                f"{'workers=' + str(workers):>12} {fps:>14,.0f} frames/s "
                f"{speedup:>8.1f}x"
            )
        lines.append(f"(host exposes {self.cpus} CPU(s); sharding speedup is "
                     f"bounded by the cores actually available)")
        return "\n".join(lines)


def run_archive(
    template: GoldenTemplate,
    config: Optional[IDSConfig] = None,
    n_captures: int = 6,
    frames_per_capture: int = 200_000,
    worker_counts: Sequence[int] = (1, 2, 4),
    seed: int = 31,
    scenario: str = "city",
    catalog: Optional[VehicleCatalog] = None,
    archive_dir: Optional[str] = None,
) -> ArchiveThroughputResult:
    """Measure archive loading and sharded scanning end to end.

    Builds a synthetic archive of ``n_captures`` candump captures (plus
    one CSV twin of the first capture for the CSV loading comparison),
    then measures:

    * **loading** — the record round-trip (``read_candump`` +
      ``to_columns``) against the columnar-native reader, frames/s;
    * **sharded scanning** — :class:`~repro.core.shard.ShardedScanner`
      over the whole archive (workers load *and* detect) at each pool
      size in ``worker_counts``.

    The archive is written under ``archive_dir`` (a temporary directory
    by default, cleaned up afterwards).
    """
    config = config or IDSConfig()
    cleanup = archive_dir is None
    tmp = tempfile.mkdtemp(prefix="repro-archive-") if cleanup else archive_dir
    try:
        probe = generate_drive_columns(
            10.0, scenario=scenario, seed=seed, catalog=catalog
        )
        rate = max(probe.message_rate_hz(), 1.0)
        duration_s = frames_per_capture / rate * 1.02 + 1.0
        archive = CaptureArchive(tmp, patterns=("*.log",))
        first_capture: Optional[ColumnTrace] = None
        for i in range(n_captures):
            capture = generate_drive_columns(
                duration_s, scenario=scenario, seed=seed + i, catalog=catalog
            ).slice(0, frames_per_capture)
            archive.write_capture(f"capture{i:02d}.log", capture)
            if first_capture is None:
                first_capture = capture
        csv_path = Path(tmp) / "capture00.csv"
        write_csv_columns(first_capture, csv_path)
        log_path = archive.paths[0]
        n = len(first_capture)

        start = time.perf_counter()
        via_records = read_candump(log_path).to_columns()
        candump_record_fps = n / (time.perf_counter() - start)
        start = time.perf_counter()
        native = read_candump_columns(log_path)
        candump_columnar_fps = n / (time.perf_counter() - start)
        assert native == via_records  # loading must be bit-identical

        start = time.perf_counter()
        via_records = read_csv(csv_path).to_columns()
        csv_record_fps = n / (time.perf_counter() - start)
        start = time.perf_counter()
        native = read_csv_columns(csv_path)
        csv_columnar_fps = n / (time.perf_counter() - start)
        assert native == via_records

        total = n_captures * frames_per_capture
        scaling = []
        for workers in worker_counts:
            scanner = ShardedScanner(template, config, workers=workers)
            start = time.perf_counter()
            scans = scanner.scan_archive(archive)
            elapsed = time.perf_counter() - start
            assert len(scans) == n_captures
            scaling.append((int(workers), total / elapsed))
        return ArchiveThroughputResult(
            n_captures=n_captures,
            frames_per_capture=frames_per_capture,
            candump_record_fps=candump_record_fps,
            candump_columnar_fps=candump_columnar_fps,
            csv_record_fps=csv_record_fps,
            csv_columnar_fps=csv_columnar_fps,
            scan_scaling=tuple(scaling),
            cpus=os.cpu_count() or 1,
        )
    finally:
        if cleanup:
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)

"""The scan-fabric protocol: one state machine, any transport.

Every distributed backend moves the same three messages and obeys the
same rules, no matter what carries the bytes:

* :class:`TaskMessage` — a unit of work: *run this portable spec over
  this capture path*, identified by ``(job, index)``;
* :class:`ClaimToken` — a lease on a claimed task: the claimant must
  finish (or renew) within ``lease_s`` or the task is re-posted for
  another claimant;
* :class:`TaskResult` — the outcome: ledger-protocol window verdicts
  (bit-exact float round trips) or an error string.

The state machine per task::

    posted ──claim──> claimed ──publish──> done
      ^                 │
      └──lease expiry───┘        (claimant died: re-post, never wedge)

    malformed task ──> quarantined (poison must not crash a claimant;
                       the coordinator raises a diagnostic — no result
                       will ever arrive for it, waiting would hang)

    error result ──> local retry (drain mode: workers accelerate a
                     scan, they are never *required* for one) or a
                     DetectorError (no-drain mode)

Two transports implement it: the filesystem queue
(:mod:`repro.runtime.queue` — posting is a file write, claiming an
atomic rename, the lease stamp an mtime) and the asyncio TCP fabric
(:mod:`repro.runtime.net` — posting is a ``submit`` message, claiming a
``next`` reply, the lease renewed by worker heartbeats).  Both are
bit-identical to a serial scan because both move the same
:class:`TaskResult` codec.

:func:`execute_task` is the claimant half shared by every worker —
filesystem, network, or a draining coordinator — including the
per-spec scanner cache; :class:`ResultCollector` is the coordinator
half: offer results in any order (duplicates welcome — a re-posted
task's duplicate result is byte-identical), get input-ordered results
out.
"""

from __future__ import annotations

import json
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.exceptions import DetectorError
from repro.runtime.base import ScanSpec, spec_from_payload

__all__ = [
    "DEFAULT_LEASE_S",
    "PROTOCOL_VERSION",
    "STATS_VERSION",
    "ClaimToken",
    "ResultCollector",
    "TaskFormatError",
    "TaskMessage",
    "TaskResult",
    "execute_task",
    "fabric_stats",
    "make_tasks",
    "new_job_id",
    "render_stats",
    "require_portable",
]

#: Wire-format version, stamped into every task and result message.
#: Bump on incompatible changes; claimants quarantine (or reject)
#: anything they cannot speak.
PROTOCOL_VERSION = 1

#: Default claim lease: a claimant that neither publishes nor renews
#: within this window is presumed dead and its task is re-posted.
DEFAULT_LEASE_S = 300.0

#: Fabric-statistics schema version (the ``stats`` admin verb and
#: ``queue_stats``).  Versioned separately from the task wire format so
#: observability can evolve without re-posting a single task.
STATS_VERSION = 1


def fabric_stats(
    transport: str,
    *,
    draining: bool = False,
    tasks: Optional[dict] = None,
    jobs: Optional[dict] = None,
    workers: Optional[Sequence[dict]] = None,
    claims: Optional[Sequence[dict]] = None,
    wire: Optional[dict] = None,
) -> dict:
    """Build the one fabric-statistics document both transports speak.

    The schema is transport-neutral on purpose: the TCP coordinator's
    ``stats`` verb and the filesystem queue's directory scan fill in
    the same keys, so ``repro-ids status`` renders either without
    caring what carries the bytes.

    * ``tasks`` — fabric-wide counts: ``queued`` (posted, unclaimed),
      ``claimed`` (leases outstanding), ``completed``, ``reposted``
      (lease expiries + dead claimants), ``quarantined``;
    * ``jobs`` — per-job ``{total, pending, claimed, done}``;
    * ``workers`` — per-claimant rows (name, live claims, lease age,
      executed/cache-hit numbers carried by heartbeats); empty for the
      queue transport, which has no claimant registry;
    * ``claims`` — per-outstanding-claim rows ``{task, claimant,
      lease_age_s}`` (claimant ``None`` on the queue, where the rename
      doesn't record who);
    * ``wire`` — transport bytes in/out (zeros for the queue).
    """
    base_tasks = {
        "queued": 0,
        "claimed": 0,
        "completed": 0,
        "reposted": 0,
        "quarantined": 0,
    }
    if tasks:
        base_tasks.update(tasks)
    base_wire = {"bytes_in": 0, "bytes_out": 0}
    if wire:
        base_wire.update(wire)
    return {
        "version": STATS_VERSION,
        "transport": str(transport),
        "draining": bool(draining),
        "tasks": base_tasks,
        "jobs": dict(jobs or {}),
        "workers": list(workers or []),
        "claims": list(claims or []),
        "wire": base_wire,
    }


def _age(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1f}s"


def render_stats(stats: dict) -> str:
    """Render a :func:`fabric_stats` document as the status console."""
    if stats.get("version") != STATS_VERSION:
        raise DetectorError(
            f"fabric stats version {stats.get('version')!r} != {STATS_VERSION}"
        )
    tasks = stats["tasks"]
    wire = stats["wire"]
    state = "draining" if stats.get("draining") else "serving"
    lines = [
        f"fabric: {stats['transport']} ({state})",
        (
            f"tasks: {tasks['queued']} queued, {tasks['claimed']} claimed, "
            f"{tasks['completed']} completed, {tasks['reposted']} reposted, "
            f"{tasks['quarantined']} quarantined"
        ),
        f"wire: {wire['bytes_in']} B in, {wire['bytes_out']} B out",
    ]
    jobs = stats.get("jobs", {})
    if jobs:
        lines.append(f"jobs ({len(jobs)}):")
        for job, row in sorted(jobs.items()):
            lines.append(
                f"  {job}: {row['done']}/{row['total']} done, "
                f"{row['pending']} pending, {row['claimed']} claimed"
            )
    workers = stats.get("workers", [])
    if workers:
        lines.append(f"workers ({len(workers)}):")
        for row in workers:
            hits = row.get("cache_hits", 0)
            misses = row.get("cache_misses", 0)
            built = hits + misses
            rate = f"{hits}/{built}" if built else "0/0"
            claims = row.get("claims", [])
            claim_note = ", ".join(claims) if claims else "idle"
            lines.append(
                f"  {row['name']}: {row.get('completed', 0)} completed, "
                f"{len(claims)} claimed ({claim_note}), "
                f"lease age {_age(row.get('lease_age_s'))}, "
                f"cache {rate}, busy {row.get('busy_s', 0.0):.2f}s"
            )
    claims = stats.get("claims", [])
    if claims:
        lines.append(f"claims ({len(claims)}):")
        for row in claims:
            claimant = row.get("claimant") or "?"
            lines.append(
                f"  {row['task']}: {claimant}, "
                f"age {_age(row.get('lease_age_s'))}"
            )
    return "\n".join(lines)


class TaskFormatError(DetectorError):
    """A task or result message could not be decoded.

    Transports translate this into their quarantine rule: the
    filesystem queue moves the file into ``failed/``, the network
    fabric relays an error result.  Never fatal to a claimant — a
    poison message must not crash a fleet's shared worker.
    """


def new_job_id() -> str:
    """A fresh job identifier (also the task-name prefix on disk)."""
    return uuid.uuid4().hex[:12]


def require_portable(spec: ScanSpec) -> None:
    """Refuse specs that cannot serialise across a host boundary."""
    if not spec.portable:
        raise DetectorError(
            f"{type(spec).__name__} cannot be shipped through a work "
            f"queue or network fabric; use the serial or pool executor"
        )


def _decode_error(payload: object, exc: Exception) -> TaskFormatError:
    head = repr(payload)
    if len(head) > 80:
        head = head[:77] + "..."
    return TaskFormatError(f"malformed fabric message {head}: {exc}")


@dataclass(frozen=True)
class TaskMessage:
    """One unit of work: a portable spec payload over one capture path."""

    job: str
    index: int
    path: str
    spec: dict

    @property
    def name(self) -> str:
        """Canonical task name, also the filesystem transport's stem."""
        return f"{self.job}-{self.index:06d}"

    def to_wire(self) -> dict:
        return {
            "version": PROTOCOL_VERSION,
            "job": self.job,
            "index": self.index,
            "path": self.path,
            "spec": self.spec,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "TaskMessage":
        try:
            if payload["version"] != PROTOCOL_VERSION:
                raise ValueError(
                    f"fabric protocol version {payload['version']!r}"
                )
            return cls(
                job=str(payload["job"]),
                index=int(payload["index"]),
                path=str(payload["path"]),
                spec=dict(payload["spec"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise _decode_error(payload, exc) from exc


@dataclass(frozen=True)
class TaskResult:
    """A task's outcome: encoded window verdicts, or an error string."""

    job: str
    index: int
    result: Optional[list] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_wire(self) -> dict:
        wire = {
            "version": PROTOCOL_VERSION,
            "job": self.job,
            "index": self.index,
        }
        if self.error is not None:
            wire["error"] = self.error
        else:
            wire["result"] = self.result
        return wire

    @classmethod
    def from_wire(cls, payload: dict) -> "TaskResult":
        try:
            if payload["version"] != PROTOCOL_VERSION:
                raise ValueError(
                    f"fabric protocol version {payload['version']!r}"
                )
            error = payload.get("error")
            if error is None and "result" not in payload:
                raise ValueError("neither result nor error present")
            return cls(
                job=str(payload["job"]),
                index=int(payload["index"]),
                result=payload.get("result"),
                error=None if error is None else str(error),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise _decode_error(payload, exc) from exc


@dataclass
class ClaimToken:
    """A lease on a claimed task, renewable by claimant heartbeats."""

    task: TaskMessage
    claimant: str
    claimed_at: float
    lease_s: float = DEFAULT_LEASE_S

    def expired(self, now: float) -> bool:
        return now - self.claimed_at > self.lease_s

    def renew(self, now: float) -> None:
        self.claimed_at = now


def make_tasks(
    spec: ScanSpec, paths: Sequence[str], job: Optional[str] = None
) -> List[TaskMessage]:
    """Describe a job: one :class:`TaskMessage` per capture path."""
    require_portable(spec)
    job = job or new_job_id()
    payload = spec.to_payload()
    return [
        TaskMessage(job=job, index=i, path=str(p), spec=payload)
        for i, p in enumerate(paths)
    ]


def execute_task(
    task: TaskMessage,
    scanners: Optional[Dict[str, object]] = None,
    stats: Optional[object] = None,
) -> TaskResult:
    """Run one task; a scan failure becomes an *error result*.

    The claimant half shared by every worker.  ``scanners`` caches
    built scanners keyed by the canonical spec payload, so a claimant
    draining a whole archive builds its engine once.  Errors are
    published, not raised: the coordinator is the process with a human
    attached, so failures surface there, and the fabric never wedges on
    a poison capture.

    ``stats`` is an optional mutable accumulator (duck-typed
    ``WorkerStats``): per-task timing and engine-cache hit/miss counts
    land on it so workers can carry them in heartbeat renewals.
    """
    key = json.dumps(task.spec, sort_keys=True)
    started = time.perf_counter()
    try:
        spec = spec_from_payload(task.spec)
        if scanners is not None and key in scanners:
            scan = scanners[key]
            if stats is not None:
                stats.cache_hits += 1
        else:
            scan = spec.make_scanner()
            if scanners is not None:
                scanners[key] = scan
            if stats is not None:
                stats.cache_misses += 1
        reg = obs.active()
        if reg is None:
            result = scan(task.path)
        else:
            with reg.span("fabric.task", task=task.name, path=task.path):
                result = scan(task.path)
        return TaskResult(
            task.job, task.index, result=spec.encode_result(result)
        )
    except Exception as exc:  # noqa: BLE001 - published, not swallowed
        return TaskResult(
            task.job, task.index, error=f"{type(exc).__name__}: {exc}"
        )
    finally:
        if stats is not None:
            elapsed = time.perf_counter() - started
            stats.busy_s += elapsed
            stats.last_task_s = elapsed


class ResultCollector:
    """The coordinator half: out-of-order results in, input order out.

    Encapsulates the error-result rule once for every transport: with
    ``local_retry`` (drain mode) a worker's error result is retried
    locally — a remote failure (missing mount on the worker's host,
    transient IO fault) degrades to local execution and only a local
    failure (the capture really is bad) propagates, with the true local
    exception.  Without it, an error result raises immediately.

    Duplicate and foreign results are ignored (``offer`` returns
    False): a re-posted task may legitimately complete twice, and the
    duplicate results of a deterministic task are byte-identical — the
    collector takes whichever arrives first.
    """

    def __init__(
        self,
        spec: ScanSpec,
        paths: Sequence[str],
        job: str,
        local_retry: bool = True,
    ) -> None:
        self.spec = spec
        self.names = [str(p) for p in paths]
        self.job = job
        self.local_retry = bool(local_retry)
        self._collected: Dict[int, list] = {}
        self._local_scan = None

    @property
    def done(self) -> bool:
        return len(self._collected) >= len(self.names)

    @property
    def n_collected(self) -> int:
        return len(self._collected)

    def collected(self, index: int) -> bool:
        return index in self._collected

    def pending_indices(self) -> List[int]:
        return [
            i for i in range(len(self.names)) if i not in self._collected
        ]

    def offer(self, outcome: TaskResult) -> bool:
        """Accept one outcome; True when it progressed the job."""
        if outcome.job != self.job:
            return False
        index = outcome.index
        if not 0 <= index < len(self.names) or index in self._collected:
            return False
        if outcome.error is not None:
            if not self.local_retry:
                raise DetectorError(
                    f"worker failed scanning {self.names[index]}: "
                    f"{outcome.error}"
                )
            if self._local_scan is None:
                self._local_scan = self.spec.make_scanner()
            self._collected[index] = self._local_scan(self.names[index])
        else:
            self._collected[index] = self.spec.decode_result(outcome.result)
        return True

    def results(self) -> List[list]:
        """Input-ordered results; only valid once :attr:`done`."""
        if not self.done:
            raise DetectorError(
                f"job {self.job} incomplete: "
                f"{len(self.names) - len(self._collected)} of "
                f"{len(self.names)} tasks outstanding"
            )
        return [self._collected[i] for i in range(len(self.names))]

"""Benchmark regression guard over ``results/BENCH_*.json``.

The BENCH files are committed alongside the code they measure, which
makes them a baseline: re-running the benchmarks on the same revision
must reproduce the committed numbers (parity booleans exactly, rates
within noise).  This module diffs a fresh results directory against
the committed one::

    python -m repro.experiments.bench_guard \
        --baseline /tmp/bench-baseline --fresh results

Classification follows the schema in :mod:`repro.experiments.bench`:

* ``bool``-unit metrics (parity flags) must match **exactly** — a
  parity break is a correctness bug no matter how fast the runner is.
* Numeric metrics (rates, sizes, ratios, spans) are compared within
  ``--tolerance`` and produce **warnings** by default: CI runners are
  noisy single-core boxes, and a 20 % throughput wobble is weather,
  not regression.  ``--strict`` promotes warnings to failures for
  quiet, dedicated hardware.
* A metric present in the baseline but missing fresh is a failure —
  a benchmark silently dropping a measurement is how regressions hide.
* Metrics whose sizing ``params`` differ between runs are skipped
  (compared runs must be the same experiment), and noted.

Exit status: 0 when no failures (warnings allowed), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Finding", "compare_files", "run_guard", "main"]

#: Default relative tolerance for numeric (non-bool) metrics.
DEFAULT_TOLERANCE = 0.25


class Finding:
    """One comparison outcome: ``fail`` | ``warn`` | ``skip``."""

    __slots__ = ("level", "file", "metric", "message")

    def __init__(self, level: str, file: str, metric: str, message: str):
        self.level = level
        self.file = file
        self.metric = metric
        self.message = message

    def render(self) -> str:
        return f"[{self.level.upper()}] {self.file} {self.metric}: {self.message}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Finding({self.render()!r})"


def _load(path: Path) -> Dict[Tuple[str, str], dict]:
    """Index a BENCH json file by ``(section, metric)``."""
    records = json.loads(path.read_text(encoding="utf-8"))
    out: Dict[Tuple[str, str], dict] = {}
    for rec in records:
        if isinstance(rec, dict) and "section" in rec and "metric" in rec:
            out[(str(rec["section"]), str(rec["metric"]))] = rec
    return out


def compare_files(
    baseline: Path,
    fresh: Path,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    strict: bool = False,
) -> Iterator[Finding]:
    """Yield findings for one baseline/fresh BENCH file pair."""
    name = baseline.name
    base = _load(baseline)
    if not fresh.exists():
        yield Finding(
            "fail", name, "*", "fresh run produced no such results file"
        )
        return
    new = _load(fresh)
    numeric_level = "fail" if strict else "warn"
    for key, rec in sorted(base.items()):
        metric = f"{key[0]}.{key[1]}"
        got = new.get(key)
        if got is None:
            yield Finding(
                "fail", name, metric,
                "metric present in baseline but missing from the fresh run",
            )
            continue
        if rec.get("params") != got.get("params"):
            yield Finding(
                "skip", name, metric,
                f"sizing params differ (baseline {rec.get('params')} vs "
                f"fresh {got.get('params')}) — not comparable",
            )
            continue
        want = float(rec["value"])
        have = float(got["value"])
        if rec.get("unit") == "bool":
            if want != have:
                yield Finding(
                    "fail", name, metric,
                    f"parity flag flipped: baseline {want:g}, fresh {have:g}",
                )
            continue
        denom = max(abs(want), abs(have), 1e-12)
        drift = abs(have - want) / denom
        if drift > tolerance:
            yield Finding(
                numeric_level, name, metric,
                f"baseline {want:g}, fresh {have:g} "
                f"({drift:.1%} drift > {tolerance:.0%} tolerance)",
            )


def run_guard(
    baseline_dir: Path,
    fresh_dir: Path,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    strict: bool = False,
) -> List[Finding]:
    """Compare every ``BENCH_*.json`` under ``baseline_dir``."""
    baseline_dir = Path(baseline_dir)
    fresh_dir = Path(fresh_dir)
    files = sorted(baseline_dir.glob("BENCH_*.json"))
    if not files:
        return [
            Finding(
                "fail", str(baseline_dir), "*",
                "no BENCH_*.json baselines found",
            )
        ]
    findings: List[Finding] = []
    for path in files:
        findings.extend(
            compare_files(
                path,
                fresh_dir / path.name,
                tolerance=tolerance,
                strict=strict,
            )
        )
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.bench_guard",
        description="Diff fresh BENCH_*.json results against baselines.",
    )
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="directory holding the committed BENCH_*.json files",
    )
    parser.add_argument(
        "--fresh", type=Path, required=True,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative drift allowed on numeric metrics "
        f"(default {DEFAULT_TOLERANCE:g})",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="numeric drift beyond tolerance fails instead of warning",
    )
    args = parser.parse_args(argv)
    findings = run_guard(
        args.baseline, args.fresh,
        tolerance=args.tolerance, strict=args.strict,
    )
    fails = [f for f in findings if f.level == "fail"]
    warns = [f for f in findings if f.level == "warn"]
    skips = [f for f in findings if f.level == "skip"]
    for f in findings:
        print(f.render())
    print(
        f"bench-guard: {len(fails)} failure(s), {len(warns)} warning(s), "
        f"{len(skips)} skipped"
    )
    return 1 if fails else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Vehicle simulation: scenarios, ECU building, traffic statistics."""

import numpy as np
import pytest

from repro.exceptions import ScenarioError
from repro.vehicle.driving import (
    STANDARD_SCENARIOS,
    DrivingScenario,
    random_scenario,
    scenario_by_name,
)
from repro.vehicle.ecu_profiles import assignments_for, build_ecus
from repro.vehicle.signals import (
    rolling_counter,
    sensor_channel,
    status_flags,
    with_checksum,
)
from repro.vehicle.traffic import (
    VehicleSimulation,
    record_template_windows,
    simulate_drive,
)


class TestScenarios:
    def test_lookup(self):
        assert scenario_by_name("city").name == "city"

    def test_unknown_raises(self):
        with pytest.raises(ScenarioError):
            scenario_by_name("warp_drive")

    def test_rate_for_defaults_to_identity(self):
        scenario = DrivingScenario("x", {"audio": 2.0})
        assert scenario.rate_for("audio", 1.0) == 2.0
        assert scenario.rate_for("lights", 1.0) == 1.0

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ScenarioError):
            DrivingScenario("x", {"audio": -1.0})

    def test_random_scenario_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            scenario = random_scenario(rng)
            assert all(0.5 <= m <= 2.0 for m in scenario.rate_multipliers.values())

    def test_standard_scenarios_modulate_gently(self):
        for scenario in STANDARD_SCENARIOS:
            assert all(0.0 <= m <= 2.0 for m in scenario.rate_multipliers.values())


class TestSignals:
    def test_rolling_counter(self):
        payload = rolling_counter(2)
        assert payload(0) == b"\x00\x00"
        assert payload(257) == b"\x01\x01"

    def test_sensor_channel_shape(self):
        payload = sensor_channel(dlc=8)
        assert len(payload(0)) == 8
        assert payload(0) != payload(50)

    def test_status_flags_toggle_rarely(self):
        payload = status_flags(dlc=2, toggle_every=10)
        assert payload(0) == payload(9)
        assert payload(0) != payload(10)

    def test_checksum_wrapper(self):
        payload = with_checksum(rolling_counter(4))
        data = payload(123)
        expected = 0
        for byte in data[:-1]:
            expected ^= byte
        assert data[-1] == expected


class TestBuildEcus:
    def test_one_node_per_ecu(self, catalog):
        ecus = build_ecus(catalog, scenario_by_name("city"), seed=0)
        assert len(ecus) == len(catalog.by_ecu())

    def test_assignments_cover_catalog(self, catalog):
        assignments = assignments_for(catalog)
        combined = frozenset().union(*assignments.values())
        assert combined == catalog.id_set()

    def test_deterministic(self, catalog):
        a = build_ecus(catalog, scenario_by_name("city"), seed=3)
        b = build_ecus(catalog, scenario_by_name("city"), seed=3)
        assert [e.next_release() for e in a] == [e.next_release() for e in b]


class TestSimulation:
    def test_busload_in_calibrated_band(self, catalog):
        sim = VehicleSimulation(catalog=catalog, scenario="city", seed=1)
        sim.run(5.0)
        assert 0.40 <= sim.busload() <= 0.70

    def test_rate_close_to_nominal(self, catalog):
        trace = simulate_drive(5.0, scenario="city", seed=2, catalog=catalog)
        assert trace.message_rate_hz() == pytest.approx(
            catalog.nominal_rate_hz(), rel=0.15
        )

    def test_only_catalog_ids_on_bus(self, catalog):
        trace = simulate_drive(3.0, scenario="highway", seed=3, catalog=catalog)
        assert set(np.unique(trace.ids())) <= set(catalog.id_set())

    def test_no_attacks_in_clean_drive(self, catalog):
        trace = simulate_drive(2.0, scenario="city", seed=4, catalog=catalog)
        assert trace.attack_count == 0

    def test_deterministic_in_seed(self, catalog):
        a = simulate_drive(2.0, scenario="city", seed=5, catalog=catalog)
        b = simulate_drive(2.0, scenario="city", seed=5, catalog=catalog)
        assert a == b

    def test_gateway_attachment(self, catalog):
        sim = VehicleSimulation(catalog=catalog, seed=1, with_gateway=True)
        sim.run(2.0)
        assert sim.gateway is not None
        # Clean traffic through legitimate ECUs raises no gateway alerts.
        assert sim.gateway.alerts == []

    def test_scenario_accepts_object(self, catalog):
        scenario = scenario_by_name("rain")
        sim = VehicleSimulation(catalog=catalog, scenario=scenario, seed=1)
        assert sim.scenario.name == "rain"


class TestTemplateWindows:
    def test_count_and_duration(self, catalog):
        windows = record_template_windows(4, 1.0, seed=1, catalog=catalog)
        assert len(windows) == 4
        for window in windows:
            assert window.duration_us <= 1_000_000
            assert len(window) > 300

    def test_windows_differ(self, catalog):
        windows = record_template_windows(3, 1.0, seed=1, catalog=catalog)
        assert windows[0] != windows[1]

"""The Section-V.E cost comparison.

The paper argues its bit-slice method wins on resource cost:

* **memory** — 11 counters regardless of catalog size, vs. one (or two)
  slots per identifier for the distribution-entropy and interval
  schemes ("each ID in the set would require a memory space ... in our
  bit-slice method, we just need 11 memory spaces");
* **work per message** — 11 counter increments, vs. a hash update plus
  per-ID state touch;
* **entropy evaluation** — an 11-term sum vs. a sum over hundreds of
  distribution entries ("from hundreds of elements down to 11").

:class:`CostModel` captures those analytical counts; ``compare_costs``
builds the comparison table for the cost benchmark, and the throughput
benchmark measures the same story empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class CostModel:
    """Analytical per-scheme resource counts."""

    name: str
    #: Persistent state slots held at runtime.
    memory_slots: int
    #: Counter/state updates per observed message.
    updates_per_message: int
    #: Terms summed when a window is judged.
    terms_per_window: int
    #: Can the scheme flag identifiers absent from training?
    handles_unseen_ids: bool
    #: Can the scheme name the malicious identifier?
    localizes_ids: bool

    def as_row(self) -> Dict[str, object]:
        """Dictionary form for table rendering."""
        return {
            "scheme": self.name,
            "memory_slots": self.memory_slots,
            "updates/msg": self.updates_per_message,
            "terms/window": self.terms_per_window,
            "unseen_ids": "yes" if self.handles_unseen_ids else "no",
            "localizes": "yes" if self.localizes_ids else "no",
        }


def bitslice_cost(n_bits: int = 11) -> CostModel:
    """Cost of the paper's bit-slice entropy IDS."""
    return CostModel(
        name="bit-entropy (this paper)",
        memory_slots=n_bits,
        updates_per_message=n_bits,
        terms_per_window=n_bits,
        handles_unseen_ids=True,
        localizes_ids=True,
    )


def muter_cost(n_ids: int) -> CostModel:
    """Cost of the ID-distribution entropy IDS [8] for ``n_ids`` identifiers."""
    return CostModel(
        name="ID-entropy (Muter [8])",
        memory_slots=n_ids,
        updates_per_message=1,
        terms_per_window=n_ids,
        handles_unseen_ids=True,
        localizes_ids=False,
    )


def interval_cost(n_ids: int) -> CostModel:
    """Cost of the interval IDS [11]: period + last-seen per identifier."""
    return CostModel(
        name="interval (Song [11])",
        memory_slots=2 * n_ids,
        updates_per_message=2,
        terms_per_window=1,
        handles_unseen_ids=False,
        localizes_ids=True,
    )


def clock_skew_cost(n_ids: int) -> CostModel:
    """Cost of the simplified clock-skew IDS [9]."""
    return CostModel(
        name="clock-skew (Cho [9])",
        memory_slots=4 * n_ids,
        updates_per_message=4,
        terms_per_window=1,
        handles_unseen_ids=False,
        localizes_ids=True,
    )


def compare_costs(n_ids: int, n_bits: int = 11) -> List[CostModel]:
    """The Section-V.E comparison table for a catalog of ``n_ids``."""
    return [
        bitslice_cost(n_bits),
        muter_cost(n_ids),
        interval_cost(n_ids),
        clock_skew_cost(n_ids),
    ]

"""Bitwise dominant-0 arbitration.

CAN resolves simultaneous transmissions bit by bit over the arbitration
field: a node writing the recessive level (logic 1) while the bus carries
the dominant level (logic 0) loses and backs off.  The winner is therefore
the frame whose arbitration bit sequence is lexicographically smallest —
which in Python is literally ``min()`` over the bit tuples produced here.

This is the mechanism the paper's whole detection idea rests on: any
injected message that wants to *win* the bus must put dominant (0) bits
early in the identifier, which skews the per-bit statistics the IDS
watches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.can.bits import id_bits
from repro.can.frame import CANFrame
from repro.exceptions import ArbitrationError


def arbitration_key(frame: CANFrame) -> Tuple[int, ...]:
    """Return the frame's arbitration bit sequence, dominant bits first.

    For base frames the sequence is ``ID[10..0], RTR, IDE``; for extended
    frames ``ID[28..18], SRR, IDE, ID[17..0], RTR``.  Comparing these
    tuples reproduces the ISO 11898 priority rules, including the two
    cross-format cases:

    * a base data frame beats an extended frame with the same 11-bit
      prefix (dominant RTR=0 vs recessive SRR=1);
    * a base remote frame still beats the extended frame at the IDE bit.
    """
    rtr = 1 if frame.rtr else 0
    if frame.extended:
        base = id_bits(frame.can_id >> 18, 11)
        ext = id_bits(frame.can_id & ((1 << 18) - 1), 18)
        return base + (1, 1) + ext + (rtr,)
    return id_bits(frame.can_id, 11) + (rtr, 0)


@dataclass(frozen=True)
class ArbitrationResult:
    """Outcome of one arbitration round.

    ``winner_index`` indexes into the contender list that was passed in;
    ``lost_at_bit`` maps each losing contender index to the bit position
    (0-based from the start of the arbitration field) where it first sent
    recessive against a dominant bus level.
    """

    winner_index: int
    lost_at_bit: dict


def resolve_arbitration(
    frames: Sequence[CANFrame], allow_ties: bool = False
) -> ArbitrationResult:
    """Resolve one arbitration round among simultaneous contenders.

    Parameters
    ----------
    frames:
        The frames whose start-of-frame bits coincide.
    allow_ties:
        Two nodes transmitting the *same* arbitration field simultaneously
        is an error condition on a real bus.  With ``allow_ties=False``
        (the default) this raises :class:`ArbitrationError`; with ``True``
        the lowest contender index wins deterministically, which is useful
        for coarse simulations that don't model the resulting error frame.

    Returns
    -------
    ArbitrationResult
        Winner index plus, for every loser, the bit position at which it
        dropped out (useful for arbitration-level diagnostics).
    """
    if not frames:
        raise ArbitrationError("arbitration requires at least one contender")
    keys: List[Tuple[int, ...]] = [arbitration_key(f) for f in frames]
    best = min(range(len(frames)), key=lambda i: (keys[i], i))
    best_key = keys[best]
    lost_at: dict = {}
    for i, key in enumerate(keys):
        if i == best:
            continue
        if key == best_key:
            if not allow_ties:
                raise ArbitrationError(
                    f"identical arbitration fields: contenders {best} and {i} "
                    f"both sent {''.join(map(str, key))}"
                )
            lost_at[i] = len(key)
            continue
        # First position where the loser is recessive and the bus dominant.
        for pos, (won_bit, lost_bit) in enumerate(zip(best_key, key)):
            if won_bit != lost_bit:
                lost_at[i] = pos
                break
    return ArbitrationResult(winner_index=best, lost_at_bit=lost_at)

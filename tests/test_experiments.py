"""Experiment harness: setup, scenario sweeps, artifact generators.

These are integration tests; they use one shared setup and the smallest
run counts that still exercise the full code paths.
"""

import numpy as np
import pytest

from repro.core import IDSConfig
from repro.exceptions import ScenarioError
from repro.experiments import (
    TABLE1_SCENARIOS,
    build_setup,
    run_attack,
    run_scenario,
    scenario,
)
from repro.experiments import fig2, fig3, stability, table1
from repro.experiments.report import hexid, pct, render_table


@pytest.fixture(scope="module")
def setup():
    return build_setup(config=IDSConfig(template_windows=10), seed=7)


class TestReportHelpers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["x", 1], ["long", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) <= 2  # aligned

    def test_pct(self):
        assert pct(0.912) == "91.2%"
        assert pct(1.0, digits=0) == "100%"

    def test_hexid(self):
        assert hexid(0x4A) == "0x04A"


class TestScenarioSpecs:
    def test_table1_has_six_rows(self):
        assert len(TABLE1_SCENARIOS) == 6

    def test_lookup(self):
        assert scenario("multi_3").k == 3

    def test_unknown_scenario(self):
        with pytest.raises(ScenarioError):
            scenario("quantum")

    def test_flood_not_inferable(self):
        assert not scenario("flood").inferable

    def test_attacker_construction_deterministic(self, setup):
        spec = scenario("single")
        a = spec.build_attacker(setup.catalog, setup.assignments, 50.0, 1, 2.0, 5.0)
        b = spec.build_attacker(setup.catalog, setup.assignments, 50.0, 1, 2.0, 5.0)
        assert a.can_id == b.can_id

    def test_multi_attacker_has_k_ids(self, setup):
        spec = scenario("multi_4")
        attacker = spec.build_attacker(
            setup.catalog, setup.assignments, 20.0, 1, 2.0, 5.0
        )
        assert len(attacker.can_ids) == 4

    def test_weak_attacker_restricted_to_assignment(self, setup):
        spec = scenario("weak")
        attacker = spec.build_attacker(
            setup.catalog, setup.assignments, 20.0, 1, 2.0, 5.0
        )
        assigned = frozenset().union(*setup.assignments.values())
        assert set(attacker.assigned_ids) <= assigned


class TestRunner:
    def test_setup_contents(self, setup):
        assert len(setup.catalog) == 223
        assert setup.template.n_windows == 10
        assert setup.assignments

    def test_run_attack_outcome_fields(self, setup):
        from repro.attacks import SingleIDAttacker

        attacker = SingleIDAttacker(
            can_id=setup.catalog.ids[60], frequency_hz=100.0, start_s=2.0,
            duration_s=6.0, seed=1,
        )
        outcome = run_attack(
            setup, attacker, k=1, scenario_name="t", frequency_hz=100.0, seed=1,
            capture_duration_s=10.0,
        )
        assert outcome.detected
        assert outcome.n_injected > 0
        assert 0.0 < outcome.injection_rate <= 1.0
        assert outcome.hit_rate == 1.0
        assert outcome.candidates

    def test_run_scenario_aggregates(self, setup):
        spec = scenario("single")
        result = run_scenario(
            setup, spec, seeds=(1,), attack_duration_s=6.0
        )
        assert len(result.runs) == len(spec.frequencies_hz)
        assert 0.0 <= result.detection_rate <= 1.0
        assert set(result.by_frequency()) == set(spec.frequencies_hz)


class TestArtifacts:
    def test_fig2_shape(self, setup):
        result = fig2.run(setup=setup)
        assert len(result.template_mean) == 11
        assert result.violated_bits  # the case study must alarm
        rendering = result.render()
        assert "Bit 11" in rendering and "ALARM" in rendering

    def test_fig3_series(self, setup):
        result = fig3.run(setup=setup, seeds=(1,), count=5)
        assert len(result.points) == 5
        ir_slope, _dr_slope = result.monotone_trend()
        assert ir_slope < 0  # the paper's headline for this figure
        ids = [p.can_id for p in result.points]
        assert ids == sorted(ids)
        assert "Fig. 3" in result.render()

    def test_table1_single_row(self, setup):
        result = table1.run(
            setup=setup, scenarios=[scenario("single")], seeds=(1,)
        )
        row = result.row("single")
        assert row.detection_rate > 0.7
        assert row.inference_accuracy is not None
        assert "Table I" in result.render()
        with pytest.raises(KeyError):
            result.row("missing")

    def test_stability_margin(self, setup):
        from repro.vehicle import STANDARD_SCENARIOS

        result = stability.run(
            setup=setup, scenarios=STANDARD_SCENARIOS[:3], windows_per_scenario=3
        )
        # Attack deviations dominate normal variation — the Sec. IV.B
        # premise that makes the golden template viable.
        assert result.stability_margin > 3.0
        assert "stability margin" in result.render()

"""Cross-module property-based tests on system invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.can.arbitration import arbitration_key, resolve_arbitration
from repro.can.bus import Bus, BusConfig
from repro.can.frame import CANFrame
from repro.can.node import MessageSpec, PeriodicECU
from repro.core.bitprob import BitCounter
from repro.core.config import IDSConfig
from repro.core.entropy import binary_entropy
from repro.core.template import TemplateBuilder
from repro.io.trace import Trace, TraceRecord

base_id = st.integers(min_value=0, max_value=0x7FF)


class TestArbitrationProperties:
    @given(st.lists(base_id, min_size=2, max_size=8, unique=True))
    def test_arbitration_is_a_total_order(self, ids):
        """Winner of the whole field == iterated pairwise winner."""
        frames = [CANFrame(i) for i in ids]
        winner = frames[resolve_arbitration(frames).winner_index]
        champion = frames[0]
        for challenger in frames[1:]:
            round_result = resolve_arbitration([champion, challenger])
            champion = [champion, challenger][round_result.winner_index]
        assert champion == winner

    @given(base_id, base_id)
    def test_key_order_matches_priority(self, a, b):
        if a == b:
            return
        lower, higher = sorted((a, b))
        assert arbitration_key(CANFrame(lower)) < arbitration_key(CANFrame(higher))


class TestBusConservation:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            # Identifier 0x000 is excluded: a node streaming the fully
            # dominant identifier is (correctly) shut down by the
            # transceiver zero-overload guard, which breaks conservation
            # by design.
            st.tuples(st.integers(min_value=1, max_value=0x7FF),
                      st.integers(min_value=5, max_value=50)),
            min_size=1, max_size=4,
            unique_by=lambda t: t[0],
        ),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_every_scheduled_frame_is_eventually_transmitted(self, specs, seed):
        """With retransmission, no legitimate frame is ever lost: the
        number of transmitted frames equals the number of releases that
        fit in the horizon (conservation of messages)."""
        bus = Bus(BusConfig())
        horizon_us = 400_000
        for index, (can_id, period_ms) in enumerate(specs):
            bus.attach(
                PeriodicECU(
                    f"e{index}",
                    [MessageSpec(can_id, period_us=period_ms * 1000)],
                    seed=seed + index,
                )
            )
        trace = bus.run(horizon_us)
        # Each node alone would send ceil(horizon/period) frames; jitter
        # is zero here so the count is exact unless backlog persists at
        # the end (bounded by number of nodes).
        expected = sum(
            (horizon_us + period_ms * 1000 - 1) // (period_ms * 1000)
            for _can_id, period_ms in specs
        )
        assert expected - len(specs) <= len(trace) <= expected

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16))
    def test_trace_timestamps_strictly_increase(self, seed):
        bus = Bus()
        bus.attach(PeriodicECU("a", [MessageSpec(0x100, period_us=7_000)], seed=seed))
        bus.attach(PeriodicECU("b", [MessageSpec(0x200, period_us=9_000)], seed=seed))
        trace = bus.run(300_000)
        stamps = trace.timestamps_us()
        assert np.all(np.diff(stamps) > 0)


class TestCounterWindowEquivalence:
    @given(st.lists(base_id, min_size=1, max_size=300),
           st.integers(min_value=1, max_value=50))
    def test_sliding_window_by_subtraction(self, ids, window):
        """Maintaining a sliding window via merge/subtract equals
        recounting from scratch."""
        if window > len(ids):
            window = len(ids)
        running = BitCounter.from_ids(ids[:window], 11)
        for start in range(1, len(ids) - window + 1):
            running.merge(BitCounter.from_ids([ids[start + window - 1]], 11))
            running.subtract(BitCounter.from_ids([ids[start - 1]], 11))
            assert running == BitCounter.from_ids(ids[start : start + window], 11)


class TestDetectorInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(base_id, min_size=40, max_size=200),
        st.integers(min_value=2, max_value=6),
    )
    def test_windows_partition_the_trace(self, ids, n_windows):
        """Every fed record lands in exactly one emitted window."""
        from repro.core.detector import EntropyDetector

        config = IDSConfig(
            window_us=100_000, min_window_messages=2, template_windows=2
        )
        builder = TemplateBuilder(config)
        trace = Trace(
            TraceRecord(timestamp_us=i * 1000, can_id=c) for i, c in enumerate(ids)
        )
        builder.add_trace(trace)
        builder.add_trace(trace)
        detector = EntropyDetector(builder.build(), config)
        windows = detector.scan(trace)
        assert sum(w.n_messages for w in windows) == len(ids)

    @given(st.lists(base_id, min_size=10, max_size=200))
    def test_entropy_vector_bounded(self, ids):
        counter = BitCounter.from_ids(ids, 11)
        h = binary_entropy(counter.probabilities())
        assert np.all(h >= 0.0) and np.all(h <= 1.0)


class TestTemplateInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.lists(base_id, min_size=10, max_size=80),
            min_size=2, max_size=6,
        )
    )
    def test_mean_within_min_max(self, window_ids):
        config = IDSConfig(min_window_messages=2, template_windows=2)
        builder = TemplateBuilder(config)
        for ids in window_ids:
            builder.add_counter(BitCounter.from_ids(ids, 11))
        template = builder.build()
        assert np.all(template.min_entropy <= template.mean_entropy + 1e-12)
        assert np.all(template.mean_entropy <= template.max_entropy + 1e-12)
        assert np.all(template.thresholds >= config.threshold_floor)
        assert np.all(template.min_p <= template.mean_p + 1e-12)
        assert np.all(template.mean_p <= template.max_p + 1e-12)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(base_id, min_size=10, max_size=80))
    def test_identical_windows_never_alarm_on_themselves(self, ids):
        """A template built from a window can never flag that window."""
        config = IDSConfig(min_window_messages=2, template_windows=2)
        builder = TemplateBuilder(config)
        counter = BitCounter.from_ids(ids, 11)
        builder.add_counter(counter)
        builder.add_counter(counter)
        template = builder.build()
        h = binary_entropy(counter.probabilities())
        assert not template.is_anomalous(np.asarray(h))

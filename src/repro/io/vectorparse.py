"""Vectorised byte-level parsing for the columnar log readers.

The record readers pay ~5 µs of interpreter work per frame (regex or
csv row, field conversions, a ``TraceRecord``, a monotonicity check).
The columnar readers instead load the file once as a ``uint8`` buffer
and parse *columns, not lines*: delimiter positions come from
``np.flatnonzero`` scans, numeric fields from a handful of masked
gather passes (one per digit position), payload hex from a single
gather plus a nibble lookup, and source names are interned by grouping
spans under a composite key and then *verifying the grouping exactly*
with vectorised character compares.  Nothing is trusted without a
check: any structural deviation — comment lines, unusual spacing,
quoting, non-digit bytes, ragged fields — makes the parser return
``None`` and the caller falls back to the per-line path, which
re-parses with full diagnostics.

Both parsers return plain column dicts (``ColumnTrace`` keyword
arguments) so ``repro.io.log`` / ``repro.io.csvlog`` own the trace
construction and the public API.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.can.constants import MAX_BASE_ID, SECOND_US

__all__ = ["parse_candump_bytes", "parse_csv_bytes"]

_NL, _CR, _SP, _COMMA = 10, 13, 32, 44
_LPAREN, _RPAREN, _DOT, _HASH, _SEMI = 40, 41, 46, 35, 59

#: Hex/decimal digit value per byte, -1 for non-digits.
_HEXVAL = np.full(256, -1, dtype=np.int64)
_DIGVAL = np.full(256, -1, dtype=np.int64)
for _i, _c in enumerate(b"0123456789"):
    _HEXVAL[_c] = _DIGVAL[_c] = _i
for _i, _c in enumerate(b"abcdef"):
    _HEXVAL[_c] = 10 + _i
    _HEXVAL[_c - 32] = 10 + _i  # A-F
del _i, _c


def _line_bounds(buf: np.ndarray):
    """Per-line ``(starts, ends, newlines)`` index arrays.

    ``ends`` excludes the newline and a preceding ``\\r``; a missing
    final newline gets a virtual one at ``buf.size``.
    """
    nl = np.flatnonzero(buf == _NL)
    if nl.size == 0 or int(nl[-1]) != buf.size - 1:
        nl = np.append(nl, buf.size)
    starts = np.empty(nl.size, dtype=np.int64)
    starts[0] = 0
    starts[1:] = nl[:-1] + 1
    ends = nl - (buf[np.minimum(nl - 1, buf.size - 1)] == _CR)
    return starts, ends, nl


def _columns_on_lines(marks: np.ndarray, n: int, per_line: int, ls, ends):
    """Reshape global delimiter positions into per-line columns.

    Returns the ``(n, per_line)`` matrix, or None unless there are
    exactly ``per_line`` marks on every line, in order.
    """
    if marks.size != per_line * n:
        return None
    m = marks.reshape(n, per_line)
    # marks are globally sorted, so each row sitting inside its own
    # line's [start, end) bounds implies the per-line counts match too.
    if np.any(m[:, 0] < ls) or np.any(m[:, -1] >= ends):
        return None
    return m


def _parse_uint_var(buf, lo, width, max_width) -> Optional[np.ndarray]:
    """Variable-width unsigned decimal fields, one gather per digit."""
    wmax = int(width.max()) if width.size else 0
    if wmax > max_width or (width.size and int(width.min()) < 1):
        return None
    val = np.zeros(lo.size, dtype=np.int64)
    limit = buf.size - 1
    for k in range(wmax):
        m = width > k
        d = _DIGVAL[buf[np.minimum(lo + k, limit)]]
        if np.any(m & (d < 0)):
            return None
        val = np.where(m, val * 10 + d, val)
    return val


def _parse_uint_fixed(buf, lo, width: int) -> Optional[np.ndarray]:
    """Fixed-width unsigned decimal fields (no masking needed)."""
    val = np.zeros(lo.size, dtype=np.int64)
    for k in range(width):
        d = _DIGVAL[buf[lo + k]]
        if int(d.min(initial=0)) < 0:
            return None
        val = val * 10 + d
    return val


def _parse_hex_var(buf, lo, width, max_width) -> Optional[np.ndarray]:
    """Variable-width hex fields, one gather per nibble."""
    wmax = int(width.max()) if width.size else 0
    if wmax > max_width or (width.size and int(width.min()) < 1):
        return None
    val = np.zeros(lo.size, dtype=np.int64)
    limit = buf.size - 1
    for k in range(wmax):
        m = width > k
        d = _HEXVAL[buf[np.minimum(lo + k, limit)]]
        if np.any(m & (d < 0)):
            return None
        val = np.where(m, val * 16 + d, val)
    return val


def _gather_spans(buf, starts, lengths) -> np.ndarray:
    """Concatenate the byte spans ``buf[starts[i]:starts[i]+lengths[i]]``."""
    total = int(lengths.sum())
    if not total:
        return np.empty(0, dtype=buf.dtype)
    out_offsets = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=out_offsets[1:])
    indices = np.repeat(starts - out_offsets, lengths) + np.arange(
        total, dtype=np.int64
    )
    return buf[indices]


def _decode_hex_spans(buf, lo, lengths) -> Optional[np.ndarray]:
    """Hex payload spans -> one flat ``uint8`` byte buffer."""
    if lengths.size and (int(lengths.min()) < 0 or np.any(lengths & 1)):
        return None
    chars = _gather_spans(buf, lo, lengths)
    nibbles = _HEXVAL[chars]
    if nibbles.size and int(nibbles.min()) < 0:
        return None
    return (nibbles[0::2] * 16 + nibbles[1::2]).astype(np.uint8)


def _verify_literal(buf, positions, literal: bytes) -> bool:
    """Check ``buf[p:p+len(literal)] == literal`` for every position."""
    return all(
        bool(np.all(buf[positions + k] == c)) for k, c in enumerate(literal)
    )


def _intern_spans(buf, lo, hi, max_width: int = 64):
    """Intern per-line byte spans into ``(codes, table)``, vectorised.

    Spans are grouped under a composite key (width, first, last and a
    position-weighted byte sum — plain sums collide on anagram-like
    names such as ``ECU_DDM``/``ECU_ECM``), then the grouping is
    *proved* by comparing every span to its group representative with
    one vectorised pass per character position.  Returns None when
    spans are too wide or a key collision survives (caller falls back).
    """
    width = (hi - lo).astype(np.int64)
    n = width.size
    if n == 0:
        return np.zeros(0, dtype=np.int32), ("",)
    if int(width.min()) < 0:
        return None
    wmax = int(width.max())
    if wmax > max_width:
        return None
    if wmax == 0:
        return np.zeros(n, dtype=np.int32), ("",)
    empty = width == 0
    if bool(empty.any()):
        # Intern the non-empty spans, reserve code 0 for "".
        sub = _intern_spans(buf[:], lo[~empty], hi[~empty], max_width)
        if sub is None:
            return None
        codes = np.zeros(n, dtype=np.int32)
        codes[~empty] = sub[0] + 1
        return codes, ("",) + sub[1]
    chars = _gather_spans(buf, lo, width).astype(np.int64)
    ends = np.cumsum(width)
    starts = ends - width
    pos = np.arange(chars.size, dtype=np.int64) - np.repeat(starts, width)
    sums = np.add.reduceat(chars, starts)
    wsums = np.add.reduceat(chars * (pos + 1), starts)
    key = (
        (((width << 8) | chars[starts]) << 8 | chars[ends - 1]) << 21
    ) | wsums  # wsum <= 255 * 64*65/2 < 2^21
    uniq, index, inverse = np.unique(key, return_index=True, return_inverse=True)
    charmat = np.zeros((uniq.size, wmax), dtype=np.int64)
    table = []
    for j, r in enumerate(index):
        w = int(width[r])
        span = chars[int(starts[r]) : int(starts[r]) + w]
        charmat[j, :w] = span
        try:
            table.append(span.astype(np.uint8).tobytes().decode("ascii"))
        except UnicodeDecodeError:
            return None  # fallback re-reads in text mode and diagnoses
    # Exact verification of the grouping (guards against collisions).
    actual = np.zeros((n, wmax), dtype=np.int64)
    actual[np.repeat(np.arange(n), width), pos] = chars
    if not np.array_equal(actual, charmat[inverse]):
        return None
    return inverse.astype(np.int32), tuple(table)


# ----------------------------------------------------------------------
# candump
# ----------------------------------------------------------------------

def parse_candump_bytes(buf: np.ndarray) -> Optional[dict]:
    """Parse a writer-shaped candump buffer into column arrays.

    Handles both line shapes the format allows — with the ground-truth
    ``; src=... attack=...`` comment (five spaces per line) and without
    (two spaces) — but not a mix; anything else returns None for the
    per-line fallback.  Timestamp monotonicity is *not* checked here
    (the trace constructor validates it with a proper error).
    """
    if buf.size == 0:
        return {}
    ls, ends, nl = _line_bounds(buf)
    n = ls.size
    if not np.all(buf[np.minimum(ls, buf.size - 1)] == _LPAREN):
        return None
    sp = np.flatnonzero(buf == _SP)
    commented = sp.size == 5 * n
    sp2 = _columns_on_lines(sp, n, 5 if commented else 2, ls, ends)
    if sp2 is None:
        return None
    dots = np.flatnonzero(buf == _DOT)
    if dots.size != n:
        return None
    rparen = sp2[:, 0] - 1
    if not np.all(buf[rparen] == _RPAREN) or not np.array_equal(rparen, dots + 7):
        return None  # stamp must end ".UUUUUU)"
    secs = _parse_uint_var(buf, ls + 1, dots - ls - 1, 13)
    usecs = _parse_uint_fixed(buf, dots + 1, 6)
    if secs is None or usecs is None:
        return None
    if int((sp2[:, 1] - sp2[:, 0]).min()) < 2:  # interface name nonempty
        return None
    hashes = np.flatnonzero(buf == _HASH)
    if hashes.size != n:
        return None
    id_lo = sp2[:, 1] + 1
    id_width = hashes - id_lo
    if id_width.size and (int(id_width.min()) < 3 or int(id_width.max()) > 8):
        return None
    can_id = _parse_hex_var(buf, id_lo, id_width, 8)
    if can_id is None:
        return None
    data_hi = sp2[:, 2] if commented else ends
    payload = _decode_hex_spans(buf, hashes + 1, data_hi - hashes - 1)
    if payload is None:
        return None
    if commented:
        if not np.all(buf[sp2[:, 2] + 1] == _SEMI):
            return None
        if not np.array_equal(sp2[:, 3], sp2[:, 2] + 2):
            return None
        if not _verify_literal(buf, sp2[:, 3] + 1, b"src="):
            return None
        name_lo, name_hi = sp2[:, 3] + 5, sp2[:, 4]
        if int((name_hi - name_lo).min()) < 1:
            return None
        if not np.array_equal(ends - sp2[:, 4] - 1, np.full(n, 8, np.int64)):
            return None
        if not _verify_literal(buf, sp2[:, 4] + 1, b"attack="):
            return None
        flag = buf[ends - 1]
        if not np.all((flag == ord("0")) | (flag == ord("1"))):
            return None
        interned = _intern_spans(buf, name_lo, name_hi)
        if interned is None:
            return None
        source_code, raw_table = interned
        source_table = tuple("" if s == "-" else s for s in raw_table)
        is_attack = flag == ord("1")
    else:
        source_code = np.zeros(n, dtype=np.int32)
        source_table = ("",)
        is_attack = np.zeros(n, dtype=bool)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum((data_hi - hashes - 1) >> 1, out=offsets[1:])
    return dict(
        timestamp_us=secs * SECOND_US + usecs,
        can_id=can_id,
        payload=payload,
        payload_offsets=offsets,
        extended=(id_width > 3) | (can_id > MAX_BASE_ID),
        is_attack=is_attack,
        source_code=source_code,
        source_table=source_table,
    )


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------

def parse_csv_bytes(buf: np.ndarray, header: bytes) -> Optional[dict]:
    """Parse a writer-shaped CSV trace buffer into column arrays.

    ``header`` is the expected first line (without line terminator).
    Quoted fields (any ``\"`` in the file) and ragged rows defer to the
    csv-module fallback.
    """
    if buf.size == 0:
        return None  # a valid CSV trace has at least the header
    if bool(np.any(buf == ord('"'))):
        return None
    ls, ends, nl = _line_bounds(buf)
    if buf[ls[0] : ends[0]].tobytes() != header:
        return None
    # Drop the header line; the last line may be a trailing blank.
    ls, ends, nl = ls[1:], ends[1:], nl[1:]
    if ls.size and ls[-1] == ends[-1]:
        ls, ends, nl = ls[:-1], ends[:-1], nl[:-1]
    n = ls.size
    if n == 0:
        return {}
    n_commas = header.count(b",")
    commas = np.flatnonzero(buf == _COMMA)
    commas = commas[commas >= ls[0]]  # exclude the header's commas
    cm = _columns_on_lines(commas, n, n_commas, ls, ends)
    if cm is None:
        return None
    timestamp_us = _parse_uint_var(buf, ls, cm[:, 0] - ls, 18)
    can_id = _parse_hex_var(buf, cm[:, 0] + 1, cm[:, 1] - cm[:, 0] - 1, 8)
    if timestamp_us is None or can_id is None:
        return None
    ext_width = cm[:, 2] - cm[:, 1] - 1
    att_width = ends - cm[:, 5] - 1
    if np.any(ext_width != 1) or np.any(att_width != 1):
        return None
    ext_flag = buf[cm[:, 1] + 1]
    att_flag = buf[cm[:, 5] + 1]
    zero, one = ord("0"), ord("1")
    if not np.all(((ext_flag == zero) | (ext_flag == one))):
        return None
    if not np.all(((att_flag == zero) | (att_flag == one))):
        return None
    dlc = _parse_uint_var(buf, cm[:, 2] + 1, cm[:, 3] - cm[:, 2] - 1, 2)
    if dlc is None:
        return None
    data_len = cm[:, 4] - cm[:, 3] - 1
    payload = _decode_hex_spans(buf, cm[:, 3] + 1, data_len)
    if payload is None or not np.array_equal(data_len >> 1, dlc):
        return None
    interned = _intern_spans(buf, cm[:, 4] + 1, cm[:, 5])
    if interned is None:
        return None
    source_code, source_table = interned
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(data_len >> 1, out=offsets[1:])
    return dict(
        timestamp_us=timestamp_us,
        can_id=can_id,
        payload=payload,
        payload_offsets=offsets,
        extended=ext_flag == one,
        is_attack=att_flag == one,
        source_code=source_code,
        source_table=source_table,
    )

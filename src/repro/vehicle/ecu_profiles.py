"""Building ECU nodes from the catalog.

Each catalog entry belongs to one ECU; this module converts a
:class:`~repro.vehicle.ids_catalog.VehicleCatalog` plus a
:class:`~repro.vehicle.driving.DrivingScenario` into a list of ready
:class:`repro.can.PeriodicECU` nodes, with per-message start offsets that
desynchronize the periodic schedules (real ECUs boot at different times).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.can.node import MessageSpec, PeriodicECU
from repro.vehicle.driving import DrivingScenario
from repro.vehicle.ids_catalog import CatalogEntry, VehicleCatalog
from repro.vehicle.signals import default_payload_for


#: Per-ECU task tick; periodic releases inside one ECU snap to this grid.
ECU_TICK_US = 10_000


def _spec_for(
    entry: CatalogEntry,
    scenario: DrivingScenario,
    rng: np.random.Generator,
    ecu_phase_us: int,
) -> Optional[MessageSpec]:
    """Build the MessageSpec for one catalog entry under a scenario.

    Returns None for event messages the scenario silences entirely.
    """
    payload_fn = default_payload_for(
        entry.cluster, entry.dlc, seed=entry.can_id
    )
    if entry.is_periodic:
        # Releases inside one ECU share that ECU's task tick (real ECUs
        # emit several frames per OS tick), but different ECUs have
        # independent phases — their clocks are not synchronized.  The
        # small bursts this produces create the arbitration contention
        # behind the paper's Fig. 3 injection-rate curve without the
        # fleet-wide release alignment a global grid would cause.
        slots = max(1, entry.period_us // ECU_TICK_US)
        offset = ecu_phase_us + int(rng.integers(0, slots)) * ECU_TICK_US
        return MessageSpec(
            can_id=entry.can_id,
            period_us=entry.period_us,
            offset_us=offset,
            jitter_frac=entry.jitter_frac,
            payload_fn=payload_fn,
        )
    rate = scenario.rate_for(entry.tag, entry.base_rate_hz)
    if rate <= 0.0:
        return None
    return MessageSpec(
        can_id=entry.can_id,
        rate_hz=rate,
        offset_us=int(rng.integers(0, 1_000_000)),
        payload_fn=payload_fn,
    )


def build_ecus(
    catalog: VehicleCatalog,
    scenario: DrivingScenario,
    seed: int = 0,
) -> List[PeriodicECU]:
    """Instantiate one :class:`PeriodicECU` per catalog ECU.

    The RNG seeds offsets, jitter streams and event arrivals, so two
    calls with the same (catalog, scenario, seed) produce statistically
    identical buses.
    """
    rng = np.random.default_rng(seed)
    nodes: List[PeriodicECU] = []
    for ecu_name, entries in sorted(catalog.by_ecu().items()):
        ecu_phase_us = int(rng.integers(0, ECU_TICK_US))
        specs = []
        for entry in entries:
            spec = _spec_for(entry, scenario, rng, ecu_phase_us)
            if spec is not None:
                specs.append(spec)
        if not specs:
            continue  # every event message silenced for this ECU
        nodes.append(
            PeriodicECU(
                name=f"ECU_{ecu_name}",
                messages=specs,
                seed=int(rng.integers(1 << 31)),
            )
        )
    return nodes


def assignments_for(catalog: VehicleCatalog) -> Dict[str, frozenset]:
    """Per-node identifier assignments (for gateway/transmitter filters)."""
    return {
        f"ECU_{ecu}": frozenset(entry.can_id for entry in entries)
        for ecu, entries in catalog.by_ecu().items()
    }

"""Vectorised batch detection over columnar traces.

:class:`BatchEntropyEngine` computes exactly what the streaming
:class:`~repro.core.detector.EntropyDetector` computes — the same
tumbling windows, per-bit probabilities, entropies, deviations, verdicts
and alerts — but over a whole recorded capture at once, by delegating to
the fused kernel (:func:`repro.core.kernel.scan_windows`): packed-field
bit counting, binary-search segmentation, and a struct-of-arrays
:class:`~repro.core.kernel.WindowBlock` result with no per-window Python
in the hot path.

The result is bit-for-bit identical to ``EntropyDetector.scan`` (the
parity test suite asserts array equality, not approximation): both paths
divide the same ``int64`` counts, feed the same ``float64``
probabilities through :func:`~repro.core.entropy.binary_entropy`, and
subtract the same template arrays.  The streaming detector remains the
deployment path for live buses; this engine is the path for recorded
captures.

Two call shapes per path:

* :meth:`scan` / :meth:`scan_stream` — legacy list-of-
  :class:`WindowResult` API, alerts emitted to the sink;
* :meth:`scan_block` / :meth:`scan_stream_block` — the
  :class:`WindowBlock` struct-of-arrays, for callers that only need
  aggregates (no per-window objects are built).

The ``stream`` variants drive the same kernel chunk-by-chunk over
window-aligned slices (:meth:`ColumnTrace.iter_window_chunks`), so a
memory-mapped 100M-frame capture scans under a bounded memory budget
with a report bit-identical to the in-RAM scan.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro import obs
from repro.core.alerts import AlertSink
from repro.core.config import IDSConfig
from repro.core.detector import WindowResult
from repro.core.kernel import KernelWorkspace, WindowBlock, scan_windows
from repro.core.template import GoldenTemplate
from repro.exceptions import DetectorError
from repro.io.columnar import ColumnTrace
from repro.io.trace import Trace

__all__ = ["BatchEntropyEngine", "batch_scan", "DEFAULT_CHUNK_WINDOWS"]

#: Default chunk size (in detection windows) for the streamed scan: big
#: enough that per-chunk overhead vanishes, small enough that a chunk of
#: a dense bus (tens of thousands of frames) stays cache-resident.
DEFAULT_CHUNK_WINDOWS = 64


class BatchEntropyEngine:
    """Whole-capture tumbling-window entropy detection.

    Construction mirrors :class:`~repro.core.detector.EntropyDetector`;
    :meth:`scan` accepts either representation and converts record
    traces on entry (callers holding large captures should pass a
    :class:`~repro.io.columnar.ColumnTrace` to skip the conversion).
    """

    def __init__(
        self,
        template: GoldenTemplate,
        config: Optional[IDSConfig] = None,
        sink: Optional[AlertSink] = None,
    ) -> None:
        self.config = config or IDSConfig()
        if template.n_bits != self.config.n_bits:
            raise DetectorError(
                f"template monitors {template.n_bits} bits, config expects "
                f"{self.config.n_bits}"
            )
        self.template = template
        self.sink = sink if sink is not None else AlertSink()

    # ------------------------------------------------------------------
    @staticmethod
    def _window_chunk_source(trace):
        """Pass through any streaming chunk source, coerce the rest.

        The stream scanner only needs ``len``, ``start_us`` and
        ``iter_window_chunks``; besides :class:`ColumnTrace` that
        surface is implemented by :class:`repro.io.blocks.BlockReader`
        (one inflated block in memory at a time).  Duck typing keeps
        the core layer free of an io-container import.
        """
        if isinstance(trace, ColumnTrace) or (
            not isinstance(trace, Trace)
            and hasattr(trace, "iter_window_chunks")
            and hasattr(trace, "start_us")
        ):
            return trace
        return ColumnTrace.coerce(trace)

    def scan_block(self, trace: Union[Trace, ColumnTrace]) -> WindowBlock:
        """Judge every tumbling window, returning the struct-of-arrays
        :class:`WindowBlock` (no per-window objects, no alert emission).

        This is the aggregate fast path: callers that only need counts,
        verdicts or entropy series read the block's arrays directly.
        Streaming-only sources (e.g. a ``BlockReader``) are scanned via
        :meth:`scan_stream_block` — identical result, bounded memory.
        """
        source = self._window_chunk_source(trace)
        if not isinstance(source, ColumnTrace):
            return self.scan_stream_block(source)
        if len(source) == 0:
            return WindowBlock.empty(self.config.n_bits, self.config.window_us)
        reg = obs.active()
        if reg is None:  # telemetry off: the hot path pays this branch only
            return scan_windows(source, self.template, self.config)
        with reg.span("engine.kernel", frames=len(source)):
            return scan_windows(source, self.template, self.config)

    def scan_stream_block(
        self,
        trace: Union[Trace, ColumnTrace],
        chunk_windows: int = DEFAULT_CHUNK_WINDOWS,
    ) -> WindowBlock:
        """Chunked :meth:`scan_block`: bounded peak memory, identical
        result.

        The trace is consumed in window-aligned chunks (so no chunk
        boundary can split a detection window) with the grid anchored
        once at the trace's first timestamp; each chunk runs through
        the same fused kernel with a shared workspace, and the
        per-chunk blocks concatenate into a block bit-identical to the
        whole-trace scan.  On a memory-mapped trace only the chunk
        currently being scanned is paged in; on a block-compressed
        ``BlockReader`` only one inflated block is ever held.
        """
        ct = self._window_chunk_source(trace)
        if len(ct) == 0:
            return WindowBlock.empty(self.config.n_bits, self.config.window_us)
        origin = ct.start_us
        workspace = KernelWorkspace()
        blocks: List[WindowBlock] = []
        emitted = 0
        reg = obs.active()
        if reg is None:
            # Telemetry off: the untouched loop — one branch, zero
            # allocations beyond what the scan itself needs.
            for chunk in ct.iter_window_chunks(
                self.config.window_us, chunk_windows
            ):
                block = scan_windows(
                    chunk,
                    self.template,
                    self.config,
                    origin_us=origin,
                    index_base=emitted,
                    workspace=workspace,
                )
                emitted += len(block)
                blocks.append(block)
        else:
            # Traced twin: chunk fetch (IO/decompress side) and kernel
            # timed separately so span sums attribute the wall clock.
            chunks = iter(
                ct.iter_window_chunks(self.config.window_us, chunk_windows)
            )
            while True:
                with reg.span("engine.chunk"):
                    chunk = next(chunks, None)
                if chunk is None:
                    break
                with reg.span("engine.kernel", frames=len(chunk)):
                    block = scan_windows(
                        chunk,
                        self.template,
                        self.config,
                        origin_us=origin,
                        index_base=emitted,
                        workspace=workspace,
                    )
                emitted += len(block)
                blocks.append(block)
        if reg is None:
            return WindowBlock.concat(
                blocks, self.config.n_bits, self.config.window_us
            )
        with reg.span("engine.assemble", windows=emitted):
            return WindowBlock.concat(
                blocks, self.config.n_bits, self.config.window_us
            )

    def scan(self, trace: Union[Trace, ColumnTrace]) -> List[WindowResult]:
        """Judge every tumbling window of a recorded capture.

        Produces the identical :class:`WindowResult` sequence the
        streaming detector emits: one result per *non-empty* grid window
        (silent gaps are skipped without verdicts), indices sequential
        over the emitted windows, the trailing partial window included.
        Alarming windows are emitted to the sink, in window order.
        """
        return self._emit(self.scan_block(trace))

    def scan_stream(
        self,
        trace: Union[Trace, ColumnTrace],
        chunk_windows: int = DEFAULT_CHUNK_WINDOWS,
    ) -> List[WindowResult]:
        """Chunked :meth:`scan`: same results, same alerts, bounded
        memory (see :meth:`scan_stream_block`)."""
        return self._emit(self.scan_stream_block(trace, chunk_windows))

    def _emit(self, block: WindowBlock) -> List[WindowResult]:
        """Materialise the legacy result list and emit alarm alerts."""
        reg = obs.active()
        if reg is None:
            results = block.results()
        else:
            with reg.span("engine.assemble", windows=len(block)):
                results = block.results()
        for i in np.flatnonzero(block.alarm_mask):
            self.sink.emit(results[int(i)].to_alert())
        return results


def batch_scan(
    trace: Union[Trace, ColumnTrace],
    template: GoldenTemplate,
    config: Optional[IDSConfig] = None,
    sink: Optional[AlertSink] = None,
) -> List[WindowResult]:
    """One-call batch detection (convenience wrapper)."""
    return BatchEntropyEngine(template, config, sink).scan(trace)

"""The block-compressed columnar container (``.npb``).

Chunked per-column zlib compression with a JSON block index: captures
round-trip losslessly, stream back one inflated block at a time, scan
bit-identically to the in-RAM engine paths, and dispatch through the
archive/runtime layers by suffix like any other capture format.
"""

import json
import struct

import numpy as np
import pytest

from repro.core import BatchEntropyEngine
from repro.exceptions import TraceFormatError
from repro.io import (
    BlockReader,
    BlockWriter,
    CaptureArchive,
    load_capture_columns,
    open_capture_stream,
    write_blocks,
)
from repro.io.archive import DEFAULT_PATTERNS, iter_capture_chunks
from repro.io.blocks import BLOCKS_SUFFIX
from repro.io.columnar import ColumnTrace
from repro.vehicle.traffic import generate_drive_columns


@pytest.fixture(scope="module")
def capture(catalog):
    """A payload-bearing drive capture with interned source tables."""
    return generate_drive_columns(
        3.0, scenario="city", seed=41, catalog=catalog
    )


@pytest.fixture()
def npb(capture, tmp_path):
    path = tmp_path / "drive.npb"
    write_blocks(path, capture, block_frames=1000)
    return path


class TestRoundTrip:
    def test_lossless(self, capture, npb):
        with BlockReader(npb) as reader:
            assert len(reader) == len(capture)
            assert reader.to_columns() == capture

    def test_blocks_are_frame_aligned(self, capture, npb):
        with BlockReader(npb) as reader:
            blocks = list(reader.iter_blocks())
        assert all(len(b) == 1000 for b in blocks[:-1])
        assert sum(len(b) for b in blocks) == len(capture)
        assert ColumnTrace.merge(*blocks) == capture

    def test_streamed_appends_match_single_write(self, capture, tmp_path):
        """Odd-sized appends land in the same exact-size blocks."""
        whole = tmp_path / "whole.npb"
        write_blocks(whole, capture, block_frames=777)
        appended = tmp_path / "appended.npb"
        with BlockWriter(appended, block_frames=777) as writer:
            for lo in range(0, len(capture), 313):
                writer.append(capture.slice(lo, lo + 313))
        assert (
            load_capture_columns(appended) == load_capture_columns(whole)
        )
        assert appended.read_bytes() == whole.read_bytes()

    def test_empty_capture(self, tmp_path):
        path = tmp_path / "empty.npb"
        empty = ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
        write_blocks(path, empty)
        with BlockReader(path) as reader:
            assert len(reader) == 0
            assert reader.to_columns() == empty
            assert list(reader.iter_window_chunks(2_000_000, 8)) == []

    def test_out_of_order_appends_rejected(self, capture, tmp_path):
        with BlockWriter(tmp_path / "o.npb") as writer:
            writer.append(capture.slice(100, 200))
            with pytest.raises(TraceFormatError, match="time-ordered"):
                writer.append(capture.slice(0, 100))

    def test_writer_validates_parameters(self, tmp_path):
        with pytest.raises(TraceFormatError, match="positive"):
            BlockWriter(tmp_path / "b.npb", block_frames=0)
        with pytest.raises(TraceFormatError, match="level"):
            BlockWriter(tmp_path / "b.npb", level=99)


class TestFormatGates:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.npb"
        path.write_bytes(b"NOTABLOCKFILE" + b"\0" * 64)
        with pytest.raises(TraceFormatError, match="bad magic"):
            BlockReader(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "short.npb"
        path.write_bytes(b"REPRO")
        with pytest.raises(TraceFormatError, match="truncated"):
            BlockReader(path)

    def test_corrupt_trailer(self, npb):
        data = bytearray(npb.read_bytes())
        data[-8:] = b"XXXXXXXX"  # trailer magic
        npb.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="bad trailer"):
            BlockReader(npb)

    def test_future_version_refused(self, npb, capture, tmp_path):
        """A reader must refuse schema versions it does not understand
        rather than misread them."""
        raw = npb.read_bytes()
        trailer = struct.Struct("<QQ8s")
        offset, length, magic = trailer.unpack(raw[-trailer.size:])
        index = json.loads(raw[offset:offset + length])
        index["version"] = 999
        body = raw[:offset]
        new_index = json.dumps(index).encode("ascii")
        bumped = tmp_path / "future.npb"
        bumped.write_bytes(
            body + new_index
            + trailer.pack(offset, len(new_index), magic)
        )
        with pytest.raises(TraceFormatError, match="version 999"):
            BlockReader(bumped)


class TestWindowChunking:
    @pytest.mark.parametrize("chunk_windows", [1, 7, 64])
    def test_chunks_match_in_ram_iterator(self, capture, npb, chunk_windows):
        window_us = 2_000_000
        with BlockReader(npb) as reader:
            streamed = list(
                reader.iter_window_chunks(window_us, chunk_windows)
            )
        in_ram = list(
            capture.iter_window_chunks(window_us, chunk_windows)
        )
        assert ColumnTrace.merge(*streamed) == ColumnTrace.merge(*in_ram)

    def test_engine_scan_stream_parity(self, capture, npb, golden_template, ids_config):
        engine = BatchEntropyEngine(golden_template, ids_config)
        reference = engine.scan(capture)
        with BlockReader(npb) as reader:
            streamed = engine.scan_stream(reader, chunk_windows=16)
        assert [w.to_dict() for w in streamed] == [
            w.to_dict() for w in reference
        ]

    def test_engine_scan_block_delegates(self, capture, npb, golden_template, ids_config):
        engine = BatchEntropyEngine(golden_template, ids_config)
        with BlockReader(npb) as reader:
            block = engine.scan_block(reader)
        assert [w.to_dict() for w in block.results()] == [
            w.to_dict() for w in engine.scan(capture)
        ]


class TestDispatch:
    def test_npb_in_default_patterns(self):
        assert "*" + BLOCKS_SUFFIX in DEFAULT_PATTERNS

    def test_archive_enumerates_and_loads(self, capture, tmp_path):
        write_blocks(tmp_path / "a.npb", capture, block_frames=500)
        archive = CaptureArchive(tmp_path)
        assert [p.name for p in archive.paths] == ["a.npb"]
        assert archive.load(0) == capture

    def test_iter_capture_chunks(self, capture, npb):
        chunks = list(iter_capture_chunks(npb, 333))
        assert all(len(c) <= 333 for c in chunks)
        assert ColumnTrace.merge(*chunks) == capture

    def test_archive_write_capture(self, capture, tmp_path):
        archive = CaptureArchive(tmp_path)
        path = archive.write_capture("out.npb", capture)
        assert path.suffix == ".npb"
        assert load_capture_columns(path) == capture

    def test_open_capture_stream(self, capture, npb):
        source = open_capture_stream(npb)
        assert isinstance(source, BlockReader)
        source.close()

    def test_container_beats_uncompressed_npz_on_disk(
        self, capture, npb, tmp_path
    ):
        npz = tmp_path / "drive.npz"
        capture.save_npz(npz)
        assert npb.stat().st_size < npz.stat().st_size


class TestRuntimeSpec:
    def test_entropy_scan_spec_scans_npb(
        self, capture, npb, golden_template, ids_config
    ):
        from repro.runtime.base import EntropyScanSpec

        spec = EntropyScanSpec(
            template=golden_template,
            config=ids_config,
            chunk_windows=16,
        )
        scanner = spec.make_scanner()
        windows = scanner(str(npb))
        engine = BatchEntropyEngine(golden_template, ids_config)
        assert [w.to_dict() for w in windows] == [
            w.to_dict() for w in engine.scan(capture)
        ]

"""The fleet store: per-vehicle captures, templates and ledgers on disk.

The paper trains one golden template per vehicle and monitors that
vehicle for months.  :class:`FleetStore` is the on-disk layout that
makes this a managed system instead of a pile of loose files::

    <root>/
      vehicles/
        <vehicle-id>/
          captures/            # a CaptureArchive directory
            2026-01-03.log
            2026-01-04.log.gz
          template.json        # the vehicle's golden template
          templates/           # per-bus templates (multibus vehicles)
            bus-high_speed.json
            bus-middle_speed.json
          ledger.json          # the vehicle's scan ledger

Every template write goes through
:func:`repro.fleet.ledger.atomic_write_text`, so a crashed run never
leaves a half-written template (same guarantee the ledger has).
Per-bus template files store the bus label *inside* the payload, so
labels never need filename-safe escaping to round-trip.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.template import GoldenTemplate
from repro.exceptions import TemplateError, TraceFormatError
from repro.fleet.ledger import atomic_write_text
from repro.io.archive import DEFAULT_PATTERNS, CaptureArchive

__all__ = ["FleetStore"]

#: Vehicle identifiers are path components; keep them filename-safe.
_VEHICLE_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Filename-safe rendering of a bus label (the real label lives in the
#: file payload; this only needs to be unique per distinct label).
_BUS_FILE_RE = re.compile(r"[^A-Za-z0-9._-]")


def _check_vehicle_id(vehicle_id: str) -> str:
    if not _VEHICLE_ID_RE.match(vehicle_id):
        raise TraceFormatError(
            f"invalid vehicle id {vehicle_id!r}; use letters, digits, "
            f"'.', '_' or '-' (must not start with a separator)"
        )
    return vehicle_id


class FleetStore:
    """A directory of per-vehicle capture archives, templates, ledgers.

    Parameters
    ----------
    root:
        The store root.  Construction is side-effect-free — directories
        appear on the first *write* (``add_vehicle``/``add_capture``/
        ``save_template``), so read-only commands (``fleet status``,
        scans of a typo'd path) never materialise an empty store.
    patterns, recursive:
        Forwarded to each vehicle's :class:`CaptureArchive`.
    """

    def __init__(
        self,
        root: Union[str, Path],
        patterns: Sequence[str] = DEFAULT_PATTERNS,
        recursive: bool = False,
    ) -> None:
        self.root = Path(root)
        self.patterns = tuple(patterns)
        self.recursive = recursive
        self._vehicles_dir = self.root / "vehicles"

    # ------------------------------------------------------------------
    # Vehicles
    # ------------------------------------------------------------------
    def vehicle_dir(self, vehicle_id: str) -> Path:
        """The vehicle's directory (not necessarily existing yet)."""
        return self._vehicles_dir / _check_vehicle_id(vehicle_id)

    def add_vehicle(self, vehicle_id: str) -> Path:
        """Create a vehicle's directory tree (idempotent)."""
        directory = self.vehicle_dir(vehicle_id)
        (directory / "captures").mkdir(parents=True, exist_ok=True)
        return directory

    def has_vehicle(self, vehicle_id: str) -> bool:
        """True when the vehicle exists in the store."""
        return self.vehicle_dir(vehicle_id).is_dir()

    def vehicles(self) -> List[str]:
        """All vehicle ids, sorted (deterministic fleet iteration)."""
        if not self._vehicles_dir.is_dir():
            return []
        return sorted(
            p.name for p in self._vehicles_dir.iterdir() if p.is_dir()
        )

    def __len__(self) -> int:
        return len(self.vehicles())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FleetStore({str(self.root)!r}, {len(self)} vehicles)"

    # ------------------------------------------------------------------
    # Captures
    # ------------------------------------------------------------------
    def captures_dir(self, vehicle_id: str) -> Path:
        """The vehicle's capture archive directory (no side effects)."""
        return self.vehicle_dir(vehicle_id) / "captures"

    def archive(self, vehicle_id: str) -> CaptureArchive:
        """A fresh snapshot of the vehicle's capture archive."""
        directory = self.captures_dir(vehicle_id)
        if not directory.is_dir():
            if not self.has_vehicle(vehicle_id):
                raise TraceFormatError(
                    f"vehicle {vehicle_id!r} does not exist in the store"
                )
            # Vehicle directory made by hand without captures/: repair
            # (benign — the vehicle itself was an explicit write).
            directory.mkdir(parents=True, exist_ok=True)
        return CaptureArchive(
            directory, patterns=self.patterns, recursive=self.recursive
        )

    def add_capture(
        self,
        vehicle_id: str,
        name: str,
        trace,
        fmt: Optional[str] = None,
        overwrite: bool = False,
    ) -> Path:
        """Write one capture into the vehicle's archive; returns its path.

        The store is the *persistent* home of a vehicle's history, so a
        name collision refuses rather than silently destroying the old
        capture; pass ``overwrite=True`` to replace deliberately (the
        ledger's content fingerprint then forces a re-scan).
        """
        self.add_vehicle(vehicle_id)
        target = self.captures_dir(vehicle_id) / name
        if target.exists() and not overwrite:
            raise TraceFormatError(
                f"vehicle {vehicle_id!r} already stores a capture named "
                f"{name!r}; pass overwrite=True to replace it"
            )
        return self.archive(vehicle_id).write_capture(name, trace, fmt=fmt)

    # ------------------------------------------------------------------
    # Templates
    # ------------------------------------------------------------------
    def template_path(self, vehicle_id: str) -> Path:
        """Where the vehicle's golden template lives."""
        return self.vehicle_dir(vehicle_id) / "template.json"

    def has_template(self, vehicle_id: str) -> bool:
        """True when the vehicle has a persisted golden template."""
        return self.template_path(vehicle_id).is_file()

    def save_template(
        self,
        vehicle_id: str,
        template: GoldenTemplate,
        window_us: Optional[int] = None,
    ) -> Path:
        """Persist the vehicle's golden template (atomic write).

        ``window_us`` records the detection window the template was
        trained with — a template only judges correctly at its training
        window, so scan commands read it back
        (:meth:`template_window_us`) and refuse a mismatch.  The key
        rides inside ``template.json`` (``GoldenTemplate.from_dict``
        ignores extra keys, so the file stays loadable as a plain
        template).
        """
        self.add_vehicle(vehicle_id)
        path = self.template_path(vehicle_id)
        payload = template.to_dict()
        if window_us is not None:
            payload["window_us"] = int(window_us)
        atomic_write_text(path, json.dumps(payload, indent=2))
        return path

    def load_template(self, vehicle_id: str) -> GoldenTemplate:
        """Load the vehicle's golden template.

        Raises :class:`TemplateError` whether the template is missing
        *or* corrupt — callers get one diagnosable exception type
        instead of raw JSON tracebacks from a torn file.
        """
        path = self.template_path(vehicle_id)
        if not path.is_file():
            raise TemplateError(
                f"vehicle {vehicle_id!r} has no stored template ({path})"
            )
        try:
            return GoldenTemplate.load(path)
        except (ValueError, TypeError, KeyError, AttributeError) as exc:
            raise TemplateError(
                f"vehicle {vehicle_id!r} template file {path} is corrupt: {exc}"
            ) from exc

    def template_window_us(self, vehicle_id: str) -> Optional[int]:
        """The window the vehicle's template was trained with, if recorded.

        Raises :class:`TemplateError` on a corrupt file (same contract
        as :meth:`load_template`).
        """
        path = self.template_path(vehicle_id)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="ascii"))
            if not isinstance(payload, dict):
                raise ValueError("template root is not an object")
        except ValueError as exc:
            raise TemplateError(
                f"vehicle {vehicle_id!r} template file {path} is corrupt: {exc}"
            ) from exc
        window = payload.get("window_us")
        return None if window is None else int(window)

    # ------------------------------------------------------------------
    # Per-bus templates (multibus vehicles)
    # ------------------------------------------------------------------
    def _bus_templates_dir(self, vehicle_id: str) -> Path:
        return self.vehicle_dir(vehicle_id) / "templates"

    def save_bus_templates(
        self, vehicle_id: str, templates: Mapping[str, GoldenTemplate]
    ) -> Dict[str, Path]:
        """Persist one template file per (vehicle, bus), atomically.

        This is the persistence half of the multibus flow: train with
        :func:`repro.vehicle.multibus.build_bus_templates` (or take the
        ``templates`` mapping off a
        :class:`~repro.core.pipeline.MultiBusReport`), save here, and
        feed :meth:`load_bus_templates` to
        :meth:`IDSPipeline.analyze_multibus` on the next capture —
        no hand-training per bus.
        """
        self.add_vehicle(vehicle_id)
        directory = self._bus_templates_dir(vehicle_id)
        directory.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, Path] = {}
        for label, template in templates.items():
            safe = _BUS_FILE_RE.sub("_", label) or "_"
            path = directory / f"bus-{safe}.json"
            payload = {"bus": label, "template": template.to_dict()}
            atomic_write_text(path, json.dumps(payload, indent=2))
            paths[label] = path
        return paths

    def bus_template_files(self, vehicle_id: str) -> List[Path]:
        """The stored per-bus template files (no parsing).

        The cheap existence/count probe ``fleet status`` uses — it must
        not crash on (or pay for deserialising) a corrupt file the way
        :meth:`load_bus_templates` legitimately would.
        """
        directory = self._bus_templates_dir(vehicle_id)
        if not directory.is_dir():
            return []
        return sorted(directory.glob("bus-*.json"))

    def load_bus_templates(self, vehicle_id: str) -> Dict[str, GoldenTemplate]:
        """Load every stored (vehicle, bus) template as a label mapping."""
        templates: Dict[str, GoldenTemplate] = {}
        for path in self.bus_template_files(vehicle_id):
            payload = json.loads(path.read_text(encoding="ascii"))
            templates[payload["bus"]] = GoldenTemplate.from_dict(
                payload["template"]
            )
        return templates

    # ------------------------------------------------------------------
    # Ledger
    # ------------------------------------------------------------------
    def ledger_path(self, vehicle_id: str) -> Path:
        """Where the vehicle's scan ledger lives."""
        return self.vehicle_dir(vehicle_id) / "ledger.json"

    def compact_ledgers(self) -> Dict[str, int]:
        """Compact every vehicle's ledger against its current archive.

        The shared maintenance pass behind ``repro-ids fleet prune`` and
        each watch-daemon cycle: entries whose capture files left the
        archive are dropped (:meth:`ScanLedger.compact` — loaded in
        context-adoption mode, so unknown detection contexts are never
        wiped).  Returns pruned-entry counts per vehicle that had a
        ledger.
        """
        from repro.fleet.ledger import ScanLedger  # cycle-free import

        pruned: Dict[str, int] = {}
        for vehicle_id in self.vehicles():
            path = self.ledger_path(vehicle_id)
            if not path.is_file():
                continue
            ledger = ScanLedger(path, context=None)
            pruned[vehicle_id] = ledger.compact(self.archive(vehicle_id))
        return pruned

    # ------------------------------------------------------------------
    # Retrain event log
    # ------------------------------------------------------------------
    def retrain_log_path(self, vehicle_id: str) -> Path:
        """Where the vehicle's retrain event log lives (JSON lines)."""
        return self.vehicle_dir(vehicle_id) / "retrain-log.jsonl"

    def append_retrain_event(self, vehicle_id: str, event: Mapping) -> Path:
        """Record one re-baselining of a vehicle's golden template.

        The log is append-only JSON lines — every re-baseline in a
        vehicle's life stays auditable (when, why, from which captures,
        replacing which template).  A line is one self-contained event,
        so a torn final line (crash mid-append) costs that event only;
        :meth:`retrain_events` skips it.
        """
        self.add_vehicle(vehicle_id)
        path = self.retrain_log_path(vehicle_id)
        with path.open("a", encoding="ascii") as handle:
            handle.write(json.dumps(dict(event), sort_keys=True) + "\n")
        return path

    def retrain_events(self, vehicle_id: str) -> List[dict]:
        """The vehicle's retrain events, oldest first (torn lines skipped)."""
        path = self.retrain_log_path(vehicle_id)
        if not path.is_file():
            return []
        events: List[dict] = []
        for line in path.read_text(encoding="ascii").splitlines():
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn/foreign line: skip, keep the rest
            if isinstance(event, dict):
                events.append(event)
        return events

"""The block-compressed columnar container (``.npb``).

Chunked per-column zlib compression with a JSON block index: captures
round-trip losslessly, stream back one inflated block at a time, scan
bit-identically to the in-RAM engine paths, and dispatch through the
archive/runtime layers by suffix like any other capture format.
"""

import json
import struct
from pathlib import Path

import numpy as np
import pytest

from repro.core import BatchEntropyEngine
from repro.exceptions import TraceFormatError
from repro.io import (
    BlockReader,
    BlockWriter,
    CaptureArchive,
    DecodedBlockCache,
    load_capture_columns,
    open_capture_stream,
    write_blocks,
)
from repro.io.archive import DEFAULT_PATTERNS, iter_capture_chunks
from repro.io.blocks import BLOCKS_SUFFIX
from repro.io.columnar import ColumnTrace
from repro.vehicle.traffic import generate_drive_columns

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def capture(catalog):
    """A payload-bearing drive capture with interned source tables."""
    return generate_drive_columns(
        3.0, scenario="city", seed=41, catalog=catalog
    )


@pytest.fixture()
def npb(capture, tmp_path):
    path = tmp_path / "drive.npb"
    write_blocks(path, capture, block_frames=1000)
    return path


class TestRoundTrip:
    def test_lossless(self, capture, npb):
        with BlockReader(npb) as reader:
            assert len(reader) == len(capture)
            assert reader.to_columns() == capture

    def test_blocks_are_frame_aligned(self, capture, npb):
        with BlockReader(npb) as reader:
            blocks = list(reader.iter_blocks())
        assert all(len(b) == 1000 for b in blocks[:-1])
        assert sum(len(b) for b in blocks) == len(capture)
        assert ColumnTrace.merge(*blocks) == capture

    def test_streamed_appends_match_single_write(self, capture, tmp_path):
        """Odd-sized appends land in the same exact-size blocks."""
        whole = tmp_path / "whole.npb"
        write_blocks(whole, capture, block_frames=777)
        appended = tmp_path / "appended.npb"
        with BlockWriter(appended, block_frames=777) as writer:
            for lo in range(0, len(capture), 313):
                writer.append(capture.slice(lo, lo + 313))
        assert (
            load_capture_columns(appended) == load_capture_columns(whole)
        )
        assert appended.read_bytes() == whole.read_bytes()

    def test_empty_capture(self, tmp_path):
        path = tmp_path / "empty.npb"
        empty = ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
        write_blocks(path, empty)
        with BlockReader(path) as reader:
            assert len(reader) == 0
            assert reader.to_columns() == empty
            assert list(reader.iter_window_chunks(2_000_000, 8)) == []

    def test_out_of_order_appends_rejected(self, capture, tmp_path):
        with BlockWriter(tmp_path / "o.npb") as writer:
            writer.append(capture.slice(100, 200))
            with pytest.raises(TraceFormatError, match="time-ordered"):
                writer.append(capture.slice(0, 100))

    def test_writer_validates_parameters(self, tmp_path):
        with pytest.raises(TraceFormatError, match="positive"):
            BlockWriter(tmp_path / "b.npb", block_frames=0)
        with pytest.raises(TraceFormatError, match="level"):
            BlockWriter(tmp_path / "b.npb", level=99)


class TestFormatGates:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.npb"
        path.write_bytes(b"NOTABLOCKFILE" + b"\0" * 64)
        with pytest.raises(TraceFormatError, match="bad magic"):
            BlockReader(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "short.npb"
        path.write_bytes(b"REPRO")
        with pytest.raises(TraceFormatError, match="truncated"):
            BlockReader(path)

    def test_corrupt_trailer(self, npb):
        data = bytearray(npb.read_bytes())
        data[-8:] = b"XXXXXXXX"  # trailer magic
        npb.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="bad trailer"):
            BlockReader(npb)

    def test_future_version_refused(self, npb, capture, tmp_path):
        """A reader must refuse schema versions it does not understand
        rather than misread them."""
        raw = npb.read_bytes()
        trailer = struct.Struct("<QQ8s")
        offset, length, magic = trailer.unpack(raw[-trailer.size:])
        index = json.loads(raw[offset:offset + length])
        index["version"] = 999
        body = raw[:offset]
        new_index = json.dumps(index).encode("ascii")
        bumped = tmp_path / "future.npb"
        bumped.write_bytes(
            body + new_index
            + trailer.pack(offset, len(new_index), magic)
        )
        with pytest.raises(TraceFormatError, match="version 999"):
            BlockReader(bumped)


def _payload_trace(dlcs, seed=0, id_pool=(0x1A4, 0x2C0, 0x7DF)):
    """A hand-built payload-bearing trace with the given DLC sequence."""
    rng = np.random.default_rng(seed)
    dlcs = np.asarray(dlcs, dtype=np.int64)
    n = dlcs.size
    ts = np.cumsum(rng.integers(100, 900, n)).astype(np.int64)
    ids = rng.choice(np.array(id_pool, dtype=np.int64), size=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(dlcs, out=offsets[1:])
    payload = rng.integers(0, 256, int(offsets[-1])).astype(np.uint8)
    return ColumnTrace(ts, ids, payload=payload, payload_offsets=offsets)


def _rewrite_index(path, mutate):
    """Apply ``mutate(index)`` to the JSON index and re-pack the file."""
    raw = path.read_bytes()
    trailer = struct.Struct("<QQ8s")
    offset, length, magic = trailer.unpack(raw[-trailer.size:])
    index = json.loads(raw[offset:offset + length])
    mutate(index)
    new_index = json.dumps(index, separators=(",", ":")).encode("utf-8")
    path.write_bytes(
        raw[:offset] + new_index + trailer.pack(offset, len(new_index), magic)
    )


class TestCodecPipeline:
    """Format v2: per-column filters selected on the first block."""

    def test_selection_recorded_in_index(self, capture, npb):
        with BlockReader(npb) as reader:
            assert reader.version == 2
            assert reader.codecs["timestamp_us"] == "delta"
            assert reader.codecs["can_id"] == "dict"
            assert reader.codecs["payload_offsets"] == "delta"
            assert set(reader.codecs) == {
                "timestamp_us", "can_id", "payload", "payload_offsets",
                "extended", "is_attack", "source_code", "bus_code",
            }

    def test_v2_not_larger_than_v1(self, capture, tmp_path):
        """The raw escape hatch guarantees v2 never loses to v1."""
        v1 = tmp_path / "v1.npb"
        v2 = tmp_path / "v2.npb"
        write_blocks(v1, capture, block_frames=2000, version=1)
        write_blocks(v2, capture, block_frames=2000)
        assert v2.stat().st_size <= v1.stat().st_size

    def test_v1_writer_roundtrip(self, capture, tmp_path):
        path = tmp_path / "legacy.npb"
        write_blocks(path, capture, block_frames=1000, version=1)
        with BlockReader(path) as reader:
            assert reader.version == 1
            assert reader.codecs == {}
            assert reader.to_columns() == capture

    def test_codec_override(self, capture, tmp_path):
        path = tmp_path / "forced.npb"
        write_blocks(
            path, capture, block_frames=1000,
            codecs={"timestamp_us": "shuffle", "can_id": "raw"},
        )
        with BlockReader(path) as reader:
            assert reader.codecs["timestamp_us"] == "shuffle"
            assert reader.codecs["can_id"] == "raw"
            assert reader.to_columns() == capture

    def test_bad_override_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="unknown column"):
            BlockWriter(tmp_path / "x.npb", codecs={"nope": "raw"})
        with pytest.raises(TraceFormatError, match="unknown codec"):
            BlockWriter(tmp_path / "x.npb", codecs={"can_id": "zstd"})
        with pytest.raises(TraceFormatError, match="version 2"):
            BlockWriter(
                tmp_path / "x.npb", codecs={"can_id": "raw"}, version=1
            )

    def test_unwritable_version_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="version 7"):
            BlockWriter(tmp_path / "x.npb", version=7)

    def test_per_block_raw_fallback(self, tmp_path):
        """A ragged-DLC block under the payload transpose records raw
        for that block only — and still round-trips."""
        uniform = [8] * 4
        ragged = [8, 3, 8, 5]
        trace = _payload_trace(uniform + ragged)
        path = tmp_path / "ragged.npb"
        write_blocks(
            path, trace, block_frames=4, codecs={"payload": "shuffle"}
        )
        with BlockReader(path) as reader:
            assert reader.codecs["payload"] == "shuffle"
            assert reader.blocks[0]["columns"]["payload"]["codec"] == "shuffle"
            assert reader.blocks[1]["columns"]["payload"]["codec"] == "raw"
            assert reader.to_columns() == trace

    def test_selection_prefers_raw_when_filters_do_not_pay(self, tmp_path):
        """Incompressible ragged payloads: shuffle is unsuitable on the
        selection block, so the column-wide winner is raw."""
        trace = _payload_trace([8, 3, 5, 2, 8, 1, 4, 6] * 8, seed=3)
        path = tmp_path / "noise.npb"
        write_blocks(path, trace, block_frames=16)
        with BlockReader(path) as reader:
            assert reader.codecs["payload"] == "raw"
            assert reader.to_columns() == trace

    def test_flush_is_a_block_boundary(self, capture, tmp_path):
        """Batch converts flush between captures: no block straddles
        two captures, and every capture restarts on a fresh block."""
        path = tmp_path / "batch.npb"
        first = capture.slice(0, 1500)
        second = capture.slice(1500, len(capture))
        with BlockWriter(path, block_frames=1000) as writer:
            writer.append(first)
            writer.flush()
            writer.append(second)
        with BlockReader(path) as reader:
            rows = [int(b["rows"]) for b in reader.blocks]
            # The flush drains the 500-frame tail of the first capture
            # as its own short block; the second capture starts fresh.
            tail = len(second) % 1000 or 1000
            assert rows == [1000, 500] + [1000] * (len(second) // 1000) + (
                [tail] if len(second) % 1000 else []
            )
            assert reader.to_columns() == ColumnTrace.merge(first, second)

    def test_describe_totals(self, capture, npb):
        with BlockReader(npb, cache=False) as reader:
            info = reader.describe()
        assert info["version"] == 2
        assert info["n_frames"] == len(capture)
        assert info["file_bytes"] == npb.stat().st_size
        assert info["ratio"] > 1.0
        ts = info["columns"]["timestamp_us"]
        assert ts["codec"] == "delta"
        assert sum(ts["codecs_used"].values()) == info["blocks"]
        assert ts["raw_bytes"] == len(capture) * 8


class TestCorruption:
    """Damage is always a diagnosed TraceFormatError, never garbage."""

    def test_bit_flip_in_block_body(self, npb):
        with BlockReader(npb, cache=False) as reader:
            entry = reader.blocks[0]["columns"]["timestamp_us"]
            offset = int(entry["off"]) + int(entry["csize"]) // 2
        data = bytearray(npb.read_bytes())
        data[offset] ^= 0x40
        npb.write_bytes(bytes(data))
        with BlockReader(npb, cache=False) as reader:
            with pytest.raises(
                TraceFormatError, match="corrupt|checksum|malformed"
            ):
                reader.read_block(0)

    def test_truncated_block_stream(self, npb):
        """An index that points past EOF (torn write) is truncation."""
        _rewrite_index(
            npb,
            lambda ix: ix["blocks"][0]["columns"]["timestamp_us"].update(
                off=10 ** 9
            ),
        )
        with BlockReader(npb, cache=False) as reader:
            with pytest.raises(TraceFormatError, match="truncated"):
                reader.read_block(0)

    def test_unknown_codec_tag(self, npb):
        _rewrite_index(
            npb,
            lambda ix: ix["blocks"][0]["columns"]["can_id"].update(
                codec="zstd"
            ),
        )
        with BlockReader(npb, cache=False) as reader:
            with pytest.raises(TraceFormatError, match="unknown.*codec"):
                reader.read_block(0)

    def test_tampered_meta_is_decode_failure(self, npb):
        """Inconsistent codec metadata (CRC still valid) must surface
        as a decode failure, not wrong values."""
        _rewrite_index(
            npb,
            lambda ix: ix["blocks"][0]["columns"]["can_id"]["meta"].update(
                nvals=0
            ),
        )
        with BlockReader(npb, cache=False) as reader:
            with pytest.raises(
                TraceFormatError, match="failed to decode|decoded to"
            ):
                reader.read_block(0)

    def test_malformed_v2_entry(self, npb):
        _rewrite_index(
            npb,
            lambda ix: ix["blocks"][0]["columns"].update(can_id={"off": 8}),
        )
        with BlockReader(npb, cache=False) as reader:
            with pytest.raises(TraceFormatError, match="malformed"):
                reader.read_block(0)


class TestDecodedBlockCache:
    def test_warm_reread_hits(self, capture, npb):
        cache = DecodedBlockCache(max_bytes=1 << 26)
        with BlockReader(npb, cache=cache) as reader:
            cold = reader.to_columns()
        assert cache.stats()["hits"] == 0
        with BlockReader(npb, cache=cache) as reader:
            warm = reader.to_columns()
        stats = cache.stats()
        assert stats["misses"] > 0
        assert stats["hits"] == stats["misses"]  # full warm pass
        assert warm == cold == capture

    def test_cached_arrays_are_read_only(self, npb):
        cache = DecodedBlockCache(max_bytes=1 << 26)
        with BlockReader(npb, cache=cache) as reader:
            block = reader.read_block(0)
        with pytest.raises(ValueError):
            block.timestamp_us[0] = 0

    def test_eviction_respects_budget(self, npb):
        cache = DecodedBlockCache(max_bytes=4096)
        with BlockReader(npb, cache=cache) as reader:
            reader.to_columns()
        assert cache.nbytes <= 4096

    def test_rewritten_file_invalidates(self, capture, tmp_path):
        """The stat fingerprint keys the cache: replacing the capture
        on disk must never serve the old blocks."""
        path = tmp_path / "swap.npb"
        cache = DecodedBlockCache(max_bytes=1 << 26)
        write_blocks(path, capture.slice(0, 500), block_frames=250)
        with BlockReader(path, cache=cache) as reader:
            first = reader.to_columns()
        write_blocks(path, capture.slice(500, 1000), block_frames=250)
        with BlockReader(path, cache=cache) as reader:
            second = reader.to_columns()
        assert first == capture.slice(0, 500)
        assert second == capture.slice(500, 1000)

    def test_cache_false_disables(self, npb):
        from repro.io.blockcache import default_cache

        default_cache().clear()
        with BlockReader(npb, cache=False) as reader:
            reader.to_columns()
        assert len(default_cache()) == 0

    def test_default_cache_used_when_unset(self, npb):
        from repro.io.blockcache import default_cache

        default_cache().clear()
        try:
            with BlockReader(npb) as reader:
                reader.to_columns()
            assert len(default_cache()) > 0
        finally:
            default_cache().clear()

    def test_scan_parity_cold_vs_warm(
        self, capture, npb, golden_template, ids_config
    ):
        engine = BatchEntropyEngine(golden_template, ids_config)
        cache = DecodedBlockCache(max_bytes=1 << 26)
        with BlockReader(npb, cache=cache) as reader:
            cold = engine.scan_stream(reader, chunk_windows=16)
        with BlockReader(npb, cache=cache) as reader:
            warm = engine.scan_stream(reader, chunk_windows=16)
        assert cache.stats()["hits"] > 0
        assert [w.to_dict() for w in warm] == [w.to_dict() for w in cold]


class TestV1Compatibility:
    """v1 files must stay readable forever.

    ``tests/fixtures/tiny_v1.npb`` is a checked-in v1 container built
    from the literal trace below (``scripts`` in its header comment);
    if this test breaks, the reader lost v1 compatibility.
    """

    def test_checked_in_v1_fixture_reads(self):
        fixture = FIXTURES / "tiny_v1.npb"
        with BlockReader(fixture, cache=False) as reader:
            assert reader.version == 1
            assert reader.codecs == {}
            assert reader.to_columns() == _tiny_v1_trace()

    def test_v1_fixture_streams(self, golden_template, ids_config):
        fixture = FIXTURES / "tiny_v1.npb"
        engine = BatchEntropyEngine(golden_template, ids_config)
        with BlockReader(fixture, cache=False) as reader:
            streamed = engine.scan_stream(reader, chunk_windows=4)
        assert [w.to_dict() for w in streamed] == [
            w.to_dict() for w in engine.scan(_tiny_v1_trace())
        ]


def _tiny_v1_trace():
    """The exact contents of ``tests/fixtures/tiny_v1.npb``."""
    return _payload_trace([8, 8, 8, 4, 8, 0, 8, 2, 8, 8, 8, 8], seed=99)


class TestWindowChunking:
    @pytest.mark.parametrize("chunk_windows", [1, 7, 64])
    def test_chunks_match_in_ram_iterator(self, capture, npb, chunk_windows):
        window_us = 2_000_000
        with BlockReader(npb) as reader:
            streamed = list(
                reader.iter_window_chunks(window_us, chunk_windows)
            )
        in_ram = list(
            capture.iter_window_chunks(window_us, chunk_windows)
        )
        assert ColumnTrace.merge(*streamed) == ColumnTrace.merge(*in_ram)

    def test_engine_scan_stream_parity(self, capture, npb, golden_template, ids_config):
        engine = BatchEntropyEngine(golden_template, ids_config)
        reference = engine.scan(capture)
        with BlockReader(npb) as reader:
            streamed = engine.scan_stream(reader, chunk_windows=16)
        assert [w.to_dict() for w in streamed] == [
            w.to_dict() for w in reference
        ]

    def test_engine_scan_block_delegates(self, capture, npb, golden_template, ids_config):
        engine = BatchEntropyEngine(golden_template, ids_config)
        with BlockReader(npb) as reader:
            block = engine.scan_block(reader)
        assert [w.to_dict() for w in block.results()] == [
            w.to_dict() for w in engine.scan(capture)
        ]


class TestDispatch:
    def test_npb_in_default_patterns(self):
        assert "*" + BLOCKS_SUFFIX in DEFAULT_PATTERNS

    def test_archive_enumerates_and_loads(self, capture, tmp_path):
        write_blocks(tmp_path / "a.npb", capture, block_frames=500)
        archive = CaptureArchive(tmp_path)
        assert [p.name for p in archive.paths] == ["a.npb"]
        assert archive.load(0) == capture

    def test_iter_capture_chunks(self, capture, npb):
        chunks = list(iter_capture_chunks(npb, 333))
        assert all(len(c) <= 333 for c in chunks)
        assert ColumnTrace.merge(*chunks) == capture

    def test_archive_write_capture(self, capture, tmp_path):
        archive = CaptureArchive(tmp_path)
        path = archive.write_capture("out.npb", capture)
        assert path.suffix == ".npb"
        assert load_capture_columns(path) == capture

    def test_open_capture_stream(self, capture, npb):
        source = open_capture_stream(npb)
        assert isinstance(source, BlockReader)
        source.close()

    def test_container_beats_uncompressed_npz_on_disk(
        self, capture, npb, tmp_path
    ):
        npz = tmp_path / "drive.npz"
        capture.save_npz(npz)
        assert npb.stat().st_size < npz.stat().st_size


class TestRuntimeSpec:
    def test_entropy_scan_spec_scans_npb(
        self, capture, npb, golden_template, ids_config
    ):
        from repro.runtime.base import EntropyScanSpec

        spec = EntropyScanSpec(
            template=golden_template,
            config=ids_config,
            chunk_windows=16,
        )
        scanner = spec.make_scanner()
        windows = scanner(str(npb))
        engine = BatchEntropyEngine(golden_template, ids_config)
        assert [w.to_dict() for w in windows] == [
            w.to_dict() for w in engine.scan(capture)
        ]

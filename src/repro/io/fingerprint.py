"""Content fingerprints for capture files.

The fleet layer's scan ledger (:mod:`repro.fleet.ledger`) keys cached
scan results by *what was scanned*, not just the file name: a capture
that is appended to, truncated or replaced must re-scan even though its
path is unchanged.  A fingerprint is a compact string combining the file
size with a BLAKE2b content digest, so collisions are out of the
question at fleet scale while fingerprinting stays IO-bound (one
sequential read, no parsing).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Union

__all__ = ["fingerprint_bytes", "fingerprint_file"]

#: Digest size in bytes; 16 (128 bits) is far beyond fleet-scale needs.
_DIGEST_SIZE = 16

#: Read granularity for the streaming file hash.
_CHUNK_BYTES = 1 << 20


def fingerprint_bytes(data: bytes) -> str:
    """Fingerprint an in-memory byte string (``blake2b:<hex>:<size>``)."""
    digest = hashlib.blake2b(data, digest_size=_DIGEST_SIZE).hexdigest()
    return f"blake2b:{digest}:{len(data)}"


def fingerprint_file(path: Union[str, Path]) -> str:
    """Fingerprint a file's content without loading it whole.

    Reads sequentially in bounded chunks, so fingerprinting an archive
    never needs more memory than one chunk regardless of capture size.
    The result matches :func:`fingerprint_bytes` of the file's content.
    """
    hasher = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    size = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK_BYTES)
            if not chunk:
                break
            hasher.update(chunk)
            size += len(chunk)
    return f"blake2b:{hasher.hexdigest()}:{size}"

"""repro — bit-entropy intrusion detection for the Controller Area Network.

This package is a from-scratch reproduction of

    Qian Wang, Zhaojun Lu, and Gang Qu,
    "An Entropy Analysis based Intrusion Detection System for Controller
    Area Network in Vehicles", IEEE SOCC 2018.

It contains everything needed to regenerate the paper's evaluation on a
laptop, with no vehicle hardware:

``repro.can``
    A bit-accurate, event-driven CAN bus simulator: frames, bitwise
    dominant-0 arbitration, bit stuffing, frame timing, retransmission,
    error counters, the transceiver zero-overload guard and a gateway
    whitelist filter.

``repro.vehicle``
    A synthetic vehicle traffic model shaped after the paper's 2016 Ford
    Fusion test car: 223 active 11-bit identifiers, realistic period
    classes and driving-scenario modifiers.

``repro.attacks``
    The paper's four adversary scenarios (flooding, single-ID, multi-ID
    and weak-model injection) plus replay/masquerade extensions.

``repro.core``
    The paper's contribution: per-bit binary-entropy monitoring with a
    golden template, alpha-scaled thresholds, alerting and malicious-ID
    inference via rank selection.

``repro.baselines``
    The comparison systems discussed in the paper: the Muter & Asaj
    ID-distribution entropy IDS, the Song et al. message-interval IDS, a
    simplified clock-skew IDS and a naive frequency monitor.

``repro.runtime``
    Pluggable execution backends for archive-scale scans: serial,
    process pool, and a filesystem work queue served by ``repro-ids
    worker`` processes on any host sharing the directory.

``repro.fleet``
    Persistent fleet monitoring: per-vehicle stores and scan ledgers,
    incremental watch scans, the long-running watch daemon, CUSUM
    entropy-drift analytics and drift-triggered retraining.

``repro.experiments``
    One runner per table/figure in the paper's evaluation section.

Quickstart::

    from repro import quick_demo
    report = quick_demo(seed=7)
    print(report.summary())
"""

from repro._version import __version__
from repro.core import (
    BitCounter,
    EntropyDetector,
    GoldenTemplate,
    IDSConfig,
    IDSPipeline,
    InferenceEngine,
    TemplateBuilder,
    binary_entropy,
)
from repro.demo import quick_demo

__all__ = [
    "__version__",
    "BitCounter",
    "EntropyDetector",
    "GoldenTemplate",
    "IDSConfig",
    "IDSPipeline",
    "InferenceEngine",
    "TemplateBuilder",
    "binary_entropy",
    "quick_demo",
]

"""Evaluation metrics.

The paper's two headline metrics live in :mod:`repro.metrics.rates`
(injection rate ``Ir``, detection rate ``Dr``, inference hit rate); the
usual confusion-matrix derivations in :mod:`repro.metrics.confusion`;
detection latency in :mod:`repro.metrics.latency`; and the Section-V.E
cost model (memory slots, work per message) in
:mod:`repro.metrics.cost`.
"""

from repro.metrics.confusion import ConfusionMatrix, window_confusion
from repro.metrics.cost import CostModel, bitslice_cost, compare_costs
from repro.metrics.latency import detection_latency_us
from repro.metrics.rates import detection_rate, hit_rate, injection_rate

__all__ = [
    "ConfusionMatrix",
    "CostModel",
    "bitslice_cost",
    "compare_costs",
    "detection_latency_us",
    "detection_rate",
    "hit_rate",
    "injection_rate",
    "window_confusion",
]

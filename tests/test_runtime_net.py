"""The TCP scan fabric: coordinator, network workers, crash recovery.

The headline acceptance test lives at the bottom: a real coordinator,
two ``repro-ids worker --connect`` *subprocesses*, and a SIGKILL of a
worker mid-scan — the dead worker's tasks must be re-posted and the
final report must still be bit-identical to a serial scan.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import IDSPipeline
from repro.exceptions import DetectorError
from repro.io import CaptureArchive
from repro.runtime import NetExecutor, ServerThread, run_net_worker
from repro.runtime.net import _Connection, parse_address
from repro.vehicle.traffic import simulate_drive

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def archive_dir(tmp_path_factory, catalog):
    """Six captures: enough runway to kill a worker mid-scan."""
    directory = tmp_path_factory.mktemp("net-archive")
    archive = CaptureArchive(directory)
    for i in range(6):
        archive.write_capture(
            f"cap{i}.log", simulate_drive(6.0, seed=90 + i, catalog=catalog)
        )
    return directory


@pytest.fixture()
def pipeline(golden_template, ids_config, catalog):
    return IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)


@pytest.fixture(scope="module")
def reference(golden_template, ids_config, catalog, archive_dir):
    pipeline = IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)
    return pipeline.analyze_archive(archive_dir, workers=1).to_dict()


def wait_until(predicate, timeout_s=30.0, poll_s=0.002):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return False


class TestAddressParsing:
    def test_host_port_split(self):
        assert parse_address("10.0.0.7:7341") == ("10.0.0.7", 7341)

    def test_bad_addresses_rejected(self):
        for bad in ("7341", "host:", "host:web", ":7341"):
            with pytest.raises(DetectorError):
                parse_address(bad)


class TestCoordinator:
    def test_refused_connection_is_a_clean_error(
        self, golden_template, ids_config, archive_dir
    ):
        from repro.runtime import EntropyScanSpec

        # Grab (then free) an ephemeral port nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        spec = EntropyScanSpec(golden_template, ids_config)
        path = str(sorted(archive_dir.glob("*.log"))[0])
        with pytest.raises(DetectorError, match="repro-ids serve"):
            NetExecutor(f"127.0.0.1:{port}").run(spec, [path])

    def test_self_drain_matches_serial(self, pipeline, archive_dir, reference):
        """Zero workers: the coordinator degrades to a local scan."""
        with ServerThread() as st:
            report = pipeline.analyze_archive(
                archive_dir, executor=NetExecutor(st.address)
            )
        assert report.to_dict() == reference

    def test_no_drain_times_out_without_workers(self, pipeline, archive_dir):
        with ServerThread() as st:
            executor = NetExecutor(
                st.address, drain=False, timeout_s=0.5, poll_s=0.02
            )
            with pytest.raises(DetectorError, match="no progress"):
                pipeline.analyze_archive(archive_dir, executor=executor)

    def test_worker_threads_serve_the_scan(
        self, pipeline, archive_dir, reference
    ):
        """drain=False: completion *proves* network workers did the work."""
        with ServerThread() as st:
            threads = [
                threading.Thread(
                    target=run_net_worker,
                    kwargs=dict(
                        connect=st.address, poll_s=0.02, max_idle_s=60.0
                    ),
                    daemon=True,
                )
                for _ in range(2)
            ]
            for t in threads:
                t.start()
            report = pipeline.analyze_archive(
                archive_dir,
                executor=NetExecutor(st.address, drain=False, timeout_s=120.0),
            )
            st.drain()  # releases the idle workers
            for t in threads:
                t.join(timeout=60)
        assert report.to_dict() == reference

    def test_drain_request_stops_idle_workers(self):
        with ServerThread() as st:
            box = {}
            t = threading.Thread(
                target=lambda: box.update(
                    stats=run_net_worker(
                        st.address, poll_s=0.01, max_idle_s=30.0
                    )
                ),
                daemon=True,
            )
            t.start()
            assert wait_until(
                lambda: len(st.server.snapshot()["workers"]) == 1
            )
            st.drain()
            t.join(timeout=30)
            assert not t.is_alive()
        stats = box["stats"]
        # The worker may catch the explicit drain reply or (when the
        # drained server exits between its polls) the closed socket —
        # both are a clean stop with zero tasks executed.
        assert stats.stop_reason in ("coordinator drained", "coordinator gone")
        assert stats.executed == 0

    def test_disconnect_reposts_claimed_tasks(
        self, golden_template, ids_config, archive_dir
    ):
        """The deterministic core of crash recovery: claim a task over a
        raw connection, vanish without publishing, and watch the server
        re-post it the moment the socket drops."""
        from repro.runtime import EntropyScanSpec

        spec = EntropyScanSpec(golden_template, ids_config)
        path = str(sorted(archive_dir.glob("*.log"))[0])
        with ServerThread() as st:
            host, port = st.server.host, st.server.port
            submit = _Connection(host, port, "submit")
            submit.send({"type": "submit", "job": "deadbeef0001",
                         "spec": spec.to_payload(), "paths": [path]})
            assert submit.recv(timeout=10)["type"] == "submitted"

            doomed = _Connection(host, port, "worker", name="doomed")
            doomed.send({"type": "next"})
            reply = doomed.recv(timeout=10)
            assert reply["type"] == "task"

            def job_state():
                return st.server.snapshot()["jobs"].get("deadbeef0001", {})

            assert job_state()["claimed"] == {0: "doomed"}
            doomed.close()  # SIGKILL as seen from the server's side
            assert wait_until(lambda: job_state().get("pending") == 1)
            assert job_state()["claimed"] == {}

            # A healthy worker now finishes the re-posted task and the
            # submitter still gets its result.
            stats_box = {}
            t = threading.Thread(
                target=lambda: stats_box.update(
                    stats=run_net_worker(
                        st.address, poll_s=0.01, max_idle_s=20.0
                    )
                ),
                daemon=True,
            )
            t.start()
            pushed = submit.recv(timeout=60)
            assert pushed["type"] == "result"
            assert pushed["outcome"]["index"] == 0
            assert "result" in pushed["outcome"]
            submit.close()
            st.drain()
            t.join(timeout=60)
            assert stats_box["stats"].executed == 1

    def test_lease_expiry_reposts_silent_claims(
        self, golden_template, ids_config, archive_dir
    ):
        """The backstop for half-open sockets: a connected-but-silent
        worker loses its claim after the lease runs out."""
        from repro.runtime import EntropyScanSpec

        spec = EntropyScanSpec(golden_template, ids_config)
        path = str(sorted(archive_dir.glob("*.log"))[0])
        with ServerThread(lease_s=0.2) as st:
            submit = _Connection(st.server.host, st.server.port, "submit")
            submit.send({"type": "submit", "job": "deadbeef0002",
                         "spec": spec.to_payload(), "paths": [path]})
            assert submit.recv(timeout=10)["type"] == "submitted"
            silent = _Connection(
                st.server.host, st.server.port, "worker", name="silent"
            )
            silent.send({"type": "next"})
            assert silent.recv(timeout=10)["type"] == "task"
            # No result, no renew: the reaper must take the claim back.
            assert wait_until(
                lambda: st.server.snapshot()["jobs"]
                .get("deadbeef0002", {}).get("pending") == 1,
                timeout_s=10.0,
            )
            silent.close()
            submit.close()


def spawn_cli_worker(address, log_path):
    """A real ``repro-ids worker --connect`` subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    handle = open(log_path, "w", encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--connect", address, "--poll", "0.01", "--max-idle", "120"],
        stdout=handle, stderr=subprocess.STDOUT, env=env,
    )
    proc._log_handle = handle  # closed by the caller after wait()
    return proc


class TestSubprocessWorkers:
    def test_two_cli_workers_serve_a_net_scan(
        self, pipeline, archive_dir, reference, tmp_path
    ):
        """End to end over real process boundaries: two CLI workers, a
        no-drain coordinator, bit-identical report."""
        with ServerThread() as st:
            workers = [
                spawn_cli_worker(st.address, tmp_path / f"w{i}.log")
                for i in range(2)
            ]
            try:
                assert wait_until(
                    lambda: len(st.server.snapshot()["workers"]) >= 2,
                    timeout_s=60.0, poll_s=0.05,
                )
                report = pipeline.analyze_archive(
                    archive_dir,
                    executor=NetExecutor(
                        st.address, drain=False, timeout_s=180.0
                    ),
                )
            finally:
                st.drain()
                for proc in workers:
                    try:
                        proc.wait(timeout=60)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()
                    proc._log_handle.close()
        assert report.to_dict() == reference
        executed = sum(
            (tmp_path / f"w{i}.log").read_text().count("worker: executed")
            for i in range(2)
        )
        assert executed >= len(list(archive_dir.glob("*.log")))

    def test_sigkill_mid_scan_still_bit_identical(
        self, pipeline, archive_dir, reference, tmp_path
    ):
        """The acceptance criterion: SIGKILL a worker while it holds a
        claim; its tasks are re-posted and the report is unchanged."""
        log_lines = []
        with ServerThread(log=log_lines.append) as st:
            workers = [
                spawn_cli_worker(st.address, tmp_path / f"k{i}.log")
                for i in range(2)
            ]
            try:
                assert wait_until(
                    lambda: len(st.server.snapshot()["workers"]) >= 2,
                    timeout_s=60.0, poll_s=0.05,
                )
                box = {}

                def scan():
                    box["report"] = pipeline.analyze_archive(
                        archive_dir,
                        executor=NetExecutor(
                            st.address, drain=False, timeout_s=180.0
                        ),
                    )

                scanner = threading.Thread(target=scan, daemon=True)
                scanner.start()

                # Catch any worker red-handed: holding a live claim.
                doomed_pid = None

                def find_victim():
                    nonlocal doomed_pid
                    for job in st.server.snapshot()["jobs"].values():
                        for claimant in job["claimed"].values():
                            doomed_pid = int(claimant.rsplit(":", 1)[1])
                            return True
                    return False

                assert wait_until(find_victim, timeout_s=60.0)
                os.kill(doomed_pid, signal.SIGKILL)
                scanner.join(timeout=180)
                assert not scanner.is_alive()
            finally:
                st.drain()
                for proc in workers:
                    try:
                        proc.wait(timeout=60)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()
                    proc._log_handle.close()
        assert any(proc.returncode == -signal.SIGKILL for proc in workers)
        assert box["report"].to_dict() == reference
        assert any("reposted task" in line for line in log_lines)

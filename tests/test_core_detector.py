"""Windowed detector: batch/streaming equivalence, verdicts, alerts."""

import numpy as np
import pytest

from repro.core.alerts import AlertSink
from repro.core.config import IDSConfig
from repro.core.detector import EntropyDetector
from repro.core.template import TemplateBuilder
from repro.exceptions import DetectorError
from repro.io.trace import Trace, TraceRecord


def uniform_trace(ids, start_us=0, spacing_us=1000, attack_ids=()):
    records = []
    for i, can_id in enumerate(ids):
        records.append(
            TraceRecord(
                timestamp_us=start_us + i * spacing_us,
                can_id=can_id,
                is_attack=can_id in attack_ids,
            )
        )
    return Trace(records)


@pytest.fixture()
def tiny_template():
    """Template over alternating 0x155/0x2AA traffic (p known exactly)."""
    config = IDSConfig(
        window_us=100_000, min_window_messages=10, template_windows=2, alpha=3.0
    )
    builder = TemplateBuilder(config)
    ids = [0x155, 0x2AA] * 40
    builder.add_trace(uniform_trace(ids))
    builder.add_trace(uniform_trace(ids))
    return config, builder.build()


class TestScanBasics:
    def test_clean_traffic_no_alarm(self, tiny_template):
        config, template = tiny_template
        detector = EntropyDetector(template, config)
        windows = detector.scan(uniform_trace([0x155, 0x2AA] * 200))
        assert windows
        assert not any(w.alarm for w in windows)

    def test_injection_alarms(self, tiny_template):
        config, template = tiny_template
        detector = EntropyDetector(template, config)
        # Inject a third identifier at 33% of traffic.
        ids = [0x155, 0x2AA, 0x001] * 150
        windows = detector.scan(uniform_trace(ids, attack_ids={0x001}))
        assert any(w.alarm for w in windows)

    def test_attack_messages_counted_per_window(self, tiny_template):
        config, template = tiny_template
        detector = EntropyDetector(template, config)
        ids = [0x155, 0x2AA, 0x001] * 150
        windows = detector.scan(uniform_trace(ids, attack_ids={0x001}))
        assert sum(w.n_attack_messages for w in windows) == 150

    def test_underpopulated_window_not_judged(self, tiny_template):
        config, template = tiny_template
        detector = EntropyDetector(template, config)
        windows = detector.scan(uniform_trace([0x001] * 3, spacing_us=1000))
        assert len(windows) == 1
        assert not windows[0].judged
        assert not windows[0].alarm

    def test_window_metadata(self, tiny_template):
        config, template = tiny_template
        detector = EntropyDetector(template, config)
        windows = detector.scan(uniform_trace([0x155, 0x2AA] * 200))
        assert windows[0].index == 0
        assert windows[1].index == 1
        assert windows[0].t_end_us - windows[0].t_start_us == config.window_us


class TestStreaming:
    def test_feed_matches_scan(self, tiny_template):
        config, template = tiny_template
        trace = uniform_trace([0x155, 0x2AA, 0x001] * 120, attack_ids={0x001})

        batch = EntropyDetector(template, config).scan(trace)

        streaming = EntropyDetector(template, config)
        collected = []
        for record in trace:
            result = streaming.feed(record)
            if result is not None:
                collected.append(result)
        final = streaming.flush()
        if final is not None:
            collected.append(final)

        assert len(collected) == len(batch)
        for a, b in zip(collected, batch):
            assert a.alarm == b.alarm
            assert a.n_messages == b.n_messages

    def test_rejects_out_of_order(self, tiny_template):
        config, template = tiny_template
        detector = EntropyDetector(template, config)
        detector.feed(TraceRecord(timestamp_us=1000, can_id=0x155))
        with pytest.raises(DetectorError):
            detector.feed(TraceRecord(timestamp_us=500, can_id=0x155))

    def test_silent_gap_advances_window_origin(self, tiny_template):
        config, template = tiny_template
        detector = EntropyDetector(template, config)
        detector.feed(TraceRecord(timestamp_us=0, can_id=0x155))
        # A record 10 windows later must land in its own window.
        result = detector.feed(
            TraceRecord(timestamp_us=10 * config.window_us + 1, can_id=0x2AA)
        )
        assert result is not None  # first window closed
        follow_up = detector.flush()
        assert follow_up.n_messages == 1

    def test_flush_empty_returns_none(self, tiny_template):
        config, template = tiny_template
        assert EntropyDetector(template, config).flush() is None

    def test_reset_restarts_indexing(self, tiny_template):
        config, template = tiny_template
        detector = EntropyDetector(template, config)
        detector.scan(uniform_trace([0x155, 0x2AA] * 100))
        detector.reset()
        windows = detector.scan(uniform_trace([0x155, 0x2AA] * 100))
        assert windows[0].index == 0


class TestAlerts:
    def test_alarming_window_emits_alert(self, tiny_template):
        config, template = tiny_template
        sink = AlertSink()
        detector = EntropyDetector(template, config, sink)
        detector.scan(
            uniform_trace([0x155, 0x2AA, 0x001] * 150, attack_ids={0x001})
        )
        assert len(sink) >= 1
        alert = sink.alerts[0]
        assert alert.violated_bits
        assert len(alert.violated_bits) == len(alert.deviations)

    def test_alert_bit_numbers_are_one_based(self, tiny_template):
        config, template = tiny_template
        sink = AlertSink()
        detector = EntropyDetector(template, config, sink)
        detector.scan(uniform_trace([0x155, 0x2AA, 0x001] * 150))
        for alert in sink:
            assert all(1 <= bit <= 11 for bit in alert.violated_bits)

    def test_sink_callback(self, tiny_template):
        config, template = tiny_template
        seen = []
        sink = AlertSink(callback=seen.append)
        detector = EntropyDetector(template, config, sink)
        detector.scan(uniform_trace([0x155, 0x2AA, 0x001] * 150))
        assert seen == sink.alerts

    def test_to_alert_requires_alarm(self, tiny_template):
        config, template = tiny_template
        detector = EntropyDetector(template, config)
        windows = detector.scan(uniform_trace([0x155, 0x2AA] * 100))
        with pytest.raises(DetectorError):
            windows[0].to_alert()

    def test_first_alert_time(self, tiny_template):
        config, template = tiny_template
        sink = AlertSink()
        EntropyDetector(template, config, sink).scan(
            uniform_trace([0x155, 0x2AA, 0x001] * 150)
        )
        assert sink.first_alert_time_us() == sink.alerts[0].timestamp_us

    def test_str_rendering(self, tiny_template):
        config, template = tiny_template
        sink = AlertSink()
        EntropyDetector(template, config, sink).scan(
            uniform_trace([0x155, 0x2AA, 0x001] * 150)
        )
        assert "INTRUSION" in str(sink.alerts[0])


class TestConfigValidation:
    def test_template_width_must_match(self, tiny_template):
        _config, template = tiny_template
        with pytest.raises(DetectorError):
            EntropyDetector(template, IDSConfig(n_bits=29))

    def test_config_rejects_bad_values(self):
        for bad in (
            dict(n_bits=12),
            dict(window_us=0),
            dict(alpha=0.0),
            dict(min_window_messages=0),
            dict(rank=0),
            dict(template_windows=1),
            dict(constraint_z=0.0),
            dict(min_injected_fraction=0.0),
            dict(threshold_floor=-1.0),
        ):
            with pytest.raises(DetectorError):
                IDSConfig(**bad)

    def test_with_override(self):
        config = IDSConfig().with_(alpha=7.5)
        assert config.alpha == 7.5
        assert config.rank == IDSConfig().rank

"""End-to-end IDS pipeline and its report.

:class:`IDSPipeline` glues the detector and the inference engine
together: feed it a captured trace and it returns a
:class:`DetectionReport` containing the per-window verdicts, the alerts,
the paper's evaluation metrics (detection rate, false-positive rate,
detection latency) and — when an identifier pool is available — the
inferred malicious-identifier candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.can.constants import SECOND_US
from repro.core.alerts import Alert, AlertSink
from repro.core.config import IDSConfig
from repro.core.detector import EntropyDetector, WindowResult
from repro.core.engine import BatchEntropyEngine
from repro.core.inference import InferenceEngine, InferenceResult
from repro.core.template import GoldenTemplate
from repro.exceptions import DetectorError
from repro.io.columnar import ColumnTrace
from repro.io.trace import Trace


@dataclass
class DetectionReport:
    """Everything one pipeline run produced."""

    windows: List[WindowResult]
    alerts: List[Alert]
    inference: Optional[InferenceResult]

    # ------------------------------------------------------------------
    # Window-level aggregates
    # ------------------------------------------------------------------
    @property
    def judged_windows(self) -> List[WindowResult]:
        """Windows with enough messages to be judged."""
        return [w for w in self.windows if w.judged]

    @property
    def alarmed_windows(self) -> List[WindowResult]:
        """Windows that raised an alarm."""
        return [w for w in self.windows if w.alarm]

    @property
    def attack_windows(self) -> List[WindowResult]:
        """Judged windows containing at least one ground-truth attack message."""
        return [w for w in self.judged_windows if w.n_attack_messages > 0]

    @property
    def clean_windows(self) -> List[WindowResult]:
        """Judged windows with no attack messages."""
        return [w for w in self.judged_windows if w.n_attack_messages == 0]

    # ------------------------------------------------------------------
    # The paper's metrics
    # ------------------------------------------------------------------
    @property
    def detection_rate(self) -> float:
        """The paper's ``Dr``: detected injected messages over injected.

        A window alarm detects every injected message inside that
        window (the IDS judges windows, not individual frames).
        """
        total = sum(w.n_attack_messages for w in self.judged_windows)
        if total == 0:
            return 0.0
        detected = sum(w.n_attack_messages for w in self.alarmed_windows)
        return detected / total

    @property
    def false_positive_rate(self) -> float:
        """Alarmed clean windows over all clean windows."""
        clean = self.clean_windows
        if not clean:
            return 0.0
        return sum(1 for w in clean if w.alarm) / len(clean)

    @property
    def detection_latency_us(self) -> Optional[int]:
        """Time from the first attacked window start to the first alarm
        *at or after* that window.

        Alarms that fired before the attack began are false positives,
        not detections — counting one would clamp the latency to zero —
        so the measurement starts at the first attacked window and
        returns None when no alarm follows it.
        """
        attacked = self.attack_windows
        if not attacked:
            return None
        first = attacked[0]
        for window in self.alarmed_windows:
            if window.index >= first.index:
                return window.t_end_us - first.t_start_us
        return None

    def inference_hit_rate(self, true_ids: Sequence[int]) -> float:
        """Hit rate of the inferred candidates against the true IDs."""
        if self.inference is None:
            return 0.0
        return self.inference.hit_rate(true_ids)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable digest of the run."""
        lines = [
            f"windows: {len(self.windows)} total, {len(self.judged_windows)} judged, "
            f"{len(self.alarmed_windows)} alarmed",
            f"attack windows: {len(self.attack_windows)}, "
            f"clean windows: {len(self.clean_windows)}",
            f"detection rate: {self.detection_rate:.1%}",
            f"false positive rate: {self.false_positive_rate:.1%}",
        ]
        latency = self.detection_latency_us
        if latency is not None:
            lines.append(f"detection latency: {latency / SECOND_US:.2f}s")
        if self.inference is not None:
            ids = ", ".join(f"0x{c:03X}" for c in self.inference.candidates)
            lines.append(f"inferred candidates (rank order): {ids}")
            if self.inference.constraints:
                bits = ", ".join(
                    f"bit{b}={v}" for b, v in sorted(self.inference.constraints.items())
                )
                lines.append(f"bit constraints: {bits}")
        return "\n".join(lines)


class IDSPipeline:
    """Detector + inference + reporting, batch or streaming."""

    def __init__(
        self,
        template: GoldenTemplate,
        config: Optional[IDSConfig] = None,
        id_pool: Optional[Sequence[int]] = None,
    ) -> None:
        self.config = config or IDSConfig()
        self.template = template
        self.id_pool = tuple(id_pool) if id_pool is not None else None
        self._engine = (
            InferenceEngine(self.id_pool, template, self.config)
            if self.id_pool
            else None
        )

    def analyze(self, trace: Union[Trace, ColumnTrace], infer_k=1) -> DetectionReport:
        """Run detection (and inference, when a pool is set) over a trace.

        Recorded captures — either representation — go through the
        vectorised :class:`~repro.core.engine.BatchEntropyEngine`, which
        is bit-for-bit equivalent to the streaming detector; live buses
        use :meth:`streaming_detector` instead.

        ``infer_k`` is the number of injected identifiers assumed by the
        inference step (the paper knows it per scenario).  Pass the
        string ``"auto"`` to estimate it from the mixture-fit residual
        (extension; see :meth:`InferenceEngine.estimate_k`).
        """
        if len(trace) == 0:
            raise DetectorError("cannot analyze an empty trace")
        sink = AlertSink()
        engine = BatchEntropyEngine(self.template, self.config, sink)
        windows = engine.scan(trace)
        inference: Optional[InferenceResult] = None
        if self._engine is not None and any(w.alarm for w in windows):
            if infer_k == "auto":
                alarmed = [w for w in windows if w.alarm]
                total = sum(w.n_messages for w in alarmed)
                combined = sum(
                    w.probabilities * w.n_messages for w in alarmed
                ) / total
                infer_k = self._engine.estimate_k(
                    combined, total, n_windows=len(alarmed)
                )
            inference = self._engine.infer_from_windows(windows, k=infer_k)
        return DetectionReport(
            windows=windows, alerts=list(sink.alerts), inference=inference
        )

    def streaming_detector(self, sink: Optional[AlertSink] = None) -> EntropyDetector:
        """A fresh streaming detector sharing this pipeline's template.

        Attach its :meth:`~repro.core.detector.EntropyDetector.feed` to a
        live bus listener for the paper's real-time deployment model.
        """
        return EntropyDetector(self.template, self.config, sink)

"""Experiment E3 — the paper's Table I.

Runs the six attack scenarios (flooding, single-ID, multi-ID with 2/3/4
identifiers, weak-model) across the paper's injection frequencies and
reports detection rate and inference accuracy next to the published
values.

Paper reference (Table I)::

    Attack scenario        Detection rate   Inferring accuracy
    Flood                  100%             --
    Single Injection       91%              97.2%
    Multiple_Injection_2   97%              91.8%
    Multiple_Injection_3   97.2%            88.5%
    Multiple_Injection_4   99.97%           69.7%
    Weak Injection         93%              96.6%

The reproduction targets the *shape*: detection above 90 % everywhere
and rising with the number of injected identifiers, inference accuracy
falling as identifiers are added, flooding detected but not inferable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import IDSConfig
from repro.experiments.report import pct, render_table
from repro.experiments.runner import (
    ExperimentSetup,
    ScenarioResult,
    build_setup,
    run_scenario,
)
from repro.experiments.scenarios import TABLE1_SCENARIOS, ScenarioSpec


@dataclass
class Table1Result:
    """All six rows plus the setup they were measured on."""

    rows: List[ScenarioResult]

    def render(self) -> str:
        """The reproduction of Table I, with the paper's numbers inline.

        The Dr column carries a bootstrap 95 % interval over the runs —
        a handful of seeded campaigns deserves error bars.
        """
        table_rows = []
        for result in self.rows:
            spec = result.spec
            inference = result.inference_accuracy
            _point, low, high = result.detection_rate_ci()
            table_rows.append(
                [
                    spec.label,
                    pct(result.detection_rate),
                    f"[{pct(low, 0)},{pct(high, 0)}]",
                    pct(spec.paper_detection) if spec.paper_detection else "--",
                    pct(inference) if inference is not None else "--",
                    pct(spec.paper_inference) if spec.paper_inference else "--",
                    f"{result.mean_injection_rate:.2f}",
                    pct(result.false_positive_rate),
                ]
            )
        return render_table(
            headers=[
                "Attack scenario",
                "Dr (ours)",
                "Dr 95% CI",
                "Dr (paper)",
                "Infer (ours)",
                "Infer (paper)",
                "mean Ir",
                "FPR",
            ],
            rows=table_rows,
            title="Table I — evaluation results for different attacks",
        )

    def row(self, name: str) -> ScenarioResult:
        """Look up a scenario row by machine name."""
        for result in self.rows:
            if result.spec.name == name:
                return result
        raise KeyError(name)


def run(
    setup: Optional[ExperimentSetup] = None,
    scenarios: Sequence[ScenarioSpec] = TABLE1_SCENARIOS,
    seeds: Sequence[int] = (1, 2),
    config: Optional[IDSConfig] = None,
) -> Table1Result:
    """Run the full Table-I campaign (or a subset of scenarios)."""
    if setup is None:
        setup = build_setup(config=config)
    return Table1Result(
        rows=[run_scenario(setup, spec, seeds=seeds) for spec in scenarios]
    )

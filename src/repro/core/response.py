"""Response: blocking the inferred malicious identifiers.

The paper's abstract promises that "the malicious messages containing
those IDs would be discarded or blocked", and the conclusion claims the
system "is capable of restricting attackers from injecting a large
number of malicious messages".  This module implements that last stage:

* :class:`Blocklist` — identifier block entries with a time-to-live
  (blocks must expire: an inferred identifier may be a legitimate one the
  attacker abused, and permanent blocking would DoS the real function);
* :class:`ResponseGate` — the composite online component: it feeds a
  streaming detector, runs inference when windows alarm, updates the
  blocklist, and forwards only unblocked records downstream — exactly
  what an IDS-empowered gateway would do;
* :class:`ResponseOutcome` — effectiveness accounting: how much of the
  attack was suppressed downstream, at what collateral cost to
  legitimate traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.can.constants import SECOND_US
from repro.core.alerts import AlertSink
from repro.core.config import IDSConfig
from repro.core.detector import EntropyDetector, WindowResult
from repro.core.inference import InferenceEngine
from repro.core.template import GoldenTemplate
from repro.exceptions import DetectorError
from repro.io.trace import Trace, TraceRecord


@dataclass
class Blocklist:
    """Identifier blocks with expiry."""

    ttl_us: int = 10 * SECOND_US
    _expiry: Dict[int, int] = field(default_factory=dict)

    def block(self, can_id: int, now_us: int) -> None:
        """Block (or re-arm) an identifier from ``now_us``."""
        self._expiry[can_id] = now_us + self.ttl_us

    def is_blocked(self, can_id: int, now_us: int) -> bool:
        """True while the identifier's block has not expired."""
        expiry = self._expiry.get(can_id)
        if expiry is None:
            return False
        if now_us >= expiry:
            del self._expiry[can_id]
            return False
        return True

    def active(self, now_us: int) -> List[int]:
        """Currently blocked identifiers."""
        return sorted(
            can_id for can_id in list(self._expiry)
            if self.is_blocked(can_id, now_us)
        )

    def clear(self) -> None:
        """Remove every block."""
        self._expiry.clear()


@dataclass
class ResponseOutcome:
    """Effectiveness of the response stage over one capture."""

    #: Attack messages suppressed / all attack messages.
    attack_suppression: float
    #: Legitimate messages suppressed / all legitimate messages.
    collateral_rate: float
    #: Messages forwarded downstream.
    forwarded: int
    #: Messages dropped by the blocklist.
    dropped: int
    #: Identifiers that were blocked at least once.
    blocked_ids: List[int]

    def summary(self) -> str:
        """One-paragraph rendering."""
        ids = ", ".join(f"0x{i:03X}" for i in self.blocked_ids) or "none"
        return (
            f"attack suppression: {self.attack_suppression:.1%}, "
            f"collateral: {self.collateral_rate:.2%}, "
            f"forwarded {self.forwarded}, dropped {self.dropped}, "
            f"blocked ids: {ids}"
        )


class ResponseGate:
    """Detector + inference + blocklist as one streaming component.

    Attach :meth:`on_frame` as a bus listener (or replay a recorded
    trace through :meth:`process_trace`).  Records pass through unless
    their identifier is currently blocked; whenever a detection window
    alarms, inference runs on it and the top ``block_top`` candidates
    are blocked for ``ttl_us``.
    """

    def __init__(
        self,
        template: GoldenTemplate,
        id_pool: Sequence[int],
        config: Optional[IDSConfig] = None,
        block_top: int = 1,
        ttl_us: int = 10 * SECOND_US,
        infer_k: int = 1,
        downstream: Optional[Callable[[TraceRecord], None]] = None,
    ) -> None:
        self.config = config or IDSConfig()
        if block_top < 1:
            raise DetectorError(f"block_top must be >= 1, got {block_top}")
        self.detector = EntropyDetector(template, self.config, AlertSink())
        self.engine = InferenceEngine(id_pool, template, self.config)
        self.blocklist = Blocklist(ttl_us=ttl_us)
        self.block_top = block_top
        self.infer_k = infer_k
        self.downstream = downstream
        #: Everything forwarded downstream (also kept when a callback is set).
        self.forwarded_trace = Trace()
        self._suppressed_attack = 0
        self._suppressed_legit = 0
        self._seen_attack = 0
        self._seen_legit = 0
        self._ever_blocked: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    def on_frame(self, record: TraceRecord) -> bool:
        """Process one record; returns True when it was forwarded."""
        if record.is_attack:
            self._seen_attack += 1
        else:
            self._seen_legit += 1

        window = self.detector.feed(record)
        if window is not None and window.alarm:
            self._react(window)

        if self.blocklist.is_blocked(record.can_id, record.timestamp_us):
            if record.is_attack:
                self._suppressed_attack += 1
            else:
                self._suppressed_legit += 1
            return False
        self.forwarded_trace.append(record)
        if self.downstream is not None:
            self.downstream(record)
        return True

    def _react(self, window: WindowResult) -> None:
        inference = self.engine.infer(
            window.probabilities, window.n_messages, k=self.infer_k
        )
        for can_id in inference.candidates[: self.block_top]:
            self.blocklist.block(can_id, window.t_end_us)
            self._ever_blocked[can_id] = True

    # ------------------------------------------------------------------
    def process_trace(self, trace: Trace) -> ResponseOutcome:
        """Replay a capture through the gate and account the outcome."""
        for record in trace:
            self.on_frame(record)
        self.detector.flush()
        return self.outcome()

    def outcome(self) -> ResponseOutcome:
        """Effectiveness so far."""
        return ResponseOutcome(
            attack_suppression=(
                self._suppressed_attack / self._seen_attack
                if self._seen_attack
                else 0.0
            ),
            collateral_rate=(
                self._suppressed_legit / self._seen_legit
                if self._seen_legit
                else 0.0
            ),
            forwarded=len(self.forwarded_trace),
            dropped=self._suppressed_attack + self._suppressed_legit,
            blocked_ids=sorted(self._ever_blocked),
        )

"""Event sinks: in-memory for tests, JSONL on disk for operators.

Sinks receive the already-stamped event dicts from
:meth:`repro.obs.Registry.emit`.  They must be cheap and must never
throw into the instrumented code path.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import List, Union

__all__ = ["MemorySink", "JsonlSink", "write_bench_snapshot"]


class MemorySink:
    """Buffers events in a list — the test double."""

    def __init__(self) -> None:
        self.events: List[dict] = []

    def write(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one JSON object per line to ``path``.

    Lines are written under a lock and flushed individually so a
    crashed process leaves at most one torn trailing line — the same
    torn-tail tolerance the queue transport already has — and
    concurrent threads never interleave within a line.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def write(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_bench_snapshot(path: Union[str, Path], section: str, registry) -> Path:
    """Section-replace-merge a registry's metrics into a BENCH JSON.

    Rides the PR 7 ``bench`` schema so telemetry numbers land next to
    the throughput tables with the same atomic-rename durability.
    """
    from repro.experiments.bench import write_bench_json

    return write_bench_json(Path(path), registry.bench_records(section))

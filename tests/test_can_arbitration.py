"""Bitwise dominant-0 arbitration semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.can.arbitration import arbitration_key, resolve_arbitration
from repro.can.frame import CANFrame
from repro.exceptions import ArbitrationError


class TestArbitrationKey:
    def test_base_key_length(self):
        # ID(11) + RTR + IDE
        assert len(arbitration_key(CANFrame(0x123))) == 13

    def test_extended_key_length(self):
        # ID(11) + SRR + IDE + ID(18) + RTR
        assert len(arbitration_key(CANFrame(0x123, extended=True))) == 32

    def test_lower_id_is_smaller_key(self):
        assert arbitration_key(CANFrame(0x100)) < arbitration_key(CANFrame(0x101))

    def test_data_beats_remote_same_id(self):
        data = arbitration_key(CANFrame(0x100))
        remote = arbitration_key(CANFrame(0x100, rtr=True))
        assert data < remote

    def test_base_data_beats_extended_same_prefix(self):
        base = arbitration_key(CANFrame(0x100))
        ext = arbitration_key(CANFrame(0x100 << 18, extended=True))
        assert base < ext

    def test_base_remote_still_beats_extended(self):
        base_rtr = arbitration_key(CANFrame(0x100, rtr=True))
        ext = arbitration_key(CANFrame(0x100 << 18, extended=True))
        assert base_rtr < ext


class TestResolve:
    def test_single_contender_wins(self):
        result = resolve_arbitration([CANFrame(0x300)])
        assert result.winner_index == 0
        assert result.lost_at_bit == {}

    def test_lowest_id_wins(self):
        frames = [CANFrame(0x300), CANFrame(0x100), CANFrame(0x200)]
        assert resolve_arbitration(frames).winner_index == 1

    def test_zero_dominates_everything(self):
        frames = [CANFrame(i) for i in (0x7FF, 0x000, 0x400)]
        assert resolve_arbitration(frames).winner_index == 1

    def test_lost_at_bit_positions(self):
        # 0x400 = 100_0000_0000 loses to 0x000 at the very first ID bit.
        result = resolve_arbitration([CANFrame(0x000), CANFrame(0x400)])
        assert result.lost_at_bit[1] == 0

    def test_lost_at_later_bit(self):
        # 0x001 differs from 0x000 only at the last ID bit (position 10).
        result = resolve_arbitration([CANFrame(0x000), CANFrame(0x001)])
        assert result.lost_at_bit[1] == 10

    def test_identical_frames_raise(self):
        with pytest.raises(ArbitrationError):
            resolve_arbitration([CANFrame(0x100), CANFrame(0x100)])

    def test_identical_frames_tie_break(self):
        result = resolve_arbitration(
            [CANFrame(0x100), CANFrame(0x100)], allow_ties=True
        )
        assert result.winner_index == 0

    def test_empty_contenders_raise(self):
        with pytest.raises(ArbitrationError):
            resolve_arbitration([])

    @given(st.lists(st.integers(min_value=0, max_value=0x7FF), min_size=1,
                    max_size=10, unique=True))
    def test_winner_is_numeric_minimum_for_base_data_frames(self, ids):
        frames = [CANFrame(i) for i in ids]
        winner = resolve_arbitration(frames).winner_index
        assert frames[winner].can_id == min(ids)

    @given(st.lists(st.integers(min_value=0, max_value=0x7FF), min_size=2,
                    max_size=10, unique=True))
    def test_every_loser_has_a_loss_position(self, ids):
        frames = [CANFrame(i) for i in ids]
        result = resolve_arbitration(frames)
        losers = set(range(len(frames))) - {result.winner_index}
        assert set(result.lost_at_bit) == losers

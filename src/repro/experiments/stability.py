"""Experiment E4 — the Section IV.B stability claim.

"The raw data from CAN are collected from different driving situations,
e.g. turning the audio on, turning the light on, and driving with cruise
control and so on.  We observe that the entropy on each bit only changes
slightly in these different testing scenarios."

The reproduction measures, per driving scenario, the per-bit entropy
over several windows and reports (a) the within-scenario range, (b) the
between-scenario spread of means, and (c) how both compare with the
deviation caused by a moderate injection — the margin that makes the
golden-template approach viable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks import SingleIDAttacker
from repro.core import build_template
from repro.core.bitprob import BitCounter
from repro.core.entropy import binary_entropy
from repro.experiments.report import render_table
from repro.experiments.runner import ExperimentSetup, build_setup
from repro.vehicle import STANDARD_SCENARIOS, VehicleSimulation
from repro.vehicle.traffic import simulate_drive


@dataclass
class StabilityResult:
    """Entropy spread under normal driving vs. under attack."""

    scenario_names: List[str]
    #: Per-scenario mean entropy vector (scenario -> n_bits array).
    scenario_means: Dict[str, np.ndarray]
    #: Per-bit within-scenario range, worst case over scenarios.
    within_range: np.ndarray
    #: Per-bit spread of the scenario means.
    between_range: np.ndarray
    #: Per-bit |deviation| during a reference attack window.
    attack_deviation: np.ndarray

    @property
    def stability_margin(self) -> float:
        """max attack deviation over max normal spread (>> 1 required)."""
        normal = float(np.maximum(self.within_range, self.between_range).max())
        return float(self.attack_deviation.max()) / max(normal, 1e-12)

    def render(self) -> str:
        """Per-bit stability table."""
        rows = []
        for bit in range(len(self.within_range)):
            rows.append(
                [
                    f"Bit {bit + 1}",
                    f"{self.within_range[bit]:.5f}",
                    f"{self.between_range[bit]:.5f}",
                    f"{self.attack_deviation[bit]:.5f}",
                ]
            )
        table = render_table(
            headers=[
                "bit",
                "within-scenario range",
                "between-scenario range",
                "attack |deviation|",
            ],
            rows=rows,
            title="Entropy stability across driving scenarios (Sec. IV.B)",
        )
        return table + f"\nstability margin (attack / normal): {self.stability_margin:.1f}x"


def run(
    setup: Optional[ExperimentSetup] = None,
    scenarios: Optional[Sequence] = None,
    windows_per_scenario: int = 6,
    attack_frequency_hz: float = 50.0,
    seed: int = 11,
) -> StabilityResult:
    """Measure normal-driving entropy spread and an attack's deviation."""
    if setup is None:
        setup = build_setup()
    chosen = list(scenarios) if scenarios is not None else list(STANDARD_SCENARIOS)
    window_s = setup.config.window_us / 1e6

    scenario_means: Dict[str, np.ndarray] = {}
    within: List[np.ndarray] = []
    for index, scenario in enumerate(chosen):
        entropies = []
        trace = simulate_drive(
            duration_s=windows_per_scenario * window_s,
            scenario=scenario,
            seed=seed + index,
            catalog=setup.catalog,
        )
        for window in trace.time_windows(setup.config.window_us):
            if len(window) < setup.config.min_window_messages:
                continue
            counter = BitCounter.from_ids(window.ids(), setup.config.n_bits)
            entropies.append(np.asarray(binary_entropy(counter.probabilities())))
        stacked = np.stack(entropies)
        name = getattr(scenario, "name", str(scenario))
        scenario_means[name] = stacked.mean(axis=0)
        within.append(stacked.max(axis=0) - stacked.min(axis=0))

    means = np.stack(list(scenario_means.values()))
    between_range = means.max(axis=0) - means.min(axis=0)
    within_range = np.stack(within).max(axis=0)

    # Reference attack deviation (mid-priority single-ID injection).
    sim = VehicleSimulation(catalog=setup.catalog, scenario="city", seed=seed + 99)
    attacker = SingleIDAttacker(
        can_id=setup.catalog.ids[len(setup.catalog.ids) // 3],
        frequency_hz=attack_frequency_hz,
        start_s=window_s,
        duration_s=3 * window_s,
        seed=seed,
    )
    sim.add_node(attacker)
    trace = sim.run(5 * window_s)
    report = setup.pipeline.analyze(trace)
    attacked = [w for w in report.judged_windows if w.n_attack_messages > 0]
    deviation = (
        np.stack([np.abs(w.deviations) for w in attacked]).max(axis=0)
        if attacked
        else np.zeros(setup.config.n_bits)
    )

    return StabilityResult(
        scenario_names=[getattr(s, "name", str(s)) for s in chosen],
        scenario_means=scenario_means,
        within_range=within_range,
        between_range=between_range,
        attack_deviation=deviation,
    )

"""Runtime experiment: executor backends over a fleet-scale archive.

The runtime layer's pitch is that the execution backend is a pure
deployment choice: serial, process pool, filesystem work queue and TCP
scan fabric all produce **bit-identical** reports, differing only in
where the work runs.  This experiment makes both halves measurable: it
builds a synthetic archive of dozens of vehicle-drives, scans it once
per backend, asserts full-report parity, and reports the per-backend
throughput (plus each fabric's protocol overhead — every task and
result crosses the filesystem or the wire as JSON, which is the price
of crossing hosts).

The queue backend is measured twice: *drained* (coordinator executes
its own tasks — the zero-worker degenerate case, isolating pure
protocol overhead) and *served* (a background worker thread claims
tasks concurrently, the deployment shape).  The net backend is
measured in the served shape: an in-process coordinator with one
network worker attached, the smallest honest deployment of the TCP
fabric.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.core import IDSConfig, IDSPipeline
from repro.core.template import GoldenTemplate
from repro.io.archive import CaptureArchive
from repro.runtime import (
    NetExecutor,
    PoolExecutor,
    SerialExecutor,
    ServerThread,
    WorkQueueExecutor,
    default_workers,
    run_net_worker,
    run_worker,
)
from repro.vehicle.ids_catalog import VehicleCatalog
from repro.vehicle.traffic import generate_drive_columns

#: Default sizing: dozens of drives, small enough for CI smoke.
DEFAULT_CAPTURES = 24
DEFAULT_FRAMES = 12_000


@dataclass(frozen=True)
class RuntimeExperimentResult:
    """Per-backend timings over one synthetic archive."""

    n_captures: int
    frames_per_capture: int
    total_frames: int
    pool_workers: int
    serial_s: float
    pool_s: float
    queue_drained_s: float
    queue_served_s: float
    net_served_s: float
    parity_ok: bool

    def _fps(self, seconds: float) -> float:
        return self.total_frames / seconds if seconds else 0.0

    def render(self) -> str:
        """The experiment's artifact table (a results/throughput.txt
        section)."""
        rows = [
            ("serial", self.serial_s),
            (f"pool({self.pool_workers})", self.pool_s),
            ("queue drained", self.queue_drained_s),
            ("queue +worker", self.queue_served_s),
            ("net +worker", self.net_served_s),
        ]
        lines = [
            "Runtime executors: one archive, four backends",
            f"archive: {self.n_captures} captures x {self.frames_per_capture}"
            f" frames ({self.total_frames} total)",
            f"{'backend':>14} {'seconds':>10} {'vs serial':>10} {'frames/s':>12}",
        ]
        for name, seconds in rows:
            ratio = self.serial_s / seconds if seconds else 0.0
            lines.append(
                f"{name:>14} {seconds:>10.3f} {ratio:>9.2f}x "
                f"{self._fps(seconds):>12,.0f}"
            )
        lines.append(
            "reports bit-identical across all backends: "
            f"{'yes' if self.parity_ok else 'NO'}"
        )
        return "\n".join(lines)

    def bench_records(self) -> list:
        """Machine-readable twin of :meth:`render`."""
        from repro.experiments.bench import bench_record

        params = {
            "n_captures": self.n_captures,
            "frames_per_capture": self.frames_per_capture,
            "pool_workers": self.pool_workers,
        }
        section = "runtime"
        records = [
            bench_record(
                section, f"{metric}_fps", self._fps(seconds),
                "frames/s", params,
            )
            for metric, seconds in (
                ("serial", self.serial_s),
                ("pool", self.pool_s),
                ("queue_drained", self.queue_drained_s),
                ("queue_served", self.queue_served_s),
                ("net_served", self.net_served_s),
            )
        ]
        records.append(
            bench_record(
                section, "parity_ok", 1.0 if self.parity_ok else 0.0,
                "bool", params,
            )
        )
        return records


def run(
    template: GoldenTemplate,
    config: Optional[IDSConfig] = None,
    n_captures: int = DEFAULT_CAPTURES,
    frames_per_capture: int = DEFAULT_FRAMES,
    workers: Optional[int] = None,
    seed: int = 43,
    scenario: str = "city",
    catalog: Optional[VehicleCatalog] = None,
    archive_dir: Optional[str] = None,
) -> RuntimeExperimentResult:
    """Build a synthetic archive and scan it once per backend.

    The archive is written under ``archive_dir`` (a temporary directory
    by default, cleaned up afterwards).  ``workers`` sizes the pool
    backend (default :func:`default_workers`).
    """
    config = config or IDSConfig()
    workers = default_workers() if workers is None else int(workers)
    cleanup = archive_dir is None
    tmp = tempfile.mkdtemp(prefix="repro-runtime-") if cleanup else archive_dir
    try:
        probe = generate_drive_columns(
            10.0, scenario=scenario, seed=seed, catalog=catalog
        )
        rate = max(probe.message_rate_hz(), 1.0)
        duration_s = frames_per_capture / rate * 1.02 + 1.0
        archive = CaptureArchive(tmp, patterns=("*.log",))
        total_frames = 0
        for i in range(n_captures):
            capture = generate_drive_columns(
                duration_s, scenario=scenario, seed=seed + i, catalog=catalog
            ).slice(0, frames_per_capture)
            archive.write_capture(f"drive{i:02d}.log", capture)
            total_frames += len(capture)

        pipeline = IDSPipeline(template, config)

        start = time.perf_counter()
        serial = pipeline.analyze_archive(archive, executor=SerialExecutor())
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        pooled = pipeline.analyze_archive(
            archive, executor=PoolExecutor(workers=workers)
        )
        pool_s = time.perf_counter() - start

        queue_dir = f"{tmp}/.queue-drained"
        start = time.perf_counter()
        drained = pipeline.analyze_archive(
            archive, executor=WorkQueueExecutor(queue_dir, timeout_s=600.0)
        )
        queue_drained_s = time.perf_counter() - start

        served_dir = f"{tmp}/.queue-served"
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(queue_dir=served_dir, poll_s=0.01, max_idle_s=60.0),
            daemon=True,
        )
        worker.start()
        start = time.perf_counter()
        served = pipeline.analyze_archive(
            archive, executor=WorkQueueExecutor(served_dir, timeout_s=600.0)
        )
        queue_served_s = time.perf_counter() - start
        (Path(served_dir) / "stop").touch()
        worker.join(timeout=120)

        with ServerThread() as coordinator:
            net_worker = threading.Thread(
                target=run_net_worker,
                kwargs=dict(
                    connect=coordinator.address, poll_s=0.01, max_idle_s=60.0
                ),
                daemon=True,
            )
            net_worker.start()
            start = time.perf_counter()
            netted = pipeline.analyze_archive(
                archive,
                executor=NetExecutor(coordinator.address, timeout_s=600.0),
            )
            net_served_s = time.perf_counter() - start
            coordinator.drain()  # releases the idle worker
            net_worker.join(timeout=120)

        reference = serial.to_dict()
        parity_ok = all(
            report.to_dict() == reference
            for report in (pooled, drained, served, netted)
        )
        return RuntimeExperimentResult(
            n_captures=n_captures,
            frames_per_capture=frames_per_capture,
            total_frames=total_frames,
            pool_workers=workers,
            serial_s=serial_s,
            pool_s=pool_s,
            queue_drained_s=queue_drained_s,
            queue_served_s=queue_served_s,
            net_served_s=net_served_s,
            parity_ok=parity_ok,
        )
    finally:
        if cleanup:
            shutil.rmtree(tmp, ignore_errors=True)

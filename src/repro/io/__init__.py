"""Trace containers and log file formats.

The paper captured its data with the Vehicle Spy 3 tool over OBD-II; this
package provides the equivalent plumbing for the simulator: an in-memory
:class:`~repro.io.trace.Trace` of timestamped frames with ground-truth
attack labels, a candump-compatible text format, and a Vehicle-Spy-like
CSV format.
"""

from repro.io.archive import (
    CaptureArchive,
    capture_suffix,
    load_capture_columns,
    open_capture_stream,
)
from repro.io.blockcache import DecodedBlockCache, default_cache
from repro.io.blocks import BlockReader, BlockWriter, write_blocks
from repro.io.columnar import ColumnTrace
from repro.io.fingerprint import fingerprint_bytes, fingerprint_file
from repro.io.csvlog import (
    iter_csv_columns,
    read_csv,
    read_csv_columns,
    write_csv,
    write_csv_columns,
)
from repro.io.log import (
    iter_candump_columns,
    read_candump,
    read_candump_columns,
    write_candump,
    write_candump_columns,
)
from repro.io.trace import Trace, TraceRecord

__all__ = [
    "BlockReader",
    "BlockWriter",
    "CaptureArchive",
    "ColumnTrace",
    "DecodedBlockCache",
    "default_cache",
    "Trace",
    "TraceRecord",
    "capture_suffix",
    "fingerprint_bytes",
    "fingerprint_file",
    "iter_candump_columns",
    "iter_csv_columns",
    "load_capture_columns",
    "open_capture_stream",
    "write_blocks",
    "read_candump",
    "read_candump_columns",
    "read_csv",
    "read_csv_columns",
    "write_candump",
    "write_candump_columns",
    "write_csv",
    "write_csv_columns",
]

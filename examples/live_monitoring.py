#!/usr/bin/env python
"""Live monitoring: the streaming detector attached to a running bus.

The deployment model the paper argues for — a passive monitor on the
CAN bus that keeps 11 counters and reacts within a window or two — is
exercised here literally: the detector's ``feed`` method is attached as
a bus listener and alerts fire through a callback *while the simulation
runs*.  A gateway filter runs alongside, showing the complementary
coarse defence the paper describes.

Run:  python examples/live_monitoring.py
"""

from repro.attacks import FloodingAttacker, SingleIDAttacker
from repro.can.gateway import GatewayFilter
from repro.core import AlertSink
from repro.experiments import build_setup
from repro.vehicle import VehicleSimulation
from repro.vehicle.ecu_profiles import assignments_for


def main() -> None:
    setup = build_setup()
    catalog = setup.catalog

    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=29)

    # Two attacks in one drive: a mid-priority single-ID injection early,
    # a changeable-ID flood later.
    sim.add_node(
        SingleIDAttacker(
            can_id=catalog.ids[90], frequency_hz=60.0, start_s=4.0,
            duration_s=6.0, seed=2, name="mallory_single",
        )
    )
    sim.add_node(
        FloodingAttacker(
            frequency_hz=250.0, start_s=16.0, duration_s=4.0, seed=3,
            name="mallory_flood",
        )
    )

    # The streaming IDS, wired straight into the bus.
    sink = AlertSink(callback=lambda alert: print(f"  {alert}"))
    detector = setup.pipeline.streaming_detector(sink)
    sim.bus.attach_listener(detector.feed)

    # The conventional gateway filter, also live on the bus.
    gateway = GatewayFilter(
        known_ids=catalog.id_set(), assignments=assignments_for(catalog)
    )
    sim.bus.attach_listener(gateway.on_frame)

    print("driving for 24 s with two attacks scheduled "
          "(injection at 4-10 s, flood at 16-20 s)...")
    sim.run(24.0)
    detector.flush()

    print(f"\nIDS alerts: {len(sink)}")
    first = sink.first_alert_time_us()
    if first is not None:
        print(f"first alert at t={first / 1e6:.1f}s "
              f"(attack started at t=4.0s)")

    unknown = gateway.alerts_by_kind("unknown_id")
    print(f"gateway unknown-ID alerts: {len(unknown)} "
          f"(the flood uses identifiers outside the catalog)")
    print(f"gateway flagged sources: {sorted(gateway.flagged_sources())}")


if __name__ == "__main__":
    main()

"""Naive total-rate monitor — the weakest sensible baseline.

Counts messages per window and alarms when the count leaves the trained
band.  It catches volume-changing attacks (flooding, high-frequency
injection) but is blind to anything that holds the aggregate rate
roughly constant, and it can neither localise identifiers nor explain
*what* changed.  Including it calibrates how much of the entropy IDS's
performance is mere volume detection.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import DetectorError
from repro.io.trace import Trace

from repro.baselines.base import BaselineIDS


class FrequencyIDS(BaselineIDS):
    """Window message-count band monitor.

    Parameters
    ----------
    band_sigmas:
        Width of the acceptance band in training standard deviations.
    """

    name = "frequency"
    handles_unseen_ids = True  # any frame counts toward the volume
    localizes_ids = False

    def __init__(self, band_sigmas: float = 6.0, **kwargs) -> None:
        super().__init__(**kwargs)
        if band_sigmas <= 0:
            raise DetectorError("band_sigmas must be positive")
        self.band_sigmas = band_sigmas
        self.mean_count = 0.0
        self.std_count = 0.0

    def _fit(self, windows: Sequence[Trace]) -> None:
        counts = np.asarray([len(w) for w in windows], dtype=float)
        if counts.size < 2:
            raise DetectorError("frequency IDS needs >= 2 clean windows")
        self.mean_count = float(counts.mean())
        self.std_count = float(max(counts.std(), 1.0))

    def _judge(self, window: Trace) -> Tuple[float, bool]:
        deviation = abs(len(window) - self.mean_count) / self.std_count
        return deviation, deviation > self.band_sigmas

    def _scores_columns(self, ct, grid, seg_starts, seg_ends, judged):
        scores = np.abs((seg_ends - seg_starts) - self.mean_count) / self.std_count
        return scores, scores > self.band_sigmas

    def memory_slots(self) -> int:
        """One running count plus the two trained band parameters."""
        return 3

"""The long-running queue worker behind ``repro-ids worker``.

A worker is the queue's unit of horizontal scale: point any number of
them — on this host or any host sharing the queue directory — at the
same queue and every coordinator's scans speed up.  The loop is
deliberately boring: claim the oldest task (atomic rename), execute it,
publish the result, repeat; sleep briefly when the queue is empty.

Shutdown is cooperative and triple-redundant: a ``stop`` file in the
queue directory (reaches every worker on every host), SIGTERM/SIGINT
(reaches this process), or ``max_idle_s`` of continuous emptiness
(lets CI workers drain a queue and exit on their own).  A worker always
finishes its in-flight task before exiting — results are atomic, so a
shutdown mid-fleet never publishes a torn verdict.
"""

from __future__ import annotations

import signal
import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro.runtime.queue import (
    STOP_FILENAME,
    claim_next_task,
    execute_claimed_task,
    queue_dirs,
)

__all__ = ["WorkerStats", "run_worker"]


class WorkerStats:
    """What one worker run accomplished (returned by :func:`run_worker`).

    Also the per-worker telemetry unit: ``execute_task`` accumulates
    engine-cache hit/miss counts and busy time here, and the network
    worker ships :meth:`to_wire` inside every heartbeat renewal so the
    coordinator's ``stats`` verb can report live per-worker state.
    """

    def __init__(self) -> None:
        self.executed = 0
        self.quarantined = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.busy_s = 0.0
        self.last_task_s: Optional[float] = None
        self.stop_reason: Optional[str] = None

    @property
    def cache_hit_rate(self) -> float:
        built = self.cache_hits + self.cache_misses
        return self.cache_hits / built if built else 0.0

    def to_wire(self) -> dict:
        return {
            "executed": self.executed,
            "quarantined": self.quarantined,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "busy_s": round(self.busy_s, 6),
            "last_task_s": (
                None if self.last_task_s is None else round(self.last_task_s, 6)
            ),
        }

    def summary(self) -> str:
        extra = f", {self.quarantined} quarantined" if self.quarantined else ""
        cache = ""
        if self.cache_hits or self.cache_misses:
            cache = (
                f", {self.cache_hits}/{self.cache_hits + self.cache_misses} "
                f"engine-cache hits"
            )
        return (
            f"{self.executed} tasks executed{extra}{cache} "
            f"(stopped: {self.stop_reason or 'n/a'})"
        )


def run_worker(
    queue_dir: Union[str, Path],
    poll_s: float = 0.2,
    max_idle_s: Optional[float] = None,
    max_tasks: Optional[int] = None,
    stop_file: Union[str, Path, None] = None,
    handle_signals: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> WorkerStats:
    """Serve a queue directory until told to stop.

    Parameters
    ----------
    queue_dir:
        The shared queue directory (created if missing).
    poll_s:
        Sleep between polls of an empty queue.
    max_idle_s:
        Exit after this long with no claimable task (``None``: serve
        forever).  Idle time resets on every executed task.
    max_tasks:
        Exit after executing this many tasks (useful in tests).
    stop_file:
        Extra stop-file path to watch besides ``<queue>/stop``.
    handle_signals:
        Install SIGTERM/SIGINT handlers that request a graceful stop
        (main thread only — the CLI turns this on, library callers
        running workers in threads leave it off).
    log:
        Optional per-event logger (one line per executed task).
    """
    queue_dir = Path(queue_dir)
    queue_dirs(queue_dir)
    stop_files = [queue_dir / STOP_FILENAME]
    if stop_file is not None:
        stop_files.append(Path(stop_file))

    stats = WorkerStats()
    stop_requested = []

    def _request_stop(signum, frame):  # pragma: no cover - signal timing
        stop_requested.append(signal.Signals(signum).name)

    previous = {}
    if handle_signals:
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.signal(sig, _request_stop)
    scanners: dict = {}
    idle_since = time.monotonic()
    try:
        while True:
            if stop_requested:
                stats.stop_reason = stop_requested[0]
                break
            hit = next((f for f in stop_files if f.exists()), None)
            if hit is not None:
                stats.stop_reason = f"stop file {hit}"
                break
            claimed = claim_next_task(queue_dir)
            if claimed is None:
                if (
                    max_idle_s is not None
                    and time.monotonic() - idle_since >= max_idle_s
                ):
                    stats.stop_reason = f"idle {max_idle_s:g}s"
                    break
                time.sleep(poll_s)
                continue
            name = claimed.name
            if execute_claimed_task(claimed, scanners, stats=stats):
                stats.executed += 1
                if log is not None:
                    log(f"worker: executed {name}")
            else:
                stats.quarantined += 1
                if log is not None:
                    log(f"worker: quarantined malformed task {name}")
            idle_since = time.monotonic()
            if max_tasks is not None and stats.executed >= max_tasks:
                stats.stop_reason = f"max tasks {max_tasks}"
                break
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return stats

"""Event-driven bus: timing, arbitration integration, filters, errors."""

import pytest

from repro.can.bus import Bus, BusConfig, BusMonitor
from repro.can.constants import IFS_BITS, bit_time_us
from repro.can.node import MessageSpec, PeriodicECU
from repro.exceptions import BusConfigError


def make_ecu(name, can_id, period_us, offset_us=0, seed=0):
    return PeriodicECU(
        name, [MessageSpec(can_id, period_us=period_us, offset_us=offset_us)], seed=seed
    )


class TestBusConfig:
    def test_default_baud_rate_is_middle_speed(self):
        assert Bus().bit_us == 8  # 125 kbit/s

    def test_high_speed(self):
        assert Bus(BusConfig(baud_rate=500_000)).bit_us == 2

    def test_rejects_bad_error_rate(self):
        with pytest.raises(BusConfigError):
            BusConfig(error_rate=1.0)

    def test_rejects_non_integer_bit_time(self):
        with pytest.raises(ValueError):
            BusConfig(baud_rate=333_333)


class TestTopology:
    def test_duplicate_names_rejected(self):
        bus = Bus()
        bus.attach(make_ecu("A", 0x100, 10_000))
        with pytest.raises(BusConfigError):
            bus.attach(make_ecu("A", 0x200, 10_000))

    def test_node_lookup(self):
        bus = Bus()
        ecu = bus.attach(make_ecu("A", 0x100, 10_000))
        assert bus.node("A") is ecu
        with pytest.raises(BusConfigError):
            bus.node("missing")

    def test_rejects_nonpositive_duration(self):
        bus = Bus()
        with pytest.raises(BusConfigError):
            bus.run(0)


class TestTransmission:
    def test_single_node_transmits_on_schedule(self):
        bus = Bus()
        bus.attach(make_ecu("A", 0x100, 10_000))
        trace = bus.run(95_000)
        # Releases at 0, 10ms, ..., 90ms -> 10 frames.
        assert len(trace) == 10
        assert all(r.can_id == 0x100 for r in trace)

    def test_frame_timestamps_reflect_wire_time(self):
        bus = Bus()
        bus.attach(make_ecu("A", 0x100, 50_000))
        trace = bus.run(60_000)
        first = trace[0]
        # Completion = release (0) + wire bits * bit time.
        assert first.timestamp_us > 0
        assert first.timestamp_us % bus.bit_us == 0

    def test_interframe_space_enforced(self):
        bus = Bus()
        # Two nodes releasing simultaneously with different priorities.
        bus.attach(make_ecu("A", 0x100, 10_000))
        bus.attach(make_ecu("B", 0x200, 10_000))
        trace = bus.run(30_000)
        gaps = [
            trace[i + 1].timestamp_us - trace[i].timestamp_us
            for i in range(len(trace) - 1)
        ]
        # Back-to-back frames are separated by at least frame + IFS time.
        min_frame_us = 40 * bus.bit_us
        assert all(g >= min_frame_us + IFS_BITS * bus.bit_us for g in gaps[:2])

    def test_priority_wins_simultaneous_release(self):
        bus = Bus()
        bus.attach(make_ecu("low", 0x400, 100_000))
        bus.attach(make_ecu("high", 0x050, 100_000))
        trace = bus.run(50_000)
        assert trace[0].can_id == 0x050
        assert trace[1].can_id == 0x400  # loser retransmits right after

    def test_loser_retransmits(self):
        bus = Bus()
        bus.attach(make_ecu("low", 0x400, 100_000))
        bus.attach(make_ecu("high", 0x050, 100_000))
        bus.run(100_000)
        low = bus.node("low")
        assert low.tx_lost >= 1
        assert low.tx_success >= 1

    def test_run_is_resumable(self):
        bus_a = Bus()
        bus_a.attach(make_ecu("A", 0x100, 10_000))
        bus_a.run(50_000)
        bus_a.run(50_000)

        bus_b = Bus()
        bus_b.attach(make_ecu("A", 0x100, 10_000))
        bus_b.run(100_000)
        assert len(bus_a.trace) == len(bus_b.trace)

    def test_source_recorded(self):
        bus = Bus()
        bus.attach(make_ecu("A", 0x100, 10_000))
        trace = bus.run(20_000)
        assert trace[0].source == "A"
        assert not trace[0].is_attack


class TestListeners:
    def test_monitor_sees_all_frames(self):
        bus = Bus()
        bus.attach(make_ecu("A", 0x100, 10_000))
        monitor = BusMonitor()
        bus.attach_listener(monitor)
        bus.run(50_000)
        assert len(monitor.trace) == len(bus.trace)

    def test_listener_callable(self):
        bus = Bus()
        bus.attach(make_ecu("A", 0x100, 10_000))
        seen = []
        bus.attach_listener(seen.append)
        bus.run(25_000)
        assert len(seen) == len(bus.trace)


class TestTransmitterFilter:
    def test_filter_blocks_unassigned_id(self):
        bus = Bus()
        bus.attach(make_ecu("A", 0x100, 10_000), tx_filter={0x200})
        trace = bus.run(50_000)
        assert len(trace) == 0
        assert bus.node("A").tx_filtered >= 4
        assert bus.stats.filtered_frames >= 4

    def test_filter_allows_assigned_id(self):
        bus = Bus()
        bus.attach(make_ecu("A", 0x100, 10_000), tx_filter={0x100})
        trace = bus.run(50_000)
        assert len(trace) == 5


class TestErrorInjection:
    def test_errors_reduce_throughput_and_count(self):
        clean = Bus(BusConfig(error_rate=0.0))
        clean.attach(make_ecu("A", 0x100, 5_000))
        clean.run(500_000)

        noisy = Bus(BusConfig(error_rate=0.3, error_seed=42))
        noisy.attach(make_ecu("A", 0x100, 5_000))
        noisy.run(500_000)

        assert noisy.stats.frames_error > 0
        # Retransmission recovers the frames: totals stay close.
        assert len(noisy.trace) >= len(clean.trace) - 5

    def test_error_increments_tec(self):
        bus = Bus(BusConfig(error_rate=0.5, error_seed=1))
        bus.attach(make_ecu("A", 0x100, 5_000))
        bus.run(100_000)
        node = bus.node("A")
        assert node.tx_errors > 0

    def test_relentless_errors_drive_bus_off(self):
        bus = Bus(BusConfig(error_rate=0.95, error_seed=1))
        bus.attach(make_ecu("A", 0x100, 1_000))
        bus.run(2_000_000)
        node = bus.node("A")
        assert not node.enabled
        assert "bus-off" in node.disabled_reason


class TestStats:
    def test_busload_between_zero_and_one(self):
        bus = Bus()
        bus.attach(make_ecu("A", 0x100, 5_000))
        bus.run(200_000)
        load = bus.stats.busload(bus.now_us)
        assert 0.0 < load < 1.0

    def test_contended_rounds_counted(self):
        bus = Bus()
        bus.attach(make_ecu("A", 0x100, 10_000))
        bus.attach(make_ecu("B", 0x200, 10_000))
        bus.run(50_000)
        assert bus.stats.contended_rounds >= 1

    def test_wins_per_node(self):
        bus = Bus()
        bus.attach(make_ecu("A", 0x100, 10_000))
        bus.run(50_000)
        assert bus.stats.wins_by_node["A"] == len(bus.trace)

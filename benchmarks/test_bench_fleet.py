"""Fleet-scale incremental scanning: the ledger must pay for itself.

The archive benchmarks measure how fast a cold scan runs; these measure
how much of that work the fleet ledger *avoids* on repeat runs — the
daily-fleet-monitoring deployment — while asserting the incremental
report is bit-identical to a cold re-scan (correctness is part of the
claim, not a separate test).
"""

import os

from conftest import append_bench, save_artifact
from repro.experiments import fleet as fleet_experiment

#: Sizing knobs (kept modest by default; scale up via the environment
#: for fleet-regime measurements).
FLEET_VEHICLES = int(os.environ.get("REPRO_BENCH_FLEET_VEHICLES", "2"))
FLEET_CAPTURES = int(os.environ.get("REPRO_BENCH_FLEET_CAPTURES", "3"))
FLEET_FRAMES = int(os.environ.get("REPRO_BENCH_FLEET_FRAMES", "60000"))


class TestFleetIncrementalScan:
    def test_bench_fleet_watch_mode(self, setup):
        """Cold vs warm vs incremental passes over a synthetic fleet
        store; the artifact table lands in results/fleet.txt."""
        result = fleet_experiment.run(
            setup.template,
            setup.config,
            n_vehicles=FLEET_VEHICLES,
            captures_per_vehicle=FLEET_CAPTURES,
            frames_per_capture=FLEET_FRAMES,
            workers=1,
            catalog=setup.catalog,
        )
        save_artifact("fleet", result.render())
        append_bench("fleet", result.bench_records())
        # Bit-identical incremental results are the subsystem's headline
        # guarantee — a perf number without it is meaningless.
        assert result.parity_ok, result.render()
        # The incremental pass must only have scanned the appended
        # captures (one per vehicle); everything else comes back cached.
        assert result.incremental_scanned == FLEET_VEHICLES, result.render()
        assert result.incremental_cached == FLEET_VEHICLES * FLEET_CAPTURES
        # A fully-cached pass skips all detection work; even with the
        # fingerprinting cost it must comfortably beat the cold scan —
        # a speedup ratio, so only asserted with a core to spare.
        if (os.cpu_count() or 1) > 1:
            assert result.warm_speedup > 1.0, result.render()
        assert result.alarmed_vehicles == FLEET_VEHICLES, result.render()

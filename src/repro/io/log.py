"""candump-compatible text logs.

Format (one frame per line, as produced by ``candump -L``)::

    (1620000123.456789) can0 1A4#DEADBEEF

The fractional seconds carry microsecond resolution, which matches the
simulator clock exactly.  Two optional trailing comment fields carry the
simulator's ground truth so traces can round-trip losslessly::

    (0.012345) can0 1A4#DEADBEEF ; src=ECU_Powertrain attack=0
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, TextIO, Union

from repro.can.constants import MAX_BASE_ID, SECOND_US
from repro.exceptions import TraceFormatError
from repro.io.trace import Trace, TraceRecord

_LINE_RE = re.compile(
    r"^\((?P<secs>\d+)\.(?P<usecs>\d{6})\)\s+"
    r"(?P<iface>\S+)\s+"
    r"(?P<id>[0-9A-Fa-f]{3,8})#(?P<data>(?:[0-9A-Fa-f]{2})*)"
    r"(?:\s*;\s*src=(?P<src>\S+)\s+attack=(?P<attack>[01]))?\s*$"
)


def format_record(record: TraceRecord, iface: str = "can0") -> str:
    """Render one record as a candump line (with ground-truth comment)."""
    secs, usecs = divmod(record.timestamp_us, SECOND_US)
    width = 8 if record.extended else 3
    data = record.data.hex().upper()
    src = record.source or "-"
    return (
        f"({secs}.{usecs:06d}) {iface} {record.can_id:0{width}X}#{data}"
        f" ; src={src} attack={1 if record.is_attack else 0}"
    )


def parse_line(line: str) -> TraceRecord:
    """Parse one candump line into a :class:`TraceRecord`.

    Lines without the ground-truth comment get ``source=''`` and
    ``is_attack=False``.
    """
    match = _LINE_RE.match(line.strip())
    if match is None:
        raise TraceFormatError(f"unparseable candump line: {line!r}")
    timestamp_us = int(match["secs"]) * SECOND_US + int(match["usecs"])
    id_text = match["id"]
    can_id = int(id_text, 16)
    extended = len(id_text) > 3 or can_id > MAX_BASE_ID
    source = match["src"] if match["src"] not in (None, "-") else ""
    is_attack = match["attack"] == "1"
    return TraceRecord(
        timestamp_us=timestamp_us,
        can_id=can_id,
        data=bytes.fromhex(match["data"]),
        extended=extended,
        source=source,
        is_attack=is_attack,
    )


def write_candump(
    trace: Iterable[TraceRecord],
    path: Union[str, Path],
    iface: str = "can0",
) -> None:
    """Write a trace to ``path`` in candump format."""
    with open(path, "w", encoding="ascii") as handle:
        for record in trace:
            handle.write(format_record(record, iface))
            handle.write("\n")


def read_candump(path: Union[str, Path]) -> Trace:
    """Read a candump file back into a :class:`Trace`.

    Blank lines and lines starting with ``#`` are skipped.
    """
    trace = Trace()
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                trace.append(parse_line(stripped))
            except TraceFormatError as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
    return trace

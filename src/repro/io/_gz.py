"""Transparent gzip handling shared by the log readers/writers.

Fleet archives keep months of captures; candump logs compress ~10x, so
the IO layer reads and writes ``*.gz`` twins of both text formats
transparently (ROADMAP "richer archive formats").  Compression is a
property of the *file name* — ``drive.log.gz`` is a gzipped candump
log, ``drive.csv.gz`` a gzipped CSV trace — and every reader produces
results identical to reading the uncompressed file.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Union


def is_gzip_path(path: Union[str, Path]) -> bool:
    """True when the file name marks gzip compression (``.gz``)."""
    return Path(path).suffix.lower() == ".gz"


def open_text(path: Union[str, Path], mode: str):
    """Open a log file for text IO, decompressing/compressing ``.gz``.

    ``mode`` is ``"r"`` or ``"w"``; encoding is always ASCII (both log
    formats are) and newline handling matches the plain ``open`` call
    the CSV writer needs (``newline=""``).
    """
    if is_gzip_path(path):
        return gzip.open(path, mode + "t", encoding="ascii", newline="")
    return open(path, mode, encoding="ascii", newline="")


def read_bytes(path: Union[str, Path]) -> bytes:
    """Read a whole log file as bytes, decompressing ``.gz``.

    The vectorised parsers consume one flat byte buffer; gzipped
    captures simply decompress into that buffer first.
    """
    if is_gzip_path(path):
        with gzip.open(path, "rb") as handle:
            return handle.read()
    with open(path, "rb") as handle:
        return handle.read()

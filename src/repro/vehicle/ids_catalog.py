"""The vehicle's identifier catalog.

The paper reports that its 2016 Ford Fusion uses 223 identifiers, i.e.
10.88 % of the 2048-value 11-bit space, and that identifiers encode both
priority and function.  :func:`ford_fusion_catalog` generates a synthetic
catalog with the same cardinality and the usual automotive structure:
high-priority, fast powertrain/chassis messages at numerically small
identifiers, slower body/comfort traffic in the middle, diagnostics at
the top of the range.

Entries are either *periodic* (fixed nominal period with small jitter) or
*event-driven* (Poisson arrivals whose rate depends on the driving
scenario, e.g. audio or light controls — the variation the paper averaged
over when building the golden template).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.can.constants import MAX_BASE_ID
from repro.exceptions import BusConfigError

#: Total number of active identifiers on the paper's test vehicle.
FORD_FUSION_ID_COUNT = 223

#: Milliseconds-to-microseconds shorthand used in the period tables.
_MS = 1000


@dataclass(frozen=True)
class CatalogEntry:
    """One catalog row: an identifier and how it is produced.

    Exactly one of ``period_us`` / ``base_rate_hz`` is set, matching
    :class:`repro.can.MessageSpec` semantics.  ``tag`` groups event
    messages by the control they belong to (``audio``, ``lights``, ...)
    so driving scenarios can modulate them.
    """

    can_id: int
    name: str
    cluster: str
    ecu: str
    period_us: Optional[int] = None
    base_rate_hz: Optional[float] = None
    jitter_frac: float = 0.001
    dlc: int = 8
    tag: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.can_id <= MAX_BASE_ID:
            raise BusConfigError(f"catalog id 0x{self.can_id:X} out of 11-bit range")
        if (self.period_us is None) == (self.base_rate_hz is None):
            raise BusConfigError(
                f"catalog id 0x{self.can_id:X}: exactly one of period/rate required"
            )
        if not 0 <= self.dlc <= 8:
            raise BusConfigError(f"catalog id 0x{self.can_id:X}: dlc out of range")

    @property
    def is_periodic(self) -> bool:
        """True for fixed-period entries."""
        return self.period_us is not None


class VehicleCatalog:
    """An ordered, validated collection of :class:`CatalogEntry`."""

    def __init__(self, entries: Sequence[CatalogEntry]) -> None:
        if not entries:
            raise BusConfigError("catalog must not be empty")
        ids = [entry.can_id for entry in entries]
        if len(set(ids)) != len(ids):
            raise BusConfigError("catalog contains duplicate identifiers")
        self._entries: Tuple[CatalogEntry, ...] = tuple(
            sorted(entries, key=lambda e: e.can_id)
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> CatalogEntry:
        return self._entries[index]

    @property
    def ids(self) -> Tuple[int, ...]:
        """All identifiers in ascending numerical order."""
        return tuple(entry.can_id for entry in self._entries)

    def id_set(self) -> FrozenSet[int]:
        """The identifier whitelist (for gateway filters and inference)."""
        return frozenset(entry.can_id for entry in self._entries)

    def entry(self, can_id: int) -> CatalogEntry:
        """Look up the entry for an identifier."""
        for candidate in self._entries:
            if candidate.can_id == can_id:
                return candidate
        raise KeyError(f"identifier 0x{can_id:03X} not in catalog")

    def by_ecu(self) -> Dict[str, List[CatalogEntry]]:
        """Group entries by owning ECU."""
        grouped: Dict[str, List[CatalogEntry]] = {}
        for entry in self._entries:
            grouped.setdefault(entry.ecu, []).append(entry)
        return grouped

    def by_cluster(self) -> Dict[str, List[CatalogEntry]]:
        """Group entries by functional cluster."""
        grouped: Dict[str, List[CatalogEntry]] = {}
        for entry in self._entries:
            grouped.setdefault(entry.cluster, []).append(entry)
        return grouped

    def periodic_entries(self) -> List[CatalogEntry]:
        """Entries with a fixed period."""
        return [e for e in self._entries if e.is_periodic]

    def event_entries(self) -> List[CatalogEntry]:
        """Event-driven entries."""
        return [e for e in self._entries if not e.is_periodic]

    def coverage(self) -> float:
        """Fraction of the 11-bit space in use (the paper quotes 10.88 %)."""
        return len(self._entries) / (MAX_BASE_ID + 1)

    def nominal_rate_hz(self) -> float:
        """Aggregate nominal message rate with every event source at base rate."""
        rate = 0.0
        for entry in self._entries:
            if entry.is_periodic:
                rate += 1_000_000 / entry.period_us
            else:
                rate += entry.base_rate_hz
        return rate


# ---------------------------------------------------------------------------
# Catalog generation
# ---------------------------------------------------------------------------

#: Cluster layout: (cluster, ECUs, id range, count, period menu with weights).
#: Period menu entries are (period_us or None, weight); None selects an
#: event-driven message whose tag/rate is drawn from _EVENT_MENU.
_CLUSTER_PLAN = [
    (
        "powertrain",
        ("ECM", "TCM", "ABS"),
        (0x040, 0x200),
        40,
        [(50 * _MS, 0.15), (100 * _MS, 0.35), (200 * _MS, 0.50)],
    ),
    (
        "chassis",
        ("EPS", "SCM", "YRS"),
        (0x200, 0x380),
        45,
        [(100 * _MS, 0.20), (200 * _MS, 0.35), (500 * _MS, 0.45)],
    ),
    (
        "body",
        ("BCM", "DDM", "PDM", "LCM"),
        (0x380, 0x500),
        55,
        [(200 * _MS, 0.15), (500 * _MS, 0.35), (1000 * _MS, 0.40), (None, 0.10)],
    ),
    (
        "comfort",
        ("HVAC", "ACM", "TCU", "IPC"),
        (0x500, 0x700),
        48,
        [(500 * _MS, 0.30), (1000 * _MS, 0.36), (2000 * _MS, 0.18), (None, 0.16)],
    ),
    (
        "diagnostics",
        ("GWM", "OBD"),
        (0x700, 0x800),
        35,
        [(1000 * _MS, 0.30), (2000 * _MS, 0.40), (None, 0.30)],
    ),
]

#: Event tags per cluster with their base arrival rates (Hz).  Rates are
#: deliberately low: the paper's central observation is that the entropy
#: of normal driving is almost perfectly steady, i.e. the scenario-
#: dependent share of the traffic is minute next to the periodic bulk.
_EVENT_MENU = {
    "body": [("lights", 0.4), ("doors", 0.15), ("wipers", 0.25)],
    "comfort": [("audio", 0.5), ("hvac", 0.2), ("cruise", 0.3)],
    "diagnostics": [("diag", 0.04)],
}


def _draw_cluster_ids(
    rng: np.random.Generator, lo: int, hi: int, count: int
) -> List[int]:
    """Draw ``count`` structured identifiers from ``[lo, hi)``.

    OEM identifier maps are not uniform random: messages sit on small
    strides (multiples of 4 or 8) with occasional +1/+2 companions.  The
    structure matters for the IDS — it skews the per-bit 1-probabilities
    away from 1/2, which is what makes the binary entropy respond in
    first order to injections (a uniformly random catalog would leave
    most bits near p = 0.5, where H_b is flat).
    """
    stride = 4
    slots = np.arange(lo // stride, hi // stride)
    chosen = rng.choice(len(slots), size=count, replace=False)
    offsets = rng.choice([0, 1, 2, 3], size=count, p=[0.70, 0.15, 0.10, 0.05])
    ids = sorted(int(slots[c]) * stride + int(o) for c, o in zip(chosen, offsets))
    # Stride collisions are impossible (one id per slot); clip range edge.
    return [min(i, hi - 1) for i in ids]


def ford_fusion_catalog(seed: int = 0) -> VehicleCatalog:
    """Generate the synthetic 223-identifier catalog.

    The generation is deterministic in ``seed`` and mirrors three pieces
    of real identifier-map structure that the paper's method relies on:

    * identifiers sit on small strides inside functional sub-ranges
      (skewing per-bit probabilities away from 1/2);
    * within each cluster the fastest periods go to the numerically
      smallest identifiers (priority mirrors importance), so traffic
      weight is concentrated at dominant identifiers;
    * event-driven messages occupy the top of each cluster's range.

    Period menus are chosen so the aggregate busload on a 125 kbit/s
    middle-speed bus lands near 55 %, giving the arbitration-driven
    injection-rate curve of the paper's Fig. 3 a realistic slope.
    """
    rng = np.random.default_rng(seed)
    entries: List[CatalogEntry] = []
    for cluster, ecus, (lo, hi), count, menu in _CLUSTER_PLAN:
        if hi - lo < count * 4:
            raise BusConfigError(f"cluster {cluster}: range too small for {count} ids")
        ids = _draw_cluster_ids(rng, lo, hi, count)
        # Sort menu fastest-first; periodic entries take the low end of
        # the cluster's identifier range, events the high end.
        periodic_menu = sorted(
            ((p, w) for p, w in menu if p is not None), key=lambda pw: pw[0]
        )
        event_weight = sum(w for p, w in menu if p is None)
        total_weight = sum(w for _p, w in menu)
        n_event = int(round(count * event_weight / total_weight))
        n_periodic = count - n_event
        # Contiguous blocks of the ascending id list per period class.
        periodic_weights = np.array([w for _p, w in periodic_menu], dtype=float)
        periodic_weights /= periodic_weights.sum()
        block_sizes = np.floor(periodic_weights * n_periodic).astype(int)
        while block_sizes.sum() < n_periodic:
            block_sizes[int(rng.integers(len(block_sizes)))] += 1
        event_menu = _EVENT_MENU.get(cluster, [("misc", 0.1)])
        cursor = 0
        for (period, _w), size in zip(periodic_menu, block_sizes):
            for can_id in ids[cursor : cursor + size]:
                entries.append(
                    CatalogEntry(
                        can_id=can_id,
                        name=f"{cluster.upper()}_{can_id:03X}",
                        cluster=cluster,
                        ecu=ecus[can_id % len(ecus)],
                        period_us=int(period),
                        dlc=int(rng.integers(2, 9)),
                    )
                )
            cursor += size
        for index, can_id in enumerate(ids[cursor:]):
            tag, rate = event_menu[index % len(event_menu)]
            entries.append(
                CatalogEntry(
                    can_id=can_id,
                    name=f"{cluster.upper()}_{can_id:03X}",
                    cluster=cluster,
                    ecu=ecus[can_id % len(ecus)],
                    base_rate_hz=rate,
                    dlc=int(rng.integers(2, 9)),
                    tag=tag,
                )
            )
    catalog = VehicleCatalog(entries)
    assert len(catalog) == FORD_FUSION_ID_COUNT, len(catalog)
    return catalog

"""Vehicle simulation glue.

:class:`VehicleSimulation` wires a catalog, a driving scenario and
(optionally) attacker nodes onto a :class:`repro.can.Bus`, and provides
the capture helpers the experiments use: run for a duration, fetch the
trace, compute busload.

:func:`simulate_drive` is the one-call convenience used everywhere a
clean capture is needed (template construction, baseline fitting).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.can.bus import Bus, BusConfig
from repro.can.constants import SECOND_US
from repro.can.gateway import GatewayFilter
from repro.can.node import Node
from repro.io.trace import Trace
from repro.vehicle.driving import DrivingScenario, scenario_by_name
from repro.vehicle.ecu_profiles import assignments_for, build_ecus
from repro.vehicle.ids_catalog import VehicleCatalog, ford_fusion_catalog


class VehicleSimulation:
    """A vehicle's CAN segment, ready to run.

    Parameters
    ----------
    catalog:
        The identifier catalog; defaults to the synthetic Ford Fusion.
    scenario:
        Driving scenario (name or object); defaults to ``city``.
    seed:
        Seeds ECU offsets, jitter and event arrivals.
    bus_config:
        Optional bus configuration override.
    with_gateway:
        Attach a :class:`GatewayFilter` with the catalog whitelist and
        per-ECU assignments; reachable as :attr:`gateway`.
    """

    def __init__(
        self,
        catalog: Optional[VehicleCatalog] = None,
        scenario: Optional[object] = None,
        seed: int = 0,
        bus_config: Optional[BusConfig] = None,
        with_gateway: bool = False,
    ) -> None:
        self.catalog = catalog or ford_fusion_catalog(seed=0)
        if scenario is None:
            scenario = "city"
        if isinstance(scenario, str):
            scenario = scenario_by_name(scenario)
        self.scenario: DrivingScenario = scenario
        self.seed = seed
        self.bus = Bus(bus_config or BusConfig())
        self.ecus = build_ecus(self.catalog, self.scenario, seed=seed)
        for ecu in self.ecus:
            self.bus.attach(ecu)
        self.gateway: Optional[GatewayFilter] = None
        if with_gateway:
            self.gateway = GatewayFilter(
                known_ids=self.catalog.id_set(),
                assignments=assignments_for(self.catalog),
            )
            self.bus.attach_listener(self.gateway.on_frame)

    # ------------------------------------------------------------------
    def add_node(self, node: Node, tx_filter: Optional[Iterable[int]] = None) -> Node:
        """Attach an extra node (typically an attacker) to the bus."""
        return self.bus.attach(node, tx_filter=tx_filter)

    def run(self, duration_s: float) -> Trace:
        """Advance the simulation by ``duration_s`` seconds."""
        self.bus.run(int(duration_s * SECOND_US))
        return self.bus.trace

    @property
    def trace(self) -> Trace:
        """Everything captured so far."""
        return self.bus.trace

    def busload(self) -> float:
        """Fraction of elapsed time the bus carried bits."""
        return self.bus.stats.busload(self.bus.now_us)


def simulate_drive(
    duration_s: float,
    scenario: object = "city",
    seed: int = 0,
    catalog: Optional[VehicleCatalog] = None,
    bus_config: Optional[BusConfig] = None,
) -> Trace:
    """Record one clean drive and return its trace.

    Equivalent to the paper's Vehicle-Spy captures of normal driving.
    """
    sim = VehicleSimulation(
        catalog=catalog, scenario=scenario, seed=seed, bus_config=bus_config
    )
    return sim.run(duration_s)


def record_template_windows(
    n_windows: int,
    window_s: float,
    seed: int = 0,
    catalog: Optional[VehicleCatalog] = None,
    scenarios: Optional[Sequence[object]] = None,
) -> List[Trace]:
    """Record ``n_windows`` clean windows over diverse driving scenarios.

    This reproduces the paper's golden-template data collection ("35
    measurements from diverse driving behaviors"): each window comes from
    its own simulation seeded differently, cycling through the provided
    scenarios (standard set by default, randomized mixes interleaved).
    """
    import numpy as np

    from repro.vehicle.driving import STANDARD_SCENARIOS, random_scenario

    rng = np.random.default_rng(seed)
    windows: List[Trace] = []
    pool: List[object] = list(scenarios) if scenarios else list(STANDARD_SCENARIOS)
    for index in range(n_windows):
        if scenarios is None and index % 3 == 2:
            scenario = random_scenario(rng)
        else:
            scenario = pool[index % len(pool)]
        trace = simulate_drive(
            duration_s=window_s,
            scenario=scenario,
            seed=int(rng.integers(1 << 31)),
            catalog=catalog,
        )
        windows.append(trace)
    return windows

"""Sliding-window detector: equivalence, latency advantage, invariants."""

import numpy as np
import pytest

from repro.core.config import IDSConfig
from repro.core.detector import EntropyDetector
from repro.core.sliding import SlidingEntropyDetector
from repro.core.template import TemplateBuilder
from repro.exceptions import DetectorError
from repro.io.trace import Trace, TraceRecord


def uniform_trace(ids, start_us=0, spacing_us=1000, attack_ids=()):
    return Trace(
        TraceRecord(
            timestamp_us=start_us + i * spacing_us,
            can_id=can_id,
            is_attack=can_id in attack_ids,
        )
        for i, can_id in enumerate(ids)
    )


@pytest.fixture()
def tiny():
    config = IDSConfig(
        window_us=100_000, min_window_messages=10, template_windows=2, alpha=3.0
    )
    builder = TemplateBuilder(config)
    ids = [0x155, 0x2AA] * 40
    builder.add_trace(uniform_trace(ids))
    builder.add_trace(uniform_trace(ids))
    return config, builder.build()


class TestConstruction:
    def test_rejects_indivisible_stride(self, tiny):
        config, template = tiny
        with pytest.raises(DetectorError):
            SlidingEntropyDetector(template, config, slices=3)  # 100ms/3

    def test_rejects_zero_slices(self, tiny):
        config, template = tiny
        with pytest.raises(DetectorError):
            SlidingEntropyDetector(template, config, slices=0)

    def test_rejects_width_mismatch(self, tiny):
        _config, template = tiny
        with pytest.raises(DetectorError):
            SlidingEntropyDetector(template, IDSConfig(n_bits=29), slices=2)


class TestBehaviour:
    def test_single_slice_matches_tumbling(self, tiny):
        config, template = tiny
        trace = uniform_trace([0x155, 0x2AA, 0x001] * 120, attack_ids={0x001})
        tumbling = EntropyDetector(template, config).scan(trace)
        sliding = SlidingEntropyDetector(template, config, slices=1).scan(trace)
        assert len(sliding) == len(tumbling)
        for a, b in zip(sliding, tumbling):
            assert a.n_messages == b.n_messages
            assert a.alarm == b.alarm

    def test_clean_traffic_quiet(self, tiny):
        config, template = tiny
        detector = SlidingEntropyDetector(template, config, slices=4)
        windows = detector.scan(uniform_trace([0x155, 0x2AA] * 300))
        assert not any(w.alarm for w in windows)

    def test_injection_alarms(self, tiny):
        config, template = tiny
        detector = SlidingEntropyDetector(template, config, slices=4)
        windows = detector.scan(
            uniform_trace([0x155, 0x2AA, 0x001] * 200, attack_ids={0x001})
        )
        assert any(w.alarm for w in windows)

    def test_sliding_reacts_before_tumbling(self, tiny):
        """The latency advantage: the attack starts mid-window; sliding
        strides alarm before the tumbling window closes."""
        config, template = tiny
        clean = [0x155, 0x2AA] * 75  # 150 msgs = 150ms of clean lead-in
        attacked = [0x155, 0x2AA, 0x001] * 200
        trace = uniform_trace(clean + attacked, attack_ids={0x001})

        def first_alarm(windows):
            for window in windows:
                if window.alarm:
                    return window.t_end_us
            return None

        tumbling = first_alarm(EntropyDetector(template, config).scan(trace))
        sliding = first_alarm(
            SlidingEntropyDetector(template, config, slices=4).scan(trace)
        )
        assert sliding is not None and tumbling is not None
        assert sliding <= tumbling

    def test_window_population_stays_bounded(self, tiny):
        config, template = tiny
        detector = SlidingEntropyDetector(template, config, slices=4)
        windows = detector.scan(uniform_trace([0x155, 0x2AA] * 500))
        full = [w for w in windows if w.judged]
        expected = config.window_us // 1000  # one message per ms
        for window in full:
            assert window.n_messages == pytest.approx(expected, abs=8)

    def test_attack_message_accounting(self, tiny):
        config, template = tiny
        detector = SlidingEntropyDetector(template, config, slices=4)
        trace = uniform_trace([0x155, 0x2AA, 0x001] * 100, attack_ids={0x001})
        windows = detector.scan(trace)
        # Sliding windows overlap, so attack messages are counted up to
        # `slices` times in total, never more.
        total = sum(w.n_attack_messages for w in windows)
        assert total <= 4 * trace.attack_count

    def test_out_of_order_rejected(self, tiny):
        config, template = tiny
        detector = SlidingEntropyDetector(template, config, slices=2)
        detector.feed(TraceRecord(timestamp_us=1000, can_id=0x155))
        with pytest.raises(DetectorError):
            detector.feed(TraceRecord(timestamp_us=10, can_id=0x155))

    def test_alerts_emitted(self, tiny):
        config, template = tiny
        detector = SlidingEntropyDetector(template, config, slices=4)
        detector.scan(
            uniform_trace([0x155, 0x2AA, 0x001] * 200, attack_ids={0x001})
        )
        assert len(detector.sink) >= 1

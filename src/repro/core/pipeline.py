"""End-to-end IDS pipeline and its report.

:class:`IDSPipeline` glues the detector and the inference engine
together: feed it a captured trace and it returns a
:class:`DetectionReport` containing the per-window verdicts, the alerts,
the paper's evaluation metrics (detection rate, false-positive rate,
detection latency) and — when an identifier pool is available — the
inferred malicious-identifier candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.can.constants import SECOND_US
from repro.core.alerts import Alert, AlertSink
from repro.core.config import IDSConfig
from repro.core.detector import EntropyDetector, WindowResult
from repro.core.engine import BatchEntropyEngine
from repro.core.inference import InferenceEngine, InferenceResult
from repro.core.template import GoldenTemplate
from repro.exceptions import DetectorError
from repro.io.archive import CaptureArchive
from repro.io.columnar import ColumnTrace
from repro.io.trace import Trace


@dataclass
class DetectionReport:
    """Everything one pipeline run produced."""

    windows: List[WindowResult]
    alerts: List[Alert]
    inference: Optional[InferenceResult]

    # ------------------------------------------------------------------
    # Window-level aggregates
    # ------------------------------------------------------------------
    @property
    def judged_windows(self) -> List[WindowResult]:
        """Windows with enough messages to be judged."""
        return [w for w in self.windows if w.judged]

    @property
    def alarmed_windows(self) -> List[WindowResult]:
        """Windows that raised an alarm."""
        return [w for w in self.windows if w.alarm]

    @property
    def attack_windows(self) -> List[WindowResult]:
        """Judged windows containing at least one ground-truth attack message."""
        return [w for w in self.judged_windows if w.n_attack_messages > 0]

    @property
    def clean_windows(self) -> List[WindowResult]:
        """Judged windows with no attack messages."""
        return [w for w in self.judged_windows if w.n_attack_messages == 0]

    # ------------------------------------------------------------------
    # The paper's metrics
    # ------------------------------------------------------------------
    @property
    def detection_rate(self) -> float:
        """The paper's ``Dr``: detected injected messages over injected.

        A window alarm detects every injected message inside that
        window (the IDS judges windows, not individual frames).
        """
        total = sum(w.n_attack_messages for w in self.judged_windows)
        if total == 0:
            return 0.0
        detected = sum(w.n_attack_messages for w in self.alarmed_windows)
        return detected / total

    @property
    def false_positive_rate(self) -> float:
        """Alarmed clean windows over all clean windows."""
        clean = self.clean_windows
        if not clean:
            return 0.0
        return sum(1 for w in clean if w.alarm) / len(clean)

    @property
    def detection_latency_us(self) -> Optional[int]:
        """Time from the first attacked window start to the first alarm
        *at or after* that window.

        Alarms that fired before the attack began are false positives,
        not detections — counting one would clamp the latency to zero —
        so the measurement starts at the first attacked window and
        returns None when no alarm follows it.
        """
        attacked = self.attack_windows
        if not attacked:
            return None
        first = attacked[0]
        for window in self.alarmed_windows:
            if window.index >= first.index:
                return window.t_end_us - first.t_start_us
        return None

    def inference_hit_rate(self, true_ids: Sequence[int]) -> float:
        """Hit rate of the inferred candidates against the true IDs."""
        if self.inference is None:
            return 0.0
        return self.inference.hit_rate(true_ids)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable digest of the run."""
        lines = [
            f"windows: {len(self.windows)} total, {len(self.judged_windows)} judged, "
            f"{len(self.alarmed_windows)} alarmed",
            f"attack windows: {len(self.attack_windows)}, "
            f"clean windows: {len(self.clean_windows)}",
            f"detection rate: {self.detection_rate:.1%}",
            f"false positive rate: {self.false_positive_rate:.1%}",
        ]
        latency = self.detection_latency_us
        if latency is not None:
            lines.append(f"detection latency: {latency / SECOND_US:.2f}s")
        if self.inference is not None:
            ids = ", ".join(f"0x{c:03X}" for c in self.inference.candidates)
            lines.append(f"inferred candidates (rank order): {ids}")
            if self.inference.constraints:
                bits = ", ".join(
                    f"bit{b}={v}" for b, v in sorted(self.inference.constraints.items())
                )
                lines.append(f"bit constraints: {bits}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialisation (the fleet ledger persists scan results)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation.

        Lossless: every window, alert and inference field survives the
        round trip bit for bit (JSON floats are shortest-repr exact), so
        a report replayed from the fleet ledger is indistinguishable
        from one produced by a fresh scan.
        """
        return {
            "windows": [w.to_dict() for w in self.windows],
            "alerts": [a.to_dict() for a in self.alerts],
            "inference": None if self.inference is None else self.inference.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DetectionReport":
        """Inverse of :meth:`to_dict`."""
        try:
            windows = [WindowResult.from_dict(w) for w in payload["windows"]]
            alerts = [Alert.from_dict(a) for a in payload["alerts"]]
            inference = payload["inference"]
        except KeyError as exc:
            raise DetectorError(f"report dict missing field {exc}") from exc
        return cls(
            windows=windows,
            alerts=alerts,
            inference=None if inference is None else InferenceResult.from_dict(inference),
        )


def _pooled_detection_rate(reports) -> float:
    """The paper's Dr with messages pooled across several reports."""
    total = detected = 0
    for report in reports:
        total += sum(w.n_attack_messages for w in report.judged_windows)
        detected += sum(w.n_attack_messages for w in report.alarmed_windows)
    return detected / total if total else 0.0


def _pooled_false_positive_rate(reports) -> float:
    """Alarmed clean windows over all clean windows, pooled."""
    clean = alarmed = 0
    for report in reports:
        windows = report.clean_windows
        clean += len(windows)
        alarmed += sum(1 for w in windows if w.alarm)
    return alarmed / clean if clean else 0.0


@dataclass
class ArchiveReport:
    """Per-capture detection reports over one archive scan."""

    captures: List[Tuple[Path, DetectionReport]]

    def __len__(self) -> int:
        return len(self.captures)

    def __iter__(self):
        return iter(self.captures)

    @property
    def reports(self) -> List[DetectionReport]:
        """The per-capture reports, in archive scan order."""
        return [report for _, report in self.captures]

    @property
    def alarmed_captures(self) -> List[Path]:
        """Paths of captures whose scan raised at least one alarm."""
        return [path for path, report in self.captures if report.alarmed_windows]

    # ------------------------------------------------------------------
    # Pooled metrics (messages and windows pooled across captures)
    # ------------------------------------------------------------------
    @property
    def detection_rate(self) -> float:
        """The paper's Dr pooled over every capture's judged windows."""
        return _pooled_detection_rate(self.reports)

    @property
    def false_positive_rate(self) -> float:
        """Alarmed clean windows over all clean windows, pooled."""
        return _pooled_false_positive_rate(self.reports)

    def summary(self) -> str:
        """Human-readable digest: one line per capture, then the pool."""
        lines = []
        for path, report in self.captures:
            flag = "ALARM" if report.alarmed_windows else "clean"
            lines.append(
                f"{path.name}: {flag}, {len(report.windows)} windows, "
                f"Dr={report.detection_rate:.1%}, "
                f"FPR={report.false_positive_rate:.1%}"
            )
        lines.append(
            f"archive: {len(self.captures)} captures, "
            f"{len(self.alarmed_captures)} alarmed, "
            f"pooled Dr={self.detection_rate:.1%}, "
            f"pooled FPR={self.false_positive_rate:.1%}"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-compatible representation (paths as POSIX strings)."""
        return {
            "captures": [
                {"path": Path(path).as_posix(), "report": report.to_dict()}
                for path, report in self.captures
            ]
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ArchiveReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            captures=[
                (Path(entry["path"]), DetectionReport.from_dict(entry["report"]))
                for entry in payload["captures"]
            ]
        )


@dataclass
class MultiBusReport:
    """Per-bus detection reports plus the fused vehicle-level verdict.

    The paper's method runs one IDS instance per bus segment; the fused
    verdict is the gateway-level view — the vehicle is under attack
    when *any* segment's detector alarms.

    ``templates`` records which golden template judged each bus (the
    pipeline's own unless a per-bus mapping was passed to
    :meth:`IDSPipeline.analyze_multibus`), so callers can persist the
    exact per-bus training state next to the fused verdict (see
    :class:`repro.fleet.store.FleetStore`).
    """

    per_bus: Dict[str, DetectionReport]
    templates: Dict[str, GoldenTemplate] = field(default_factory=dict)

    @property
    def buses(self) -> Tuple[str, ...]:
        """Bus labels, in the order they were analyzed."""
        return tuple(self.per_bus)

    @property
    def alarmed_buses(self) -> List[str]:
        """Buses whose detector raised at least one alarm."""
        return [b for b, r in self.per_bus.items() if r.alarmed_windows]

    @property
    def fused_alarm(self) -> bool:
        """True when any bus segment alarmed."""
        return bool(self.alarmed_buses)

    @property
    def detection_rate(self) -> float:
        """Dr pooled over all buses' judged windows."""
        return _pooled_detection_rate(self.per_bus.values())

    @property
    def false_positive_rate(self) -> float:
        """FPR pooled over all buses' clean windows."""
        return _pooled_false_positive_rate(self.per_bus.values())

    def summary(self) -> str:
        """Per-bus digest plus the fused verdict."""
        lines = []
        for bus, report in self.per_bus.items():
            flag = "ALARM" if report.alarmed_windows else "clean"
            lines.append(
                f"bus {bus}: {flag}, {len(report.windows)} windows, "
                f"Dr={report.detection_rate:.1%}, "
                f"FPR={report.false_positive_rate:.1%}"
            )
        lines.append(
            f"fused verdict: {'ATTACK' if self.fused_alarm else 'clean'} "
            f"({len(self.alarmed_buses)}/{len(self.per_bus)} buses alarmed)"
        )
        return "\n".join(lines)


class IDSPipeline:
    """Detector + inference + reporting, batch or streaming."""

    def __init__(
        self,
        template: GoldenTemplate,
        config: Optional[IDSConfig] = None,
        id_pool: Optional[Sequence[int]] = None,
    ) -> None:
        self.config = config or IDSConfig()
        self.template = template
        self.id_pool = tuple(id_pool) if id_pool is not None else None
        self._engine = (
            InferenceEngine(self.id_pool, template, self.config)
            if self.id_pool
            else None
        )

    def _finish_report(
        self, windows: List[WindowResult], alerts: List[Alert], infer_k
    ) -> DetectionReport:
        """Inference + report assembly shared by every analyze path."""
        inference: Optional[InferenceResult] = None
        if self._engine is not None and any(w.alarm for w in windows):
            if infer_k == "auto":
                alarmed = [w for w in windows if w.alarm]
                total = sum(w.n_messages for w in alarmed)
                combined = sum(
                    w.probabilities * w.n_messages for w in alarmed
                ) / total
                infer_k = self._engine.estimate_k(
                    combined, total, n_windows=len(alarmed)
                )
            inference = self._engine.infer_from_windows(windows, k=infer_k)
        return DetectionReport(windows=windows, alerts=alerts, inference=inference)

    def analyze(self, trace: Union[Trace, ColumnTrace], infer_k=1) -> DetectionReport:
        """Run detection (and inference, when a pool is set) over a trace.

        Recorded captures — either representation — go through the
        vectorised :class:`~repro.core.engine.BatchEntropyEngine`, which
        is bit-for-bit equivalent to the streaming detector; live buses
        use :meth:`streaming_detector` instead.

        ``infer_k`` is the number of injected identifiers assumed by the
        inference step (the paper knows it per scenario).  Pass the
        string ``"auto"`` to estimate it from the mixture-fit residual
        (extension; see :meth:`InferenceEngine.estimate_k`).
        """
        if len(trace) == 0:
            raise DetectorError("cannot analyze an empty trace")
        sink = AlertSink()
        engine = BatchEntropyEngine(self.template, self.config, sink)
        windows = engine.scan(trace)
        return self._finish_report(windows, list(sink.alerts), infer_k)

    def analyze_archive(
        self,
        archive: Union[CaptureArchive, str, Path],
        workers: Optional[int] = None,
        infer_k=1,
        executor=None,
        chunk_windows: Optional[int] = None,
    ) -> "ArchiveReport":
        """Scan a whole capture archive, sharded across an executor.

        ``archive`` is a :class:`~repro.io.archive.CaptureArchive` or a
        directory path.  Detection fans out through
        :class:`~repro.core.shard.ShardedScanner` — by default a
        process pool (``workers`` pool size; ``None`` picks a default,
        ``1`` scans inline), or any
        :class:`~repro.runtime.base.Executor` passed as ``executor``
        (e.g. a :class:`~repro.runtime.queue.WorkQueueExecutor` served
        by ``repro-ids worker`` processes on other hosts).  Every
        backend is bit-identical to scanning each capture serially.
        ``chunk_windows`` switches each slot to the out-of-core scan
        (memory-mapped ``.npz`` load, window-aligned chunked kernel) —
        same bits, bounded memory per capture.  Inference runs per
        capture in the parent process, only for captures that alarmed.
        """
        from repro.core.shard import ShardedScanner  # cycle-free import

        if not isinstance(archive, CaptureArchive):
            archive = CaptureArchive(archive)
        scanner = ShardedScanner(
            self.template,
            self.config,
            workers=workers,
            executor=executor,
            chunk_windows=chunk_windows,
        )
        captures = []
        for scan in scanner.scan_archive(archive):
            alerts = [w.to_alert() for w in scan.windows if w.alarm]
            report = self._finish_report(scan.windows, alerts, infer_k)
            captures.append((scan.path, report))
        return ArchiveReport(captures=captures)

    def analyze_multibus(
        self,
        trace: ColumnTrace,
        infer_k=1,
        templates: Optional[Mapping[str, GoldenTemplate]] = None,
    ) -> MultiBusReport:
        """Detect per bus segment of a fused multi-bus capture.

        ``trace`` is a bus-tagged :class:`ColumnTrace` — typically the
        fan-in of per-bus captures via
        :func:`repro.vehicle.multibus.fuse_bus_traces` or
        :meth:`DualBusVehicle.run_columns`.  Each bus's records are
        detected independently (windows, template comparison, inference)
        exactly as a per-bus IDS deployment would, and the per-bus
        reports are fused into a :class:`MultiBusReport`.

        ``templates`` optionally maps bus label -> the golden template
        trained on that bus (see
        :func:`repro.vehicle.multibus.build_bus_templates`); buses
        absent from the mapping fall back to the pipeline's own
        template.  The mapping actually used — one entry per analyzed
        bus — comes back on ``MultiBusReport.templates`` so it can be
        persisted next to the fused verdict.
        """
        if not isinstance(trace, ColumnTrace):
            raise DetectorError(
                "analyze_multibus needs a bus-tagged ColumnTrace; convert "
                "record traces and tag them with with_bus() first"
            )
        if len(trace) == 0:
            raise DetectorError("cannot analyze an empty trace")
        labels = trace.bus_labels()
        if not labels or "" in labels:
            # A blank label means some records were never tagged —
            # either a plain conversion or a merge that mixed tagged
            # and untagged parts.  Detecting a phantom "" bus would
            # silently skew the fused verdict, so refuse instead.
            raise DetectorError(
                "trace carries untagged records; tag every per-bus capture "
                "with with_bus() before merging"
            )
        templates = dict(templates or {})
        unknown = set(templates) - set(labels)
        if unknown:
            raise DetectorError(
                "per-bus template mapping names buses absent from the "
                "trace: " + ", ".join(sorted(unknown))
            )
        per_bus: Dict[str, DetectionReport] = {}
        used: Dict[str, GoldenTemplate] = {}
        for label in labels:
            template = templates.get(label)
            segment = (
                self
                if template is None or template is self.template
                else IDSPipeline(template, self.config, self.id_pool)
            )
            per_bus[label] = segment.analyze(trace.for_bus(label), infer_k=infer_k)
            used[label] = segment.template
        return MultiBusReport(per_bus=per_bus, templates=used)

    def analyze_fleet(
        self,
        store,
        workers: Optional[int] = None,
        infer_k=1,
        executor=None,
        chunk_windows: Optional[int] = None,
        **drift_kwargs,
    ):
        """Incrementally scan a whole fleet store and aggregate drift.

        ``store`` is a :class:`repro.fleet.store.FleetStore` (or its
        root directory).  Every vehicle's capture archive is scanned
        *incrementally* — captures whose fingerprint already sits in the
        vehicle's scan ledger replay their persisted report instead of
        being re-scanned — using the vehicle's own golden template when
        one is stored (this pipeline's template otherwise).  Fresh
        captures fan out through ``executor`` (any
        :class:`~repro.runtime.base.Executor`; the default pool honours
        ``workers`` as in :meth:`analyze_archive`).  Per-capture
        reports aggregate time-ordered into a
        :class:`repro.fleet.drift.FleetReport` with pooled
        detection/FPR, per-bit entropy drift series and CUSUM drift
        alarms; ``drift_kwargs`` pass through to
        :func:`repro.fleet.drift.analyze_fleet` (``drift_slack``,
        ``drift_limit``).
        """
        from repro.fleet.drift import analyze_fleet  # cycle-free import

        return analyze_fleet(
            store,
            self,
            workers=workers,
            infer_k=infer_k,
            executor=executor,
            chunk_windows=chunk_windows,
            **drift_kwargs,
        )

    def streaming_detector(self, sink: Optional[AlertSink] = None) -> EntropyDetector:
        """A fresh streaming detector sharing this pipeline's template.

        Attach its :meth:`~repro.core.detector.EntropyDetector.feed` to a
        live bus listener for the paper's real-time deployment model.
        """
        return EntropyDetector(self.template, self.config, sink)

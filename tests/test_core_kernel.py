"""The fused kernel: packed-field counting, segmentation, WindowBlock.

The kernel's contract is *bit-identity* with the reference paths it
replaced: packed-field counts equal the per-bit ``reduceat`` counts,
binary-search segmentation equals ``ColumnTrace.window_segments``, and
``scan_windows`` equals ``BatchEntropyEngine``'s float pipeline.  These
tests pin each layer separately, plus the fallback gates (wide
identifiers, overflow-sized windows) and the WindowBlock container.
"""

import numpy as np
import pytest

from repro.core import (
    BitCounter,
    IDSConfig,
    KernelWorkspace,
    TemplateBuilder,
    WindowBlock,
    scan_windows,
)
from repro.core.bitprob import window_bit_counts
from repro.core.detector import EntropyDetector
from repro.core.kernel import (
    _fused_counts,
    _pack_table,
    _segment_windows,
    _STRIP_ROWS,
)
from repro.exceptions import DetectorError
from repro.io import ColumnTrace, Trace, TraceRecord

CONFIG = IDSConfig(window_us=1_000, min_window_messages=4)


def tiny_template(config=CONFIG):
    builder = TemplateBuilder(config)
    builder.add_counter(BitCounter.from_ids([0x100, 0x2A5, 0x0F3, 0x555]))
    builder.add_counter(BitCounter.from_ids([0x101, 0x2A5, 0x100, 0x7FF]))
    builder.add_counter(BitCounter.from_ids([0x100, 0x1A5, 0x0F3, 0x3F0]))
    return builder.build()


TEMPLATE = tiny_template()


def random_trace(n, seed=0, gap_range=(0, 500), id_bits=11):
    rng = np.random.default_rng(seed)
    ts = np.cumsum(rng.integers(*gap_range, size=n)).astype(np.int64)
    ids = rng.integers(0, 1 << id_bits, size=n, dtype=np.int64)
    attacks = rng.random(n) < 0.05
    return ColumnTrace(ts, ids, is_attack=attacks, validate=False)


class TestPackTable:
    def test_rows_pack_msb_first_bits(self):
        table = _pack_table(11)
        assert table.shape == (2048, 3)
        for value in (0, 1, 0x2A5, 0x7FF, 1365):
            row = table[value]
            for bit in range(11):
                word, field = divmod(bit, 4)
                unpacked = (int(row[word]) >> (16 * field)) & 0xFFFF
                assert unpacked == (value >> (11 - 1 - bit)) & 1

    def test_table_is_cached(self):
        assert _pack_table(11) is _pack_table(11)


class TestFusedCounts:
    @pytest.mark.parametrize("n", [1, 5, 1000, 3 * _STRIP_ROWS + 17])
    def test_matches_per_bit_reduceat(self, n):
        trace = random_trace(n, seed=n)
        grid, starts, ends = trace.window_segments(CONFIG.window_us)
        fused = _fused_counts(
            trace.can_id, starts, ends, ends - starts, 11, KernelWorkspace()
        )
        reference = window_bit_counts(trace.can_id, starts, 11)
        assert fused.dtype == np.int64
        assert np.array_equal(fused, reference)

    def test_wide_ids_fall_back(self):
        """Identifiers beyond the packed table width use the reference
        path (29-bit extended frames would need a 2**29-row table)."""
        rng = np.random.default_rng(3)
        ids = rng.integers(0, 1 << 29, size=500, dtype=np.int64)
        starts = np.array([0, 100, 350], dtype=np.int64)
        ends = np.array([100, 350, 500], dtype=np.int64)
        fused = _fused_counts(
            ids, starts, ends, ends - starts, 29, KernelWorkspace()
        )
        assert np.array_equal(fused, window_bit_counts(ids, starts, 29))

    def test_overflow_sized_windows_fall_back(self):
        """A window holding >= 2**16 messages would carry between packed
        fields; the gate must route it to the per-bit path."""
        n = (1 << 16) + 10
        ids = np.full(n, 0x7FF, dtype=np.int64)  # all ones: max per-field
        starts = np.array([0], dtype=np.int64)
        ends = np.array([n], dtype=np.int64)
        fused = _fused_counts(
            ids, starts, ends, ends - starts, 11, KernelWorkspace()
        )
        assert np.array_equal(fused, window_bit_counts(ids, starts, 11))
        assert fused[0, 0] == n  # > 0xFFFF: impossible for packed fields


class TestSegmentation:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_window_segments(self, seed):
        trace = random_trace(2_000, seed=seed, gap_range=(0, 3_000))
        grid, starts, ends = trace.window_segments(CONFIG.window_us)
        k_grid, k_starts, k_ends = _segment_windows(
            trace.timestamp_us, CONFIG.window_us, int(trace.timestamp_us[0])
        )
        assert np.array_equal(grid, k_grid)
        assert np.array_equal(starts, k_starts)
        assert np.array_equal(ends, k_ends)

    def test_sparse_trace_takes_dividing_fallback(self):
        """More grid windows than records: the binary-search route would
        cost more than the O(n) pass, and both must agree."""
        ts = np.array([0, 10_000_000, 90_000_000], dtype=np.int64)
        grid, starts, ends = _segment_windows(ts, 1_000, 0)
        assert np.array_equal(grid, [0, 10_000, 90_000])
        assert np.array_equal(starts, [0, 1, 2])
        assert np.array_equal(ends, [1, 2, 3])

    def test_records_before_origin_fall_back(self):
        """A chunk driver may pass an origin after the first record of a
        *mis-sliced* chunk; negative grid indices must still be exact."""
        ts = np.array([-2_500, -100, 50, 999, 1_001], dtype=np.int64)
        grid, starts, ends = _segment_windows(ts, 1_000, 0)
        assert np.array_equal(grid, [-3, -1, 0, 1])
        assert np.array_equal(ends - starts, [1, 1, 2, 1])


class TestScanWindows:
    def test_matches_streaming_detector(self):
        trace = random_trace(5_000, seed=11)
        block = scan_windows(trace, TEMPLATE, CONFIG)
        stream = EntropyDetector(TEMPLATE, CONFIG).scan(trace.to_trace())
        assert len(block) == len(stream)
        for got, want in zip(block.results(), stream):
            assert got.to_dict() == want.to_dict()

    def test_empty_trace_rejected(self):
        empty = ColumnTrace.from_trace(Trace())
        with pytest.raises(DetectorError):
            scan_windows(empty, TEMPLATE, CONFIG)

    def test_template_width_mismatch_rejected(self):
        trace = random_trace(100)
        with pytest.raises(DetectorError):
            scan_windows(trace, TEMPLATE, IDSConfig(n_bits=29, window_us=1_000))

    def test_origin_and_index_base_offset_the_grid(self):
        trace = random_trace(1_000, seed=5)
        t0 = int(trace.timestamp_us[0])
        block = scan_windows(
            trace, TEMPLATE, CONFIG, origin_us=t0 - 10 * CONFIG.window_us,
            index_base=7,
        )
        reference = scan_windows(trace, TEMPLATE, CONFIG)
        assert np.array_equal(block.index, np.arange(7, 7 + len(block)))
        # The origin moved by a whole number of windows, so segments and
        # window start times are unchanged — only indices shift.
        assert np.array_equal(block.n_messages, reference.n_messages)
        assert np.array_equal(
            block.t_start_us, reference.t_start_us
        )


class TestWindowBlock:
    def test_aggregates_and_lazy_results(self):
        trace = random_trace(3_000, seed=2)
        block = scan_windows(trace, TEMPLATE, CONFIG)
        results = block.results()
        assert block.total_messages == len(trace)
        assert block.n_judged == sum(1 for r in results if r.judged)
        assert block.n_alarmed == sum(1 for r in results if r.alarm)
        assert np.array_equal(
            block.alarm_mask, np.array([r.alarm for r in results])
        )
        assert np.array_equal(block.t_end_us, block.t_start_us + CONFIG.window_us)
        assert [r.to_dict() for r in block] == [r.to_dict() for r in results]
        # Rows are views, not copies.
        assert results[0].probabilities.base is not None

    def test_empty_and_concat(self):
        empty = WindowBlock.empty(11, CONFIG.window_us)
        assert len(empty) == 0 and empty.n_bits == 11
        assert len(WindowBlock.concat([], 11, CONFIG.window_us)) == 0

        trace = random_trace(2_000, seed=9)
        whole = scan_windows(trace, TEMPLATE, CONFIG)
        cut = len(trace) // 2
        # Cut on a window boundary so the halves tile the grid.
        boundary_ts = int(trace.timestamp_us[cut])
        t0 = int(trace.timestamp_us[0])
        aligned = t0 + ((boundary_ts - t0) // CONFIG.window_us) * CONFIG.window_us
        cut = int(np.searchsorted(trace.timestamp_us, aligned, side="left"))
        first = scan_windows(trace.slice(0, cut), TEMPLATE, CONFIG, origin_us=t0)
        second = scan_windows(
            trace.slice(cut, len(trace)), TEMPLATE, CONFIG,
            origin_us=t0, index_base=len(first),
        )
        glued = WindowBlock.concat([first, second], 11, CONFIG.window_us)
        assert [r.to_dict() for r in glued] == [r.to_dict() for r in whole]
        # Single-block concat returns the block itself (no copy).
        assert WindowBlock.concat([first], 11, CONFIG.window_us) is first

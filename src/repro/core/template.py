"""The golden template (Section IV.B of the paper).

During normal driving the per-bit entropy of the identifier stream is
steady, so the IDS learns a *golden template*: the per-bit mean entropy
over ``template_windows`` clean windows (paper: 35 measurements from
diverse driving behaviors), the per-bit min/max range, and thresholds
``Th_i = alpha * (max H_i - min H_i)``.

Beyond the entropy statistics of the paper, the template also retains
the per-bit *probability* statistics and the window message-count
statistics — both needed by the malicious-ID inference of Section V.C
(probability-shift directions and the injected-fraction estimate).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.bitprob import BitCounter
from repro.core.config import IDSConfig
from repro.core.entropy import binary_entropy
from repro.exceptions import TemplateError
from repro.io.trace import Trace


@dataclass(frozen=True)
class GoldenTemplate:
    """Frozen statistics of clean traffic.

    All arrays are length ``n_bits``, MSB first.
    """

    n_bits: int
    alpha: float
    n_windows: int
    mean_entropy: np.ndarray
    min_entropy: np.ndarray
    max_entropy: np.ndarray
    thresholds: np.ndarray
    mean_p: np.ndarray
    min_p: np.ndarray
    max_p: np.ndarray
    mean_count: float
    std_count: float

    # ------------------------------------------------------------------
    # Detection primitives
    # ------------------------------------------------------------------
    @property
    def entropy_range(self) -> np.ndarray:
        """Per-bit ``max - min`` entropy over the template windows."""
        return self.max_entropy - self.min_entropy

    @property
    def p_range(self) -> np.ndarray:
        """Per-bit ``max - min`` probability over the template windows."""
        return self.max_p - self.min_p

    def deviations(self, entropy: np.ndarray) -> np.ndarray:
        """Signed per-bit deviation of a measured entropy vector."""
        measured = np.asarray(entropy, dtype=float)
        if measured.shape != self.mean_entropy.shape:
            raise TemplateError(
                f"entropy vector has shape {measured.shape}, template expects "
                f"{self.mean_entropy.shape}"
            )
        return measured - self.mean_entropy

    def violated_bits(self, entropy: np.ndarray) -> np.ndarray:
        """Boolean mask of bits whose deviation exceeds the threshold."""
        return np.abs(self.deviations(entropy)) > self.thresholds

    def is_anomalous(self, entropy: np.ndarray) -> bool:
        """The paper's bit-by-bit comparison: any violated bit → alarm."""
        return bool(np.any(self.violated_bits(entropy)))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "n_bits": self.n_bits,
            "alpha": self.alpha,
            "n_windows": self.n_windows,
            "mean_entropy": self.mean_entropy.tolist(),
            "min_entropy": self.min_entropy.tolist(),
            "max_entropy": self.max_entropy.tolist(),
            "thresholds": self.thresholds.tolist(),
            "mean_p": self.mean_p.tolist(),
            "min_p": self.min_p.tolist(),
            "max_p": self.max_p.tolist(),
            "mean_count": self.mean_count,
            "std_count": self.std_count,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GoldenTemplate":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                n_bits=int(payload["n_bits"]),
                alpha=float(payload["alpha"]),
                n_windows=int(payload["n_windows"]),
                mean_entropy=np.asarray(payload["mean_entropy"], dtype=float),
                min_entropy=np.asarray(payload["min_entropy"], dtype=float),
                max_entropy=np.asarray(payload["max_entropy"], dtype=float),
                thresholds=np.asarray(payload["thresholds"], dtype=float),
                mean_p=np.asarray(payload["mean_p"], dtype=float),
                min_p=np.asarray(payload["min_p"], dtype=float),
                max_p=np.asarray(payload["max_p"], dtype=float),
                mean_count=float(payload["mean_count"]),
                std_count=float(payload["std_count"]),
            )
        except KeyError as exc:
            raise TemplateError(f"template dict missing field {exc}") from exc

    def save(self, path: Union[str, Path]) -> None:
        """Write the template to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2), encoding="ascii")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "GoldenTemplate":
        """Read a template written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="ascii")))

    def describe(self) -> str:
        """Multi-line rendering of the template (the paper's Fig. 2 data)."""
        lines = [
            f"GoldenTemplate: {self.n_windows} windows, alpha={self.alpha:g}, "
            f"mean {self.mean_count:.0f} msg/window",
            f"{'bit':>4} {'mean H':>9} {'min H':>9} {'max H':>9} {'Th':>9} {'mean p':>9}",
        ]
        for i in range(self.n_bits):
            lines.append(
                f"{i + 1:>4} {self.mean_entropy[i]:>9.5f} {self.min_entropy[i]:>9.5f} "
                f"{self.max_entropy[i]:>9.5f} {self.thresholds[i]:>9.5f} "
                f"{self.mean_p[i]:>9.5f}"
            )
        return "\n".join(lines)


class TemplateBuilder:
    """Accumulates clean windows and produces a :class:`GoldenTemplate`."""

    def __init__(self, config: Optional[IDSConfig] = None) -> None:
        self.config = config or IDSConfig()
        self._entropies: List[np.ndarray] = []
        self._probabilities: List[np.ndarray] = []
        self._counts: List[int] = []
        #: Windows dropped by ``exclude_attacked`` (ground truth), total.
        self.excluded_attacked = 0

    # ------------------------------------------------------------------
    @property
    def n_windows(self) -> int:
        """Number of windows accumulated so far."""
        return len(self._entropies)

    def add_counter(self, counter: BitCounter) -> None:
        """Add one measurement window from a populated counter."""
        if counter.n_bits != self.config.n_bits:
            raise TemplateError(
                f"counter has {counter.n_bits} bits, config expects {self.config.n_bits}"
            )
        if counter.total < self.config.min_window_messages:
            raise TemplateError(
                f"window has {counter.total} messages, below the minimum "
                f"{self.config.min_window_messages}"
            )
        p = counter.probabilities()
        self._probabilities.append(p)
        self._entropies.append(np.asarray(binary_entropy(p), dtype=float))
        self._counts.append(counter.total)

    def add_trace(self, trace: Trace) -> None:
        """Add one whole trace as a single measurement window."""
        counter = BitCounter(self.config.n_bits)
        counter.update_many(trace.ids())
        self.add_counter(counter)

    def add_trace_windows(self, trace: Trace, exclude_attacked: bool = False) -> int:
        """Split a long trace into config windows and add each; returns count.

        Windows below ``min_window_messages`` (trace edges) are skipped.
        With ``exclude_attacked``, windows containing ground-truth attack
        messages are skipped too (counted in ``excluded_attacked``) —
        the golden template must see only clean traffic, and training on
        injected traffic inflates the entropy ranges (and therefore the
        thresholds) until the template under-detects the very attacks it
        ingested.  Either trace representation works.
        """
        added = 0
        for window in trace.time_windows(self.config.window_us):
            if len(window) < self.config.min_window_messages:
                continue
            if exclude_attacked and window.attack_count > 0:
                self.excluded_attacked += 1
                continue
            self.add_trace(window)
            added += 1
        return added

    # ------------------------------------------------------------------
    def build(self) -> GoldenTemplate:
        """Freeze the accumulated windows into a template.

        Raises
        ------
        TemplateError
            With fewer than two windows (no range is defined).
        """
        if self.n_windows < 2:
            raise TemplateError(
                f"template needs at least 2 windows, got {self.n_windows}"
            )
        entropies = np.stack(self._entropies)
        probabilities = np.stack(self._probabilities)
        counts = np.asarray(self._counts, dtype=float)
        entropy_range = entropies.max(axis=0) - entropies.min(axis=0)
        thresholds = np.maximum(
            self.config.alpha * entropy_range, self.config.threshold_floor
        )
        return GoldenTemplate(
            n_bits=self.config.n_bits,
            alpha=self.config.alpha,
            n_windows=self.n_windows,
            mean_entropy=entropies.mean(axis=0),
            min_entropy=entropies.min(axis=0),
            max_entropy=entropies.max(axis=0),
            thresholds=thresholds,
            mean_p=probabilities.mean(axis=0),
            min_p=probabilities.min(axis=0),
            max_p=probabilities.max(axis=0),
            mean_count=float(counts.mean()),
            std_count=float(counts.std()),
        )


def build_template(
    windows: Iterable[Trace],
    config: Optional[IDSConfig] = None,
) -> GoldenTemplate:
    """Build a golden template from an iterable of clean window traces."""
    builder = TemplateBuilder(config)
    for window in windows:
        builder.add_trace(window)
    return builder.build()

"""Runtime layer: the scan fabric behind archive-scale scans.

Every scan path (cold ``analyze_archive``, incremental ``watch_scan``,
fleet-wide ``analyze_fleet``) funnels through one per-capture shard
task; this package owns *how* those tasks execute:

* :class:`~repro.runtime.base.Executor` — the protocol: submit tasks,
  collect order-stable results;
* :class:`~repro.runtime.serial.SerialExecutor` — inline reference
  backend;
* :class:`~repro.runtime.pool.PoolExecutor` — one host's cores via a
  ``multiprocessing`` pool;
* :class:`~repro.runtime.queue.WorkQueueExecutor` — many hosts via a
  shared filesystem queue directory served by ``repro-ids worker
  --queue`` processes (:func:`~repro.runtime.worker.run_worker`);
* :class:`~repro.runtime.net.NetExecutor` — many hosts via an asyncio
  TCP coordinator (``repro-ids serve``) served by ``repro-ids worker
  --connect`` processes (:func:`~repro.runtime.net.run_net_worker`) —
  no shared disk required.

The two distributed backends are transports over one protocol module
(:mod:`repro.runtime.protocol`): the task/claim/result state machine,
versioned JSON codecs, lease/re-post/poison rules, the shared claimant
(:func:`~repro.runtime.protocol.execute_task`) and the shared
coordinator collection logic
(:class:`~repro.runtime.protocol.ResultCollector`) are each written
exactly once.

All backends are bit-identical for any spec and worker count
(``tests/test_runtime_executors.py``); the choice is purely a
deployment decision, surfaced as ``--executor serial|pool|queue|net``
on the CLI and ``executor=`` on the pipeline entry points.
"""

from repro.runtime.base import (
    BaselineScanSpec,
    EntropyScanSpec,
    Executor,
    ScanSpec,
    resolve_executor,
    spec_from_payload,
)
from repro.runtime.net import (
    NetExecutor,
    ScanServer,
    ServerThread,
    fetch_stats,
    parse_address,
    run_net_worker,
)
from repro.runtime.pool import PoolExecutor, default_workers
from repro.runtime.protocol import (
    DEFAULT_LEASE_S,
    PROTOCOL_VERSION,
    STATS_VERSION,
    ClaimToken,
    ResultCollector,
    TaskFormatError,
    TaskMessage,
    TaskResult,
    execute_task,
    fabric_stats,
    make_tasks,
    new_job_id,
    render_stats,
    require_portable,
)
from repro.runtime.queue import (
    WorkQueueExecutor,
    claim_next_task,
    execute_claimed_task,
    queue_dirs,
    queue_stats,
)
from repro.runtime.serial import SerialExecutor
from repro.runtime.worker import WorkerStats, run_worker

__all__ = [
    "DEFAULT_LEASE_S",
    "PROTOCOL_VERSION",
    "STATS_VERSION",
    "BaselineScanSpec",
    "ClaimToken",
    "EntropyScanSpec",
    "Executor",
    "NetExecutor",
    "PoolExecutor",
    "ResultCollector",
    "ScanServer",
    "ScanSpec",
    "SerialExecutor",
    "ServerThread",
    "TaskFormatError",
    "TaskMessage",
    "TaskResult",
    "WorkQueueExecutor",
    "WorkerStats",
    "claim_next_task",
    "default_workers",
    "execute_claimed_task",
    "execute_task",
    "fabric_stats",
    "fetch_stats",
    "make_tasks",
    "new_job_id",
    "parse_address",
    "queue_dirs",
    "queue_stats",
    "render_stats",
    "require_portable",
    "resolve_executor",
    "run_net_worker",
    "run_worker",
    "spec_from_payload",
]

"""ColumnTrace: lossless conversion, zero-copy slicing, Trace parity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TraceFormatError
from repro.io import ColumnTrace, Trace, TraceRecord

record_strategy = st.builds(
    TraceRecord,
    timestamp_us=st.integers(min_value=0, max_value=10_000_000),
    can_id=st.integers(min_value=0, max_value=0x7FF),
    data=st.binary(max_size=8),
    extended=st.booleans(),
    source=st.sampled_from(["", "ecu_a", "ecu_b", "attacker"]),
    is_attack=st.booleans(),
)


def trace_strategy(min_size=0, max_size=40):
    return st.lists(record_strategy, min_size=min_size, max_size=max_size).map(
        lambda records: Trace(sorted(records, key=lambda r: r.timestamp_us))
    )


class TestConversion:
    @settings(max_examples=60, deadline=None)
    @given(trace_strategy())
    def test_round_trip_is_lossless(self, trace):
        assert ColumnTrace.from_trace(trace).to_trace() == trace

    @settings(max_examples=30, deadline=None)
    @given(trace_strategy())
    def test_to_columns_matches_from_trace(self, trace):
        assert trace.to_columns() == ColumnTrace.from_trace(trace)

    def test_empty(self):
        ct = ColumnTrace.from_trace(Trace())
        assert len(ct) == 0
        assert ct.to_trace() == Trace()
        assert ct.start_us == ct.end_us == ct.duration_us == 0
        assert ct.attack_count == 0
        assert list(ct.time_windows(100)) == []
        assert ct.id_histogram() == {}

    def test_coerce_passes_columnar_through(self):
        ct = ColumnTrace.from_trace(Trace([TraceRecord(0, 1)]))
        assert ColumnTrace.coerce(ct) is ct
        assert ColumnTrace.coerce(Trace([TraceRecord(0, 1)])) == ct

    def test_sources_are_interned(self):
        trace = Trace(
            [TraceRecord(i, 1, source="ecu_a" if i % 2 else "ecu_b") for i in range(10)]
        )
        ct = trace.to_columns()
        assert sorted(ct.source_table) == ["ecu_a", "ecu_b"]
        assert ct.sources() == [r.source for r in trace]


class TestAccessors:
    @settings(max_examples=30, deadline=None)
    @given(trace_strategy(min_size=1))
    def test_scalar_properties_match_trace(self, trace):
        ct = trace.to_columns()
        assert ct.start_us == trace.start_us
        assert ct.end_us == trace.end_us
        assert ct.duration_us == trace.duration_us
        assert ct.attack_count == trace.attack_count
        assert ct.message_rate_hz() == trace.message_rate_hz()
        assert ct.id_histogram() == trace.id_histogram()

    @settings(max_examples=30, deadline=None)
    @given(trace_strategy())
    def test_array_accessors_match_trace(self, trace):
        ct = trace.to_columns()
        assert np.array_equal(ct.ids(), trace.ids())
        assert np.array_equal(ct.timestamps_us(), trace.timestamps_us())
        assert np.array_equal(ct.attack_mask(), trace.attack_mask())
        assert np.array_equal(ct.unique_ids(), trace.unique_ids())
        assert np.array_equal(ct.dlc, [r.dlc for r in trace])


class TestSlicing:
    @settings(max_examples=40, deadline=None)
    @given(
        trace_strategy(min_size=1),
        st.integers(min_value=0, max_value=10_000_000),
        st.integers(min_value=0, max_value=10_000_000),
    )
    def test_between_matches_trace(self, trace, a, b):
        lo, hi = min(a, b), max(a, b)
        assert trace.to_columns().between(lo, hi).to_trace() == trace.between(lo, hi)

    def test_slices_are_views(self):
        trace = Trace([TraceRecord(i * 10, i + 1, bytes([i])) for i in range(8)])
        ct = trace.to_columns()
        window = ct.slice(2, 6)
        assert window.timestamp_us.base is not None  # a view, not a copy
        assert window.to_trace() == trace[2:6]
        assert ct[2:6] == window

    def test_filters_match_trace(self):
        trace = Trace(
            [TraceRecord(i, i % 5, is_attack=i % 3 == 0) for i in range(30)]
        )
        ct = trace.to_columns()
        assert ct.only_attacks().to_trace() == trace.only_attacks()
        assert ct.without_attacks().to_trace() == trace.without_attacks()
        assert ct.shifted(500).to_trace() == trace.shifted(500)

    def test_merge_matches_trace_merge(self):
        a = Trace([TraceRecord(i * 7, 1, b"\x01", source="a") for i in range(10)])
        b = Trace([TraceRecord(i * 11, 2, b"\x02\x03", source="b") for i in range(8)])
        merged = ColumnTrace.merge(a.to_columns(), b.to_columns())
        assert merged.to_trace() == Trace.merge(a, b)


class TestWindowing:
    @settings(max_examples=40, deadline=None)
    @given(trace_strategy(min_size=1), st.integers(min_value=1, max_value=2_000_000))
    def test_time_windows_match_trace(self, trace, window_us):
        record_windows = [list(w) for w in trace.time_windows(window_us)]
        column_windows = [
            list(w.iter_records()) for w in trace.to_columns().time_windows(window_us)
        ]
        assert record_windows == column_windows

    def test_window_segments_skip_empty_windows(self):
        trace = Trace([TraceRecord(t, 1) for t in (0, 5, 10, 45, 47, 90)])
        grid, starts, ends = trace.to_columns().window_segments(10)
        assert list(grid) == [0, 1, 4, 9]
        assert list(starts) == [0, 2, 3, 5]
        assert list(ends) == [2, 3, 5, 6]

    def test_window_segments_rejects_bad_window(self):
        with pytest.raises(ValueError):
            Trace([TraceRecord(0, 1)]).to_columns().window_segments(0)


class TestValidation:
    def test_rejects_unsorted_timestamps(self):
        with pytest.raises(TraceFormatError):
            ColumnTrace([5, 1], [1, 2])

    def test_rejects_mismatched_columns(self):
        with pytest.raises(TraceFormatError):
            ColumnTrace([1, 2], [1])

    def test_rejects_bad_offsets(self):
        with pytest.raises(TraceFormatError):
            ColumnTrace([1, 2], [1, 2], payload_offsets=[0, 4, 9])

    def test_rejects_bad_source_codes(self):
        with pytest.raises(TraceFormatError):
            ColumnTrace([1], [1], source_code=[3], source_table=("",))


class TestBusTagging:
    """The multi-bus fan-in extension: per-record bus labels that
    survive slicing, filtering and merging (and are dropped, documented,
    by to_trace)."""

    def make(self, n=10, offset=0):
        return Trace(
            TraceRecord(offset + i * 100, 0x100 + i % 4, source=f"s{i % 2}")
            for i in range(n)
        ).to_columns()

    def test_with_bus_tags_every_record(self):
        tagged = self.make().with_bus("ms")
        assert tagged.bus_labels() == ("ms",)
        assert tagged.buses() == ["ms"] * 10

    def test_untagged_default_is_blank(self):
        ct = self.make()
        assert ct.bus_table == ("",)
        assert ct.bus_labels() == ("",)

    def test_empty_bus_label_rejected(self):
        with pytest.raises(TraceFormatError):
            self.make().with_bus("")

    def test_merge_preserves_labels(self):
        fused = ColumnTrace.merge(
            self.make(offset=0).with_bus("hs"),
            self.make(offset=50).with_bus("ms"),
        )
        assert sorted(fused.bus_labels()) == ["hs", "ms"]
        assert len(fused.for_bus("hs")) == 10
        assert fused.for_bus("ms") == self.make(offset=50).with_bus("ms")

    def test_for_bus_unknown_label_rejected(self):
        with pytest.raises(TraceFormatError, match="not present"):
            self.make().with_bus("hs").for_bus("ms")

    def test_slices_and_takes_keep_tags(self):
        fused = ColumnTrace.merge(
            self.make(offset=0).with_bus("hs"),
            self.make(offset=50).with_bus("ms"),
        )
        window = fused.slice(3, 12)
        assert set(window.buses()) <= {"hs", "ms"}
        picked = fused.take(np.arange(0, len(fused), 2))
        assert len(picked.buses()) == len(picked)

    def test_equality_compares_decoded_labels(self):
        a = self.make().with_bus("hs")
        b = self.make().with_bus("ms")
        assert a != b
        assert a == self.make().with_bus("hs")

    def test_to_trace_drops_tags(self):
        tagged = self.make().with_bus("hs")
        assert tagged.to_trace() == self.make().to_trace()


class TestMergeValidation:
    """merge must reject malformed parts with TraceFormatError, never a
    numpy broadcast error."""

    def make(self):
        return Trace(
            TraceRecord(i * 10, 0x100, data=b"ab") for i in range(5)
        ).to_columns()

    def test_rejects_non_columntrace(self):
        with pytest.raises(TraceFormatError, match="ColumnTrace"):
            ColumnTrace.merge(self.make(), "nope")

    def test_rejects_ragged_columns(self):
        good = self.make()
        ragged = ColumnTrace(
            good.timestamp_us, good.can_id[:2], validate=False
        )
        with pytest.raises(TraceFormatError, match="rows"):
            ColumnTrace.merge(good, ragged)

    def test_rejects_wrong_dtype(self):
        good = self.make()
        bad = ColumnTrace(good.timestamp_us, good.can_id, validate=False)
        bad.can_id = bad.can_id.astype(np.float64)
        with pytest.raises(TraceFormatError, match="dtype"):
            ColumnTrace.merge(good, bad)

    def test_rejects_bad_offsets_shape(self):
        good = self.make()
        bad = ColumnTrace(
            good.timestamp_us,
            good.can_id,
            payload=good.payload,
            payload_offsets=good.payload_offsets[:-2],
            validate=False,
        )
        with pytest.raises(TraceFormatError, match="payload_offsets"):
            ColumnTrace.merge(good, bad)

    def test_rejects_two_dimensional_column(self):
        good = self.make()
        bad = ColumnTrace(good.timestamp_us, good.can_id, validate=False)
        bad.is_attack = np.zeros((len(good), 2), dtype=bool)
        with pytest.raises(TraceFormatError, match="1-D"):
            ColumnTrace.merge(good, bad)

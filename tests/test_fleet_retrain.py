"""Drift-triggered retraining: rebuild, log, invalidate — safely.

The re-baselining contract: a retrain learns only from clean windows of
the vehicle's *recent* captures, records an auditable event, and lets
the ledger context hash cold-rescan exactly that vehicle.
"""

import pytest

from repro.attacks import SingleIDAttacker
from repro.core import IDSPipeline
from repro.exceptions import TemplateError
from repro.fleet import (
    FleetStore,
    retrain_vehicle,
    should_retrain,
    template_digest,
    watch_scan,
)
from repro.fleet.retrain import training_captures
from repro.vehicle import VehicleSimulation
from repro.vehicle.traffic import simulate_drive


def attacked_capture(catalog, seed, duration_s=6.0):
    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=seed)
    sim.add_node(
        SingleIDAttacker(
            can_id=catalog.ids[60], frequency_hz=100.0,
            start_s=0.5, duration_s=duration_s - 1.0, seed=seed,
        )
    )
    return sim.run(duration_s)


@pytest.fixture()
def store(tmp_path, catalog):
    """One vehicle: two clean drives plus one attacked drive."""
    store = FleetStore(tmp_path / "fleet")
    store.add_capture(
        "car-a", "drive1.log", simulate_drive(6.0, seed=101, catalog=catalog)
    )
    store.add_capture(
        "car-a", "drive2.log", simulate_drive(6.0, seed=102, catalog=catalog)
    )
    store.add_capture("car-a", "drive3.log", attacked_capture(catalog, 103))
    return store


class TestRetrainVehicle:
    def test_rebuilds_from_clean_windows_and_logs_event(
        self, store, ids_config
    ):
        template = retrain_vehicle(store, "car-a", ids_config)
        assert store.has_template("car-a")
        assert template.n_windows >= 2
        events = store.retrain_events("car-a")
        assert len(events) == 1
        event = events[0]
        assert event["vehicle"] == "car-a"
        assert event["reason"] == "drift"
        assert event["captures"] == ["drive1.log", "drive2.log", "drive3.log"]
        assert event["excluded_attacked"] > 0  # drive3's windows kept out
        assert event["old_template"] is None
        assert event["new_template"] == template_digest(template)
        assert event["window_us"] == ids_config.window_us
        # The recorded training window survives in template.json.
        assert store.template_window_us("car-a") == ids_config.window_us

    def test_second_retrain_links_old_digest(self, store, ids_config, catalog):
        first = retrain_vehicle(store, "car-a", ids_config)
        store.add_capture(
            "car-a", "drive4.log",
            simulate_drive(6.0, seed=104, catalog=catalog),
        )
        retrain_vehicle(store, "car-a", ids_config)
        events = store.retrain_events("car-a")
        assert len(events) == 2
        assert events[1]["old_template"] == template_digest(first)

    def test_recent_captures_selected_naturally(self, store, ids_config, catalog):
        """max_captures takes the chronologically newest, with numeric-
        aware ordering (drive9 < drive10)."""
        for name, seed in [("drive9.log", 109), ("drive10.log", 110)]:
            store.add_capture(
                "car-a", name, simulate_drive(6.0, seed=seed, catalog=catalog)
            )
        recent = training_captures(store, "car-a", max_captures=2)
        assert [p.name for p in recent] == ["drive9.log", "drive10.log"]
        retrain_vehicle(store, "car-a", ids_config, max_captures=2)
        assert store.retrain_events("car-a")[-1]["captures"] == [
            "drive9.log", "drive10.log",
        ]

    def test_all_attacked_vehicle_refuses(self, tmp_path, catalog, ids_config):
        """A vehicle under sustained attack keeps its old baseline: a
        template must never train on poisoned traffic."""
        store = FleetStore(tmp_path / "fleet")
        store.add_capture("car-x", "a1.log", attacked_capture(catalog, 120))
        with pytest.raises(TemplateError, match="clean window"):
            retrain_vehicle(store, "car-x", ids_config)
        assert not store.has_template("car-x")
        assert store.retrain_events("car-x") == []

    def test_no_captures_refuses(self, tmp_path, ids_config):
        store = FleetStore(tmp_path / "fleet")
        store.add_vehicle("car-y")
        with pytest.raises(TemplateError, match="no captures"):
            retrain_vehicle(store, "car-y", ids_config)


class TestShouldRetrain:
    def test_guard_blocks_identical_rerun(self, store, ids_config, catalog):
        assert should_retrain(store, "car-a")
        retrain_vehicle(store, "car-a", ids_config)
        # Same captures, same config -> same template: pointless rerun.
        assert not should_retrain(store, "car-a")
        store.add_capture(
            "car-a", "drive4.log",
            simulate_drive(6.0, seed=104, catalog=catalog),
        )
        assert should_retrain(store, "car-a")

    def test_overwritten_capture_reenables_retraining(
        self, store, ids_config, catalog
    ):
        """Re-recording a capture in place keeps its name but changes
        its bytes — that is new data the guard must not mask."""
        retrain_vehicle(store, "car-a", ids_config)
        assert not should_retrain(store, "car-a")
        store.add_capture(
            "car-a", "drive2.log",
            simulate_drive(6.0, seed=142, catalog=catalog),
            overwrite=True,
        )
        assert should_retrain(store, "car-a")

    def test_legacy_event_without_fingerprints_compares_names(
        self, store, ids_config
    ):
        retrain_vehicle(store, "car-a", ids_config)
        # Strip the fingerprints, as an event from an older version.
        import json

        path = store.retrain_log_path("car-a")
        events = [json.loads(line) for line in path.read_text().splitlines()]
        del events[-1]["fingerprints"]
        path.write_text(
            "".join(json.dumps(e) + "\n" for e in events), encoding="ascii"
        )
        assert not should_retrain(store, "car-a")  # names still match


class TestLedgerInvalidation:
    def test_retrain_forces_cold_rescan_of_that_vehicle(
        self, store, ids_config, catalog
    ):
        """The closing of the loop: new template -> new context hash ->
        the vehicle's ledger rebuilds, and only its own."""
        retrain_vehicle(store, "car-a", ids_config)
        template = store.load_template("car-a")
        pipeline = IDSPipeline(template, ids_config, id_pool=catalog.ids)
        first = watch_scan(
            pipeline, store.archive("car-a"), store.ledger_path("car-a")
        )
        assert len(first.scanned) == 3
        assert watch_scan(
            pipeline, store.archive("car-a"), store.ledger_path("car-a")
        ).fully_cached

        store.add_capture(
            "car-a", "drive4.log",
            simulate_drive(6.0, seed=105, catalog=catalog),
        )
        retrained = retrain_vehicle(store, "car-a", ids_config)
        assert template_digest(retrained) != template_digest(template)
        new_pipeline = IDSPipeline(
            store.load_template("car-a"), ids_config, id_pool=catalog.ids
        )
        result = watch_scan(
            new_pipeline, store.archive("car-a"), store.ledger_path("car-a")
        )
        assert result.ledger.rebuilt
        assert result.ledger.rebuild_reason == "context-changed"
        assert len(result.scanned) == 4  # everything re-judged

    def test_torn_log_line_skipped(self, store, ids_config):
        retrain_vehicle(store, "car-a", ids_config)
        path = store.retrain_log_path("car-a")
        with path.open("a", encoding="ascii") as handle:
            handle.write('{"vehicle": "car-a", "rea')  # crash mid-append
        events = store.retrain_events("car-a")
        assert len(events) == 1  # the torn line costs itself only

"""The repro-ids command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_rejects_bad_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--id", "0x800", "--out", "x.log"])

    def test_rejects_bad_duration(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--duration", "-3", "--out", "x"])

    def test_parses_hex_and_decimal_ids(self):
        args = build_parser().parse_args(
            ["attack", "--id", "0x1A4", "--id", "420", "--out", "x.log"]
        )
        assert args.can_ids == [0x1A4, 420]


class TestWorkflow:
    """simulate -> template -> attack -> detect, through real files."""

    def test_simulate_writes_candump(self, tmp_path, capsys):
        out = tmp_path / "drive.log"
        assert main(["simulate", "--duration", "2", "--out", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_simulate_writes_csv(self, tmp_path):
        out = tmp_path / "drive.csv"
        assert main(["simulate", "--duration", "1", "--out", str(out)]) == 0
        header = out.read_text().splitlines()[0]
        assert header.startswith("time_us,")

    def test_full_detection_workflow(self, tmp_path, capsys):
        template_path = tmp_path / "template.json"
        attack_path = tmp_path / "attack.log"

        assert main(
            ["template", "--windows", "8", "--out", str(template_path)]
        ) == 0
        assert template_path.exists()

        assert main(
            [
                "attack", "--attack", "single", "--freq", "100",
                "--duration", "8", "--attack-duration", "5",
                "--out", str(attack_path),
            ]
        ) == 0

        code = main(
            ["detect", "--template", str(template_path),
             "--trace", str(attack_path), "--infer"]
        )
        assert code == 2  # exit 2 signals alarms
        out = capsys.readouterr().out
        assert "detection rate" in out
        assert "candidates" in out

    def test_detect_clean_trace_exits_zero(self, tmp_path, capsys):
        template_path = tmp_path / "template.json"
        drive_path = tmp_path / "drive.log"
        main(["template", "--windows", "8", "--out", str(template_path)])
        main(["simulate", "--duration", "6", "--out", str(drive_path)])
        assert main(
            ["detect", "--template", str(template_path), "--trace", str(drive_path)]
        ) == 0

    def test_attack_multi_defaults_two_ids(self, tmp_path, capsys):
        out = tmp_path / "attack.log"
        assert main(
            ["attack", "--attack", "multi", "--duration", "4",
             "--attack-duration", "2", "--out", str(out)]
        ) == 0
        assert "MultiIDAttacker" in capsys.readouterr().out


class TestScanArchive:
    """scan-archive: template + directory of captures -> sharded report."""

    def test_archive_workflow(self, tmp_path, capsys):
        template_path = tmp_path / "template.json"
        archive_dir = tmp_path / "captures"
        archive_dir.mkdir()
        assert main(["template", "--windows", "6", "--out", str(template_path)]) == 0
        for i, suffix in enumerate(["log", "csv"]):
            assert main(
                ["simulate", "--duration", "4", "--seed", str(10 + i),
                 "--out", str(archive_dir / f"drive{i}.{suffix}")]
            ) == 0
        capsys.readouterr()
        code = main(
            ["scan-archive", "--template", str(template_path),
             "--dir", str(archive_dir), "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert "archive: 2 captures" in out
        assert code in (0, 2)

    def test_empty_archive_dir_exits_one(self, tmp_path, capsys):
        template_path = tmp_path / "template.json"
        main(["template", "--windows", "6", "--out", str(template_path)])
        empty = tmp_path / "none"
        empty.mkdir()
        capsys.readouterr()
        assert main(
            ["scan-archive", "--template", str(template_path), "--dir", str(empty)]
        ) == 1
        assert "no captures" in capsys.readouterr().out

"""Experiment E5 — the Section V.E comparison.

Three parts:

1. **Analytical cost table** — memory slots and per-message work for the
   bit-entropy IDS vs. the Muter-entropy [8], interval [11] and
   clock-skew [9] schemes (:func:`repro.metrics.cost.compare_costs`).
2. **Detection head-to-head** — all schemes fitted on the same clean
   windows and run over the same attack captures; detection and
   false-positive rates side by side.
3. **Unseen-ID blindness** — an attack that injects an identifier absent
   from the catalog: the interval scheme (which "cannot figure out such
   an attack scenario when the attacker uses unseen ID") stays silent
   while the entropy schemes alarm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks import SingleIDAttacker
from repro.baselines import (
    BaselineIDS,
    ClockSkewIDS,
    FrequencyIDS,
    IntervalIDS,
    MuterEntropyIDS,
)
from repro.core import EntropyDetector
from repro.experiments.report import hexid, pct, render_table
from repro.experiments.runner import (
    ATTACK_DURATION_S,
    ATTACK_START_S,
    ExperimentSetup,
    build_setup,
)
from repro.io.trace import Trace
from repro.metrics.cost import compare_costs
from repro.metrics.rates import detection_rate
from repro.vehicle import VehicleSimulation
from repro.vehicle.traffic import record_template_windows


@dataclass
class CostResult:
    """All three parts of the Section-V.E comparison."""

    n_catalog_ids: int
    #: scheme name -> (detection rate, false positive rate) on the shared runs.
    head_to_head: Dict[str, Dict[str, float]]
    #: scheme name -> detection rate on the unseen-ID attack.
    unseen_id_detection: Dict[str, float]
    unseen_id: int

    def render(self) -> str:
        """The complete comparison, three tables."""
        cost_rows = [
            list(model.as_row().values()) for model in compare_costs(self.n_catalog_ids)
        ]
        cost_table = render_table(
            headers=[
                "scheme",
                "memory slots",
                "updates/msg",
                "terms/window",
                "unseen IDs",
                "localizes",
            ],
            rows=cost_rows,
            title=f"Cost comparison for a {self.n_catalog_ids}-identifier catalog (Sec. V.E)",
        )
        head_rows = [
            [name, pct(scores["detection_rate"]), pct(scores["false_positive_rate"])]
            for name, scores in self.head_to_head.items()
        ]
        head_table = render_table(
            headers=["scheme", "detection rate", "false positive rate"],
            rows=head_rows,
            title="Head-to-head on identical attack captures",
        )
        unseen_rows = [
            [name, pct(rate)] for name, rate in self.unseen_id_detection.items()
        ]
        unseen_table = render_table(
            headers=["scheme", "detection rate"],
            rows=unseen_rows,
            title=f"Unseen-ID injection ({hexid(self.unseen_id)}, not in the catalog)",
        )
        return "\n\n".join([cost_table, head_table, unseen_table])


def _fit_baselines(
    setup: ExperimentSetup, clean_windows: Sequence[Trace]
) -> List[BaselineIDS]:
    """Fit every baseline on the same clean windows."""
    kwargs = dict(
        window_us=setup.config.window_us,
        min_window_messages=setup.config.min_window_messages,
    )
    baselines: List[BaselineIDS] = [
        MuterEntropyIDS(**kwargs),
        IntervalIDS(**kwargs),
        ClockSkewIDS(**kwargs),
        FrequencyIDS(**kwargs),
    ]
    for baseline in baselines:
        baseline.fit(list(clean_windows))
    return baselines


def _first_unused_id(setup: ExperimentSetup) -> int:
    """The smallest mid-range identifier absent from the catalog."""
    catalog = set(setup.catalog.id_set())
    for candidate in range(0x100, 0x800):
        if candidate not in catalog:
            return candidate
    raise RuntimeError("catalog uses every identifier; cannot pick an unseen one")


def run(
    setup: Optional[ExperimentSetup] = None,
    frequency_hz: float = 50.0,
    seeds: Sequence[int] = (1, 2),
) -> CostResult:
    """Run the full Section-V.E comparison."""
    if setup is None:
        setup = build_setup()
    window_s = setup.config.window_us / 1e6
    clean_windows = record_template_windows(
        n_windows=max(10, setup.config.template_windows // 2),
        window_s=window_s,
        seed=setup.seed + 1,
        catalog=setup.catalog,
    )
    baselines = _fit_baselines(setup, clean_windows)

    def analyze_all(trace: Trace) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        report = setup.pipeline.analyze(trace)
        out["bit-entropy (ours)"] = {
            "detection_rate": report.detection_rate,
            "false_positive_rate": report.false_positive_rate,
        }
        for baseline in baselines:
            verdicts = baseline.scan(trace)
            out[baseline.name] = {
                "detection_rate": detection_rate(verdicts),
                "false_positive_rate": BaselineIDS.false_positive_rate(verdicts),
            }
        return out

    # Part 2: head-to-head on catalog-ID injections.
    accumulator: Dict[str, Dict[str, List[float]]] = {}
    for seed in seeds:
        can_id = setup.catalog.ids[60 + 40 * seed]
        sim = VehicleSimulation(catalog=setup.catalog, scenario="city", seed=seed + 5)
        sim.add_node(
            SingleIDAttacker(
                can_id=can_id,
                frequency_hz=frequency_hz,
                start_s=ATTACK_START_S,
                duration_s=ATTACK_DURATION_S,
                seed=seed,
            )
        )
        trace = sim.run(ATTACK_START_S + ATTACK_DURATION_S + 2.0)
        for name, scores in analyze_all(trace).items():
            slot = accumulator.setdefault(
                name, {"detection_rate": [], "false_positive_rate": []}
            )
            slot["detection_rate"].append(scores["detection_rate"])
            slot["false_positive_rate"].append(scores["false_positive_rate"])
    head_to_head = {
        name: {metric: float(np.mean(values)) for metric, values in slots.items()}
        for name, slots in accumulator.items()
    }

    # Part 3: unseen-ID injection (the interval scheme's blind spot).
    unseen = _first_unused_id(setup)
    sim = VehicleSimulation(catalog=setup.catalog, scenario="city", seed=77)
    sim.add_node(
        SingleIDAttacker(
            can_id=unseen,
            frequency_hz=frequency_hz,
            start_s=ATTACK_START_S,
            duration_s=ATTACK_DURATION_S,
            seed=9,
        )
    )
    trace = sim.run(ATTACK_START_S + ATTACK_DURATION_S + 2.0)
    unseen_scores = analyze_all(trace)
    unseen_id_detection = {
        name: scores["detection_rate"] for name, scores in unseen_scores.items()
    }

    return CostResult(
        n_catalog_ids=len(setup.catalog),
        head_to_head=head_to_head,
        unseen_id_detection=unseen_id_detection,
        unseen_id=unseen,
    )

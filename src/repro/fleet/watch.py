"""Incremental (watch-mode) archive scanning against a scan ledger.

A fleet deployment re-examines each vehicle's capture archive on a
schedule.  Cold-scanning the whole archive every time is wasted work:
yesterday's captures have not changed and neither has the template.
:func:`watch_scan` diffs a :class:`~repro.io.archive.CaptureArchive`
snapshot against the vehicle's :class:`~repro.fleet.ledger.ScanLedger`
and scans **only** captures whose content fingerprint is new or changed
— through the exact same :class:`~repro.core.shard.ShardedScanner` +
inference path a cold :meth:`IDSPipeline.analyze_archive` run takes —
then replays the cached reports for everything else.

The headline guarantee, asserted by ``tests/test_fleet_watch.py``: the
assembled :class:`~repro.core.pipeline.ArchiveReport` is **bit-identical
to a cold full scan** of the same archive at any worker count.  Fresh
results are trivially identical (same code, same bytes); cached results
are identical because :class:`DetectionReport` serialisation is lossless
(JSON floats round-trip ``float64`` exactly) and because the ledger
invalidates itself whenever the detection context — template, config,
identifier pool, ``infer_k`` — changes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.core.config import IDSConfig
from repro.core.pipeline import ArchiveReport, DetectionReport, IDSPipeline
from repro.core.shard import ShardedScanner
from repro.core.template import GoldenTemplate
from repro.exceptions import ReproError
from repro.fleet.ledger import ScanLedger
from repro.io.archive import CaptureArchive
from repro.io.fingerprint import fingerprint_file

__all__ = ["WatchResult", "detection_context", "watch_scan"]


def detection_context(
    template: GoldenTemplate,
    config: IDSConfig,
    id_pool=None,
    infer_k=1,
) -> str:
    """Fingerprint of everything that determines a capture's verdict.

    Two scans with equal context keys produce identical reports for
    identical capture bytes; any difference — retrained template,
    changed window, different inference settings — yields a new key and
    therefore a cold ledger.  Training-time-only knobs (``alpha``,
    ``threshold_floor``, ``template_windows``) are deliberately *not*
    hashed: their effect is already baked into the template's
    thresholds, and hashing them would cold-invalidate every vehicle's
    ledger whenever an unrelated vehicle retrains with different
    training settings.
    """
    payload = {
        "template": template.to_dict(),
        "config": {
            "n_bits": config.n_bits,
            "window_us": config.window_us,
            "min_window_messages": config.min_window_messages,
            "rank": config.rank,
            "constraint_z": config.constraint_z,
            "min_injected_fraction": config.min_injected_fraction,
        },
        "id_pool": None if id_pool is None else [int(i) for i in id_pool],
        "infer_k": infer_k if infer_k == "auto" else int(infer_k),
    }
    blob = json.dumps(payload, sort_keys=True).encode("ascii")
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


@dataclass
class WatchResult:
    """Outcome of one incremental archive scan."""

    #: The assembled report — bit-identical to a cold full scan.
    report: ArchiveReport
    #: Captures that were actually (re-)scanned this run, in scan order.
    scanned: List[Path] = field(default_factory=list)
    #: Captures answered from the ledger, in scan order.
    cached: List[Path] = field(default_factory=list)
    #: Ledger entries dropped because their captures left the archive.
    pruned: int = 0
    #: The ledger after the run (saved; exposes hit/miss counters).
    ledger: Optional[ScanLedger] = None

    @property
    def fully_cached(self) -> bool:
        """True when the ledger answered every capture."""
        return not self.scanned

    def summary(self) -> str:
        """One-line digest of how much work the ledger saved."""
        flags = []
        if self.ledger is not None and self.ledger.rebuilt:
            flags.append(f"ledger rebuilt: {self.ledger.rebuild_reason}")
        if self.pruned:
            flags.append(f"{self.pruned} pruned")
        extra = f" ({', '.join(flags)})" if flags else ""
        return (
            f"{len(self.report)} captures: {len(self.scanned)} scanned, "
            f"{len(self.cached)} cached{extra}"
        )


def watch_scan(
    pipeline: IDSPipeline,
    archive: Union[CaptureArchive, str, Path],
    ledger_path: Union[str, Path],
    workers: Optional[int] = None,
    infer_k=1,
    executor=None,
    chunk_windows: Optional[int] = None,
) -> WatchResult:
    """Scan an archive incrementally, updating its ledger.

    Captures whose relative path *and* content fingerprint match a
    ledger entry replay the persisted report; everything else fans out
    through :class:`ShardedScanner` (``workers``, ``executor`` and the
    out-of-core ``chunk_windows`` as in
    :meth:`IDSPipeline.analyze_archive` — any runtime backend, same
    bit-identical result) and lands in the ledger for next time.
    Entries for captures no longer present are pruned, and the ledger
    is saved atomically before returning.
    """
    if not isinstance(archive, CaptureArchive):
        archive = CaptureArchive(archive)
    context = detection_context(
        pipeline.template, pipeline.config, pipeline.id_pool, infer_k
    )
    ledger = ScanLedger(ledger_path, context)

    rels = [p.relative_to(archive.directory).as_posix() for p in archive.paths]
    fingerprints = [fingerprint_file(p) for p in archive.paths]
    reports: List[Optional[DetectionReport]] = []
    stale: List[int] = []
    cached_paths: List[Path] = []
    for i, (path, rel, fp) in enumerate(zip(archive.paths, rels, fingerprints)):
        entry = ledger.get(rel, fp)
        report = None
        if entry is not None:
            try:
                report = DetectionReport.from_dict(entry)
            except (ReproError, TypeError, KeyError, ValueError):
                # The entry passed the ledger's shallow schema check but
                # its report payload is malformed (foreign writer, hand
                # edit, schema drift).  The corrupt-ledger contract is
                # "never trust, re-scan": demote the hit to a miss.
                ledger.hits -= 1
                ledger.misses += 1
        if report is None:
            reports.append(None)
            stale.append(i)
        else:
            reports.append(report)
            cached_paths.append(path)

    scanned_paths = [archive.paths[i] for i in stale]
    if stale:
        scanner = ShardedScanner(
            pipeline.template, pipeline.config, workers=workers,
            executor=executor, chunk_windows=chunk_windows,
        )
        for i, scan in zip(stale, scanner.scan_archive(scanned_paths)):
            alerts = [w.to_alert() for w in scan.windows if w.alarm]
            # _finish_report is the same inference + assembly step
            # analyze_archive runs, shared so cold and incremental scans
            # cannot drift apart.
            report = pipeline._finish_report(scan.windows, alerts, infer_k)
            reports[i] = report
            ledger.put(rels[i], fingerprints[i], report.to_dict())

    pruned = ledger.prune(rels)
    ledger.save()
    return WatchResult(
        report=ArchiveReport(captures=list(zip(archive.paths, reports))),
        scanned=scanned_paths,
        cached=cached_paths,
        pruned=pruned,
        ledger=ledger,
    )

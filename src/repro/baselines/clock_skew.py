"""A simplified clock-skew IDS (CIDS, Cho & Shin 2016 — paper's ref [9]).

The original fingerprints transmitting ECUs by the clock skew visible in
the arrival times of their periodic messages, then runs CUSUM on the
identification error.  The paper's criticism: the fingerprint requires
offline computation per ECU and the scheme reacts slowly — both captured
here.

This simplified version tracks, per identifier, the drift between
expected (nominal-period) and observed arrival times; the per-window
judgement runs a CUSUM over the normalised drift innovations.  A
masquerading or injecting node shifts the innovation distribution and
eventually trips the CUSUM — slowly, which the latency benchmark shows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import DetectorError
from repro.io.trace import Trace

from repro.baselines.base import BaselineIDS


class ClockSkewIDS(BaselineIDS):
    """Per-identifier arrival-drift CUSUM.

    Parameters
    ----------
    cusum_threshold:
        CUSUM decision threshold (in units of the training innovation
        standard deviation).
    drift_slack:
        CUSUM slack parameter k, in the same units.
    """

    name = "clock-skew"
    handles_unseen_ids = False
    localizes_ids = True

    def __init__(
        self,
        cusum_threshold: float = 8.0,
        drift_slack: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if cusum_threshold <= 0:
            raise DetectorError("cusum_threshold must be positive")
        self.cusum_threshold = cusum_threshold
        self.drift_slack = drift_slack
        self.nominal_period_us: Dict[int, float] = {}
        self.innovation_std_us: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def _fit(self, windows: Sequence[Trace]) -> None:
        # Like the interval IDS, intervals are computed within each
        # capture — the clean windows are independent recordings and
        # pooling their raw timestamps would fabricate bogus intervals.
        intervals_by_id: Dict[int, List[float]] = {}
        for window in windows:
            last_seen: Dict[int, int] = {}
            for record in window:
                previous = last_seen.get(record.can_id)
                last_seen[record.can_id] = record.timestamp_us
                if previous is not None and record.timestamp_us > previous:
                    intervals_by_id.setdefault(record.can_id, []).append(
                        float(record.timestamp_us - previous)
                    )
        for can_id, intervals in intervals_by_id.items():
            if len(intervals) < 8:
                continue  # the offline fingerprint needs history
            values = np.asarray(intervals)
            period = float(np.median(values))
            innovations = values - period
            self.nominal_period_us[can_id] = period
            # A generous floor keeps boundary jitter from shrinking the
            # scale to the point where clean traffic trips the CUSUM.
            self.innovation_std_us[can_id] = float(
                max(np.std(innovations), 0.05 * period, 1.0)
            )
        if not self.nominal_period_us:
            raise DetectorError("clock-skew IDS fingerprinted no identifiers")

    def _judge(self, window: Trace) -> Tuple[float, bool]:
        # CUSUM per identifier across the window; the window score is the
        # worst identifier's normalised CUSUM peak.
        last_seen: Dict[int, int] = {}
        cusum_pos: Dict[int, float] = {}
        cusum_neg: Dict[int, float] = {}
        worst = 0.0
        for record in window:
            period = self.nominal_period_us.get(record.can_id)
            if period is None:
                continue
            previous = last_seen.get(record.can_id)
            last_seen[record.can_id] = record.timestamp_us
            if previous is None:
                continue
            innovation = (record.timestamp_us - previous) - period
            normalised = innovation / self.innovation_std_us[record.can_id]
            up = max(
                0.0, cusum_pos.get(record.can_id, 0.0) + normalised - self.drift_slack
            )
            down = max(
                0.0, cusum_neg.get(record.can_id, 0.0) - normalised - self.drift_slack
            )
            cusum_pos[record.can_id] = up
            cusum_neg[record.can_id] = down
            worst = max(worst, up, down)
        return worst, worst > self.cusum_threshold

    def _scores_columns(self, ct, grid, seg_starts, seg_ends, judged):
        # The CUSUM recursion is sequential *within* one (window, id)
        # stream, so it cannot collapse into prefix sums without
        # changing float summation order.  Instead, vectorise *across*
        # streams: group records by (window, id) with time order
        # preserved, then run the recursion stepwise — step t updates
        # every stream that still has a t-th innovation, with exactly
        # the operations (and therefore exactly the floats) _judge
        # computes one record at a time.  Streams sort by length
        # descending so the active set is always a prefix.
        n_windows = seg_starts.size
        win_of_record = np.repeat(np.arange(n_windows), seg_ends - seg_starts)
        known_ids = np.fromiter(self.nominal_period_us, np.int64)
        periods = np.fromiter(self.nominal_period_us.values(), float)
        stds = np.fromiter(
            (self.innovation_std_us[i] for i in known_ids.tolist()), float
        )
        id_order = np.argsort(known_ids)
        known_ids = known_ids[id_order]
        periods, stds = periods[id_order], stds[id_order]
        pos = np.clip(np.searchsorted(known_ids, ct.can_id), 0, known_ids.size - 1)
        known = known_ids[pos] == ct.can_id
        win = win_of_record[known]
        ids = ct.can_id[known]
        stamps = ct.timestamp_us[known]
        pos = pos[known]
        order = np.lexsort((np.arange(win.size), ids, win))
        win, ids, stamps, pos = win[order], ids[order], stamps[order], pos[order]

        scores = np.zeros(n_windows, dtype=float)
        if win.size >= 2:
            follows = (win[1:] == win[:-1]) & (ids[1:] == ids[:-1])
            # One innovation per record that follows another of its
            # stream: exactly _judge's "previous is not None" case.
            norm = (
                (stamps[1:] - stamps[:-1]) - periods[pos[1:]]
            ) / stds[pos[1:]]
            norm = norm[follows]
            if norm.size:
                # Run index of record k is the number of stream breaks
                # before it; innovations inherit their record's run.
                run_of = np.cumsum(~follows)
                stream = run_of[follows]  # non-decreasing per innovation
                _, starts, lengths = np.unique(
                    stream, return_index=True, return_counts=True
                )
                stream_win = win[1:][follows][starts]
                by_len = np.argsort(-lengths, kind="stable")
                starts, lengths = starts[by_len], lengths[by_len]
                stream_win = stream_win[by_len]
                up = np.zeros(lengths.size)
                down = np.zeros(lengths.size)
                worst = np.zeros(lengths.size)
                slack = self.drift_slack
                for t in range(int(lengths[0])):
                    # Streams still holding a t-th innovation are the
                    # prefix with length > t.
                    m = int(np.searchsorted(-lengths, -t, side="left"))
                    y = norm[starts[:m] + t]
                    up[:m] = np.maximum(0.0, (up[:m] + y) - slack)
                    down[:m] = np.maximum(0.0, (down[:m] - y) - slack)
                    worst[:m] = np.maximum(
                        worst[:m], np.maximum(up[:m], down[:m])
                    )
                np.maximum.at(scores, stream_win, worst)
        return scores, scores > self.cusum_threshold

    # ------------------------------------------------------------------
    def memory_slots(self) -> int:
        """Period, innovation scale and two CUSUM accumulators per ID."""
        return 4 * len(self.nominal_period_us)

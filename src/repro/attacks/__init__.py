"""Attack scenarios from Section III of the paper.

All attackers are bus nodes (:class:`repro.attacks.base.AttackerNode`)
that attempt injections at a fixed frequency and — unlike legitimate
controllers — **drop** frames that lose arbitration instead of retrying.
That policy makes the paper's *injection rate* (successful injections
over attempts) a well-defined, ID-dependent quantity, reproduced in
Fig. 3.

Scenario classes:

========================  =====================================================
:class:`FloodingAttacker`  strong model; changeable high-priority identifiers
                           (fixed 0x000 flooding trips the transceiver guard)
:class:`SingleIDAttacker`  strong model; one chosen identifier
:class:`MultiIDAttacker`   strong model; k identifiers (paper tests k = 2,3,4)
:class:`WeakAttacker`      weak model; only the compromised ECU's assigned IDs
:class:`ReplayAttacker`    extension; replays a recorded trace segment
:class:`MasqueradeAttacker` extension; silences a victim ECU and speaks for it
========================  =====================================================
"""

from repro.attacks.base import AttackerNode, AttackStats
from repro.attacks.flooding import FloodingAttacker
from repro.attacks.masquerade import MasqueradeAttacker
from repro.attacks.multi_id import MultiIDAttacker
from repro.attacks.replay import ReplayAttacker
from repro.attacks.single_id import SingleIDAttacker
from repro.attacks.weak import WeakAttacker

__all__ = [
    "AttackStats",
    "AttackerNode",
    "FloodingAttacker",
    "MasqueradeAttacker",
    "MultiIDAttacker",
    "ReplayAttacker",
    "SingleIDAttacker",
    "WeakAttacker",
]

"""The multiprocessing executor (extracted from ``ShardedScanner``).

One capture archive, many CPU cores: the pool backend fans shard tasks
across a ``multiprocessing`` pool, one task per capture.  Workers build
their scanner once (pool initializer) and receive only *paths* per
task — captures are loaded inside the worker through the columnar
readers, so no bulk frame data crosses the process boundary.

``pool.map`` preserves task order, so results are deterministic no
matter which worker finishes first; a single worker (or a single task)
runs inline without a pool, which is also the fallback wherever
``multiprocessing`` is unavailable or undesirable.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.exceptions import DetectorError
from repro.runtime.base import Executor, ScanSpec

__all__ = ["PoolExecutor", "default_workers"]

#: Worker-process state installed by the pool initializer.  With the
#: ``fork`` start method this is inherited for free; with ``spawn`` the
#: initializer argument (the spec) is pickled once per worker, not per
#: task.
_WORKER: dict = {}


def _init_worker(spec: ScanSpec) -> None:
    _WORKER["scan"] = spec.make_scanner()


def _init_pool_worker(spec: ScanSpec) -> None:
    # A forked worker inherits the parent's signal handlers.  If the
    # parent is a daemon (``fleet watch`` installs a graceful SIGTERM
    # handler), an inheriting worker would *survive* the pool's own
    # ``terminate()`` — the handler just sets a flag on the parent's
    # daemon object — and ``Pool.__exit__`` would then wait on it
    # forever.  Pool workers are disposable by design: restore default
    # dispositions so terminate means terminate.  (Only here, never in
    # the inline path, which runs in the coordinator's own process.)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    _init_worker(spec)


def _run_task(path: str) -> list:
    return _WORKER["scan"](path)


def _pool_context():
    """Prefer ``fork`` (cheap, inherits the spec) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def default_workers(n_tasks: Optional[int] = None) -> int:
    """Worker count when none is given: one per core, capped at 8.

    When the task count is known it caps the answer too — an archive of
    3 captures never warrants 8 workers, and on a 1-CPU host the cap
    collapses to 1, which the pool runs inline: no fork, no pickling,
    no pool overhead for parallelism the hardware cannot deliver
    (results/throughput.txt showed pool(1) at 0.87x serial before this).
    """
    cap = max(1, min(os.cpu_count() or 1, 8))
    if n_tasks is not None:
        cap = max(1, min(cap, int(n_tasks)))
    return cap


class PoolExecutor(Executor):
    """Fan shard tasks across a process pool, one capture per task.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` runs inline (no pool).  Defaults to
        :func:`default_workers` sized against the actual task count at
        :meth:`run` time.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self._requested = None if workers is None else int(workers)
        if self._requested is not None and self._requested < 1:
            raise DetectorError(f"workers must be >= 1, got {workers}")

    @property
    def workers(self) -> int:
        """The effective pool size (before the per-run task-count cap)."""
        return (
            default_workers() if self._requested is None else self._requested
        )

    def run(
        self, spec: ScanSpec, paths: Sequence[Union[str, Path]]
    ) -> List[list]:
        names = [str(p) for p in paths]
        requested = (
            default_workers(len(names))
            if self._requested is None
            else self._requested
        )
        n_workers = min(requested, len(names))
        if n_workers <= 1:
            _init_worker(spec)
            try:
                return [_run_task(p) for p in names]
            finally:
                _WORKER.clear()
        ctx = _pool_context()
        with ctx.Pool(
            n_workers, initializer=_init_pool_worker, initargs=(spec,)
        ) as pool:
            # map() preserves task order, so results are deterministic
            # no matter which worker finished first.
            return pool.map(_run_task, names, chunksize=1)

    def describe(self) -> str:
        return f"pool({self.workers})"

"""Throughput experiment: streaming vs. batch detection at scale.

The paper's Section V.E argues the bit-slice method is light-weight; the
ROADMAP's production target demands the reproduction actually *runs*
light-weight on capture sizes comparable to the multi-million-frame
datasets used by CANet and the ROAD comparative study.  This experiment
measures both detection paths on one large synthetic capture from the
columnar drive generator:

* **streaming** — ``EntropyDetector.feed`` record by record, the
  embedded / live-bus deployment path (timed on a capped sample and
  reported as messages/second, since running the interpreter loop over
  the full capture would only repeat the same number);
* **batch** — ``BatchEntropyEngine.scan`` over the ``ColumnTrace``,
  the recorded-capture path.

Both paths produce bit-identical verdicts (the parity suite asserts
it); the experiment quantifies the cost gap between them.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import BatchEntropyEngine, EntropyDetector, IDSConfig
from repro.core.bitprob import check_id_range, window_bit_counts
from repro.core.detector import WindowResult
from repro.core.engine import DEFAULT_CHUNK_WINDOWS
from repro.core.entropy import binary_entropy
from repro.core.kernel import KernelWorkspace, WindowBlock, scan_windows
from repro.core.shard import ShardedScanner
from repro.core.template import GoldenTemplate
from repro.experiments.bench import bench_record
from repro.io.archive import CaptureArchive
from repro.io.columnar import ColumnTrace
from repro.io.csvlog import read_csv, read_csv_columns, write_csv_columns
from repro.io.log import read_candump, read_candump_columns, write_candump_columns
from repro.vehicle.ids_catalog import VehicleCatalog
from repro.vehicle.traffic import generate_drive_columns

#: Default capture size: ten million frames, the multi-million-frame
#: regime of the comparative CAN-IDS studies.
DEFAULT_FRAMES = 10_000_000

#: Frames fed through the streaming path to estimate its rate.
DEFAULT_STREAMING_SAMPLE = 200_000


@dataclass(frozen=True)
class ThroughputResult:
    """Measured rates of the two detection paths on one capture."""

    n_frames: int
    capture_s: float
    n_windows: int
    streaming_frames: int
    streaming_mps: float
    batch_mps: float

    @property
    def speedup(self) -> float:
        """Batch messages/second over streaming messages/second."""
        return self.batch_mps / self.streaming_mps if self.streaming_mps else 0.0

    def render(self) -> str:
        """The experiment's artifact table."""
        lines = [
            "Throughput: streaming feed() vs batch ColumnTrace scan",
            f"capture: {self.n_frames} frames over {self.capture_s:.0f}s "
            f"simulated driving, {self.n_windows} detection windows",
            f"{'path':>12} {'frames':>12} {'msg/s':>14}",
            f"{'streaming':>12} {self.streaming_frames:>12} {self.streaming_mps:>14,.0f}",
            f"{'batch':>12} {self.n_frames:>12} {self.batch_mps:>14,.0f}",
            f"speedup: {self.speedup:.1f}x",
        ]
        return "\n".join(lines)

    def bench_records(self) -> List[dict]:
        """Machine-readable twin of :meth:`render`."""
        params = {
            "n_frames": self.n_frames,
            "n_windows": self.n_windows,
            "streaming_frames": self.streaming_frames,
        }
        return [
            bench_record(
                "throughput", "streaming_mps", self.streaming_mps,
                "msg/s", params,
            ),
            bench_record(
                "throughput", "batch_mps", self.batch_mps, "msg/s", params
            ),
            bench_record("throughput", "speedup", self.speedup, "x", params),
        ]


def run(
    template: GoldenTemplate,
    config: Optional[IDSConfig] = None,
    n_frames: int = DEFAULT_FRAMES,
    streaming_sample: int = DEFAULT_STREAMING_SAMPLE,
    seed: int = 29,
    scenario: str = "city",
    catalog: Optional[VehicleCatalog] = None,
    capture: Optional[ColumnTrace] = None,
) -> ThroughputResult:
    """Measure both detection paths on one large synthetic capture.

    The capture comes from :func:`generate_drive_columns`, sized by
    first estimating the scenario's message rate on a short probe drive.
    Pass ``capture`` to measure an existing columnar trace instead.
    """
    config = config or IDSConfig()
    if capture is None:
        probe = generate_drive_columns(
            10.0, scenario=scenario, seed=seed, catalog=catalog
        )
        rate = max(probe.message_rate_hz(), 1.0)
        duration_s = n_frames / rate * 1.02 + 1.0
        capture = generate_drive_columns(
            duration_s, scenario=scenario, seed=seed, catalog=catalog,
            with_payloads=False,
        ).slice(0, n_frames)
    n = len(capture)

    start = time.perf_counter()
    windows = BatchEntropyEngine(template, config).scan(capture)
    batch_elapsed = time.perf_counter() - start
    batch_mps = n / batch_elapsed if batch_elapsed else 0.0

    sample_n = min(streaming_sample, n)
    sample = capture.slice(0, sample_n).to_trace()  # conversion untimed
    detector = EntropyDetector(template, config)
    start = time.perf_counter()
    detector.scan(sample)
    streaming_elapsed = time.perf_counter() - start
    streaming_mps = sample_n / streaming_elapsed if streaming_elapsed else 0.0

    return ThroughputResult(
        n_frames=n,
        capture_s=capture.duration_us / 1e6,
        n_windows=len(windows),
        streaming_frames=sample_n,
        streaming_mps=streaming_mps,
        batch_mps=batch_mps,
    )


# ----------------------------------------------------------------------
# Fused kernel vs the per-bit reduceat batch path
# ----------------------------------------------------------------------

def _legacy_batch_scan(
    template: GoldenTemplate, config: IDSConfig, ct: ColumnTrace
) -> List[WindowResult]:
    """The pre-kernel batch hot path, kept as the benchmark baseline.

    This is the ``BatchEntropyEngine.scan`` implementation the fused
    kernel replaced: ``n_bits`` separate ``np.add.reduceat`` passes over
    the capture (one per monitored bit) followed by a per-window Python
    loop building results.  It stays here — not in ``repro.core`` — so
    the "kernel is N x faster" claim remains measurable against the same
    reference after the engine rewrite.
    """
    if len(ct) == 0:
        return []
    n_bits = config.n_bits
    ids = ct.can_id
    check_id_range(ids, n_bits)

    grid, seg_starts, seg_ends = ct.window_segments(config.window_us)
    n_windows = grid.size
    t_starts = ct.start_us + grid * np.int64(config.window_us)

    counts = window_bit_counts(ids, seg_starts, n_bits)
    totals = seg_ends - seg_starts
    attacks = ct.attack_counts(seg_starts)

    probabilities = counts / totals[:, None].astype(float)
    entropy = np.asarray(binary_entropy(probabilities), dtype=float)
    judged = totals >= config.min_window_messages
    deviations = np.where(
        judged[:, None], entropy - template.mean_entropy, 0.0
    )
    violated = np.abs(deviations) > template.thresholds
    violated &= judged[:, None]

    window_us = config.window_us
    results: List[WindowResult] = []
    for w in range(n_windows):
        results.append(
            WindowResult(
                index=w,
                t_start_us=int(t_starts[w]),
                t_end_us=int(t_starts[w]) + window_us,
                n_messages=int(totals[w]),
                n_attack_messages=int(attacks[w]),
                probabilities=probabilities[w],
                entropy=entropy[w],
                deviations=deviations[w],
                violated=violated[w],
                judged=bool(judged[w]),
            )
        )
    return results


@dataclass(frozen=True)
class KernelThroughputResult:
    """Fused-kernel rates against the per-bit reduceat baseline."""

    n_frames: int
    n_windows: int
    reps: int
    chunk_windows: int
    legacy_mps: float
    kernel_mps: float
    kernel_block_mps: float
    stream_block_mps: float
    parity_ok: bool

    @property
    def kernel_speedup(self) -> float:
        """Fused kernel (materialised results) over the legacy path."""
        return self.kernel_mps / self.legacy_mps if self.legacy_mps else 0.0

    @property
    def block_speedup(self) -> float:
        """Fused kernel (WindowBlock, no materialisation) over legacy."""
        return (
            self.kernel_block_mps / self.legacy_mps if self.legacy_mps else 0.0
        )

    @property
    def stream_speedup(self) -> float:
        """Chunked out-of-core driver over the legacy path."""
        return (
            self.stream_block_mps / self.legacy_mps if self.legacy_mps else 0.0
        )

    def render(self) -> str:
        """The experiment's artifact table."""
        lines = [
            "Fused kernel vs per-bit reduceat batch path",
            f"capture: {self.n_frames} frames, {self.n_windows} windows, "
            f"best of {self.reps} reps "
            f"(stream chunk_windows={self.chunk_windows})",
            f"{'path':>22} {'msg/s':>14} {'speedup':>9}",
            f"{'legacy per-bit':>22} {self.legacy_mps:>14,.0f} {'1.0x':>9}",
            f"{'kernel (results)':>22} {self.kernel_mps:>14,.0f} "
            f"{self.kernel_speedup:>8.1f}x",
            f"{'kernel (block)':>22} {self.kernel_block_mps:>14,.0f} "
            f"{self.block_speedup:>8.1f}x",
            f"{'stream (block)':>22} {self.stream_block_mps:>14,.0f} "
            f"{self.stream_speedup:>8.1f}x",
            f"parity vs legacy: {'bit-identical' if self.parity_ok else 'MISMATCH'}",
        ]
        return "\n".join(lines)

    def bench_records(self) -> List[dict]:
        """Machine-readable twin of :meth:`render`."""
        params = {
            "n_frames": self.n_frames,
            "n_windows": self.n_windows,
            "reps": self.reps,
            "chunk_windows": self.chunk_windows,
        }
        section = "kernel"
        return [
            bench_record(section, "legacy_mps", self.legacy_mps, "msg/s", params),
            bench_record(section, "kernel_mps", self.kernel_mps, "msg/s", params),
            bench_record(
                section, "kernel_block_mps", self.kernel_block_mps,
                "msg/s", params,
            ),
            bench_record(
                section, "stream_block_mps", self.stream_block_mps,
                "msg/s", params,
            ),
            bench_record(
                section, "kernel_speedup", self.kernel_speedup, "x", params
            ),
            bench_record(
                section, "block_speedup", self.block_speedup, "x", params
            ),
            bench_record(
                section, "stream_speedup", self.stream_speedup, "x", params
            ),
            bench_record(
                section, "parity_ok", 1.0 if self.parity_ok else 0.0,
                "bool", params,
            ),
        ]


def _best_rate(fn: Callable[[], object], n: int, reps: int) -> float:
    """Best-of-``reps`` messages/second for ``fn`` over ``n`` frames."""
    best = float("inf")
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return n / best if best else 0.0


def run_kernel(
    template: GoldenTemplate,
    config: Optional[IDSConfig] = None,
    n_frames: int = 1_000_000,
    reps: int = 5,
    chunk_windows: int = DEFAULT_CHUNK_WINDOWS,
    seed: int = 29,
    scenario: str = "city",
    catalog: Optional[VehicleCatalog] = None,
    capture: Optional[ColumnTrace] = None,
) -> KernelThroughputResult:
    """Measure the fused kernel against the per-bit reduceat baseline.

    All four variants run in one process on the same capture (best of
    ``reps`` repetitions each, interleaving-immune on a noisy host), and
    parity is asserted on the full ``WindowResult.to_dict`` stream —
    the kernel's speedup only counts if its verdicts are bit-identical.
    """
    config = config or IDSConfig()
    if capture is None:
        probe = generate_drive_columns(
            10.0, scenario=scenario, seed=seed, catalog=catalog
        )
        rate = max(probe.message_rate_hz(), 1.0)
        duration_s = n_frames / rate * 1.02 + 1.0
        capture = generate_drive_columns(
            duration_s, scenario=scenario, seed=seed, catalog=catalog,
            with_payloads=False,
        ).slice(0, n_frames)
    n = len(capture)
    engine = BatchEntropyEngine(template, config)

    legacy = _legacy_batch_scan(template, config, capture)
    kernel_results = engine.scan(capture)
    stream_results = engine.scan_stream(capture, chunk_windows=chunk_windows)
    parity_ok = (
        [w.to_dict() for w in legacy] == [w.to_dict() for w in kernel_results]
        and [w.to_dict() for w in legacy]
        == [w.to_dict() for w in stream_results]
    )

    legacy_mps = _best_rate(
        lambda: _legacy_batch_scan(template, config, capture), n, reps
    )
    kernel_mps = _best_rate(lambda: engine.scan(capture), n, reps)
    kernel_block_mps = _best_rate(lambda: engine.scan_block(capture), n, reps)
    stream_block_mps = _best_rate(
        lambda: engine.scan_stream_block(capture, chunk_windows=chunk_windows),
        n, reps,
    )

    return KernelThroughputResult(
        n_frames=n,
        n_windows=len(legacy),
        reps=int(reps),
        chunk_windows=int(chunk_windows),
        legacy_mps=legacy_mps,
        kernel_mps=kernel_mps,
        kernel_block_mps=kernel_block_mps,
        stream_block_mps=stream_block_mps,
        parity_ok=parity_ok,
    )


# ----------------------------------------------------------------------
# Ingest: per-line readers vs the block-vectorised chunked readers
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class IngestThroughputResult:
    """Chunked-reader rates: per-line baseline vs block-vectorised.

    One row per capture flavour (``candump``, ``candump.gz``, ``csv``,
    ``csv.gz``): frames/second consuming the whole capture through the
    per-line chunked reader and through the block-vectorised reader,
    at the same ``chunk_frames``.  ``parity_ok`` asserts the merged
    chunk streams are bit-identical to the whole-file readers — the
    speedup only counts if the bytes agree.
    """

    n_frames: int
    chunk_frames: int
    #: ``(flavour, per-line frames/s, block frames/s)`` per flavour.
    rates: Tuple[Tuple[str, float, float], ...]
    parity_ok: bool

    def speedup(self, flavour: str) -> float:
        """Block-vectorised rate over the per-line rate."""
        for name, perline_fps, block_fps in self.rates:
            if name == flavour:
                return block_fps / perline_fps if perline_fps else 0.0
        return 0.0

    @property
    def min_speedup(self) -> float:
        """The smallest speedup across all flavours."""
        return min(
            (self.speedup(name) for name, _, _ in self.rates),
            default=0.0,
        )

    def render(self) -> str:
        """The experiment's artifact table."""
        lines = [
            "Ingest: per-line chunked readers vs block-vectorised readers",
            f"capture: {self.n_frames} frames, chunk_frames="
            f"{self.chunk_frames}",
            f"{'flavour':>12} {'per-line':>14} {'block':>14} {'speedup':>9}",
        ]
        for name, perline_fps, block_fps in self.rates:
            lines.append(
                f"{name:>12} {perline_fps:>14,.0f} {block_fps:>14,.0f} "
                f"{self.speedup(name):>8.1f}x"
            )
        lines.append(
            "chunk parity vs whole-file readers: "
            + ("bit-identical" if self.parity_ok else "MISMATCH")
        )
        return "\n".join(lines)

    def bench_records(self) -> List[dict]:
        """Machine-readable twin of :meth:`render`."""
        params = {
            "n_frames": self.n_frames,
            "chunk_frames": self.chunk_frames,
        }
        section = "ingest"
        records = []
        for name, perline_fps, block_fps in self.rates:
            records.append(
                bench_record(
                    section, f"{name}_perline_fps", perline_fps,
                    "frames/s", params,
                )
            )
            records.append(
                bench_record(
                    section, f"{name}_block_fps", block_fps,
                    "frames/s", params,
                )
            )
            records.append(
                bench_record(
                    section, f"{name}_speedup", self.speedup(name), "x", params
                )
            )
        records.append(
            bench_record(
                section, "parity_ok", 1.0 if self.parity_ok else 0.0,
                "bool", params,
            )
        )
        return records


def run_ingest(
    n_frames: int = 500_000,
    chunk_frames: int = 65_536,
    seed: int = 37,
    scenario: str = "city",
    catalog: Optional[VehicleCatalog] = None,
    workdir: Optional[str] = None,
) -> IngestThroughputResult:
    """Measure chunked text ingestion, per-line vs block-vectorised.

    Writes one synthetic drive capture (with payloads, so the payload
    columns are exercised) as candump and CSV, plain and gzipped, then
    consumes each flavour through the old per-line chunked reader
    (``_iter_candump_columns_lines`` / ``_iter_csv_columns_rows``) and
    the block-vectorised reader (:func:`~repro.io.log.iter_candump_columns`
    / :func:`~repro.io.csvlog.iter_csv_columns`) at the same chunk
    size, checking the merged chunk stream against the whole-file
    reader before trusting either rate.
    """
    from repro.io.csvlog import _iter_csv_columns_rows, iter_csv_columns
    from repro.io.log import _iter_candump_columns_lines, iter_candump_columns

    cleanup = workdir is None
    tmp = Path(
        tempfile.mkdtemp(prefix="repro-ingest-") if cleanup else workdir
    )
    try:
        probe = generate_drive_columns(
            10.0, scenario=scenario, seed=seed, catalog=catalog
        )
        rate = max(probe.message_rate_hz(), 1.0)
        duration_s = n_frames / rate * 1.02 + 1.0
        capture = generate_drive_columns(
            duration_s, scenario=scenario, seed=seed, catalog=catalog
        ).slice(0, n_frames)
        n = len(capture)

        flavours = []
        for name, path in (
            ("candump", tmp / "capture.log"),
            ("candump.gz", tmp / "capture.log.gz"),
            ("csv", tmp / "capture.csv"),
            ("csv.gz", tmp / "capture.csv.gz"),
        ):
            if name.startswith("candump"):
                write_candump_columns(capture, path)
                perline = _iter_candump_columns_lines
                block = iter_candump_columns
                whole = read_candump_columns
            else:
                write_csv_columns(capture, path)
                perline = _iter_csv_columns_rows
                block = iter_csv_columns
                whole = read_csv_columns
            flavours.append((name, path, perline, block, whole))

        rates = []
        parity_ok = True
        for name, path, perline, block, whole in flavours:
            chunks = list(block(path, chunk_frames))
            merged = (
                ColumnTrace.merge(*chunks)
                if chunks
                else ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
            )
            parity_ok = parity_ok and merged == whole(path)
            del chunks, merged

            start = time.perf_counter()
            for _ in perline(path, chunk_frames):
                pass
            perline_fps = n / (time.perf_counter() - start)
            start = time.perf_counter()
            for _ in block(path, chunk_frames):
                pass
            block_fps = n / (time.perf_counter() - start)
            rates.append((name, perline_fps, block_fps))

        return IngestThroughputResult(
            n_frames=n,
            chunk_frames=int(chunk_frames),
            rates=tuple(rates),
            parity_ok=parity_ok,
        )
    finally:
        if cleanup:
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)


# ----------------------------------------------------------------------
# Container codecs: v2 filter pipeline vs the v1 raw-zlib container
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CodecThroughputResult:
    """v2 codec container vs v1 on one capture: disk, scan, warm cache.

    The same drive capture is written as a v1 container (raw per-column
    zlib) and a v2 container (per-column filter pipeline), then scanned
    through ``BatchEntropyEngine.scan_stream`` three ways: over v1,
    over v2 cold (no decoded-block cache), and over v2 warm (every
    block already in the cache).  ``parity_ok`` asserts all three
    reports — and the in-RAM reference — are bit-identical; the sizes
    and rates only count if the bits agree.
    """

    n_frames: int
    block_frames: int
    level: int
    v1_bytes: int
    v2_bytes: int
    #: ``(column, selected codec)`` as recorded in the v2 index.
    codecs: Tuple[Tuple[str, str], ...]
    v1_scan_mps: float
    v2_scan_mps: float
    v2_warm_mps: float
    cache_hits: int
    cache_misses: int
    #: ``(span name, observations, total seconds)`` per decode stage.
    decode_spans: Tuple[Tuple[str, int, float], ...]
    parity_ok: bool

    @property
    def size_ratio(self) -> float:
        """How many times smaller v2 is on disk (v1 bytes / v2 bytes)."""
        return self.v1_bytes / self.v2_bytes if self.v2_bytes else 0.0

    @property
    def scan_speedup(self) -> float:
        """Cold v2 scan rate over the v1 scan rate."""
        return self.v2_scan_mps / self.v1_scan_mps if self.v1_scan_mps else 0.0

    @property
    def warm_speedup(self) -> float:
        """Warm (cached) v2 scan rate over the cold v2 scan rate."""
        return self.v2_warm_mps / self.v2_scan_mps if self.v2_scan_mps else 0.0

    def render(self) -> str:
        """The experiment's artifact table."""
        kb = 1024
        lines = [
            "Container codecs: v2 filter pipeline vs v1 raw zlib",
            f"capture: {self.n_frames:,} frames, block_frames="
            f"{self.block_frames}, level={self.level}",
            f"disk: v1 {self.v1_bytes / kb:,.0f} KB -> v2 "
            f"{self.v2_bytes / kb:,.0f} KB ({self.size_ratio:.2f}x smaller)",
            "codecs: " + ", ".join(f"{c}={n}" for c, n in self.codecs),
            f"scan: v1 {self.v1_scan_mps:,.0f} msg/s, v2 cold "
            f"{self.v2_scan_mps:,.0f} msg/s ({self.scan_speedup:.2f}x), "
            f"v2 warm {self.v2_warm_mps:,.0f} msg/s "
            f"({self.warm_speedup:.2f}x over cold)",
            f"decoded-block cache: {self.cache_hits} hits / "
            f"{self.cache_misses} misses during the warm passes",
        ]
        for name, count, total_s in self.decode_spans:
            lines.append(f"  {name}: {count} spans, {total_s * 1e3:.1f} ms")
        lines.append(
            "report parity (v1 == v2 == warm == in-RAM): "
            + ("bit-identical" if self.parity_ok else "MISMATCH")
        )
        return "\n".join(lines)

    def bench_records(self) -> List[dict]:
        """Machine-readable twin of :meth:`render`."""
        params = {
            "n_frames": self.n_frames,
            "block_frames": self.block_frames,
            "level": self.level,
            "codecs": dict(self.codecs),
        }
        section = "codec"
        records = [
            bench_record(section, "v1_bytes", self.v1_bytes, "bytes", params),
            bench_record(section, "v2_bytes", self.v2_bytes, "bytes", params),
            bench_record(section, "size_ratio", self.size_ratio, "x", params),
            bench_record(
                section, "v1_scan_mps", self.v1_scan_mps, "msg/s", params
            ),
            bench_record(
                section, "v2_scan_mps", self.v2_scan_mps, "msg/s", params
            ),
            bench_record(
                section, "v2_warm_mps", self.v2_warm_mps, "msg/s", params
            ),
            bench_record(
                section, "scan_speedup", self.scan_speedup, "x", params
            ),
            bench_record(
                section, "warm_speedup", self.warm_speedup, "x", params
            ),
        ]
        for name, count, total_s in self.decode_spans:
            records.append(
                bench_record(section, f"{name}_s", total_s, "s", params)
            )
        records.append(
            bench_record(
                section, "parity_ok", 1.0 if self.parity_ok else 0.0,
                "bool", params,
            )
        )
        return records


def run_codec(
    template: Optional[GoldenTemplate] = None,
    config: Optional[IDSConfig] = None,
    n_frames: int = 400_000,
    block_frames: int = 65_536,
    level: Optional[int] = None,
    reps: int = 3,
    chunk_windows: int = DEFAULT_CHUNK_WINDOWS,
    seed: int = 43,
    scenario: str = "city",
    catalog: Optional[VehicleCatalog] = None,
    workdir: Optional[str] = None,
) -> CodecThroughputResult:
    """Measure the v2 codec pipeline against the v1 container.

    One payload-bearing synthetic drive is written both ways; the scan
    rates are best-of-``reps`` end-to-end ``scan_stream`` passes (each
    pass reopens the reader, so seek + inflate + un-filter are all on
    the clock).  The warm rate runs against a private pre-populated
    decoded-block cache — the fleet-watch rescan case.  One traced v2
    pass under an enabled obs registry collects the ``io.decode.*``
    span totals, attributing decode time per codec.
    """
    from repro import obs
    from repro.core import TemplateBuilder
    from repro.io.blockcache import DecodedBlockCache
    from repro.io.blocks import DEFAULT_LEVEL, BlockReader, write_blocks

    config = config or IDSConfig()
    level = DEFAULT_LEVEL if level is None else int(level)
    probe = generate_drive_columns(
        10.0, scenario=scenario, seed=seed, catalog=catalog
    )
    rate = max(probe.message_rate_hz(), 1.0)
    duration_s = n_frames / rate * 1.02 + 1.0
    capture = generate_drive_columns(
        duration_s, scenario=scenario, seed=seed, catalog=catalog
    ).slice(0, n_frames)
    n = len(capture)
    if template is None:
        builder = TemplateBuilder(config)
        builder.add_trace_windows(capture)
        template = builder.build()
    engine = BatchEntropyEngine(template, config)
    reference = [w.to_dict() for w in engine.scan(capture)]

    cleanup = workdir is None
    tmp = Path(
        tempfile.mkdtemp(prefix="repro-codec-") if cleanup else workdir
    )
    try:
        v1_path = tmp / "capture.v1.npb"
        v2_path = tmp / "capture.v2.npb"
        write_blocks(v1_path, capture, block_frames=block_frames,
                     level=level, version=1)
        write_blocks(v2_path, capture, block_frames=block_frames,
                     level=level)
        v1_bytes = v1_path.stat().st_size
        v2_bytes = v2_path.stat().st_size

        def stream_scan(path, cache):
            with BlockReader(path, cache=cache) as reader:
                return engine.scan_stream(reader, chunk_windows=chunk_windows)

        with BlockReader(v2_path, cache=False) as reader:
            codecs = tuple(sorted(reader.codecs.items()))

        v1_windows = [w.to_dict() for w in stream_scan(v1_path, False)]
        v2_windows = [w.to_dict() for w in stream_scan(v2_path, False)]
        v1_mps = _best_rate(lambda: stream_scan(v1_path, False), n, reps)
        v2_mps = _best_rate(lambda: stream_scan(v2_path, False), n, reps)

        # Warm passes: a private cache sized to hold the whole decoded
        # capture, populated by one untimed pass — every timed pass
        # after that is the fleet-watch "rescan the same capture" case.
        cache = DecodedBlockCache(max_bytes=1 << 31)
        warm_windows = [w.to_dict() for w in stream_scan(v2_path, cache)]
        warm_mps = _best_rate(lambda: stream_scan(v2_path, cache), n, reps)
        cache_stats = cache.stats()

        with obs.capture() as registry:
            traced = [w.to_dict() for w in stream_scan(v2_path, False)]
            snapshot = registry.snapshot()
        decode_spans = tuple(
            (name, int(h["count"]), float(h["total_s"]))
            for name, h in sorted(snapshot["histograms"].items())
            if name.startswith("io.decode.")
        )

        parity_ok = (
            reference == v1_windows == v2_windows == warm_windows == traced
        )
        return CodecThroughputResult(
            n_frames=n,
            block_frames=int(block_frames),
            level=level,
            v1_bytes=int(v1_bytes),
            v2_bytes=int(v2_bytes),
            codecs=codecs,
            v1_scan_mps=v1_mps,
            v2_scan_mps=v2_mps,
            v2_warm_mps=warm_mps,
            cache_hits=int(cache_stats["hits"]),
            cache_misses=int(cache_stats["misses"]),
            decode_spans=decode_spans,
            parity_ok=parity_ok,
        )
    finally:
        if cleanup:
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)


# ----------------------------------------------------------------------
# Archive-scale benchmarks (loading + sharded scanning)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ArchiveThroughputResult:
    """Measured archive loading and sharded-scan rates."""

    n_captures: int
    frames_per_capture: int
    candump_record_fps: float
    candump_columnar_fps: float
    csv_record_fps: float
    csv_columnar_fps: float
    #: ``(workers, frames_per_second)`` per measured pool size.
    scan_scaling: Tuple[Tuple[int, float], ...]
    cpus: int

    @property
    def total_frames(self) -> int:
        return self.n_captures * self.frames_per_capture

    @property
    def candump_load_speedup(self) -> float:
        """Columnar candump loading over the record round-trip."""
        return (
            self.candump_columnar_fps / self.candump_record_fps
            if self.candump_record_fps
            else 0.0
        )

    @property
    def csv_load_speedup(self) -> float:
        """Columnar CSV loading over the record round-trip."""
        return (
            self.csv_columnar_fps / self.csv_record_fps
            if self.csv_record_fps
            else 0.0
        )

    def scan_speedup(self, workers: int) -> float:
        """Sharded scan rate at ``workers`` over the 1-worker rate."""
        rates = dict(self.scan_scaling)
        if workers not in rates or not rates.get(1):
            return 0.0
        return rates[workers] / rates[1]

    def render(self) -> str:
        """The experiment's artifact table."""
        lines = [
            "Archive throughput: columnar-native loading + sharded scanning",
            f"archive: {self.n_captures} captures x {self.frames_per_capture} "
            f"frames ({self.total_frames} total)",
            f"loading (frames/s):   {'record-path':>14} {'columnar':>14} {'speedup':>9}",
            f"{'candump':>10}           {self.candump_record_fps:>14,.0f} "
            f"{self.candump_columnar_fps:>14,.0f} {self.candump_load_speedup:>8.1f}x",
            f"{'csv':>10}           {self.csv_record_fps:>14,.0f} "
            f"{self.csv_columnar_fps:>14,.0f} {self.csv_load_speedup:>8.1f}x",
            "sharded scan (load + detect, whole archive):",
        ]
        for workers, fps in self.scan_scaling:
            speedup = self.scan_speedup(workers)
            lines.append(
                f"{'workers=' + str(workers):>12} {fps:>14,.0f} frames/s "
                f"{speedup:>8.1f}x"
            )
        lines.append(f"(host exposes {self.cpus} CPU(s); sharding speedup is "
                     f"bounded by the cores actually available)")
        return "\n".join(lines)

    def bench_records(self) -> List[dict]:
        """Machine-readable twin of :meth:`render`."""
        params = {
            "n_captures": self.n_captures,
            "frames_per_capture": self.frames_per_capture,
            "cpus": self.cpus,
        }
        section = "archive"
        records = [
            bench_record(
                section, "candump_record_fps", self.candump_record_fps,
                "frames/s", params,
            ),
            bench_record(
                section, "candump_columnar_fps", self.candump_columnar_fps,
                "frames/s", params,
            ),
            bench_record(
                section, "candump_load_speedup", self.candump_load_speedup,
                "x", params,
            ),
            bench_record(
                section, "csv_record_fps", self.csv_record_fps,
                "frames/s", params,
            ),
            bench_record(
                section, "csv_columnar_fps", self.csv_columnar_fps,
                "frames/s", params,
            ),
            bench_record(
                section, "csv_load_speedup", self.csv_load_speedup, "x", params
            ),
        ]
        for workers, fps in self.scan_scaling:
            records.append(
                bench_record(
                    section, f"scan_fps_workers_{workers}", fps,
                    "frames/s", params,
                )
            )
        return records


def run_archive(
    template: GoldenTemplate,
    config: Optional[IDSConfig] = None,
    n_captures: int = 6,
    frames_per_capture: int = 200_000,
    worker_counts: Sequence[int] = (1, 2, 4),
    seed: int = 31,
    scenario: str = "city",
    catalog: Optional[VehicleCatalog] = None,
    archive_dir: Optional[str] = None,
) -> ArchiveThroughputResult:
    """Measure archive loading and sharded scanning end to end.

    Builds a synthetic archive of ``n_captures`` candump captures (plus
    one CSV twin of the first capture for the CSV loading comparison),
    then measures:

    * **loading** — the record round-trip (``read_candump`` +
      ``to_columns``) against the columnar-native reader, frames/s;
    * **sharded scanning** — :class:`~repro.core.shard.ShardedScanner`
      over the whole archive (workers load *and* detect) at each pool
      size in ``worker_counts``.

    The archive is written under ``archive_dir`` (a temporary directory
    by default, cleaned up afterwards).
    """
    config = config or IDSConfig()
    cleanup = archive_dir is None
    tmp = tempfile.mkdtemp(prefix="repro-archive-") if cleanup else archive_dir
    try:
        probe = generate_drive_columns(
            10.0, scenario=scenario, seed=seed, catalog=catalog
        )
        rate = max(probe.message_rate_hz(), 1.0)
        duration_s = frames_per_capture / rate * 1.02 + 1.0
        archive = CaptureArchive(tmp, patterns=("*.log",))
        first_capture: Optional[ColumnTrace] = None
        for i in range(n_captures):
            capture = generate_drive_columns(
                duration_s, scenario=scenario, seed=seed + i, catalog=catalog
            ).slice(0, frames_per_capture)
            archive.write_capture(f"capture{i:02d}.log", capture)
            if first_capture is None:
                first_capture = capture
        csv_path = Path(tmp) / "capture00.csv"
        write_csv_columns(first_capture, csv_path)
        log_path = archive.paths[0]
        n = len(first_capture)

        start = time.perf_counter()
        via_records = read_candump(log_path).to_columns()
        candump_record_fps = n / (time.perf_counter() - start)
        start = time.perf_counter()
        native = read_candump_columns(log_path)
        candump_columnar_fps = n / (time.perf_counter() - start)
        assert native == via_records  # loading must be bit-identical

        start = time.perf_counter()
        via_records = read_csv(csv_path).to_columns()
        csv_record_fps = n / (time.perf_counter() - start)
        start = time.perf_counter()
        native = read_csv_columns(csv_path)
        csv_columnar_fps = n / (time.perf_counter() - start)
        assert native == via_records

        total = n_captures * frames_per_capture
        scaling = []
        for workers in worker_counts:
            scanner = ShardedScanner(template, config, workers=workers)
            start = time.perf_counter()
            scans = scanner.scan_archive(archive)
            elapsed = time.perf_counter() - start
            assert len(scans) == n_captures
            scaling.append((int(workers), total / elapsed))
        return ArchiveThroughputResult(
            n_captures=n_captures,
            frames_per_capture=frames_per_capture,
            candump_record_fps=candump_record_fps,
            candump_columnar_fps=candump_columnar_fps,
            csv_record_fps=csv_record_fps,
            csv_columnar_fps=csv_columnar_fps,
            scan_scaling=tuple(scaling),
            cpus=os.cpu_count() or 1,
        )
    finally:
        if cleanup:
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)

# ----------------------------------------------------------------------
# Telemetry overhead: the repro.obs instrumentation, off and on
# ----------------------------------------------------------------------

def _uninstrumented_stream_scan(
    engine: BatchEntropyEngine, ct: ColumnTrace, chunk_windows: int
) -> List[WindowResult]:
    """The chunked scan hot loop with *no* telemetry branch at all.

    This inlines what ``scan_stream`` did before the observability
    layer existed — not even the single ``obs.active()`` check — so the
    "telemetry off costs nothing" claim is measured against the true
    pre-instrumentation loop, in the same process, on the same capture.
    """
    config = engine.config
    if len(ct) == 0:
        return []
    origin = ct.start_us
    workspace = KernelWorkspace()
    blocks: List[WindowBlock] = []
    emitted = 0
    for chunk in ct.iter_window_chunks(config.window_us, chunk_windows):
        block = scan_windows(
            chunk,
            engine.template,
            config,
            origin_us=origin,
            index_base=emitted,
            workspace=workspace,
        )
        emitted += len(block)
        blocks.append(block)
    block = WindowBlock.concat(blocks, config.n_bits, config.window_us)
    results = block.results()
    for i in np.flatnonzero(block.alarm_mask):
        engine.sink.emit(results[int(i)].to_alert())
    return results


@dataclass(frozen=True)
class ObsOverheadResult:
    """Telemetry cost on the chunked scan path, off and on.

    ``pre_mps`` is the uninstrumented pre-telemetry loop, ``off_mps``
    the shipped path with telemetry disabled (one predictable branch
    per call site), ``on_mps`` the same path under an enabled registry
    recording per-stage spans.  ``parity_ok`` asserts all three produce
    bit-identical window verdicts — instrumentation that changed the
    answer would be worse than useless.
    """

    n_frames: int
    n_windows: int
    reps: int
    chunk_windows: int
    pre_mps: float
    off_mps: float
    on_mps: float
    n_events: int
    #: ``(span name, observations, total seconds)`` from the traced pass.
    stages: Tuple[Tuple[str, int, float], ...]
    parity_ok: bool

    @property
    def off_overhead_pct(self) -> float:
        """Slowdown of the disabled-telemetry path vs the pre loop."""
        if not self.pre_mps:
            return 0.0
        return (1.0 - self.off_mps / self.pre_mps) * 100.0

    @property
    def on_overhead_pct(self) -> float:
        """Slowdown of the enabled-telemetry path vs disabled."""
        if not self.off_mps:
            return 0.0
        return (1.0 - self.on_mps / self.off_mps) * 100.0

    def render(self) -> str:
        """The experiment's artifact table."""
        lines = [
            "Telemetry overhead: chunked scan with repro.obs off vs on",
            f"capture: {self.n_frames} frames, {self.n_windows} windows, "
            f"best of {self.reps} reps "
            f"(chunk_windows={self.chunk_windows})",
            f"{'path':>18} {'msg/s':>14} {'overhead':>9}",
            f"{'pre-obs loop':>18} {self.pre_mps:>14,.0f} {'-':>9}",
            f"{'telemetry off':>18} {self.off_mps:>14,.0f} "
            f"{self.off_overhead_pct:>8.2f}%",
            f"{'telemetry on':>18} {self.on_mps:>14,.0f} "
            f"{self.on_overhead_pct:>8.2f}%",
            f"traced pass: {self.n_events} events",
        ]
        for name, count, total_s in self.stages:
            lines.append(
                f"{'span ' + name:>24}: n={count}, total={total_s:.6f}s"
            )
        lines.append(
            "parity across all three: "
            + ("bit-identical" if self.parity_ok else "MISMATCH")
        )
        return "\n".join(lines)

    def bench_records(self) -> List[dict]:
        """Machine-readable twin of :meth:`render`."""
        params = {
            "n_frames": self.n_frames,
            "n_windows": self.n_windows,
            "reps": self.reps,
            "chunk_windows": self.chunk_windows,
        }
        section = "obs"
        records = [
            bench_record(section, "pre_mps", self.pre_mps, "msg/s", params),
            bench_record(section, "off_mps", self.off_mps, "msg/s", params),
            bench_record(section, "on_mps", self.on_mps, "msg/s", params),
            bench_record(
                section, "off_overhead_pct", self.off_overhead_pct,
                "%", params,
            ),
            bench_record(
                section, "on_overhead_pct", self.on_overhead_pct, "%", params
            ),
            bench_record(
                section, "n_events", float(self.n_events), "events", params
            ),
            bench_record(
                section, "parity_ok", 1.0 if self.parity_ok else 0.0,
                "bool", params,
            ),
        ]
        for name, count, total_s in self.stages:
            slug = name.replace(".", "_")
            records.append(
                bench_record(
                    section, f"span_{slug}_s", total_s, "s",
                    dict(params, observations=count),
                )
            )
        return records


def run_obs(
    template: GoldenTemplate,
    config: Optional[IDSConfig] = None,
    n_frames: int = 300_000,
    reps: int = 3,
    chunk_windows: int = DEFAULT_CHUNK_WINDOWS,
    seed: int = 41,
    scenario: str = "city",
    catalog: Optional[VehicleCatalog] = None,
    capture: Optional[ColumnTrace] = None,
) -> ObsOverheadResult:
    """Measure the telemetry layer's cost on the chunked scan path.

    Three variants run in one process on the same capture, best of
    ``reps`` each: the pre-instrumentation loop (inlined above), the
    shipped path with telemetry disabled, and the shipped path under an
    enabled registry.  The traced pass also yields the per-stage span
    totals and the captured event stream, so the artifact records what
    the instrumentation *sees*, not just what it costs.
    """
    from repro import obs

    config = config or IDSConfig()
    if capture is None:
        probe = generate_drive_columns(
            10.0, scenario=scenario, seed=seed, catalog=catalog
        )
        rate = max(probe.message_rate_hz(), 1.0)
        duration_s = n_frames / rate * 1.02 + 1.0
        capture = generate_drive_columns(
            duration_s, scenario=scenario, seed=seed, catalog=catalog,
            with_payloads=False,
        ).slice(0, n_frames)
    n = len(capture)
    engine = BatchEntropyEngine(template, config)

    pre = _uninstrumented_stream_scan(engine, capture, chunk_windows)
    off = engine.scan_stream(capture, chunk_windows=chunk_windows)
    sink = obs.MemorySink()
    with obs.capture(sinks=(sink,)) as registry:
        on = engine.scan_stream(capture, chunk_windows=chunk_windows)
        snapshot = registry.snapshot()
    parity_ok = (
        [w.to_dict() for w in pre]
        == [w.to_dict() for w in off]
        == [w.to_dict() for w in on]
    )

    pre_mps = _best_rate(
        lambda: _uninstrumented_stream_scan(engine, capture, chunk_windows),
        n, reps,
    )
    off_mps = _best_rate(
        lambda: engine.scan_stream(capture, chunk_windows=chunk_windows),
        n, reps,
    )
    with obs.capture():  # no sinks: the registry/span cost floor
        on_mps = _best_rate(
            lambda: engine.scan_stream(capture, chunk_windows=chunk_windows),
            n, reps,
        )

    stages = tuple(
        (name, int(h["count"]), float(h["total_s"]))
        for name, h in sorted(snapshot["histograms"].items())
        if name.startswith("engine.")
    )
    return ObsOverheadResult(
        n_frames=n,
        n_windows=len(pre),
        reps=int(reps),
        chunk_windows=int(chunk_windows),
        pre_mps=pre_mps,
        off_mps=off_mps,
        on_mps=on_mps,
        n_events=len(sink.events),
        stages=stages,
        parity_ok=parity_ok,
    )

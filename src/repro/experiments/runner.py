"""Generic experiment runner.

:func:`build_setup` assembles the shared fixtures once — the synthetic
vehicle catalog, the golden template (from clean drives over diverse
scenarios, the paper's 35 measurements), the IDS configuration and the
inference pool.  :func:`run_attack` executes a single attack capture and
analysis; :func:`run_scenario` sweeps a Table-I scenario across its
frequencies and seeds and aggregates the paper's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks import AttackerNode
from repro.core import IDSConfig, IDSPipeline, build_template
from repro.core.template import GoldenTemplate
from repro.experiments.scenarios import ScenarioSpec
from repro.vehicle import VehicleSimulation, ford_fusion_catalog
from repro.vehicle.ecu_profiles import assignments_for
from repro.vehicle.ids_catalog import VehicleCatalog
from repro.vehicle.traffic import record_template_windows

#: Default attack timing inside each capture (seconds).
ATTACK_START_S = 2.0
ATTACK_DURATION_S = 10.0
CAPTURE_DURATION_S = 14.0


@dataclass
class ExperimentSetup:
    """Shared fixtures for one experiment campaign."""

    catalog: VehicleCatalog
    template: GoldenTemplate
    config: IDSConfig
    assignments: Dict[str, frozenset]
    seed: int

    @property
    def pipeline(self) -> IDSPipeline:
        """A fresh pipeline bound to the setup's template and pool."""
        return IDSPipeline(self.template, self.config, id_pool=self.catalog.ids)


def build_setup(
    config: Optional[IDSConfig] = None,
    seed: int = 7,
    catalog_seed: int = 0,
) -> ExperimentSetup:
    """Build catalog + golden template, the paper's training phase."""
    config = config or IDSConfig()
    catalog = ford_fusion_catalog(seed=catalog_seed)
    windows = record_template_windows(
        n_windows=config.template_windows,
        window_s=config.window_us / 1e6,
        seed=seed,
        catalog=catalog,
    )
    template = build_template(windows, config)
    return ExperimentSetup(
        catalog=catalog,
        template=template,
        config=config,
        assignments=assignments_for(catalog),
        seed=seed,
    )


@dataclass(frozen=True)
class AttackRun:
    """Metrics of one attack capture."""

    scenario: str
    frequency_hz: float
    seed: int
    injection_rate: float
    n_injected: int
    detection_rate: float
    false_positive_rate: float
    detection_latency_us: Optional[int]
    detected: bool
    hit_rate: Optional[float]
    ids_used: Tuple[int, ...]
    candidates: Tuple[int, ...]


def run_attack(
    setup: ExperimentSetup,
    attacker: AttackerNode,
    k: int,
    scenario_name: str = "adhoc",
    frequency_hz: float = 0.0,
    seed: int = 0,
    scenario_traffic: str = "city",
    capture_duration_s: float = CAPTURE_DURATION_S,
    evaluate_inference: bool = True,
) -> AttackRun:
    """Run one attack capture through the pipeline and score it."""
    sim = VehicleSimulation(
        catalog=setup.catalog,
        scenario=scenario_traffic,
        seed=seed * 1009 + int(frequency_hz) + 17,
    )
    sim.add_node(attacker)
    trace = sim.run(capture_duration_s)
    report = setup.pipeline.analyze(trace, infer_k=max(1, k))
    detected = len(report.alarmed_windows) > 0
    hit: Optional[float] = None
    if evaluate_inference and detected and report.inference is not None:
        truth = sorted(attacker.ids_used)
        if truth:
            hit = report.inference.hit_rate(truth)
    return AttackRun(
        scenario=scenario_name,
        frequency_hz=frequency_hz,
        seed=seed,
        injection_rate=attacker.injection_rate,
        n_injected=sum(w.n_attack_messages for w in report.judged_windows),
        detection_rate=report.detection_rate,
        false_positive_rate=report.false_positive_rate,
        detection_latency_us=report.detection_latency_us,
        detected=detected,
        hit_rate=hit,
        ids_used=tuple(sorted(attacker.ids_used)),
        candidates=(
            report.inference.candidates if report.inference is not None else ()
        ),
    )


@dataclass
class ScenarioResult:
    """Aggregated Table-I row."""

    spec: ScenarioSpec
    runs: List[AttackRun] = field(default_factory=list)

    @property
    def detection_rate(self) -> float:
        """Message-weighted Dr across all runs (the paper's row value)."""
        total = sum(run.n_injected for run in self.runs)
        if total == 0:
            return 0.0
        return sum(run.detection_rate * run.n_injected for run in self.runs) / total

    @property
    def inference_accuracy(self) -> Optional[float]:
        """Mean hit rate over the *detected* runs (None for flooding)."""
        if not self.spec.inferable:
            return None
        hits = [run.hit_rate for run in self.runs if run.hit_rate is not None]
        return float(np.mean(hits)) if hits else 0.0

    def detection_rate_ci(self, confidence: float = 0.95) -> tuple:
        """Bootstrap CI for the message-weighted detection rate.

        Runs are the resampling unit; returns (point, low, high).
        """
        from repro.analysis.bootstrap import bootstrap_rate_ci

        detected = [
            int(round(run.detection_rate * run.n_injected)) for run in self.runs
        ]
        totals = [run.n_injected for run in self.runs]
        if not totals or sum(totals) == 0:
            return (0.0, 0.0, 0.0)
        return bootstrap_rate_ci(detected, totals, confidence=confidence)

    @property
    def mean_injection_rate(self) -> float:
        """Mean Ir across runs."""
        if not self.runs:
            return 0.0
        return float(np.mean([run.injection_rate for run in self.runs]))

    @property
    def false_positive_rate(self) -> float:
        """Mean FPR across runs."""
        if not self.runs:
            return 0.0
        return float(np.mean([run.false_positive_rate for run in self.runs]))

    def by_frequency(self) -> Dict[float, float]:
        """Message-weighted Dr per injection frequency."""
        grouped: Dict[float, List[AttackRun]] = {}
        for run in self.runs:
            grouped.setdefault(run.frequency_hz, []).append(run)
        out: Dict[float, float] = {}
        for freq, runs in sorted(grouped.items()):
            total = sum(r.n_injected for r in runs)
            out[freq] = (
                sum(r.detection_rate * r.n_injected for r in runs) / total
                if total
                else 0.0
            )
        return out


def run_scenario(
    setup: ExperimentSetup,
    spec: ScenarioSpec,
    seeds: Sequence[int] = (1, 2),
    attack_start_s: float = ATTACK_START_S,
    attack_duration_s: float = ATTACK_DURATION_S,
) -> ScenarioResult:
    """Sweep one Table-I scenario over its frequencies and seeds."""
    result = ScenarioResult(spec=spec)
    for frequency in spec.frequencies_hz:
        for seed in seeds:
            attacker = spec.build_attacker(
                setup.catalog,
                setup.assignments,
                frequency_hz=frequency,
                seed=seed,
                start_s=attack_start_s,
                duration_s=attack_duration_s,
            )
            run = run_attack(
                setup,
                attacker,
                k=spec.k,
                scenario_name=spec.name,
                frequency_hz=frequency,
                seed=seed,
                evaluate_inference=spec.inferable,
            )
            result.runs.append(run)
    return result

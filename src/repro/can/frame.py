"""The CAN data frame.

A frame is an immutable value object; everything stateful (timestamps,
source node, ground-truth attack labels) lives in
:class:`repro.io.trace.TraceRecord` instead, mirroring how a real logger
sees frames on the wire without knowing who sent them — the very property
("no transmitter or receiver addresses") the paper points out makes CAN
messages easy to forge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.can import bits as _bits
from repro.can.constants import MAX_BASE_ID, MAX_DLC, MAX_EXT_ID
from repro.exceptions import FrameError


@dataclass(frozen=True)
class CANFrame:
    """An immutable CAN data (or remote) frame.

    Parameters
    ----------
    can_id:
        The identifier; at most 11 bits for base format, 29 for extended.
    data:
        0–8 payload bytes.  Must be empty for remote frames.
    extended:
        Use the 29-bit extended identifier format.
    rtr:
        Remote transmission request (no payload on the wire).
    """

    can_id: int
    data: bytes = b""
    extended: bool = False
    rtr: bool = False

    def __post_init__(self) -> None:
        limit = MAX_EXT_ID if self.extended else MAX_BASE_ID
        if not 0 <= self.can_id <= limit:
            kind = "extended" if self.extended else "base"
            raise FrameError(
                f"identifier 0x{self.can_id:X} out of range for {kind} format"
            )
        if not isinstance(self.data, (bytes, bytearray)):
            raise FrameError(f"data must be bytes, got {type(self.data).__name__}")
        if isinstance(self.data, bytearray):
            object.__setattr__(self, "data", bytes(self.data))
        if len(self.data) > MAX_DLC:
            raise FrameError(f"payload of {len(self.data)} bytes exceeds {MAX_DLC}")
        if self.rtr and self.data:
            raise FrameError("remote frames carry no payload")

    @property
    def dlc(self) -> int:
        """Data length code (payload byte count for classic CAN)."""
        return len(self.data)

    @property
    def id_width(self) -> int:
        """Number of identifier bits (11 or 29)."""
        return 29 if self.extended else 11

    def id_bit_tuple(self) -> tuple:
        """The identifier as an MSB-first bit tuple (the IDS's raw input)."""
        return _bits.id_bits(self.can_id, self.id_width)

    def wire_bits(self) -> int:
        """Total bits on the wire, including actual stuff bits."""
        return _bits.frame_wire_bits(
            self.can_id, self.data, extended=self.extended, rtr=self.rtr
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        width = 8 if self.extended else 3
        payload = self.data.hex().upper() or "--"
        kind = "R" if self.rtr else "D"
        return f"CAN[{kind}] 0x{self.can_id:0{width}X} dlc={self.dlc} {payload}"

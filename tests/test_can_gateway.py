"""Gateway whitelist filter."""

import pytest

from repro.can.constants import SECOND_US
from repro.can.gateway import GatewayFilter
from repro.exceptions import BusConfigError
from repro.io.trace import TraceRecord


def record(t_us, can_id, source="ecu1"):
    return TraceRecord(timestamp_us=t_us, can_id=can_id, source=source)


KNOWN = {0x100, 0x200, 0x300}


class TestConstruction:
    def test_requires_whitelist(self):
        with pytest.raises(BusConfigError):
            GatewayFilter(known_ids=[])

    def test_rejects_bad_window(self):
        with pytest.raises(BusConfigError):
            GatewayFilter(known_ids=KNOWN, window_us=0)


class TestUnknownId:
    def test_unknown_id_alerts(self):
        gateway = GatewayFilter(known_ids=KNOWN)
        alerts = gateway.on_frame(record(0, 0x555))
        assert [a.kind for a in alerts] == ["unknown_id"]

    def test_known_id_silent(self):
        gateway = GatewayFilter(known_ids=KNOWN)
        assert gateway.on_frame(record(0, 0x100)) == []

    def test_alerts_retained(self):
        gateway = GatewayFilter(known_ids=KNOWN)
        gateway.on_frame(record(0, 0x555))
        gateway.on_frame(record(10, 0x556))
        assert len(gateway.alerts_by_kind("unknown_id")) == 2


class TestAssignments:
    def test_unassigned_id_alerts(self):
        gateway = GatewayFilter(
            known_ids=KNOWN, assignments={"ecu1": {0x100}}
        )
        alerts = gateway.on_frame(record(0, 0x200, source="ecu1"))
        assert "unassigned_id" in [a.kind for a in alerts]

    def test_assigned_id_silent(self):
        gateway = GatewayFilter(
            known_ids=KNOWN, assignments={"ecu1": {0x100}}
        )
        assert gateway.on_frame(record(0, 0x100, source="ecu1")) == []

    def test_unknown_source_not_checked_against_assignments(self):
        gateway = GatewayFilter(
            known_ids=KNOWN, assignments={"ecu1": {0x100}}
        )
        assert gateway.on_frame(record(0, 0x200, source="other")) == []


class TestIdSpread:
    def test_spread_alert_fires_once_per_burst(self):
        """The paper: >= 4 injected IDs expose the ECU to the gateway."""
        gateway = GatewayFilter(
            known_ids=set(range(0x100, 0x110)),
            assignments={"mallory": {0x100}},
            max_distinct_margin=2,
        )
        alerts = []
        for index in range(8):
            alerts += gateway.on_frame(
                record(index * 1000, 0x100 + index, source="mallory")
            )
        spread = [a for a in alerts if a.kind == "id_spread"]
        assert len(spread) == 1
        assert "distinct identifiers" in spread[0].detail

    def test_spread_window_slides(self):
        gateway = GatewayFilter(
            known_ids=set(range(0x100, 0x110)),
            window_us=SECOND_US,
        )
        # Two distinct IDs more than a window apart never accumulate.
        gateway.on_frame(record(0, 0x100))
        gateway.on_frame(record(2 * SECOND_US, 0x101))
        gateway.on_frame(record(4 * SECOND_US, 0x102))
        assert gateway.alerts_by_kind("id_spread") == []

    def test_flagged_sources(self):
        gateway = GatewayFilter(known_ids=KNOWN)
        gateway.on_frame(record(0, 0x555, source="evil"))
        assert gateway.flagged_sources() == {"evil"}

    def test_reset_clears_state(self):
        gateway = GatewayFilter(known_ids=KNOWN)
        gateway.on_frame(record(0, 0x555))
        gateway.reset()
        assert gateway.alerts == []
        assert gateway.flagged_sources() == set()

"""Window-level confusion matrix and derived scores.

The paper only reports detection rate, but a credible IDS evaluation
also needs the false-alarm side; these helpers compute the standard
derivations from per-window verdicts (positive = window contains at
least one injected message).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class ConfusionMatrix:
    """Counts of window-level outcomes."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    @property
    def total(self) -> int:
        """All judged windows."""
        return self.tp + self.fp + self.fn + self.tn

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0 when nothing was flagged."""
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 0 when nothing was attacked."""
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN); 0 when no clean windows were judged."""
        denominator = self.fp + self.tn
        return self.fp / denominator if denominator else 0.0

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        return ConfusionMatrix(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
            tn=self.tn + other.tn,
        )


def window_confusion(windows: Iterable) -> ConfusionMatrix:
    """Build a confusion matrix from window verdicts.

    Works with both :class:`repro.core.WindowResult` and
    :class:`repro.baselines.BaselineVerdict` (anything exposing
    ``judged``, ``alarm`` and ``n_attack_messages``).
    """
    tp = fp = fn = tn = 0
    for window in windows:
        if not window.judged:
            continue
        attacked = window.n_attack_messages > 0
        if window.alarm and attacked:
            tp += 1
        elif window.alarm and not attacked:
            fp += 1
        elif not window.alarm and attacked:
            fn += 1
        else:
            tn += 1
    return ConfusionMatrix(tp=tp, fp=fp, fn=fn, tn=tn)

"""Sharded scanning of capture archives over pluggable executors.

One capture archive, many execution slots: :class:`ShardedScanner`
describes the per-capture work as a :class:`~repro.runtime.base.ScanSpec`
(the vectorised :class:`~repro.core.engine.BatchEntropyEngine`, or a
fitted baseline's ``scan``) and fans it out through a
:class:`~repro.runtime.base.Executor` backend — in-process
(:class:`~repro.runtime.serial.SerialExecutor`), one host's cores
(:class:`~repro.runtime.pool.PoolExecutor`, the default), or many hosts
sharing a queue directory
(:class:`~repro.runtime.queue.WorkQueueExecutor`).  Workers load their
capture themselves through the columnar readers — only a *path* crosses
the execution boundary on the way in, and only the window verdicts come
back — so sharding adds no serialisation of bulk frame data.

Guarantees, regardless of backend:

* **Deterministic ordering** — results come back in the archive's scan
  order (sorted relative paths) no matter which worker finished first.
* **Bit-identical to serial** — every backend runs exactly the code the
  serial scan runs on exactly the bytes the serial scan reads (the
  queue backend's transport is the fleet ledger's lossless report
  protocol); ``tests/test_runtime_executors.py`` asserts equality of
  every window field across all backends and worker counts.

``workers=1`` (or a single-capture archive) runs inline without a pool,
which is also the fallback wherever ``multiprocessing`` is unavailable
or undesirable (tests, notebooks, already-forked servers).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.baselines.base import BaselineIDS, BaselineVerdict
from repro.core.config import IDSConfig
from repro.core.detector import WindowResult
from repro.core.template import GoldenTemplate
from repro.exceptions import DetectorError
from repro.io.archive import CaptureArchive
from repro.runtime.base import BaselineScanSpec, EntropyScanSpec, Executor
from repro.runtime.pool import PoolExecutor, default_workers

__all__ = ["CaptureScan", "ShardedScanner", "default_workers"]


@dataclass(frozen=True)
class CaptureScan:
    """One capture's scan outcome within an archive scan."""

    path: Path
    windows: List[WindowResult]

    @property
    def alarmed(self) -> bool:
        """True when any window of this capture raised an alarm."""
        return any(w.alarm for w in self.windows)


class ShardedScanner:
    """Fan a batch scan across an executor backend, one capture per task.

    Parameters
    ----------
    template, config:
        Exactly the arguments :class:`BatchEntropyEngine` takes; each
        execution slot builds one engine from them.
    workers:
        Pool size for the default executor.  ``1`` scans inline (no
        pool).  Defaults to :func:`default_workers`.  Ignored when an
        explicit ``executor`` is given.
    executor:
        Any :class:`~repro.runtime.base.Executor`; ``None`` builds a
        :class:`~repro.runtime.pool.PoolExecutor` from ``workers`` (the
        historical behaviour).
    chunk_windows:
        When set, every execution slot scans its capture out-of-core:
        lazily loaded (memory-mapped ``.npz``) and streamed through the
        fused kernel in chunks of this many detection windows.  Results
        are bit-identical to the in-RAM scan; peak memory per capture is
        bounded by the chunk size instead of the capture size.
    """

    def __init__(
        self,
        template: GoldenTemplate,
        config: Optional[IDSConfig] = None,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        chunk_windows: Optional[int] = None,
    ) -> None:
        self.template = template
        self.config = config or IDSConfig()
        if template.n_bits != self.config.n_bits:
            raise DetectorError(
                f"template monitors {template.n_bits} bits, config expects "
                f"{self.config.n_bits}"
            )
        if executor is None:
            # PoolExecutor validates workers (>= 1) and runs inline when
            # the effective worker count is 1.
            executor = PoolExecutor(workers=workers)
            self.workers = executor.workers
        else:
            self.workers = getattr(executor, "workers", 1)
        self.executor = executor
        self.chunk_windows = chunk_windows

    # ------------------------------------------------------------------
    def _resolve_paths(
        self, archive: Union[CaptureArchive, Sequence[Union[str, Path]]]
    ) -> List[Path]:
        if isinstance(archive, CaptureArchive):
            return list(archive.paths)
        return [Path(p) for p in archive]

    # ------------------------------------------------------------------
    def scan_archive(
        self, archive: Union[CaptureArchive, Sequence[Union[str, Path]]]
    ) -> List[CaptureScan]:
        """Scan every capture of an archive (or explicit path list).

        Returns one :class:`CaptureScan` per capture, in scan order,
        with windows bit-identical to ``BatchEntropyEngine.scan`` run
        serially over the same files.
        """
        paths = self._resolve_paths(archive)
        if not paths:
            return []
        results = self.executor.run(
            EntropyScanSpec(self.template, self.config, self.chunk_windows),
            paths,
        )
        return [CaptureScan(p, w) for p, w in zip(paths, results)]

    def scan_archive_baseline(
        self,
        baseline: BaselineIDS,
        archive: Union[CaptureArchive, Sequence[Union[str, Path]]],
    ) -> List[List[BaselineVerdict]]:
        """Fan a fitted baseline's ``scan`` across the archive.

        The baseline (with its fitted state) is shipped to each worker
        once; per-capture verdict lists come back in scan order.  Not
        supported by the work-queue backend (a fitted baseline object
        is picklable but not portable across hosts).
        """
        paths = self._resolve_paths(archive)
        spec = BaselineScanSpec(baseline)
        if not paths:
            return []
        return self.executor.run(spec, paths)

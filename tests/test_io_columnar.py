"""ColumnTrace: lossless conversion, zero-copy slicing, Trace parity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TraceFormatError
from repro.io import ColumnTrace, Trace, TraceRecord

record_strategy = st.builds(
    TraceRecord,
    timestamp_us=st.integers(min_value=0, max_value=10_000_000),
    can_id=st.integers(min_value=0, max_value=0x7FF),
    data=st.binary(max_size=8),
    extended=st.booleans(),
    source=st.sampled_from(["", "ecu_a", "ecu_b", "attacker"]),
    is_attack=st.booleans(),
)


def trace_strategy(min_size=0, max_size=40):
    return st.lists(record_strategy, min_size=min_size, max_size=max_size).map(
        lambda records: Trace(sorted(records, key=lambda r: r.timestamp_us))
    )


class TestConversion:
    @settings(max_examples=60, deadline=None)
    @given(trace_strategy())
    def test_round_trip_is_lossless(self, trace):
        assert ColumnTrace.from_trace(trace).to_trace() == trace

    @settings(max_examples=30, deadline=None)
    @given(trace_strategy())
    def test_to_columns_matches_from_trace(self, trace):
        assert trace.to_columns() == ColumnTrace.from_trace(trace)

    def test_empty(self):
        ct = ColumnTrace.from_trace(Trace())
        assert len(ct) == 0
        assert ct.to_trace() == Trace()
        assert ct.start_us == ct.end_us == ct.duration_us == 0
        assert ct.attack_count == 0
        assert list(ct.time_windows(100)) == []
        assert ct.id_histogram() == {}

    def test_coerce_passes_columnar_through(self):
        ct = ColumnTrace.from_trace(Trace([TraceRecord(0, 1)]))
        assert ColumnTrace.coerce(ct) is ct
        assert ColumnTrace.coerce(Trace([TraceRecord(0, 1)])) == ct

    def test_sources_are_interned(self):
        trace = Trace(
            [TraceRecord(i, 1, source="ecu_a" if i % 2 else "ecu_b") for i in range(10)]
        )
        ct = trace.to_columns()
        assert sorted(ct.source_table) == ["ecu_a", "ecu_b"]
        assert ct.sources() == [r.source for r in trace]


class TestAccessors:
    @settings(max_examples=30, deadline=None)
    @given(trace_strategy(min_size=1))
    def test_scalar_properties_match_trace(self, trace):
        ct = trace.to_columns()
        assert ct.start_us == trace.start_us
        assert ct.end_us == trace.end_us
        assert ct.duration_us == trace.duration_us
        assert ct.attack_count == trace.attack_count
        assert ct.message_rate_hz() == trace.message_rate_hz()
        assert ct.id_histogram() == trace.id_histogram()

    @settings(max_examples=30, deadline=None)
    @given(trace_strategy())
    def test_array_accessors_match_trace(self, trace):
        ct = trace.to_columns()
        assert np.array_equal(ct.ids(), trace.ids())
        assert np.array_equal(ct.timestamps_us(), trace.timestamps_us())
        assert np.array_equal(ct.attack_mask(), trace.attack_mask())
        assert np.array_equal(ct.unique_ids(), trace.unique_ids())
        assert np.array_equal(ct.dlc, [r.dlc for r in trace])


class TestSlicing:
    @settings(max_examples=40, deadline=None)
    @given(
        trace_strategy(min_size=1),
        st.integers(min_value=0, max_value=10_000_000),
        st.integers(min_value=0, max_value=10_000_000),
    )
    def test_between_matches_trace(self, trace, a, b):
        lo, hi = min(a, b), max(a, b)
        assert trace.to_columns().between(lo, hi).to_trace() == trace.between(lo, hi)

    def test_slices_are_views(self):
        trace = Trace([TraceRecord(i * 10, i + 1, bytes([i])) for i in range(8)])
        ct = trace.to_columns()
        window = ct.slice(2, 6)
        assert window.timestamp_us.base is not None  # a view, not a copy
        assert window.to_trace() == trace[2:6]
        assert ct[2:6] == window

    def test_filters_match_trace(self):
        trace = Trace(
            [TraceRecord(i, i % 5, is_attack=i % 3 == 0) for i in range(30)]
        )
        ct = trace.to_columns()
        assert ct.only_attacks().to_trace() == trace.only_attacks()
        assert ct.without_attacks().to_trace() == trace.without_attacks()
        assert ct.shifted(500).to_trace() == trace.shifted(500)

    def test_merge_matches_trace_merge(self):
        a = Trace([TraceRecord(i * 7, 1, b"\x01", source="a") for i in range(10)])
        b = Trace([TraceRecord(i * 11, 2, b"\x02\x03", source="b") for i in range(8)])
        merged = ColumnTrace.merge(a.to_columns(), b.to_columns())
        assert merged.to_trace() == Trace.merge(a, b)


class TestWindowing:
    @settings(max_examples=40, deadline=None)
    @given(trace_strategy(min_size=1), st.integers(min_value=1, max_value=2_000_000))
    def test_time_windows_match_trace(self, trace, window_us):
        record_windows = [list(w) for w in trace.time_windows(window_us)]
        column_windows = [
            list(w.iter_records()) for w in trace.to_columns().time_windows(window_us)
        ]
        assert record_windows == column_windows

    def test_window_segments_skip_empty_windows(self):
        trace = Trace([TraceRecord(t, 1) for t in (0, 5, 10, 45, 47, 90)])
        grid, starts, ends = trace.to_columns().window_segments(10)
        assert list(grid) == [0, 1, 4, 9]
        assert list(starts) == [0, 2, 3, 5]
        assert list(ends) == [2, 3, 5, 6]

    def test_window_segments_rejects_bad_window(self):
        with pytest.raises(ValueError):
            Trace([TraceRecord(0, 1)]).to_columns().window_segments(0)


class TestValidation:
    def test_rejects_unsorted_timestamps(self):
        with pytest.raises(TraceFormatError):
            ColumnTrace([5, 1], [1, 2])

    def test_rejects_mismatched_columns(self):
        with pytest.raises(TraceFormatError):
            ColumnTrace([1, 2], [1])

    def test_rejects_bad_offsets(self):
        with pytest.raises(TraceFormatError):
            ColumnTrace([1, 2], [1, 2], payload_offsets=[0, 4, 9])

    def test_rejects_bad_source_codes(self):
        with pytest.raises(TraceFormatError):
            ColumnTrace([1], [1], source_code=[3], source_table=("",))

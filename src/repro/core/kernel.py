"""Fused single-pass detection kernel over columnar window segments.

The original batch engine computed per-window verdicts in ``n_bits``
separate ``np.add.reduceat`` passes (one shift/mask/reduce per
identifier bit) and then materialised one :class:`WindowResult` object
per window in a Python loop.  Both costs scale with the capture, and
both are avoidable:

* **packed bit counting** — identifiers are mapped through a
  precomputed lookup table whose rows pack four per-bit partial counts
  into 16-bit fields of one ``int64`` word, so *one* gather plus *one*
  ``reduceat`` accumulates four bit columns at a time (11-bit CAN ids
  need three words instead of eleven passes).  Fields cannot carry into
  each other as long as every window holds fewer than 2**16 messages;
  larger windows fall back to the per-bit path, bit-identically.
* **searchsorted segmentation** — window boundaries come from
  ``O(n_windows log n)`` binary searches over the (sorted) timestamp
  column instead of an ``O(n)`` integer-divide pass, which also keeps a
  memory-mapped capture from being paged in just to find its windows.
* **struct-of-arrays results** — the kernel returns a
  :class:`WindowBlock` (parallel arrays over windows, not objects), and
  :class:`~repro.core.detector.WindowResult` rows are materialised
  lazily only for callers that need the list API.

Everything downstream of the integer counts — probabilities, entropy,
deviations, verdicts — runs the exact float expressions the original
engine ran, so the kernel is bit-for-bit identical to the streaming
detector (the parity suites assert array equality, not approximation).

The kernel is strip-mined: segments are processed in bounded strips
through buffers owned by a reusable :class:`KernelWorkspace`, so peak
temporary memory is independent of capture length — which is what lets
:meth:`BatchEntropyEngine.scan_stream` hold a whole 100M-frame mmap
scan inside a fixed RSS budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bitprob import check_id_range, window_bit_counts
from repro.core.config import IDSConfig
from repro.core.detector import WindowResult
from repro.core.entropy import binary_entropy
from repro.core.template import GoldenTemplate
from repro.exceptions import DetectorError

__all__ = ["KernelWorkspace", "WindowBlock", "scan_windows"]

#: Bits per packed partial-count field.  A field accumulates one bit's
#: 1-count for one window, so windows must stay below ``2**16`` messages
#: for the packed path (checked per call; larger windows fall back).
_FIELD_BITS = 16
_FIELD_MASK = (1 << _FIELD_BITS) - 1
_FIELDS_PER_WORD = 64 // _FIELD_BITS

#: Widest identifier the packed lookup table supports (2**16 rows); the
#: base-frame 11-bit case uses a 2048-row table.
_PACK_MAX_BITS = 16

#: Rows per internal strip: bounds the gather buffer (strip × 24 bytes,
#: ~1.5 MiB — L2-resident, so the reduceat reads it hot) regardless of
#: capture size.  Strips always cover whole segments, so a segment
#: larger than this simply gets a larger strip.
_STRIP_ROWS = 1 << 16

_PACK_TABLES: Dict[int, np.ndarray] = {}


def _pack_table(n_bits: int) -> np.ndarray:
    """Lookup table ``(2**n_bits, n_words)``: row ``v`` packs the bits
    of identifier ``v`` (MSB first) into 16-bit fields, four per word."""
    table = _PACK_TABLES.get(n_bits)
    if table is None:
        n_words = -(-n_bits // _FIELDS_PER_WORD)
        values = np.arange(1 << n_bits, dtype=np.int64)
        table = np.zeros((values.size, n_words), dtype=np.int64)
        for bit in range(n_bits):
            word, field = divmod(bit, _FIELDS_PER_WORD)
            column = (values >> np.int64(n_bits - 1 - bit)) & np.int64(1)
            table[:, word] |= column << np.int64(_FIELD_BITS * field)
        _PACK_TABLES[n_bits] = table
    return table


class KernelWorkspace:
    """Reusable scratch buffers for :func:`scan_windows`.

    One workspace serves any number of sequential kernel calls (e.g.
    every chunk of a streamed scan); buffers grow to the largest strip
    seen and are then reused, so a long out-of-core scan allocates its
    temporaries once instead of once per chunk.
    """

    __slots__ = ("_gather", "_packed")

    def __init__(self) -> None:
        self._gather: Optional[np.ndarray] = None
        self._packed: Optional[np.ndarray] = None

    def gather(self, rows: int, words: int) -> np.ndarray:
        """A ``(rows, words)`` int64 gather buffer (grown as needed)."""
        buf = self._gather
        if buf is None or buf.shape[0] < rows or buf.shape[1] != words:
            buf = np.empty((max(rows, 1), words), dtype=np.int64)
            self._gather = buf
        return buf[:rows]

    def packed(self, rows: int, words: int) -> np.ndarray:
        """A ``(rows, words)`` int64 reduce buffer (grown as needed)."""
        buf = self._packed
        if buf is None or buf.shape[0] < rows or buf.shape[1] != words:
            buf = np.empty((max(rows, 1), words), dtype=np.int64)
            self._packed = buf
        return buf[:rows]


def _segment_windows(
    timestamps: np.ndarray,
    window_us: int,
    origin_us: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Non-empty tumbling-window segments via binary search.

    Returns ``(grid, seg_starts, seg_ends)`` exactly as
    :meth:`ColumnTrace.window_segments` would, but in
    ``O(n_windows log n)`` instead of ``O(n)`` — no full pass over the
    timestamp column, which matters both for speed and for not paging
    in an entire memory-mapped capture.  Falls back to the dividing
    pass when the window grid is denser than the records (a sparse
    capture full of silent gaps) or when records precede the origin.
    """
    n = timestamps.size
    first = int(timestamps[0])
    last = int(timestamps[-1])
    w_total = (last - origin_us) // window_us + 1
    if first < origin_us or w_total > n:
        grid = (timestamps - np.int64(origin_us)) // np.int64(window_us)
        boundaries = np.flatnonzero(np.diff(grid)) + 1
        seg_starts = np.concatenate(([0], boundaries))
        seg_ends = np.concatenate((boundaries, [n]))
        return grid[seg_starts], seg_starts, seg_ends
    edges = np.int64(origin_us) + np.arange(1, w_total, dtype=np.int64) * np.int64(
        window_us
    )
    bounds = np.empty(w_total + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[-1] = n
    bounds[1:-1] = np.searchsorted(timestamps, edges, side="left")
    nonempty = np.flatnonzero(np.diff(bounds) > 0)
    return nonempty.astype(np.int64), bounds[nonempty], bounds[nonempty + 1]


def _fused_counts(
    ids: np.ndarray,
    seg_starts: np.ndarray,
    seg_ends: np.ndarray,
    totals: np.ndarray,
    n_bits: int,
    workspace: KernelWorkspace,
) -> np.ndarray:
    """Per-window, per-bit 1-counts, packed-field formulation.

    Bit-identical to :func:`~repro.core.bitprob.window_bit_counts` (the
    per-bit ``reduceat`` reference), which also serves as the fallback
    for identifiers wider than the lookup table or windows too large
    for 16-bit partial counts.
    """
    n_windows = seg_starts.size
    if n_bits > _PACK_MAX_BITS or (n_windows and int(totals.max()) > _FIELD_MASK):
        return window_bit_counts(ids, seg_starts, n_bits)
    table = _pack_table(n_bits)
    n_words = table.shape[1]
    counts = np.empty((n_windows, n_bits), dtype=np.int64)
    strip = 0
    while strip < n_windows:
        # Cover whole segments up to ~_STRIP_ROWS rows per strip.
        stop = int(
            np.searchsorted(
                seg_starts, int(seg_starts[strip]) + _STRIP_ROWS, side="left"
            )
        )
        stop = max(stop, strip + 1)
        lo = int(seg_starts[strip])
        hi = int(seg_ends[stop - 1])
        gathered = workspace.gather(hi - lo, n_words)
        # mode="clip" is safe (check_id_range ran) and avoids the slow
        # buffered path np.take uses for out= with mode="raise".
        np.take(table, ids[lo:hi], axis=0, out=gathered, mode="clip")
        packed = workspace.packed(stop - strip, n_words)
        np.add.reduceat(gathered, seg_starts[strip:stop] - lo, axis=0, out=packed)
        for bit in range(n_bits):
            word, field = divmod(bit, _FIELDS_PER_WORD)
            np.right_shift(
                packed[:, word], _FIELD_BITS * field, out=counts[strip:stop, bit]
            )
        counts[strip:stop] &= _FIELD_MASK
        strip = stop
    return counts


def _segment_attack_counts(
    is_attack: np.ndarray, seg_starts: np.ndarray, seg_ends: np.ndarray
) -> np.ndarray:
    """Ground-truth attack messages per segment.

    Attack rows are sparse (usually absent), so count them once with
    ``flatnonzero`` and place them into segments by binary search — a
    single cheap pass over the bool column instead of an int64 cast +
    ``reduceat``.
    """
    if seg_starts.size == 0:
        return np.zeros(0, dtype=np.int64)
    rows = np.flatnonzero(is_attack)
    if rows.size == 0:
        return np.zeros(seg_starts.size, dtype=np.int64)
    return (
        np.searchsorted(rows, seg_ends, side="left")
        - np.searchsorted(rows, seg_starts, side="left")
    ).astype(np.int64)


@dataclass
class WindowBlock:
    """Struct-of-arrays window verdicts (one row per non-empty window).

    This is the kernel's native result: every field the per-window
    :class:`~repro.core.detector.WindowResult` carries, held as one
    parallel array over all windows.  Aggregate consumers (metrics,
    throughput experiments, drift series) read the arrays directly;
    list-API consumers call :meth:`results`, which materialises
    ``WindowResult`` rows lazily as zero-copy row views.
    """

    window_us: int
    index: np.ndarray
    t_start_us: np.ndarray
    n_messages: np.ndarray
    n_attack_messages: np.ndarray
    probabilities: np.ndarray
    entropy: np.ndarray
    deviations: np.ndarray
    violated: np.ndarray
    judged: np.ndarray

    def __len__(self) -> int:
        return self.index.size

    @property
    def n_bits(self) -> int:
        return self.probabilities.shape[1]

    @property
    def t_end_us(self) -> np.ndarray:
        """Window end times (start + window length)."""
        return self.t_start_us + np.int64(self.window_us)

    @property
    def alarm_mask(self) -> np.ndarray:
        """Per-window alarm verdicts (judged and >= 1 violated bit)."""
        return self.judged & self.violated.any(axis=1)

    @property
    def n_alarmed(self) -> int:
        """Number of alarming windows."""
        return int(np.count_nonzero(self.alarm_mask))

    @property
    def n_judged(self) -> int:
        """Number of judged windows."""
        return int(np.count_nonzero(self.judged))

    @property
    def total_messages(self) -> int:
        """Messages across all windows."""
        return int(self.n_messages.sum())

    def result(self, i: int) -> WindowResult:
        """Row ``i`` as a :class:`WindowResult` (arrays are row views)."""
        t_start = int(self.t_start_us[i])
        return WindowResult(
            index=int(self.index[i]),
            t_start_us=t_start,
            t_end_us=t_start + self.window_us,
            n_messages=int(self.n_messages[i]),
            n_attack_messages=int(self.n_attack_messages[i]),
            probabilities=self.probabilities[i],
            entropy=self.entropy[i],
            deviations=self.deviations[i],
            violated=self.violated[i],
            judged=bool(self.judged[i]),
        )

    def results(self) -> List[WindowResult]:
        """Every row as a :class:`WindowResult` list (the legacy API)."""
        return [self.result(i) for i in range(len(self))]

    def __iter__(self) -> Iterator[WindowResult]:
        return iter(self.results())

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n_bits: int, window_us: int) -> "WindowBlock":
        """A block with zero windows."""
        i64 = np.empty(0, dtype=np.int64)
        f = np.empty((0, n_bits), dtype=float)
        return cls(
            window_us=window_us,
            index=i64,
            t_start_us=i64.copy(),
            n_messages=i64.copy(),
            n_attack_messages=i64.copy(),
            probabilities=f,
            entropy=f.copy(),
            deviations=f.copy(),
            violated=np.empty((0, n_bits), dtype=bool),
            judged=np.empty(0, dtype=bool),
        )

    @classmethod
    def concat(
        cls, blocks: Sequence["WindowBlock"], n_bits: int, window_us: int
    ) -> "WindowBlock":
        """Stack chunked blocks into one (indices must already be global)."""
        blocks = [b for b in blocks if len(b)]
        if not blocks:
            return cls.empty(n_bits, window_us)
        if len(blocks) == 1:
            return blocks[0]
        return cls(
            window_us=window_us,
            index=np.concatenate([b.index for b in blocks]),
            t_start_us=np.concatenate([b.t_start_us for b in blocks]),
            n_messages=np.concatenate([b.n_messages for b in blocks]),
            n_attack_messages=np.concatenate(
                [b.n_attack_messages for b in blocks]
            ),
            probabilities=np.concatenate([b.probabilities for b in blocks]),
            entropy=np.concatenate([b.entropy for b in blocks]),
            deviations=np.concatenate([b.deviations for b in blocks]),
            violated=np.concatenate([b.violated for b in blocks]),
            judged=np.concatenate([b.judged for b in blocks]),
        )


def scan_windows(
    trace,
    template: GoldenTemplate,
    config: IDSConfig,
    *,
    origin_us: Optional[int] = None,
    index_base: int = 0,
    workspace: Optional[KernelWorkspace] = None,
) -> WindowBlock:
    """Judge every tumbling window of a columnar trace in one fused pass.

    ``trace`` is a non-empty :class:`~repro.io.columnar.ColumnTrace`
    (or any object exposing ``timestamp_us`` / ``can_id`` /
    ``is_attack`` columns).  ``origin_us`` anchors the window grid
    (default: the trace's own first timestamp) and ``index_base``
    offsets the emitted window indices — together they let a chunked
    driver call the kernel per window-aligned chunk and concatenate
    blocks that are bit-identical to one whole-trace call.

    The numeric path is exactly the reference engine's: int64 counts /
    float totals -> :func:`binary_entropy` -> template subtraction ->
    threshold comparison.  Only the *route* to the counts differs.
    """
    n = trace.timestamp_us.size
    if n == 0:
        raise DetectorError("scan_windows needs a non-empty trace")
    if config.window_us <= 0:
        raise ValueError(f"window must be positive, got {config.window_us}")
    n_bits = config.n_bits
    if template.n_bits != n_bits:
        raise DetectorError(
            f"template monitors {template.n_bits} bits, config expects {n_bits}"
        )
    ids = trace.can_id
    check_id_range(ids, n_bits)
    if workspace is None:
        workspace = KernelWorkspace()
    t0 = int(trace.timestamp_us[0]) if origin_us is None else int(origin_us)

    grid, seg_starts, seg_ends = _segment_windows(
        trace.timestamp_us, config.window_us, t0
    )
    totals = seg_ends - seg_starts
    counts = _fused_counts(ids, seg_starts, seg_ends, totals, n_bits, workspace)
    attacks = _segment_attack_counts(trace.is_attack, seg_starts, seg_ends)

    # Same float path as the streaming BitCounter.probabilities(): int64
    # counts divided by the float total — then the shared entropy
    # function and template arithmetic.  Bit-identical by construction.
    probabilities = counts / totals[:, None].astype(float)
    entropy = np.asarray(binary_entropy(probabilities), dtype=float)
    judged = totals >= config.min_window_messages
    deviations = np.where(judged[:, None], entropy - template.mean_entropy, 0.0)
    violated = np.abs(deviations) > template.thresholds
    violated &= judged[:, None]

    return WindowBlock(
        window_us=config.window_us,
        index=np.arange(index_base, index_base + grid.size, dtype=np.int64),
        t_start_us=np.int64(t0) + grid * np.int64(config.window_us),
        n_messages=totals,
        n_attack_messages=attacks,
        probabilities=probabilities,
        entropy=entropy,
        deviations=deviations,
        violated=violated,
        judged=judged,
    )

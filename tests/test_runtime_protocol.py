"""Protocol-layer coverage: codecs, leases, claimant and collector.

The transports (filesystem queue, TCP fabric) have their own suites;
this one pins down the transport-neutral rules they share — wire
format versioning, the claim lease, the shared claimant
(``execute_task``) and the coordinator-side ``ResultCollector`` whose
error rule decides when a scan degrades locally versus fails.
"""

import pytest

from repro.baselines import FrequencyIDS
from repro.exceptions import DetectorError
from repro.runtime import (
    BaselineScanSpec,
    EntropyScanSpec,
    ResultCollector,
    TaskFormatError,
    TaskMessage,
    TaskResult,
    execute_task,
    make_tasks,
    new_job_id,
    require_portable,
)
from repro.runtime.protocol import PROTOCOL_VERSION, ClaimToken
from repro.vehicle.traffic import simulate_drive


@pytest.fixture()
def spec(golden_template, ids_config):
    return EntropyScanSpec(golden_template, ids_config)


@pytest.fixture()
def capture_path(tmp_path, catalog):
    from repro.io import write_candump

    path = tmp_path / "drive.log"
    write_candump(simulate_drive(5.0, seed=31, catalog=catalog), path)
    return path


class TestCodecs:
    def test_task_round_trips(self, spec):
        task = TaskMessage("abc123", 4, "/data/cap.log", spec.to_payload())
        assert task.name == "abc123-000004"
        assert TaskMessage.from_wire(task.to_wire()) == task
        assert task.to_wire()["version"] == PROTOCOL_VERSION

    def test_result_round_trips(self):
        ok = TaskResult("abc123", 1, result=[{"w": 1}])
        err = TaskResult("abc123", 2, error="boom")
        assert TaskResult.from_wire(ok.to_wire()) == ok and ok.ok
        assert TaskResult.from_wire(err.to_wire()) == err and not err.ok

    def test_future_version_rejected(self, spec):
        wire = TaskMessage("j", 0, "p", spec.to_payload()).to_wire()
        wire["version"] = PROTOCOL_VERSION + 1
        with pytest.raises(TaskFormatError):
            TaskMessage.from_wire(wire)
        wire = TaskResult("j", 0, result=[]).to_wire()
        wire["version"] = PROTOCOL_VERSION + 1
        with pytest.raises(TaskFormatError):
            TaskResult.from_wire(wire)

    def test_result_needs_result_or_error(self):
        with pytest.raises(TaskFormatError):
            TaskResult.from_wire({"version": PROTOCOL_VERSION,
                                  "job": "j", "index": 0})

    def test_garbage_rejected_with_diagnostic(self):
        with pytest.raises(TaskFormatError, match="malformed"):
            TaskMessage.from_wire({"torn": True})

    def test_make_tasks_enumerates_one_job(self, spec):
        tasks = make_tasks(spec, ["a.log", "b.log"], job="feedface")
        assert [t.index for t in tasks] == [0, 1]
        assert {t.job for t in tasks} == {"feedface"}
        assert tasks[0].spec == tasks[1].spec == spec.to_payload()

    def test_job_ids_unique(self):
        assert new_job_id() != new_job_id()

    def test_baseline_specs_are_not_portable(self, catalog):
        baseline = FrequencyIDS()
        baseline.fit(
            [simulate_drive(2.0, seed=s, catalog=catalog) for s in (1, 2)]
        )
        with pytest.raises(DetectorError, match="work queue"):
            require_portable(BaselineScanSpec(baseline))


class TestClaimToken:
    def test_lease_expires_and_renews(self, spec):
        task = TaskMessage("j", 0, "p", spec.to_payload())
        token = ClaimToken(task, "worker-a", claimed_at=100.0, lease_s=30.0)
        assert not token.expired(129.0)
        assert token.expired(131.0)
        token.renew(131.0)
        assert not token.expired(160.0)


class TestExecuteTask:
    def test_result_matches_direct_scan(self, spec, capture_path):
        task = make_tasks(spec, [str(capture_path)])[0]
        outcome = execute_task(task)
        assert outcome.ok and (outcome.job, outcome.index) == (task.job, 0)
        direct = spec.make_scanner()(str(capture_path))
        assert outcome.result == spec.encode_result(direct)

    def test_scanner_cache_shared_across_tasks(self, spec, capture_path):
        scanners = {}
        for task in make_tasks(spec, [str(capture_path)] * 2):
            assert execute_task(task, scanners).ok
        assert len(scanners) == 1  # one spec payload, one built engine

    def test_failure_becomes_error_result(self, spec, tmp_path):
        task = make_tasks(spec, [str(tmp_path / "missing.log")])[0]
        outcome = execute_task(task)
        assert not outcome.ok and "missing.log" in outcome.error


class TestResultCollector:
    def test_out_of_order_results_come_back_in_input_order(
        self, spec, capture_path
    ):
        paths = [str(capture_path)] * 3
        tasks = make_tasks(spec, paths)
        collector = ResultCollector(spec, paths, tasks[0].job)
        for task in reversed(tasks):
            assert collector.offer(execute_task(task))
        assert collector.done
        direct = spec.make_scanner()(str(capture_path))
        for got in collector.results():
            assert [w.to_dict() for w in got] == [w.to_dict() for w in direct]

    def test_duplicates_and_foreign_jobs_ignored(self, spec, capture_path):
        paths = [str(capture_path)]
        task = make_tasks(spec, paths)[0]
        collector = ResultCollector(spec, paths, task.job)
        outcome = execute_task(task)
        assert collector.offer(outcome)
        assert not collector.offer(outcome)  # duplicate (re-posted task)
        foreign = TaskResult("other-job", 0, result=outcome.result)
        assert not collector.offer(foreign)
        bogus = TaskResult(task.job, 99, result=outcome.result)
        assert not collector.offer(bogus)  # index out of range

    def test_error_result_retries_locally_by_default(
        self, spec, capture_path
    ):
        paths = [str(capture_path)]
        job = new_job_id()
        collector = ResultCollector(spec, paths, job)
        assert collector.offer(TaskResult(job, 0, error="remote mount lost"))
        direct = spec.make_scanner()(str(capture_path))
        got = collector.results()[0]
        assert [w.to_dict() for w in got] == [w.to_dict() for w in direct]

    def test_error_result_raises_without_local_retry(
        self, spec, capture_path
    ):
        job = new_job_id()
        collector = ResultCollector(
            spec, [str(capture_path)], job, local_retry=False
        )
        with pytest.raises(DetectorError, match="remote mount lost"):
            collector.offer(TaskResult(job, 0, error="remote mount lost"))

    def test_local_retry_surfaces_the_true_local_exception(
        self, spec, tmp_path
    ):
        job = new_job_id()
        missing = str(tmp_path / "gone.log")
        collector = ResultCollector(spec, [missing], job)
        with pytest.raises(Exception, match="gone.log"):
            collector.offer(TaskResult(job, 0, error="worker io fault"))

    def test_incomplete_results_raise(self, spec, capture_path):
        collector = ResultCollector(
            spec, [str(capture_path)] * 2, new_job_id()
        )
        assert collector.pending_indices() == [0, 1]
        with pytest.raises(DetectorError, match="outstanding"):
            collector.results()

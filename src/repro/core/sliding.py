"""Sliding-window entropy detection.

The paper's detector judges tumbling windows, so worst-case reaction
time is two windows.  This variant slides: the window advances by a
``stride`` (a fraction of the window), maintained incrementally with
:meth:`BitCounter.merge`/:meth:`BitCounter.subtract` — per-stride cost
stays O(n_bits), preserving the paper's lightweight-deployment argument
while cutting reaction latency roughly in half.

Used by the window ablation and available to the pipeline as an
alternative detector; results are the same :class:`WindowResult` type.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.core.alerts import AlertSink
from repro.core.bitprob import BitCounter
from repro.core.config import IDSConfig
from repro.core.detector import WindowResult
from repro.core.entropy import binary_entropy
from repro.core.template import GoldenTemplate
from repro.exceptions import DetectorError
from repro.io.trace import Trace, TraceRecord


class SlidingEntropyDetector:
    """Entropy detector over a sliding window of ``slices`` strides.

    Parameters
    ----------
    template / config:
        As for :class:`~repro.core.detector.EntropyDetector`.
    slices:
        Number of strides per window; the stride is
        ``config.window_us / slices``.  ``slices=1`` degenerates to the
        tumbling behaviour.
    """

    def __init__(
        self,
        template: GoldenTemplate,
        config: Optional[IDSConfig] = None,
        slices: int = 4,
        sink: Optional[AlertSink] = None,
    ) -> None:
        self.config = config or IDSConfig()
        if template.n_bits != self.config.n_bits:
            raise DetectorError(
                f"template monitors {template.n_bits} bits, config expects "
                f"{self.config.n_bits}"
            )
        if slices < 1:
            raise DetectorError(f"slices must be >= 1, got {slices}")
        if self.config.window_us % slices:
            raise DetectorError(
                f"window of {self.config.window_us}us is not divisible into "
                f"{slices} strides"
            )
        self.template = template
        self.slices = slices
        self.stride_us = self.config.window_us // slices
        self.sink = sink if sink is not None else AlertSink()
        self._window = BitCounter(self.config.n_bits)
        self._history: Deque[Tuple[BitCounter, int]] = deque()
        self._current = BitCounter(self.config.n_bits)
        self._current_attack = 0
        self._attack_in_window = 0
        self._stride_start: Optional[int] = None
        self._emitted = 0
        self._last_timestamp: Optional[int] = None

    # ------------------------------------------------------------------
    def feed(self, record: TraceRecord) -> Optional[WindowResult]:
        """Account one record; emit a result whenever a stride closes."""
        if self._last_timestamp is not None and record.timestamp_us < self._last_timestamp:
            raise DetectorError("feed records in time order")
        self._last_timestamp = record.timestamp_us

        result: Optional[WindowResult] = None
        if self._stride_start is None:
            self._stride_start = record.timestamp_us
        elif record.timestamp_us >= self._stride_start + self.stride_us:
            result = self._close_stride()
            start = self._stride_start
            while record.timestamp_us >= start + self.stride_us:
                start += self.stride_us
            self._stride_start = start

        self._current.update(record.can_id)
        if record.is_attack:
            self._current_attack += 1
        return result

    def scan(self, trace: Trace) -> List[WindowResult]:
        """Judge every stride of a recorded trace."""
        results: List[WindowResult] = []
        for record in trace:
            result = self.feed(record)
            if result is not None:
                results.append(result)
        final = self.flush()
        if final is not None:
            results.append(final)
        return results

    def flush(self) -> Optional[WindowResult]:
        """Close the trailing partial stride."""
        if self._stride_start is None or self._current.is_empty():
            return None
        result = self._close_stride()
        self._stride_start = None
        self._last_timestamp = None
        return result

    # ------------------------------------------------------------------
    def _close_stride(self) -> WindowResult:
        assert self._stride_start is not None
        # Rotate the finished stride into the window.
        self._window.merge(self._current)
        self._attack_in_window += self._current_attack
        self._history.append((self._current, self._current_attack))
        self._current = BitCounter(self.config.n_bits)
        self._current_attack = 0
        while len(self._history) > self.slices:
            expired, expired_attack = self._history.popleft()
            self._window.subtract(expired)
            self._attack_in_window -= expired_attack

        probabilities = self._window.probabilities()
        entropy = np.asarray(binary_entropy(probabilities), dtype=float)
        judged = (
            self._window.total >= self.config.min_window_messages
            and len(self._history) == self.slices
        )
        deviations = (
            self.template.deviations(entropy)
            if judged
            else np.zeros(self.config.n_bits)
        )
        violated = (
            np.abs(deviations) > self.template.thresholds
            if judged
            else np.zeros(self.config.n_bits, dtype=bool)
        )
        window_end = self._stride_start + self.stride_us
        result = WindowResult(
            index=self._emitted,
            t_start_us=window_end - self.config.window_us,
            t_end_us=window_end,
            n_messages=self._window.total,
            n_attack_messages=self._attack_in_window,
            probabilities=probabilities,
            entropy=entropy,
            deviations=deviations,
            violated=violated,
            judged=judged,
        )
        if result.alarm:
            self.sink.emit(result.to_alert())
        self._emitted += 1
        return result

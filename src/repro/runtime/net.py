"""The TCP transport of the scan fabric: no shared disk required.

The filesystem queue needs every worker to mount the coordinator's
directory; this module carries the same protocol
(:mod:`repro.runtime.protocol`) over a socket instead, so workers need
nothing but a route to one TCP port.  Three pieces:

* :class:`ScanServer` — the asyncio coordinator (``repro-ids serve``).
  A small in-memory broker speaking newline-delimited JSON: submitter
  connections post jobs and stream results back; worker connections
  register, pull tasks, renew leases and upload results.  A worker
  whose connection drops (or whose lease expires — the backstop for
  half-open sockets) has its claimed tasks re-posted immediately, so a
  SIGKILLed worker delays a scan, it never wedges one.  SIGTERM drains
  gracefully: no new jobs are accepted, in-flight jobs finish, idle
  workers are told to exit.

* :class:`NetExecutor` — the coordinator-side backend (``--executor
  net --connect host:port``).  Submits the job, collects streamed
  results, and (by default) drains tasks through a second, worker-role
  connection while waiting — so workers accelerate a scan but are
  never required for one, exactly like the queue backend.

* :func:`run_net_worker` — the network claimant behind ``repro-ids
  worker --connect``.  Pull a task, execute it through the shared
  :func:`~repro.runtime.protocol.execute_task` (per-spec engine cache
  included), upload, repeat; a background heartbeat renews the lease
  during long scans.

Wire format: one JSON object per line, ASCII.  Every conversation
opens with ``{"version": 1, "type": "hello", "role":
"worker"|"submit"|"status", "name": ...}`` answered by ``{"type":
"welcome", "lease_s": ...}``.  Workers send ``next`` (→ ``task`` /
``idle`` / ``drain``), ``result`` (→ ``ack``) and fire-and-forget
``renew`` heartbeats (optionally carrying the worker's running
:class:`~repro.runtime.worker.WorkerStats` so the coordinator sees
per-task timing and engine-cache hit rates); submitters send
``submit`` (→ ``submitted``) and then receive pushed ``result``
messages.  Every role may send ``stats`` (→ the transport-neutral
:func:`~repro.runtime.protocol.fabric_stats` document — the admin verb
behind ``repro-ids status --connect``); the ``status`` role may send
nothing else.  Task and result payloads are the protocol module's
versioned codecs — the very bytes the filesystem transport writes to
disk — which is what keeps a net scan bit-identical to a serial one.

Capture *paths* still travel by name, not content: a worker that
cannot read a path publishes an error result and the draining
coordinator retries locally, so a mixed fleet (some hosts with the
archive mounted, some without) degrades instead of failing.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.exceptions import DetectorError
from repro.runtime.base import Executor, ScanSpec
from repro.runtime.protocol import (
    DEFAULT_LEASE_S,
    PROTOCOL_VERSION,
    ClaimToken,
    ResultCollector,
    TaskFormatError,
    TaskMessage,
    TaskResult,
    execute_task,
    fabric_stats,
    make_tasks,
    new_job_id,
    require_portable,
)
from repro.runtime.worker import WorkerStats

__all__ = [
    "NetExecutor",
    "ScanServer",
    "ServerThread",
    "fetch_stats",
    "parse_address",
    "run_net_worker",
]


def parse_address(connect: str) -> Tuple[str, int]:
    """Split ``host:port`` (the ``--connect`` flag) into its parts."""
    host, sep, port = str(connect).rpartition(":")
    if not sep or not host:
        raise DetectorError(
            f"coordinator address {connect!r} is not host:port"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise DetectorError(
            f"coordinator address {connect!r} has a non-numeric port"
        ) from exc


# ----------------------------------------------------------------------
# Coordinator (asyncio server)
# ----------------------------------------------------------------------

@dataclass
class _Job:
    """One submitted job's server-side state."""

    job: str
    tasks: Dict[int, TaskMessage]
    pending: Deque[int]
    submitter: asyncio.StreamWriter
    claimed: Dict[int, ClaimToken] = field(default_factory=dict)
    done: Set[int] = field(default_factory=set)

    @property
    def complete(self) -> bool:
        return len(self.done) >= len(self.tasks)


@dataclass
class _WorkerConn:
    """One connected worker's claims, for disconnect cleanup.

    ``stats`` is the latest self-report the worker carried in a
    ``renew`` heartbeat (executed/cache-hit/busy numbers);
    ``completed`` counts the uploads *this connection* landed first.
    """

    name: str
    claims: Set[Tuple[str, int]] = field(default_factory=set)
    stats: Dict[str, object] = field(default_factory=dict)
    completed: int = 0


class ScanServer:
    """The asyncio TCP coordinator: an in-memory scan-fabric broker.

    Holds no detection state at all — only the protocol state machine
    (pending / claimed-with-lease / done per task) — so it is cheap
    enough to leave running as a long-lived fleet service.  Start with
    :meth:`start` inside a running event loop; ``repro-ids serve`` and
    :class:`ServerThread` both wrap that.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_s: float = DEFAULT_LEASE_S,
        log=None,
    ) -> None:
        if lease_s <= 0:
            raise DetectorError("lease_s must be positive")
        self.host = host
        self.port = int(port)  # rebound to the real port by start()
        self.lease_s = float(lease_s)
        self.log = log
        self.draining = False
        self._jobs: Dict[str, _Job] = {}
        self._workers: Dict[asyncio.StreamWriter, _WorkerConn] = {}
        self._locks: Dict[asyncio.StreamWriter, asyncio.Lock] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped: Optional[asyncio.Event] = None
        self._reaper: Optional[asyncio.Task] = None
        self._handlers: Set[asyncio.Task] = set()
        # Lifetime telemetry, surfaced by stats()/summary_line().
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_reposted = 0
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.peak_workers = 0

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = asyncio.create_task(self._reap_expired())
        self._log(f"serve: listening on {self.host}:{self.port}")

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def close(self) -> None:
        if self._reaper is not None:
            self._reaper.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Cancel connection handlers ourselves — leaving them to the
        # loop's shutdown sweep spews CancelledError tracebacks.
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)

    def request_drain(self) -> None:
        """Graceful shutdown: finish in-flight jobs, accept no new ones."""
        self.draining = True
        self._log("serve: draining (no new jobs accepted)")
        self._maybe_finish()

    def request_stop(self) -> None:
        """Immediate shutdown (teardown paths; in-flight jobs dropped)."""
        if self._stopped is not None:
            self._stopped.set()

    def snapshot(self) -> dict:
        """Introspection for tests, status lines and operators."""
        return {
            "draining": self.draining,
            "workers": sorted(w.name for w in self._workers.values()),
            "jobs": {
                job.job: {
                    "total": len(job.tasks),
                    "pending": len(job.pending),
                    "claimed": {
                        i: token.claimant
                        for i, token in job.claimed.items()
                    },
                    "done": len(job.done),
                }
                for job in self._jobs.values()
            },
        }

    def stats(self) -> dict:
        """The ``stats`` admin verb: live fabric telemetry, one schema.

        The TCP realisation of
        :func:`~repro.runtime.protocol.fabric_stats` — byte-compatible
        with :func:`repro.runtime.queue.queue_stats`, so ``repro-ids
        status`` renders either transport.  Worker rows fold in each
        connection's latest heartbeat-carried self-report.
        """
        now = time.monotonic()
        queued = sum(len(job.pending) for job in self._jobs.values())
        claims: List[dict] = []
        for job in self._jobs.values():
            for index, token in job.claimed.items():
                claims.append(
                    {
                        "task": job.tasks[index].name,
                        "claimant": token.claimant,
                        "lease_age_s": round(max(now - token.claimed_at, 0.0), 3),
                    }
                )
        workers = []
        for conn in self._workers.values():
            ages = []
            for job_id, index in conn.claims:
                job = self._jobs.get(job_id)
                if job is not None and index in job.claimed:
                    ages.append(now - job.claimed[index].claimed_at)
            row = {
                "name": conn.name,
                "claims": sorted(
                    f"{job_id}-{index:06d}" for job_id, index in conn.claims
                ),
                "lease_age_s": round(max(ages), 3) if ages else None,
                "completed": conn.completed,
            }
            for key in (
                "executed",
                "quarantined",
                "cache_hits",
                "cache_misses",
                "busy_s",
                "last_task_s",
            ):
                if key in conn.stats:
                    row[key] = conn.stats[key]
            workers.append(row)
        jobs = {
            job.job: {
                "total": len(job.tasks),
                "pending": len(job.pending),
                "claimed": len(job.claimed),
                "done": len(job.done),
            }
            for job in self._jobs.values()
        }
        return fabric_stats(
            "net",
            draining=self.draining,
            tasks={
                "queued": queued,
                "claimed": len(claims),
                "completed": self.tasks_completed,
                "reposted": self.tasks_reposted,
                "quarantined": 0,
            },
            jobs=jobs,
            workers=sorted(workers, key=lambda row: row["name"]),
            claims=sorted(claims, key=lambda row: row["task"]),
            wire={"bytes_in": self.bytes_in, "bytes_out": self.bytes_out},
        )

    def summary_line(self) -> str:
        """One-line lifetime digest (logged when a drain completes)."""
        return (
            f"serve: drained: {self.jobs_completed} jobs served "
            f"({self.tasks_completed} tasks), "
            f"{self.tasks_reposted} tasks reposted, "
            f"peak {self.peak_workers} workers, "
            f"{self.bytes_in} B in / {self.bytes_out} B out"
        )

    # -- internals ------------------------------------------------------
    def _log(self, line: str) -> None:
        if self.log is not None:
            self.log(line)

    def _maybe_finish(self) -> None:
        if self.draining and not self._jobs and self._stopped is not None:
            self._stopped.set()

    async def _send(self, writer: asyncio.StreamWriter, message: dict) -> None:
        data = (json.dumps(message) + "\n").encode("ascii")
        self.bytes_out += len(data)
        lock = self._locks.setdefault(writer, asyncio.Lock())
        async with lock:
            writer.write(data)
            await writer.drain()

    async def _reap_expired(self) -> None:
        """Lease backstop: repost claims of half-open, silent workers."""
        interval = max(self.lease_s / 4.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for job in self._jobs.values():
                for index, token in list(job.claimed.items()):
                    if token.expired(now) and index not in job.done:
                        del job.claimed[index]
                        job.pending.appendleft(index)
                        self.tasks_reposted += 1
                        self._log(
                            f"serve: lease expired, reposted task "
                            f"{job.job}-{index:06d} (was {token.claimant})"
                        )

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            hello = await self._read(reader)
            if (
                hello is None
                or hello.get("type") != "hello"
                or hello.get("version") != PROTOCOL_VERSION
            ):
                await self._send(
                    writer,
                    {"type": "error", "error": "bad hello or version"},
                )
                return
            await self._send(
                writer,
                {
                    "type": "welcome",
                    "version": PROTOCOL_VERSION,
                    "lease_s": self.lease_s,
                },
            )
            role = hello.get("role")
            name = str(hello.get("name", "?"))
            if role == "worker":
                await self._worker_loop(reader, writer, name)
            elif role == "submit":
                await self._submit_loop(reader, writer, name)
            elif role == "status":
                await self._status_loop(reader, writer)
            else:
                await self._send(
                    writer,
                    {"type": "error", "error": f"unknown role {role!r}"},
                )
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # peer vanished; per-role cleanup below still runs
        except asyncio.CancelledError:
            pass  # server teardown; ending normally keeps the loop quiet
        finally:
            self._release_worker(writer)
            self._release_submitter(writer)
            self._locks.pop(writer, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read(self, reader: asyncio.StreamReader) -> Optional[dict]:
        line = await reader.readline()
        if not line:
            return None
        self.bytes_in += len(line)
        try:
            message = json.loads(line)
        except ValueError:
            return {"type": "malformed"}
        return message if isinstance(message, dict) else {"type": "malformed"}

    # -- worker role ----------------------------------------------------
    def _claim_for(self, conn: _WorkerConn) -> Optional[TaskMessage]:
        for job in self._jobs.values():
            while job.pending:
                index = job.pending.popleft()
                if index in job.done:
                    continue
                job.claimed[index] = ClaimToken(
                    task=job.tasks[index],
                    claimant=conn.name,
                    claimed_at=time.monotonic(),
                    lease_s=self.lease_s,
                )
                conn.claims.add((job.job, index))
                return job.tasks[index]
        return None

    def _release_worker(self, writer: asyncio.StreamWriter) -> None:
        conn = self._workers.pop(writer, None)
        if conn is None:
            return
        for job_id, index in conn.claims:
            job = self._jobs.get(job_id)
            if job is not None and index not in job.done:
                job.claimed.pop(index, None)
                job.pending.appendleft(index)
                self.tasks_reposted += 1
                self._log(
                    f"serve: worker {conn.name} gone, reposted task "
                    f"{job_id}-{index:06d}"
                )

    async def _complete(self, outcome: TaskResult) -> bool:
        job = self._jobs.get(outcome.job)
        if job is None or outcome.index in job.done:
            return False  # stale or duplicate upload: harmless
        job.done.add(outcome.index)
        job.claimed.pop(outcome.index, None)
        self.tasks_completed += 1
        for conn in self._workers.values():
            conn.claims.discard((outcome.job, outcome.index))
        try:
            await self._send(
                job.submitter,
                {"type": "result", "outcome": outcome.to_wire()},
            )
        except (ConnectionError, OSError):
            pass  # submitter gone; its cleanup drops the job
        if job.complete:
            del self._jobs[outcome.job]
            self.jobs_completed += 1
            self._log(f"serve: job {outcome.job} complete")
            self._maybe_finish()
        return True

    async def _worker_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        name: str,
    ) -> None:
        conn = _WorkerConn(name)
        self._workers[writer] = conn
        self.peak_workers = max(self.peak_workers, len(self._workers))
        self._log(f"serve: worker {name} registered")
        while True:
            message = await self._read(reader)
            if message is None:
                return
            kind = message.get("type")
            if kind == "next":
                task = self._claim_for(conn)
                if task is not None:
                    await self._send(
                        writer, {"type": "task", "task": task.to_wire()}
                    )
                elif self.draining:
                    await self._send(writer, {"type": "drain"})
                else:
                    await self._send(writer, {"type": "idle"})
            elif kind == "result":
                try:
                    outcome = TaskResult.from_wire(message.get("outcome"))
                except TaskFormatError as exc:
                    await self._send(
                        writer, {"type": "error", "error": str(exc)}
                    )
                    continue
                conn.claims.discard((outcome.job, outcome.index))
                if await self._complete(outcome):
                    conn.completed += 1
                await self._send(writer, {"type": "ack"})
            elif kind == "renew":
                # Fire-and-forget heartbeat: renew every lease this
                # connection holds (no reply, so the worker's renewal
                # thread never races its request/reply stream).  The
                # heartbeat doubles as the worker's telemetry uplink:
                # a carried self-report lands on the connection row.
                now = time.monotonic()
                for job_id, index in conn.claims:
                    job = self._jobs.get(job_id)
                    if job is not None and index in job.claimed:
                        job.claimed[index].renew(now)
                report = message.get("stats")
                if isinstance(report, dict):
                    conn.stats = report
            elif kind == "stats":
                await self._send(
                    writer, {"type": "stats", "stats": self.stats()}
                )
            elif kind == "ping":
                await self._send(writer, {"type": "pong"})
            else:
                await self._send(
                    writer,
                    {"type": "error", "error": f"unknown message {kind!r}"},
                )

    # -- status role ----------------------------------------------------
    async def _status_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Read-only admin connections: ``stats`` and ``ping`` only."""
        while True:
            message = await self._read(reader)
            if message is None:
                return
            kind = message.get("type")
            if kind == "stats":
                await self._send(
                    writer, {"type": "stats", "stats": self.stats()}
                )
            elif kind == "ping":
                await self._send(writer, {"type": "pong"})
            else:
                await self._send(
                    writer,
                    {"type": "error", "error": f"unknown message {kind!r}"},
                )

    # -- submitter role -------------------------------------------------
    def _release_submitter(self, writer: asyncio.StreamWriter) -> None:
        dead = [
            j for j, job in self._jobs.items() if job.submitter is writer
        ]
        for job_id in dead:
            del self._jobs[job_id]
            self._log(f"serve: submitter gone, dropped job {job_id}")
        if dead:
            self._maybe_finish()

    async def _submit_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        name: str,
    ) -> None:
        while True:
            message = await self._read(reader)
            if message is None:
                return
            if message.get("type") == "stats":
                await self._send(
                    writer, {"type": "stats", "stats": self.stats()}
                )
                continue
            if message.get("type") != "submit":
                await self._send(
                    writer,
                    {
                        "type": "error",
                        "error": f"unknown message {message.get('type')!r}",
                    },
                )
                continue
            if self.draining:
                await self._send(
                    writer,
                    {
                        "type": "error",
                        "error": "coordinator is draining; no new jobs",
                    },
                )
                continue
            try:
                job_id = str(message["job"])
                spec_payload = dict(message["spec"])
                paths = [str(p) for p in message["paths"]]
                if not paths:
                    raise ValueError("empty path list")
                if job_id in self._jobs:
                    raise ValueError(f"job {job_id} already submitted")
            except (KeyError, TypeError, ValueError) as exc:
                await self._send(
                    writer, {"type": "error", "error": f"bad submit: {exc}"}
                )
                continue
            tasks = {
                i: TaskMessage(job=job_id, index=i, path=p, spec=spec_payload)
                for i, p in enumerate(paths)
            }
            self._jobs[job_id] = _Job(
                job=job_id,
                tasks=tasks,
                pending=deque(range(len(paths))),
                submitter=writer,
            )
            self.jobs_submitted += 1
            self.tasks_submitted += len(paths)
            self._log(
                f"serve: job {job_id} submitted by {name} "
                f"({len(paths)} tasks)"
            )
            await self._send(
                writer,
                {"type": "submitted", "job": job_id, "tasks": len(paths)},
            )


async def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    lease_s: float = DEFAULT_LEASE_S,
    log=None,
    handle_signals: bool = True,
    ready=None,
) -> None:
    """Run a coordinator until it drains (the ``repro-ids serve`` body).

    SIGTERM/SIGINT request a graceful drain: in-flight jobs finish,
    then the server exits.  ``ready`` (optional callable) receives the
    started :class:`ScanServer` once the port is bound.
    """
    server = ScanServer(host=host, port=port, lease_s=lease_s, log=log)
    await server.start()
    if ready is not None:
        ready(server)
    if handle_signals:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.request_drain)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
    try:
        await server.wait_stopped()
        if log is not None:
            log(server.summary_line())
    finally:
        await server.close()


class ServerThread:
    """A coordinator on a background thread (tests, benchmarks).

    Context manager: entering starts the event loop thread and blocks
    until the port is bound; ``address`` is then connectable.  Exiting
    stops the server immediately (in-flight jobs dropped — this is a
    teardown path, not a drain).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        lease_s: float = DEFAULT_LEASE_S,
        log=None,
    ) -> None:
        self._host = host
        self._lease_s = lease_s
        self._log = log
        self._ready = threading.Event()
        self.server: Optional[ScanServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        if self.server is None:
            raise DetectorError("server thread not started")
        return f"{self.server.host}:{self.server.port}"

    def _main(self) -> None:
        async def body():
            self._loop = asyncio.get_running_loop()

            def ready(server: ScanServer) -> None:
                self.server = server
                self._ready.set()

            await serve(
                host=self._host,
                lease_s=self._lease_s,
                log=self._log,
                handle_signals=False,
                ready=ready,
            )

        asyncio.run(body())

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise DetectorError("scan coordinator failed to start")
        return self

    def drain(self) -> None:
        """Thread-safe graceful drain (the SIGTERM path, from outside)."""
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_drain)
            except RuntimeError:
                pass  # loop already finished: nothing left to drain

    def stop(self) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:
                pass  # loop already finished (e.g. a drain completed)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Blocking client plumbing (executor + worker side)
# ----------------------------------------------------------------------

class _Connection:
    """A blocking NDJSON client connection with timeout-safe framing.

    Partial lines survive timeouts (the buffer persists across
    :meth:`recv` calls), so a slow coordinator can never tear a
    message.  Writes are locked: the worker's heartbeat thread shares
    the socket with the claim loop.
    """

    def __init__(
        self,
        host: str,
        port: int,
        role: str,
        name: Optional[str] = None,
        connect_timeout_s: float = 10.0,
    ) -> None:
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout_s
            )
        except OSError as exc:
            raise DetectorError(
                f"cannot reach scan coordinator at {host}:{port}: {exc} "
                f"(is repro-ids serve running?)"
            ) from exc
        self._buffer = bytearray()
        self._lock = threading.Lock()
        self.send(
            {
                "version": PROTOCOL_VERSION,
                "type": "hello",
                "role": role,
                "name": name or f"{socket.gethostname()}:{os.getpid()}",
            }
        )
        welcome = self.recv(timeout=connect_timeout_s)
        if welcome is None or welcome.get("type") != "welcome":
            self.close()
            raise DetectorError(
                f"scan coordinator at {host}:{port} rejected the "
                f"handshake: {welcome!r}"
            )
        self.lease_s = float(welcome.get("lease_s", DEFAULT_LEASE_S))

    def send(self, message: dict) -> None:
        data = (json.dumps(message) + "\n").encode("ascii")
        with self._lock:
            self._sock.sendall(data)

    def recv(self, timeout: Optional[float] = None) -> Optional[dict]:
        """Next message, or None on timeout.  Raises on a closed peer."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                try:
                    message = json.loads(line)
                except ValueError:
                    continue  # torn foreign junk; keep the stream alive
                if isinstance(message, dict):
                    return message
                continue
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._sock.settimeout(remaining)
            else:
                self._sock.settimeout(None)
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                return None
            if not chunk:
                raise DetectorError(
                    "scan coordinator closed the connection"
                )
            self._buffer.extend(chunk)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class _Heartbeat:
    """Fire-and-forget lease renewal on a background thread.

    ``payload`` (optional callable) builds each renewal message, which
    lets the network worker piggyback its running stats on the beat it
    already pays for — telemetry with zero extra round trips.
    """

    def __init__(
        self, conn: _Connection, every_s: float, payload=None
    ) -> None:
        self._conn = conn
        self._every_s = max(every_s, 0.05)
        self._payload = payload or (lambda: {"type": "renew"})
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._every_s):
            try:
                self._conn.send(self._payload())
            except OSError:
                return  # connection gone; the main loop will notice

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5)


# ----------------------------------------------------------------------
# NetExecutor (coordinator side)
# ----------------------------------------------------------------------

class NetExecutor(Executor):
    """Distribute shard tasks through a running scan coordinator.

    Parameters
    ----------
    connect:
        Coordinator address, ``host:port`` (a running ``repro-ids
        serve``).
    drain:
        When True (default) the executor opens a second, worker-role
        connection and executes its own pending tasks while waiting —
        zero workers degrade to a serial scan, and a worker's error
        result is retried locally.  With False every task must be
        served by a network worker and an error result raises.
    timeout_s:
        Give up (``DetectorError``) when no result has arrived for this
        long.  ``None`` waits forever — safe with ``drain``.
    poll_s:
        How long each collection sweep waits for a pushed result before
        attempting to drain a task itself.
    """

    def __init__(
        self,
        connect: str,
        drain: bool = True,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.05,
    ) -> None:
        self.host, self.port = parse_address(connect)
        if poll_s <= 0:
            raise DetectorError("poll_s must be positive")
        self.drain = bool(drain)
        self.timeout_s = timeout_s
        self.poll_s = float(poll_s)

    def run(
        self, spec: ScanSpec, paths: Sequence[Union[str, Path]]
    ) -> List[list]:
        require_portable(spec)
        names = [str(p) for p in paths]
        if not names:
            return []
        job = new_job_id()
        collector = ResultCollector(
            spec, names, job, local_retry=self.drain
        )
        submit = _Connection(self.host, self.port, "submit")
        drain_conn: Optional[_Connection] = None
        scanners: Dict[str, object] = {}
        try:
            submit.send(
                {
                    "type": "submit",
                    "job": job,
                    "spec": spec.to_payload(),
                    "paths": [str(Path(p).resolve()) for p in names],
                }
            )
            reply = submit.recv(timeout=30.0)
            if reply is None or reply.get("type") != "submitted":
                raise DetectorError(
                    f"scan coordinator refused the job: {reply!r}"
                )
            last_progress = time.monotonic()
            while not collector.done:
                progressed = False
                message = submit.recv(timeout=self.poll_s)
                if message is not None:
                    if message.get("type") == "result":
                        try:
                            outcome = TaskResult.from_wire(
                                message.get("outcome")
                            )
                        except TaskFormatError:
                            outcome = None
                        if outcome is not None and collector.offer(outcome):
                            progressed = True
                    elif message.get("type") == "error":
                        raise DetectorError(
                            f"scan coordinator error: {message.get('error')}"
                        )
                elif self.drain:
                    if drain_conn is None:
                        drain_conn = _Connection(
                            self.host, self.port, "worker",
                            name="coordinator-drain",
                        )
                    drain_conn.send({"type": "next"})
                    reply = drain_conn.recv(timeout=30.0)
                    if reply is not None and reply.get("type") == "task":
                        task = TaskMessage.from_wire(reply["task"])
                        outcome = execute_task(task, scanners)
                        drain_conn.send(
                            {"type": "result", "outcome": outcome.to_wire()}
                        )
                        drain_conn.recv(timeout=30.0)  # ack
                        # The server also pushes this result back on the
                        # submit connection; offering directly just
                        # makes that push a harmless duplicate.
                        if collector.offer(outcome):
                            progressed = True
                if progressed:
                    last_progress = time.monotonic()
                    continue
                if (
                    self.timeout_s is not None
                    and time.monotonic() - last_progress > self.timeout_s
                ):
                    outstanding = len(names) - collector.n_collected
                    raise DetectorError(
                        f"scan coordinator {self.host}:{self.port} made no "
                        f"progress for {self.timeout_s:g}s with "
                        f"{outstanding} of {len(names)} tasks outstanding"
                    )
        finally:
            submit.close()
            if drain_conn is not None:
                drain_conn.close()
        obs.emit(
            "fabric.job", job=job, transport="net", tasks=len(names)
        )
        return collector.results()

    def describe(self) -> str:
        return f"net({self.host}:{self.port})"


def fetch_stats(connect: str, timeout_s: float = 10.0) -> dict:
    """One-shot fabric-stats poll of a running coordinator.

    The client half of the ``stats`` admin verb (``repro-ids status
    --connect``): open a read-only ``status``-role connection, ask
    once, return the :func:`~repro.runtime.protocol.fabric_stats`
    document.
    """
    host, port = parse_address(connect)
    conn = _Connection(host, port, "status", name="status")
    try:
        conn.send({"type": "stats"})
        reply = conn.recv(timeout=timeout_s)
        if reply is None or reply.get("type") != "stats":
            raise DetectorError(
                f"coordinator at {connect} did not answer stats: {reply!r}"
            )
        stats = reply.get("stats")
        if not isinstance(stats, dict):
            raise DetectorError(
                f"coordinator at {connect} sent malformed stats: {stats!r}"
            )
        return stats
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Network worker (claimant side)
# ----------------------------------------------------------------------

def run_net_worker(
    connect: str,
    poll_s: float = 0.2,
    max_idle_s: Optional[float] = None,
    max_tasks: Optional[int] = None,
    handle_signals: bool = False,
    log=None,
) -> WorkerStats:
    """Serve a scan coordinator over TCP until told to stop.

    The network twin of :func:`repro.runtime.worker.run_worker`: pull a
    task, execute it (shared per-spec engine cache), upload the result,
    repeat; sleep ``poll_s`` between polls of an idle coordinator.
    Stops on SIGTERM/SIGINT (``handle_signals``), ``max_idle_s`` of
    continuous emptiness, ``max_tasks`` executed, a draining
    coordinator, or a vanished one.  A heartbeat thread renews the
    claim lease during long scans, so a slow task is never mistaken for
    a dead worker.
    """
    host, port = parse_address(connect)
    stats = WorkerStats()
    stop_requested: List[str] = []

    def _request_stop(signum, frame):  # pragma: no cover - signal timing
        stop_requested.append(signal.Signals(signum).name)

    previous = {}
    if handle_signals:
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.signal(sig, _request_stop)

    conn = _Connection(host, port, "worker")
    heartbeat = _Heartbeat(
        conn,
        every_s=conn.lease_s / 3.0,
        payload=lambda: {"type": "renew", "stats": stats.to_wire()},
    )
    scanners: Dict[str, object] = {}
    idle_since = time.monotonic()
    try:
        while True:
            if stop_requested:
                stats.stop_reason = stop_requested[0]
                break
            try:
                conn.send({"type": "next"})
                reply = conn.recv(timeout=30.0)
            except (DetectorError, OSError):
                stats.stop_reason = "coordinator gone"
                break
            kind = None if reply is None else reply.get("type")
            if kind == "drain":
                stats.stop_reason = "coordinator drained"
                break
            if kind != "task":
                # idle (or a slow coordinator): wait and re-poll.
                if (
                    max_idle_s is not None
                    and time.monotonic() - idle_since >= max_idle_s
                ):
                    stats.stop_reason = f"idle {max_idle_s:g}s"
                    break
                time.sleep(poll_s)
                continue
            try:
                task = TaskMessage.from_wire(reply.get("task"))
            except TaskFormatError as exc:
                # Version skew or a torn relay: publish the rejection
                # as an error result (when addressable) so the
                # coordinator's poison rule surfaces it, and move on.
                stats.quarantined += 1
                raw = reply.get("task")
                if isinstance(raw, dict) and "job" in raw and "index" in raw:
                    try:
                        conn.send(
                            {
                                "type": "result",
                                "outcome": TaskResult(
                                    str(raw["job"]),
                                    int(raw["index"]),
                                    error=f"TaskFormatError: {exc}",
                                ).to_wire(),
                            }
                        )
                        conn.recv(timeout=30.0)  # ack
                    except (DetectorError, OSError, TypeError, ValueError):
                        pass
                if log is not None:
                    log(f"worker: rejected malformed task ({exc})")
                idle_since = time.monotonic()
                continue
            outcome = execute_task(task, scanners, stats=stats)
            try:
                conn.send({"type": "result", "outcome": outcome.to_wire()})
                conn.recv(timeout=30.0)  # ack
            except (DetectorError, OSError):
                stats.stop_reason = "coordinator gone"
                break
            stats.executed += 1
            if log is not None:
                log(f"worker: executed {task.name}")
            idle_since = time.monotonic()
            if max_tasks is not None and stats.executed >= max_tasks:
                stats.stop_reason = f"max tasks {max_tasks}"
                break
    finally:
        heartbeat.stop()
        conn.close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return stats

"""Chunk-boundary parity: the streamed scan must be bit-identical.

``BatchEntropyEngine.scan_stream`` drives the same kernel chunk by
chunk over window-aligned slices; no chunk size, silent gap, trailing
partial window or attack placement may change a single bit of the
report relative to the one-shot ``scan``.  The sweep here is the
acceptance gate for the out-of-core path — everything else (mmap,
RLIMIT ceilings) reduces to it.
"""

import numpy as np
import pytest

from repro.core import BatchEntropyEngine, BitCounter, IDSConfig, TemplateBuilder
from repro.core.engine import DEFAULT_CHUNK_WINDOWS
from repro.io import ColumnTrace

CONFIG = IDSConfig(window_us=1_000, min_window_messages=4)

CHUNK_SWEEP = (1, 7, 64, 10**9)  # 10**9 windows ~= "the whole trace"


def tiny_template(config=CONFIG):
    builder = TemplateBuilder(config)
    builder.add_counter(BitCounter.from_ids([0x100, 0x2A5, 0x0F3, 0x555]))
    builder.add_counter(BitCounter.from_ids([0x101, 0x2A5, 0x100, 0x7FF]))
    builder.add_counter(BitCounter.from_ids([0x100, 0x1A5, 0x0F3, 0x3F0]))
    return builder.build()


TEMPLATE = tiny_template()


def build_trace(
    n=4_000, seed=0, gap_windows=(), attack_stride=17, trailing_partial=True
):
    """A trace with controlled silent gaps and sprinkled attack frames."""
    rng = np.random.default_rng(seed)
    gaps = rng.integers(10, 400, size=n).astype(np.int64)
    for where, span_windows in gap_windows:
        gaps[int(n * where)] += span_windows * CONFIG.window_us
    ts = np.cumsum(gaps)
    if trailing_partial:
        # Ensure the capture does not end on a window boundary.
        if (int(ts[-1]) - int(ts[0])) % CONFIG.window_us == 0:
            ts[-1] += 1
    ids = rng.integers(0, 2048, size=n, dtype=np.int64)
    attacks = np.zeros(n, dtype=bool)
    attacks[::attack_stride] = True
    return ColumnTrace(ts, ids, is_attack=attacks, validate=False)


TRACES = {
    "dense": build_trace(seed=1),
    "gappy": build_trace(seed=2, gap_windows=((0.2, 3), (0.5, 40), (0.8, 1))),
    "sparse": build_trace(n=120, seed=3, gap_windows=((0.4, 500),)),
    "single-window": build_trace(n=30, seed=4, trailing_partial=False),
}


class TestIterWindowChunks:
    @pytest.mark.parametrize("name", sorted(TRACES))
    @pytest.mark.parametrize("chunk_windows", CHUNK_SWEEP)
    def test_chunks_are_window_aligned_and_cover_the_trace(
        self, name, chunk_windows
    ):
        trace = TRACES[name]
        t0 = int(trace.timestamp_us[0])
        span = CONFIG.window_us * chunk_windows
        total = 0
        for chunk in trace.iter_window_chunks(CONFIG.window_us, chunk_windows):
            assert len(chunk) > 0  # silent spans are skipped, not yielded
            first, last = int(chunk.timestamp_us[0]), int(chunk.timestamp_us[-1])
            # All records of a chunk fall inside one chunk-grid cell, so
            # no detection window is ever split across chunks.
            assert (first - t0) // span == (last - t0) // span
            total += len(chunk)
        assert total == len(trace)

    def test_zero_copy_slices(self):
        trace = TRACES["dense"]
        chunk = next(trace.iter_window_chunks(CONFIG.window_us, 8))
        assert chunk.timestamp_us.base is not None

    def test_invalid_arguments_rejected(self):
        trace = TRACES["dense"]
        with pytest.raises(ValueError):
            next(trace.iter_window_chunks(CONFIG.window_us, 0))
        with pytest.raises(ValueError):
            next(trace.iter_window_chunks(0, 4))


class TestStreamParity:
    @pytest.mark.parametrize("name", sorted(TRACES))
    @pytest.mark.parametrize("chunk_windows", CHUNK_SWEEP)
    def test_scan_stream_bit_equal_to_scan(self, name, chunk_windows):
        trace = TRACES[name]
        engine = BatchEntropyEngine(TEMPLATE, CONFIG)
        reference = engine.scan(trace)
        streamed = engine.scan_stream(trace, chunk_windows=chunk_windows)
        assert [w.to_dict() for w in streamed] == [
            w.to_dict() for w in reference
        ]

    @pytest.mark.parametrize("chunk_windows", CHUNK_SWEEP)
    def test_scan_stream_block_bit_equal_to_scan_block(self, chunk_windows):
        trace = TRACES["gappy"]
        engine = BatchEntropyEngine(TEMPLATE, CONFIG)
        whole = engine.scan_block(trace)
        chunked = engine.scan_stream_block(trace, chunk_windows=chunk_windows)
        for field in (
            "index", "t_start_us", "n_messages", "n_attack_messages",
            "probabilities", "entropy", "deviations", "violated", "judged",
        ):
            assert np.array_equal(getattr(chunked, field), getattr(whole, field))

    def test_stream_emits_the_same_alerts(self):
        trace = TRACES["dense"]
        scan_engine = BatchEntropyEngine(TEMPLATE, CONFIG)
        stream_engine = BatchEntropyEngine(TEMPLATE, CONFIG)
        scan_engine.scan(trace)
        stream_engine.scan_stream(trace, chunk_windows=3)
        reference = [a.to_dict() for a in scan_engine.sink.alerts]
        assert [a.to_dict() for a in stream_engine.sink.alerts] == reference
        assert reference  # the sweep must actually exercise alert parity

    def test_empty_trace(self):
        engine = BatchEntropyEngine(TEMPLATE, CONFIG)
        empty = ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
        assert engine.scan_stream(empty) == []
        assert len(engine.scan_stream_block(empty)) == 0

    def test_default_chunk_windows_sane(self):
        assert DEFAULT_CHUNK_WINDOWS >= 1

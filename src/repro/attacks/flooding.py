"""Scenario 1 — strong model, flooding message injection.

The attacker floods the bus with high-priority frames.  Flooding the
fully-dominant identifier 0x000 is shut down by the CAN transceiver's
zero-overload detection (see :mod:`repro.can.transceiver`), so the
efficient strategy from the paper is *changeable* identifiers of high
priority: every attempt draws a fresh identifier below ``ceiling``.

The entropy IDS detects the resulting bit-level skew immediately, but —
as the paper notes — the near-random identifier churn makes inferring
"the" malicious identifier meaningless (Table I reports ``--``).
"""

from __future__ import annotations

from repro.attacks.base import AttackerNode
from repro.exceptions import BusConfigError


class FloodingAttacker(AttackerNode):
    """Flooding with changeable high-priority identifiers.

    Parameters
    ----------
    ceiling:
        Exclusive upper bound of the identifier range used; the default
        0x080 keeps every injected frame above (almost) all legitimate
        traffic in priority.
    fixed_zero:
        Use identifier 0x000 for every frame instead — the naive
        flooding variant that the transceiver guard shuts down.  Kept to
        reproduce the paper's argument for why attackers must rotate IDs.
    """

    def __init__(
        self,
        name: str = "mallory_flood",
        frequency_hz: float = 100.0,
        ceiling: int = 0x080,
        fixed_zero: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(name, frequency_hz, **kwargs)
        if not 0 < ceiling <= 0x800:
            raise BusConfigError(f"flood ceiling must be in (0, 0x800], got {ceiling:#x}")
        self.ceiling = ceiling
        self.fixed_zero = fixed_zero

    def select_id(self) -> int:
        if self.fixed_zero:
            return 0x000
        return int(self.rng.integers(0, self.ceiling))

"""Transparent gzip handling shared by the log readers/writers.

Fleet archives keep months of captures; candump logs compress ~10x, so
the IO layer reads and writes ``*.gz`` twins of both text formats
transparently (ROADMAP "richer archive formats").  Compression is a
property of the *file name* — ``drive.log.gz`` is a gzipped candump
log, ``drive.csv.gz`` a gzipped CSV trace — and every reader produces
results identical to reading the uncompressed file.

Besides whole-file text/byte access this module provides the block
layer the streaming vectorised readers are built on:
:func:`iter_line_blocks` yields fixed-size byte blocks of *whole*
lines (a partial tail line is carried across block edges), so a
larger-than-RAM log — plain or gzipped — parses in O(block) memory.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator, Tuple, Union

from repro.exceptions import TraceFormatError

#: Byte-block size for the streaming readers: large enough to amortise
#: the vectorised parser's per-call numpy overhead, small enough that a
#: block's parse temporaries stay a rounding error next to the chunk
#: arrays the caller accumulates.  Tests shrink it to force block edges
#: into interesting places (mid-line, mid-CRLF, inside comments).
DEFAULT_BLOCK_BYTES = 8 * 1024 * 1024

#: Compression level for ``.gz`` writers.  Level 6 is zlib's default
#: trade-off; the previous implicit level 9 costs ~2x the CPU for a few
#: percent of size, which matters when the fleet layer writes
#: multi-hundred-MB captures.
GZIP_WRITE_LEVEL = 6


def is_gzip_path(path: Union[str, Path]) -> bool:
    """True when the file name marks gzip compression (``.gz``)."""
    return Path(path).suffix.lower() == ".gz"


def open_text(path: Union[str, Path], mode: str):
    """Open a log file for text IO, decompressing/compressing ``.gz``.

    ``mode`` is ``"r"`` or ``"w"``; encoding is always ASCII (both log
    formats are) and newline handling matches the plain ``open`` call
    the CSV writer needs (``newline=""``).
    """
    if is_gzip_path(path):
        if "w" in mode:
            return gzip.open(
                path,
                mode + "t",
                compresslevel=GZIP_WRITE_LEVEL,
                encoding="ascii",
                newline="",
            )
        return gzip.open(path, mode + "t", encoding="ascii", newline="")
    return open(path, mode, encoding="ascii", newline="")


def open_binary(path: Union[str, Path]):
    """Open a log file for binary reading, decompressing ``.gz``.

    Unlike :func:`read_bytes` this never materialises the file: the
    returned handle decompresses on demand, so callers reading
    ``block_bytes`` at a time hold O(block) memory no matter how large
    the decompressed capture is.
    """
    if is_gzip_path(path):
        return gzip.open(path, "rb")
    return open(path, "rb")


def iter_line_blocks(
    path: Union[str, Path], block_bytes: int = DEFAULT_BLOCK_BYTES
) -> Iterator[Tuple[bytes, int]]:
    """Stream a text log as byte blocks of whole lines.

    Yields ``(data, lineno_base)`` pairs where ``data`` contains only
    complete ``b"\\n"``-terminated lines (plus, at EOF, an unterminated
    final line) and ``lineno_base`` is the number of lines already
    yielded — per-line fallbacks add it to their in-block position to
    report exact file line numbers.  The partial line at each block
    edge is carried into the next block, so edges may land anywhere —
    mid-line, mid-CRLF, inside a comment — without changing what the
    parsers see.  ``.gz`` inputs decompress one block at a time.
    """
    if block_bytes <= 0:
        raise TraceFormatError(
            f"block_bytes must be positive, got {block_bytes}"
        )
    tail = b""
    lineno_base = 0
    with open_binary(path) as handle:
        while True:
            block = handle.read(block_bytes)
            if not block:
                break
            data = tail + block
            cut = data.rfind(b"\n") + 1
            if not cut:
                tail = data
                continue
            tail = data[cut:]
            data = data[:cut]
            yield data, lineno_base
            lineno_base += data.count(b"\n")
    if tail:
        yield tail, lineno_base


def read_bytes(path: Union[str, Path]) -> bytes:
    """Read a whole log file as bytes, decompressing ``.gz``.

    The vectorised parsers consume one flat byte buffer; gzipped
    captures simply decompress into that buffer first.
    """
    if is_gzip_path(path):
        with gzip.open(path, "rb") as handle:
            return handle.read()
    with open(path, "rb") as handle:
        return handle.read()

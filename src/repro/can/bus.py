"""The event-driven CAN bus.

The bus advances from one bus-idle point to the next.  At each idle point
every enabled node with a pending frame contends; bitwise dominant-0
arbitration (:mod:`repro.can.arbitration`) picks the winner; the frame
occupies the bus for its exact wire length (actual stuff bits included)
plus the interframe space; losers are notified and — if they are
legitimate controllers — stay pending for the next round.

The model captures the properties the paper's evaluation depends on:

* **injection rate shape** (Fig. 3): a high-priority identifier wins
  essentially every contended round, a low-priority one loses whenever
  legitimate traffic queued up during the previous transmission;
* **frequency matters** (Table I): bus time is conserved, so injected
  frames displace or delay legitimate ones;
* **transceiver guard**: naive 0x000 flooding is shut down at the
  transceiver (:mod:`repro.can.transceiver`);
* **fault confinement**: injected transmission errors drive TEC toward
  bus-off (:mod:`repro.can.errors`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.can.arbitration import resolve_arbitration
from repro.can.constants import (
    BAUD_MS_CAN,
    ERROR_FRAME_BITS,
    IFS_BITS,
    bit_time_us,
)
from repro.can.frame import CANFrame
from repro.can.node import Node
from repro.can.transceiver import TransceiverEvent, TransceiverGuard
from repro.exceptions import BusConfigError, NodeStateError
from repro.io.trace import Trace, TraceRecord

Listener = Callable[[TraceRecord], None]


@dataclass
class BusConfig:
    """Static configuration of a bus instance.

    Parameters
    ----------
    baud_rate:
        Line rate in bit/s; defaults to the paper's middle-speed 125 kbit/s.
    allow_arbitration_ties:
        Resolve two nodes sending an identical arbitration field by node
        attach order instead of raising.  Real buses produce bit errors in
        this situation; simulations of benign traffic keep it enabled
        because randomized schedules can collide on the same microsecond.
    error_rate:
        Per-frame probability of an injected transmission error (failure
        injection for robustness experiments).
    error_seed:
        Seed of the RNG that draws transmission errors.
    guard_limit:
        Consecutive all-dominant frames tolerated before the transceiver
        guard shuts the sender down; ``None`` disables the guard.
    """

    baud_rate: int = BAUD_MS_CAN
    allow_arbitration_ties: bool = True
    error_rate: float = 0.0
    error_seed: int = 0
    guard_limit: Optional[int] = 5

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise BusConfigError(f"error_rate must be in [0, 1), got {self.error_rate}")
        # Validates divisibility as a side effect.
        bit_time_us(self.baud_rate)


@dataclass
class BusStats:
    """Aggregate counters maintained by the bus while it runs."""

    frames_ok: int = 0
    frames_error: int = 0
    arbitration_rounds: int = 0
    contended_rounds: int = 0
    busy_us: int = 0
    filtered_frames: int = 0
    wins_by_node: Dict[str, int] = field(default_factory=dict)
    losses_by_node: Dict[str, int] = field(default_factory=dict)

    def busload(self, elapsed_us: int) -> float:
        """Fraction of wall time the bus carried bits."""
        return self.busy_us / elapsed_us if elapsed_us > 0 else 0.0


class BusMonitor:
    """A passive listener that collects every successful frame."""

    def __init__(self) -> None:
        self.trace = Trace()

    def __call__(self, record: TraceRecord) -> None:
        self.trace.append(record)


class Bus:
    """An event-driven CAN bus segment."""

    def __init__(self, config: Optional[BusConfig] = None) -> None:
        self.config = config or BusConfig()
        self.bit_us = bit_time_us(self.config.baud_rate)
        self._nodes: Dict[str, Node] = {}
        self._tx_filters: Dict[str, FrozenSet[int]] = {}
        self._listeners: List[Listener] = []
        self._rng = np.random.default_rng(self.config.error_seed)
        self._guard = (
            TransceiverGuard(self.config.guard_limit)
            if self.config.guard_limit is not None
            else None
        )
        self.stats = BusStats()
        self.trace = Trace()
        self.guard_events: List[TransceiverEvent] = []
        self._t_idle = 0  # next time the bus is free for arbitration

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(
        self, node: Node, tx_filter: Optional[Iterable[int]] = None
    ) -> Node:
        """Attach a node; optionally restrict its transmittable IDs.

        ``tx_filter`` models the paper's weak-adversary "transmitter
        filter installed outside of the ECU": frames whose identifier is
        not in the set never reach the bus.
        """
        if node.name in self._nodes:
            raise BusConfigError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        if tx_filter is not None:
            self._tx_filters[node.name] = frozenset(tx_filter)
        return node

    def attach_listener(self, listener: Listener) -> Listener:
        """Register a callable invoked with every successful TraceRecord."""
        self._listeners.append(listener)
        return listener

    def node(self, name: str) -> Node:
        """Look up an attached node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise BusConfigError(f"no node named {name!r} on this bus") from None

    @property
    def nodes(self) -> Sequence[Node]:
        """All attached nodes in attach order."""
        return list(self._nodes.values())

    @property
    def now_us(self) -> int:
        """The next bus-idle time (the simulator clock)."""
        return self._t_idle

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(self, duration_us: int) -> Trace:
        """Run until the clock passes ``duration_us``; return the trace.

        May be called repeatedly; each call continues from the current
        clock, so ``run(a); run(b)`` equals ``run(a + b)``.
        """
        if duration_us <= 0:
            raise BusConfigError(f"duration must be positive, got {duration_us}")
        t_end = self._t_idle + duration_us
        while True:
            progressed = self._step(t_end)
            if not progressed:
                break
        self._t_idle = max(self._t_idle, t_end)
        return self.trace

    def _enabled_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.enabled]

    def _step(self, t_end: int) -> bool:
        """Transmit one frame (or inject one error); False when done."""
        while True:
            candidates = []
            for node in self._enabled_nodes():
                release = node.next_release()
                if release is not None:
                    candidates.append((release, node))
            if not candidates:
                return False
            earliest = min(release for release, _node in candidates)
            t_start = max(self._t_idle, earliest)
            if t_start >= t_end:
                return False
            ready = [node for release, node in candidates if release <= t_start]
            # Transmitter filters act before the frame reaches the wire.
            filtered = [
                node
                for node in ready
                if node.name in self._tx_filters
                and node.peek().can_id not in self._tx_filters[node.name]
            ]
            if filtered:
                for node in filtered:
                    node.on_filtered(t_start)
                    self.stats.filtered_frames += 1
                continue  # re-collect: schedules advanced
            break

        frames = [node.peek() for node in ready]
        result = resolve_arbitration(
            frames, allow_ties=self.config.allow_arbitration_ties
        )
        winner = ready[result.winner_index]
        frame = frames[result.winner_index]

        self.stats.arbitration_rounds += 1
        if len(ready) > 1:
            self.stats.contended_rounds += 1
        for index, node in enumerate(ready):
            if index == result.winner_index:
                continue
            node.on_loss(t_start)
            self.stats.losses_by_node[node.name] = (
                self.stats.losses_by_node.get(node.name, 0) + 1
            )

        if self.config.error_rate and self._rng.random() < self.config.error_rate:
            self._transmit_error(winner, frame, t_start)
        else:
            self._transmit_ok(winner, frame, t_start)
        return True

    def _transmit_ok(self, winner: Node, frame: CANFrame, t_start: int) -> None:
        wire_bits = frame.wire_bits()
        t_done = t_start + wire_bits * self.bit_us
        winner.on_win(t_start)
        self.stats.frames_ok += 1
        self.stats.busy_us += wire_bits * self.bit_us
        self.stats.wins_by_node[winner.name] = (
            self.stats.wins_by_node.get(winner.name, 0) + 1
        )
        record = TraceRecord(
            timestamp_us=t_done,
            can_id=frame.can_id,
            data=frame.data,
            extended=frame.extended,
            source=winner.name,
            is_attack=winner.is_attacker,
        )
        self.trace.append(record)
        for listener in self._listeners:
            listener(record)
        if self._guard is not None:
            event = self._guard.observe(winner.name, frame, t_done)
            if event is not None:
                self.guard_events.append(event)
                winner.disable("transceiver zero-overload guard")
        self._t_idle = t_done + IFS_BITS * self.bit_us

    def _transmit_error(self, winner: Node, frame: CANFrame, t_start: int) -> None:
        # The error hits mid-frame; the bus carries roughly half the frame
        # plus the error frame, then the transmitter retries automatically.
        half_bits = max(1, frame.wire_bits() // 2)
        busy_bits = half_bits + ERROR_FRAME_BITS
        winner.on_error(t_start)
        self.stats.frames_error += 1
        self.stats.busy_us += busy_bits * self.bit_us
        if winner.error_counters.bus_off:
            winner.disable("bus-off (TEC exceeded 255)")
        self._t_idle = t_start + busy_bits * self.bit_us + IFS_BITS * self.bit_us

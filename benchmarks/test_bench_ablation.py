"""Ablation benchmarks for the design decisions called out in DESIGN.md.

1. **alpha sweep** — the paper picks alpha = 5 from [3, 10]; the sweep
   shows the detection/false-positive trade-off and why the calibrated
   default here is 3.
2. **window sweep** — reaction time vs. sensitivity.
3. **rank sweep** — inference hit rate vs. candidate-set size.
4. **attacker policy** — drop-on-loss (the paper's injection-rate
   semantics) vs. a queueing attacker that never drops.
"""

import numpy as np
import pytest

from repro.attacks import SingleIDAttacker
from repro.core import IDSConfig, IDSPipeline, build_template
from repro.experiments.report import render_table
from repro.experiments.runner import build_setup, run_attack
from repro.vehicle import VehicleSimulation
from repro.vehicle.traffic import record_template_windows, simulate_drive


def _attack_trace(setup, frequency_hz, seed=3, can_index=70):
    sim = VehicleSimulation(catalog=setup.catalog, scenario="city", seed=seed)
    sim.add_node(
        SingleIDAttacker(
            can_id=setup.catalog.ids[can_index], frequency_hz=frequency_hz,
            start_s=2.0, duration_s=8.0, seed=seed,
        )
    )
    return sim.run(12.0)


class TestAlphaSweep:
    @pytest.fixture(scope="class")
    def sweep(self, setup):
        windows = record_template_windows(
            setup.config.template_windows,
            setup.config.window_us / 1e6,
            seed=7,
            catalog=setup.catalog,
        )
        low_freq = _attack_trace(setup, 20.0)
        clean = simulate_drive(16.0, scenario="rain", seed=19, catalog=setup.catalog)
        rows = {}
        for alpha in (3.0, 5.0, 7.0, 10.0):
            config = setup.config.with_(alpha=alpha)
            template = build_template(windows, config)
            pipeline = IDSPipeline(template, config)
            rows[alpha] = (
                pipeline.analyze(low_freq).detection_rate,
                pipeline.analyze(clean).false_positive_rate,
            )
        return rows

    def test_bench_alpha_sweep(self, benchmark, sweep):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        table = render_table(
            ["alpha", "Dr @ 20 Hz", "clean FPR"],
            [[a, f"{d:.2f}", f"{f:.2f}"] for a, (d, f) in sorted(sweep.items())],
            title="Ablation: threshold coefficient alpha",
        )
        print("\n" + table)

    def test_detection_monotone_in_alpha(self, sweep):
        """Raising alpha can only lose low-frequency detections."""
        rates = [sweep[a][0] for a in sorted(sweep)]
        assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:]))

    def test_all_alphas_clean_on_normal_traffic(self, sweep):
        assert all(fpr <= 0.10 for _d, fpr in sweep.values())

    def test_calibrated_alpha_detects_low_frequency(self, sweep):
        assert sweep[3.0][0] > sweep[10.0][0] or sweep[3.0][0] >= 0.99


class TestWindowSweep:
    @pytest.fixture(scope="class")
    def sweep(self, setup):
        rows = {}
        for window_s in (1.0, 2.0, 4.0):
            config = setup.config.with_(window_us=int(window_s * 1e6))
            windows = record_template_windows(
                config.template_windows, window_s, seed=7, catalog=setup.catalog
            )
            template = build_template(windows, config)
            pipeline = IDSPipeline(template, config)
            report = pipeline.analyze(_attack_trace(setup, 20.0))
            latency = report.detection_latency_us
            rows[window_s] = (report.detection_rate, latency)
        return rows

    def test_bench_window_sweep(self, benchmark, sweep):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        table = render_table(
            ["window", "Dr @ 20 Hz", "latency"],
            [
                [f"{w:g}s", f"{d:.2f}", f"{(l or 0) / 1e6:.1f}s"]
                for w, (d, l) in sorted(sweep.items())
            ],
            title="Ablation: detection window length",
        )
        print("\n" + table)

    def test_longer_windows_detect_low_frequency_better(self, sweep):
        assert sweep[4.0][0] >= sweep[1.0][0]

    def test_latency_bounded_by_two_windows(self, sweep):
        for window_s, (_dr, latency) in sweep.items():
            if latency is not None:
                assert latency <= 2 * window_s * 1e6


class TestRankSweep:
    @pytest.fixture(scope="class")
    def sweep(self, setup):
        trace = _attack_trace(setup, 50.0, seed=5, can_index=150)
        true_id = setup.catalog.ids[150]
        rows = {}
        for rank in (1, 5, 10, 20):
            config = setup.config.with_(rank=rank)
            pipeline = IDSPipeline(
                setup.template, config, id_pool=setup.catalog.ids
            )
            report = pipeline.analyze(trace, infer_k=1)
            rows[rank] = report.inference_hit_rate([true_id])
        return rows

    def test_bench_rank_sweep(self, benchmark, sweep):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        table = render_table(
            ["rank", "hit rate"],
            [[r, f"{h:.2f}"] for r, h in sorted(sweep.items())],
            title="Ablation: rank-selection candidate count (paper: 10)",
        )
        print("\n" + table)

    def test_hit_rate_monotone_in_rank(self, sweep):
        hits = [sweep[r] for r in sorted(sweep)]
        assert all(a <= b + 1e-9 for a, b in zip(hits, hits[1:]))

    def test_paper_rank_recovers_id(self, sweep):
        assert sweep[10] == 1.0


class TestAttackerPolicy:
    @pytest.fixture(scope="class")
    def outcomes(self, setup):
        results = {}
        for drop in (True, False):
            attacker = SingleIDAttacker(
                can_id=setup.catalog.ids[200], frequency_hz=50.0,
                start_s=2.0, duration_s=8.0, seed=9, drop_on_loss=drop,
            )
            results[drop] = run_attack(
                setup, attacker, k=1, scenario_name="policy",
                frequency_hz=50.0, seed=9, evaluate_inference=False,
            )
        return results

    def test_bench_attacker_policy(self, benchmark, outcomes):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        table = render_table(
            ["policy", "Ir", "injected msgs"],
            [
                ["drop-on-loss (paper)", f"{outcomes[True].injection_rate:.3f}",
                 outcomes[True].n_injected],
                ["queueing", f"{outcomes[False].injection_rate:.3f}",
                 outcomes[False].n_injected],
            ],
            title="Ablation: attacker arbitration-loss policy",
        )
        print("\n" + table)

    def test_queueing_attacker_has_unit_injection_rate(self, outcomes):
        """A queueing attacker eventually wins every attempt — which is
        why the paper's Ir is only meaningful under drop-on-loss."""
        assert outcomes[False].injection_rate == pytest.approx(1.0)
        assert outcomes[True].injection_rate < 1.0

    def test_queueing_attacker_injects_no_fewer_messages(self, outcomes):
        assert outcomes[False].n_injected >= outcomes[True].n_injected

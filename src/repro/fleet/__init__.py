"""Fleet layer: persistent, incremental, multi-vehicle monitoring.

The paper's IDS judges one capture against one golden template.  Its
intended deployment is a *fleet*: per-vehicle templates trained once,
then months of captures per vehicle monitored on a schedule.  This
package turns the one-shot archive scanner into that system:

* :mod:`repro.fleet.ledger` — :class:`ScanLedger`, a crash-safe
  JSON-on-disk cache mapping capture fingerprints to serialized scan
  reports (plus :meth:`ScanLedger.compact` maintenance);
* :mod:`repro.fleet.watch` — :func:`watch_scan`, incremental re-scans
  that only pay for new/changed captures yet produce
  :class:`~repro.core.pipeline.ArchiveReport`\\ s bit-identical to a
  cold full scan, over any :mod:`repro.runtime` executor backend;
* :mod:`repro.fleet.store` — :class:`FleetStore`, the on-disk layout of
  per-vehicle capture archives, golden templates (per vehicle and per
  bus), ledgers and retrain event logs;
* :mod:`repro.fleet.drift` — cross-capture analytics:
  :func:`aggregate_vehicle` / :class:`FleetReport` with pooled
  detection/FPR and CUSUM entropy-drift alarms per vehicle;
* :mod:`repro.fleet.retrain` — drift-triggered re-baselining:
  :func:`retrain_vehicle` rebuilds a vehicle's template from its recent
  clean captures and logs the event;
* :mod:`repro.fleet.daemon` — :class:`WatchDaemon`, the long-running
  monitoring loop (polling with backoff, graceful shutdown, automatic
  retraining) behind ``repro-ids fleet watch``.

Entry points: :meth:`repro.core.pipeline.IDSPipeline.analyze_fleet` and
the ``repro-ids fleet`` CLI family.
"""

from repro.fleet.daemon import CycleResult, WatchDaemon
from repro.fleet.drift import (
    FleetReport,
    VehicleDrift,
    aggregate_vehicle,
    analyze_fleet,
)
from repro.fleet.ledger import ScanLedger, atomic_write_text
from repro.fleet.retrain import retrain_vehicle, should_retrain, template_digest
from repro.fleet.store import FleetStore
from repro.fleet.watch import WatchResult, detection_context, watch_scan

__all__ = [
    "CycleResult",
    "FleetReport",
    "FleetStore",
    "ScanLedger",
    "VehicleDrift",
    "WatchDaemon",
    "WatchResult",
    "aggregate_vehicle",
    "analyze_fleet",
    "atomic_write_text",
    "detection_context",
    "retrain_vehicle",
    "should_retrain",
    "template_digest",
    "watch_scan",
]

"""Cross-capture fleet analytics: per-vehicle baselines and drift.

A per-capture :class:`~repro.core.pipeline.DetectionReport` answers "was
this drive attacked?".  A fleet operator asks a second question the
paper's single-capture evaluation cannot: *is this vehicle's clean
traffic still the traffic its golden template was trained on?*  ECU
reflashes, new accessories, seasonal usage and sensor aging all move
per-bit identifier entropy slowly — each drive still passes the
window-level threshold test, but the template is quietly going stale
(rising false-negative risk) or the vehicle is quietly changing (rising
false-positive risk).

:func:`aggregate_vehicle` turns a vehicle's time-ordered per-capture
reports into exactly that signal:

* **pooled metrics** — the paper's Dr/FPR with windows pooled across
  the vehicle's captures (and across the fleet in
  :class:`FleetReport`), matching the per-capture reports exactly;
* **drift series** — per capture, the mean *clean-window* per-bit
  entropy deviation from the template (attack windows are excluded so
  detections do not masquerade as drift);
* **CUSUM drift alarm** — a two-sided cumulative-sum test per bit on
  the threshold-normalised deviations: ``s+ = max(0, s+ + z - k)`` /
  ``s- = max(0, s- - z - k)`` with slack ``k`` (``drift_slack``); the
  vehicle is flagged when any bit's statistic exceeds ``drift_limit``.
  Small persistent shifts accumulate across captures long before any
  single window violates its alpha-scaled threshold — the classic
  CUSUM property, here applied across drives instead of within one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.pipeline import (
    DetectionReport,
    IDSPipeline,
    _pooled_detection_rate,
    _pooled_false_positive_rate,
)
from repro.core.template import GoldenTemplate
from repro.exceptions import DetectorError
from repro.fleet.store import FleetStore
from repro.fleet.watch import WatchResult, watch_scan

__all__ = ["FleetReport", "VehicleDrift", "aggregate_vehicle", "analyze_fleet"]

#: CUSUM slack (reference value) in per-bit threshold units: deviations
#: below half a detection threshold per capture do not accumulate.
DEFAULT_DRIFT_SLACK = 0.5

#: CUSUM decision limit in per-bit threshold units.
DEFAULT_DRIFT_LIMIT = 4.0


@dataclass
class VehicleDrift:
    """One vehicle's time-ordered aggregation against its template."""

    vehicle_id: str
    #: Capture names in time order (the aggregation order).
    capture_names: List[str]
    #: The per-capture reports, aligned with ``capture_names``.
    reports: List[DetectionReport]
    #: Names of captures that raised at least one alarm.
    alarmed_captures: List[str]
    #: Captures contributing drift points (>= 1 clean judged window).
    drift_names: List[str]
    #: Per-point per-bit mean clean-window entropy deviation from the
    #: template (``(n_points, n_bits)``; empty when no clean windows).
    deviations: np.ndarray
    #: Two-sided CUSUM statistics after each point (same shape).
    cusum_pos: np.ndarray
    cusum_neg: np.ndarray
    drift_slack: float
    drift_limit: float

    # ------------------------------------------------------------------
    @property
    def detection_rate(self) -> float:
        """The paper's Dr pooled over the vehicle's judged windows."""
        return _pooled_detection_rate(self.reports)

    @property
    def false_positive_rate(self) -> float:
        """Pooled FPR over the vehicle's clean windows."""
        return _pooled_false_positive_rate(self.reports)

    @property
    def drift_score(self) -> float:
        """Peak CUSUM statistic over all bits and captures."""
        if self.deviations.size == 0:
            return 0.0
        return float(np.maximum(self.cusum_pos, self.cusum_neg).max())

    @property
    def drift_alarm(self) -> bool:
        """True when any bit's CUSUM crossed ``drift_limit``."""
        return self.drift_score > self.drift_limit

    @property
    def drift_bits(self) -> Tuple[int, ...]:
        """Drifting bits, paper 1-based numbering (empty without alarm)."""
        if self.deviations.size == 0:
            return ()
        peak = np.maximum(self.cusum_pos, self.cusum_neg).max(axis=0)
        return tuple(int(b) + 1 for b in np.flatnonzero(peak > self.drift_limit))

    @property
    def first_drift_capture(self) -> Optional[str]:
        """Name of the first capture at which the CUSUM crossed."""
        if self.deviations.size == 0:
            return None
        per_point = np.maximum(self.cusum_pos, self.cusum_neg).max(axis=1)
        crossed = np.flatnonzero(per_point > self.drift_limit)
        return self.drift_names[int(crossed[0])] if crossed.size else None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible digest (drift series included)."""
        return {
            "vehicle_id": self.vehicle_id,
            "captures": list(self.capture_names),
            "alarmed_captures": list(self.alarmed_captures),
            "detection_rate": self.detection_rate,
            "false_positive_rate": self.false_positive_rate,
            "drift": {
                "captures": list(self.drift_names),
                "deviations": [[float(v) for v in row] for row in self.deviations],
                "score": self.drift_score,
                "limit": self.drift_limit,
                "slack": self.drift_slack,
                "alarm": self.drift_alarm,
                "bits": list(self.drift_bits),
                "first_capture": self.first_drift_capture,
            },
        }

    def summary(self) -> str:
        """One line per vehicle for the fleet digest."""
        drift = (
            f"DRIFT bits {','.join(map(str, self.drift_bits))} "
            f"from {self.first_drift_capture}"
            if self.drift_alarm
            else "drift ok"
        )
        return (
            f"{self.vehicle_id}: {len(self.capture_names)} captures, "
            f"{len(self.alarmed_captures)} alarmed, "
            f"Dr={self.detection_rate:.1%}, "
            f"FPR={self.false_positive_rate:.1%}, "
            f"{drift} (score {self.drift_score:.2f}/{self.drift_limit:g})"
        )


_NATURAL_CHUNK = re.compile(r"(\d+)")


def _natural_name_key(name: str):
    """Numeric-aware name ordering: ``drive9`` before ``drive10``."""
    return tuple(
        int(chunk) if chunk.isdigit() else chunk
        for chunk in _NATURAL_CHUNK.split(name)
    )


def _capture_order_key(item):
    """Time order: first window start, then numeric-aware name.

    Capture-relative logs (everything this repo writes) all start near
    t=0, so the window start usually ties and the *name* carries the
    chronology — hence natural ordering (``drive9`` < ``drive10``) and
    the store convention of sortable capture names (ISO dates).
    """
    name, report = item
    start = report.windows[0].t_start_us if report.windows else 0
    return (start, _natural_name_key(name))


def aggregate_vehicle(
    vehicle_id: str,
    captures: Sequence[Tuple[Union[str, Path], DetectionReport]],
    template: GoldenTemplate,
    drift_slack: float = DEFAULT_DRIFT_SLACK,
    drift_limit: float = DEFAULT_DRIFT_LIMIT,
) -> VehicleDrift:
    """Aggregate one vehicle's per-capture reports into drift analytics.

    ``captures`` are ``(path-or-name, report)`` pairs in any order; they
    are time-ordered (first window start, then numeric-aware name)
    before the CUSUM runs, since drift is a *sequential* statistic.
    Capture-relative timestamps start near zero, so in practice the
    name carries the chronology — give store captures sortable names
    (ISO dates, zero-padded or not: ``drive9`` sorts before
    ``drive10``).
    """
    if drift_slack < 0 or drift_limit <= 0:
        raise DetectorError(
            f"drift_slack must be >= 0 and drift_limit > 0, got "
            f"{drift_slack}/{drift_limit}"
        )
    named = sorted(
        ((Path(p).name, report) for p, report in captures),
        key=_capture_order_key,
    )
    names = [name for name, _ in named]
    reports = [report for _, report in named]
    alarmed = [name for name, r in named if r.alarmed_windows]

    drift_names: List[str] = []
    rows: List[np.ndarray] = []
    for name, report in named:
        clean = report.clean_windows
        if not clean:
            continue  # all-attack capture: no baseline signal in it
        entropy = np.mean([w.entropy for w in clean], axis=0)
        drift_names.append(name)
        rows.append(entropy - template.mean_entropy)

    n_bits = template.n_bits
    deviations = (
        np.stack(rows) if rows else np.empty((0, n_bits), dtype=float)
    )
    cusum_pos = np.zeros_like(deviations)
    cusum_neg = np.zeros_like(deviations)
    if len(rows):
        # Guard a zero threshold (threshold_floor=0 is a legal config
        # and a constant bit has zero range): 0/0 would make the whole
        # CUSUM NaN and silently disable the alarm.  With a tiny floor,
        # a zero-range bit that moves at all drifts immediately — which
        # is the right verdict — and a bit that stays put contributes 0.
        scale = np.maximum(template.thresholds, 1e-12)
        z = deviations / scale[None, :]
        pos = np.zeros(n_bits)
        neg = np.zeros(n_bits)
        for i in range(z.shape[0]):
            pos = np.maximum(0.0, pos + z[i] - drift_slack)
            neg = np.maximum(0.0, neg - z[i] - drift_slack)
            cusum_pos[i] = pos
            cusum_neg[i] = neg
    return VehicleDrift(
        vehicle_id=vehicle_id,
        capture_names=names,
        reports=reports,
        alarmed_captures=alarmed,
        drift_names=drift_names,
        deviations=deviations,
        cusum_pos=cusum_pos,
        cusum_neg=cusum_neg,
        drift_slack=drift_slack,
        drift_limit=drift_limit,
    )


@dataclass
class FleetReport:
    """Fleet-level aggregation: one :class:`VehicleDrift` per vehicle."""

    vehicles: Dict[str, VehicleDrift]
    #: Incremental-scan outcome per vehicle (ledger hit statistics).
    watch: Dict[str, WatchResult] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def vehicle_ids(self) -> Tuple[str, ...]:
        """Vehicle ids in aggregation order."""
        return tuple(self.vehicles)

    @property
    def n_captures(self) -> int:
        """Total captures aggregated across the fleet."""
        return sum(len(v.capture_names) for v in self.vehicles.values())

    @property
    def drifting_vehicles(self) -> List[str]:
        """Vehicles whose drift CUSUM crossed the limit."""
        return [vid for vid, v in self.vehicles.items() if v.drift_alarm]

    @property
    def alarmed_vehicles(self) -> List[str]:
        """Vehicles with at least one alarmed capture."""
        return [vid for vid, v in self.vehicles.items() if v.alarmed_captures]

    @property
    def detection_rate(self) -> float:
        """The paper's Dr pooled over every vehicle's judged windows."""
        return _pooled_detection_rate(
            r for v in self.vehicles.values() for r in v.reports
        )

    @property
    def false_positive_rate(self) -> float:
        """Pooled FPR over every vehicle's clean windows."""
        return _pooled_false_positive_rate(
            r for v in self.vehicles.values() for r in v.reports
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible digest (the CI artifact format)."""
        return {
            "vehicles": {vid: v.to_dict() for vid, v in self.vehicles.items()},
            "watch": {
                vid: {
                    "scanned": len(w.scanned),
                    "cached": len(w.cached),
                    "pruned": w.pruned,
                }
                for vid, w in self.watch.items()
            },
            "pooled": {
                "n_vehicles": len(self.vehicles),
                "n_captures": self.n_captures,
                "detection_rate": self.detection_rate,
                "false_positive_rate": self.false_positive_rate,
                "alarmed_vehicles": self.alarmed_vehicles,
                "drifting_vehicles": self.drifting_vehicles,
            },
        }

    def summary(self) -> str:
        """Per-vehicle digest plus the fleet pool."""
        lines = [self.vehicles[vid].summary() for vid in self.vehicles]
        for vid, watch in self.watch.items():
            lines.append(f"{vid} scan: {watch.summary()}")
        lines.append(
            f"fleet: {len(self.vehicles)} vehicles, {self.n_captures} "
            f"captures, {len(self.alarmed_vehicles)} alarmed, "
            f"{len(self.drifting_vehicles)} drifting, "
            f"pooled Dr={self.detection_rate:.1%}, "
            f"pooled FPR={self.false_positive_rate:.1%}"
        )
        return "\n".join(lines)


def analyze_fleet(
    store: Union[FleetStore, str, Path],
    pipeline: IDSPipeline,
    workers: Optional[int] = None,
    infer_k=1,
    drift_slack: float = DEFAULT_DRIFT_SLACK,
    drift_limit: float = DEFAULT_DRIFT_LIMIT,
    executor=None,
    chunk_windows: Optional[int] = None,
) -> FleetReport:
    """Incrementally scan every vehicle and aggregate fleet analytics.

    Each vehicle scans against its *own* stored golden template when the
    store has one (``pipeline``'s template otherwise) through
    :func:`repro.fleet.watch.watch_scan`, so repeat runs only pay for
    new or changed captures — fresh captures fan out through
    ``executor`` (any :class:`~repro.runtime.base.Executor`; default
    pool per ``workers``).  Drift aggregates against the same template
    the scan used.
    """
    if not isinstance(store, FleetStore):
        store = FleetStore(store)
    vehicles: Dict[str, VehicleDrift] = {}
    watch: Dict[str, WatchResult] = {}
    for vehicle_id in store.vehicles():
        if store.has_template(vehicle_id):
            template = store.load_template(vehicle_id)
            vehicle_pipeline = IDSPipeline(
                template, pipeline.config, pipeline.id_pool
            )
        else:
            template = pipeline.template
            vehicle_pipeline = pipeline
        result = watch_scan(
            vehicle_pipeline,
            store.archive(vehicle_id),
            store.ledger_path(vehicle_id),
            workers=workers,
            infer_k=infer_k,
            executor=executor,
            chunk_windows=chunk_windows,
        )
        watch[vehicle_id] = result
        vehicles[vehicle_id] = aggregate_vehicle(
            vehicle_id,
            result.report.captures,
            template,
            drift_slack=drift_slack,
            drift_limit=drift_limit,
        )
    return FleetReport(vehicles=vehicles, watch=watch)

"""Command-line interface: ``repro-ids``.

Subcommands mirror the workflow of the paper's evaluation:

* ``simulate`` — record a clean drive to a candump/CSV trace;
* ``attack``   — record a drive with an injected attack;
* ``template`` — build a golden template from clean traces;
* ``detect``   — run the detector (and inference) over a trace;
* ``scan-archive`` — scan a whole directory of captures over a chosen
  executor backend (``--executor serial|pool|queue|net``);
* ``serve``    — run the scan-fabric TCP coordinator: accept jobs from
  ``--executor net`` scans and feed them to connected workers (no
  shared disk required);
* ``worker``   — serve shard tasks: either a shared work-queue
  directory (``--queue DIR``, filesystem fabric) or a running
  coordinator (``--connect HOST:PORT``, network fabric);
* ``status``   — live scan-fabric console: poll a coordinator
  (``--connect``) or a queue directory (``--queue-dir``) for task,
  worker and job state (``--watch`` repaints continuously);
* ``fleet``    — the persistent fleet store: ``add`` captures per
  vehicle, ``train`` per-vehicle golden templates, ``scan``
  incrementally against each vehicle's scan ledger, ``watch`` as a
  long-running daemon (with drift-triggered retraining), ``prune``
  stale ledger entries, inspect ``status``, and aggregate a drift
  ``report``;
* ``fig2`` / ``fig3`` / ``table1`` / ``stability`` / ``cost`` — regenerate
  the paper's artifacts.

Examples::

    repro-ids simulate --duration 30 --out drive.log
    repro-ids template --windows 35 --out template.json
    repro-ids attack --attack single --id 0x1A4 --freq 50 --out attack.log
    repro-ids detect --template template.json --trace attack.log --infer
    repro-ids scan-archive --template template.json --dir captures/ --workers 4
    repro-ids worker --queue /shared/q --max-idle 60
    repro-ids scan-archive --template template.json --dir captures/ \\
        --executor queue --queue-dir /shared/q
    repro-ids serve --port 7341
    repro-ids worker --connect coordinator-host:7341
    repro-ids scan-archive --template template.json --dir captures/ \\
        --executor net --connect coordinator-host:7341
    repro-ids status --connect coordinator-host:7341 --watch
    repro-ids scan-archive --template template.json --dir captures/ \\
        --metrics-out events.jsonl
    repro-ids fleet add --store fleet/ --vehicle car-a --trace drive.log
    repro-ids fleet train --store fleet/ --vehicle car-a
    repro-ids fleet scan --store fleet/
    repro-ids fleet watch --store fleet/ --interval 60
    repro-ids fleet report --store fleet/ --out fleet-report.txt
    repro-ids table1 --seeds 1 2
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional, Sequence

from repro._version import __version__


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {text}")
    return value


def _can_id(text: str) -> int:
    value = int(text, 0)
    if not 0 <= value <= 0x7FF:
        raise argparse.ArgumentTypeError(f"identifier {text} out of 11-bit range")
    return value


#: Default --out-of-core chunk size, mirrored from
#: repro.core.engine.DEFAULT_CHUNK_WINDOWS (kept literal so building
#: the parser never imports numpy; asserted equal in tests/test_cli.py).
DEFAULT_CHUNK_WINDOWS = 64


def _add_executor_args(cmd) -> None:
    """The runtime-backend flags every scanning command shares."""
    cmd.add_argument("--workers", type=int, default=None,
                     help="pool size (default: one per core, capped)")
    cmd.add_argument("--executor", choices=["serial", "pool", "queue", "net"],
                     default=None,
                     help="execution backend (default: pool; all backends "
                          "produce bit-identical reports)")
    cmd.add_argument("--queue-dir", type=Path, default=None,
                     help="shared queue directory (required with "
                          "--executor queue; serve it with "
                          "repro-ids worker --queue)")
    cmd.add_argument("--connect", default=None, metavar="HOST:PORT",
                     help="scan coordinator address (required with "
                          "--executor net; start one with repro-ids serve, "
                          "serve it with repro-ids worker --connect)")
    cmd.add_argument("--no-drain", "--queue-no-drain",
                     dest="queue_no_drain", action="store_true",
                     help="forbid the coordinator from executing its own "
                          "tasks: every task must be served by a worker "
                          "(bounded timeout instead of degrading to a "
                          "local scan)")
    cmd.add_argument("--out-of-core", action="store_true",
                     help="scan captures with bounded memory: lazy "
                          "(memory-mapped .npz) loading + window-aligned "
                          "chunked kernel; bit-identical reports")
    cmd.add_argument("--chunk-windows", type=int, default=None,
                     metavar="N",
                     help="detection windows per out-of-core chunk "
                          "(implies --out-of-core; default "
                          f"{DEFAULT_CHUNK_WINDOWS})")


def _add_metrics_arg(cmd) -> None:
    """The telemetry flag every instrumented command shares."""
    cmd.add_argument("--metrics-out", type=Path, default=None,
                     metavar="EVENTS.JSONL",
                     help="enable the telemetry layer for this run and "
                          "append its versioned events (stage spans, "
                          "fabric events, a final metrics snapshot) to "
                          "this JSONL file")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-ids",
        description="Bit-entropy CAN intrusion detection (SOCC 2018 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="record a clean drive")
    simulate.add_argument("--duration", type=_positive_float, default=20.0)
    simulate.add_argument("--scenario", default="city")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--out", type=Path, required=True)

    attack = sub.add_parser("attack", help="record a drive with an injected attack")
    attack.add_argument(
        "--attack",
        choices=["flood", "single", "multi", "weak"],
        default="single",
    )
    attack.add_argument("--id", dest="can_ids", type=_can_id, action="append",
                        help="injected identifier (repeat for multi)")
    attack.add_argument("--freq", type=_positive_float, default=50.0)
    attack.add_argument("--start", type=_positive_float, default=2.0)
    attack.add_argument("--attack-duration", type=_positive_float, default=10.0)
    attack.add_argument("--duration", type=_positive_float, default=14.0)
    attack.add_argument("--scenario", default="city")
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument("--out", type=Path, required=True)

    template = sub.add_parser("template", help="build a golden template")
    template.add_argument("--windows", type=int, default=35)
    template.add_argument("--window-s", type=_positive_float, default=2.0)
    template.add_argument("--alpha", type=_positive_float, default=3.0)
    template.add_argument("--seed", type=int, default=7)
    template.add_argument("--traces", type=Path, nargs="*", default=[],
                          help="clean trace files; simulated drives if omitted")
    template.add_argument("--out", type=Path, required=True)

    detect = sub.add_parser("detect", help="scan a trace with a template")
    detect.add_argument("--template", type=Path, required=True)
    detect.add_argument("--trace", type=Path, required=True)
    detect.add_argument("--infer", action="store_true",
                        help="also infer malicious-ID candidates")
    detect.add_argument("--infer-k", type=int, default=1)

    convert = sub.add_parser(
        "convert",
        help="convert a capture to the block-compressed columnar "
             "container (.npb) without materialising it",
    )
    convert.add_argument("--trace", type=Path, required=True,
                         action="append", dest="traces",
                         help="input capture (candump/CSV/.gz/.npz/.npb); "
                              "repeat to batch time-ordered captures into "
                              "one container (block-aligned per capture)")
    convert.add_argument("--out", type=Path, required=True,
                         help="output path; must end in .npb")
    convert.add_argument("--block-frames", type=int, default=None,
                         help="rows per compressed block (default: the "
                              "container's native block size)")
    convert.add_argument("--level", type=int, default=None,
                         help="zlib compression level 0-9 (default 6)")
    convert.add_argument("--codec", default=None, metavar="COL=CODEC[,...]",
                         help="force per-column codecs instead of the "
                              "automatic first-block selection, e.g. "
                              "--codec timestamp_us=delta,can_id=dict "
                              "(codecs: raw, delta, dict, shuffle)")
    convert.add_argument("--format-version", type=int, default=None,
                         choices=(1, 2),
                         help="container format version to write "
                              "(default 2; 1 = legacy all-raw)")

    inspect_p = sub.add_parser(
        "inspect",
        help="print a block container's index: per-column codec, "
             "raw/compressed bytes, ratio, block count",
    )
    inspect_p.add_argument("capture", type=Path,
                           help="a .npb block-compressed capture")
    inspect_p.add_argument("--json", dest="json_stream", action="store_true",
                           help="emit the summary as JSON")

    scan_archive = sub.add_parser(
        "scan-archive",
        help="scan a directory of captures over an executor backend",
    )
    scan_archive.add_argument("--template", type=Path, required=True)
    scan_archive.add_argument("--dir", dest="archive_dir", type=Path, required=True,
                              help="directory of candump/CSV capture files")
    scan_archive.add_argument("--recursive", action="store_true",
                              help="also scan subdirectories")
    scan_archive.add_argument("--infer", action="store_true",
                              help="infer malicious-ID candidates per alarmed capture")
    scan_archive.add_argument("--infer-k", type=int, default=1,
                              help="injected identifiers assumed per capture")
    scan_archive.add_argument("--json", dest="json_out", type=Path, default=None,
                              help="also write the full report as JSON")
    _add_executor_args(scan_archive)
    _add_metrics_arg(scan_archive)

    serve = sub.add_parser(
        "serve",
        help="run the scan-fabric TCP coordinator (jobs from --executor "
             "net scans, tasks to --connect workers; no shared disk)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback only)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default: pick a free one and "
                            "print it)")
    serve.add_argument("--lease", type=_positive_float, default=300.0,
                       help="claim lease seconds: a worker silent this "
                            "long has its tasks re-posted")
    _add_metrics_arg(serve)

    worker = sub.add_parser(
        "worker",
        help="claim and run shard tasks from a queue directory "
             "(--queue) or a scan coordinator (--connect)",
    )
    worker.add_argument("--queue", type=Path, default=None,
                        help="queue directory shared with the coordinator(s)")
    worker.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="scan coordinator to serve over TCP "
                             "(a running repro-ids serve)")
    worker.add_argument("--poll", type=_positive_float, default=0.2,
                        help="seconds between polls of an idle fabric")
    worker.add_argument("--max-idle", type=_positive_float, default=None,
                        help="exit after this long with no tasks (default: serve forever)")
    worker.add_argument("--max-tasks", type=int, default=None,
                        help="exit after executing this many tasks")
    worker.add_argument("--stop-file", type=Path, default=None,
                        help="extra stop-file path besides <queue>/stop "
                             "(filesystem fabric only)")
    _add_metrics_arg(worker)

    status = sub.add_parser(
        "status",
        help="live scan-fabric console: poll a coordinator (--connect) "
             "or a queue directory (--queue-dir) for task, worker and "
             "job state",
    )
    status.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="coordinator to poll (a running repro-ids "
                             "serve)")
    status.add_argument("--queue-dir", type=Path, default=None,
                        help="filesystem queue directory to inspect")
    status.add_argument("--watch", action="store_true",
                        help="repaint continuously until interrupted")
    status.add_argument("--interval", type=_positive_float, default=2.0,
                        help="seconds between --watch polls")
    status.add_argument("--json", dest="json_stream", action="store_true",
                        help="emit the raw versioned stats document (one "
                             "JSON object per poll) instead of the console")

    fleet = sub.add_parser(
        "fleet",
        help="persistent fleet store: incremental scans and drift analytics",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_add = fleet_sub.add_parser(
        "add", help="import a capture file into a vehicle's archive"
    )
    fleet_add.add_argument("--store", type=Path, required=True,
                           help="fleet store root directory")
    fleet_add.add_argument("--vehicle", required=True, help="vehicle id")
    fleet_add.add_argument("--trace", type=Path, required=True,
                           help="capture file to import (candump/CSV, .gz ok)")
    fleet_add.add_argument("--name", default=None,
                           help="capture name in the archive (default: file name)")
    fleet_add.add_argument("--overwrite", action="store_true",
                           help="replace an existing capture of the same name")

    fleet_train = fleet_sub.add_parser(
        "train",
        help="train a vehicle's golden template from its stored captures",
    )
    fleet_train.add_argument("--store", type=Path, required=True)
    fleet_train.add_argument("--vehicle", required=True)
    fleet_train.add_argument("--window-s", type=_positive_float, default=2.0)
    fleet_train.add_argument("--alpha", type=_positive_float, default=3.0)

    fleet_scan = fleet_sub.add_parser(
        "scan",
        help="incrementally scan every vehicle against its scan ledger",
    )
    fleet_report = fleet_sub.add_parser(
        "report",
        help="aggregate per-vehicle drift series and pooled fleet metrics",
    )
    fleet_watch = fleet_sub.add_parser(
        "watch",
        help="long-running watch daemon: poll, scan incrementally, "
             "retrain drifting vehicles",
    )
    for cmd in (fleet_scan, fleet_report, fleet_watch):
        cmd.add_argument("--store", type=Path, required=True)
        cmd.add_argument("--template", type=Path, default=None,
                         help="fallback template for vehicles without one stored")
        cmd.add_argument("--window-s", type=_positive_float, default=None,
                         help="detection window (default: the window the "
                              "stored templates were trained with)")
        cmd.add_argument("--infer", action="store_true",
                         help="infer malicious-ID candidates per alarmed capture")
        cmd.add_argument("--infer-k", type=int, default=1)
        _add_executor_args(cmd)
        _add_metrics_arg(cmd)
    fleet_report.add_argument("--out", type=Path, default=None,
                              help="also write the report text to this file")
    fleet_report.add_argument("--json", dest="json_out", type=Path, default=None,
                              help="also write the structured report as JSON")
    fleet_watch.add_argument("--interval", type=_positive_float, default=30.0,
                             help="base seconds between cycles (idle cycles "
                                  "back off from here)")
    fleet_watch.add_argument("--max-interval", type=_positive_float, default=None,
                             help="backoff ceiling (default: 16x the interval)")
    fleet_watch.add_argument("--cycles", type=int, default=None,
                             help="stop after this many cycles (default: "
                                  "run until SIGTERM/stop file)")
    fleet_watch.add_argument("--stop-file", type=Path, default=None,
                             help="touch this file to stop the daemon gracefully")
    fleet_watch.add_argument("--no-retrain", action="store_true",
                             help="report drift but never re-baseline")
    fleet_watch.add_argument("--retrain-captures", type=int, default=None,
                             help="recent captures per re-baseline (default: all)")

    fleet_prune = fleet_sub.add_parser(
        "prune",
        help="drop ledger entries whose capture files left the archive",
    )
    fleet_prune.add_argument("--store", type=Path, required=True)

    fleet_status = fleet_sub.add_parser(
        "status", help="list vehicles, captures, templates and ledgers"
    )
    fleet_status.add_argument("--store", type=Path, required=True)
    fleet_status.add_argument("--json", dest="json_stream", action="store_true",
                              help="emit one JSON object per vehicle "
                                   "(machine-readable status stream)")

    for name, helptext in [
        ("fig2", "regenerate Fig. 2 (template vs attack)"),
        ("fig3", "regenerate Fig. 3 (injection/detection vs ID)"),
        ("table1", "regenerate Table I"),
        ("stability", "regenerate the entropy stability experiment"),
        ("cost", "regenerate the Sec. V.E cost comparison"),
    ]:
        exp = sub.add_parser(name, help=helptext)
        exp.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------

@contextmanager
def _metrics(args, command: str):
    """Enable the telemetry layer for one command run.

    Without ``--metrics-out`` (or on commands that don't take it) this
    is a no-op.  With it, the whole run executes under an enabled
    :mod:`repro.obs` registry wired to a JSONL sink, inside a
    ``cli.<command>`` span; a final ``metrics`` event carries the full
    registry snapshot so the event log alone reconstructs every
    counter, gauge and histogram.
    """
    path = getattr(args, "metrics_out", None)
    if path is None:
        yield None
        return
    from repro import obs

    sink = obs.JsonlSink(path)
    registry = obs.enable(sinks=(sink,))
    try:
        with registry.span(f"cli.{command}"):
            yield registry
    finally:
        # Emitted even on the error paths: a failed run's partial
        # metrics are exactly what you want when diagnosing it.
        registry.emit("metrics", snapshot=registry.snapshot())
        obs.disable()
        sink.close()
        print(f"telemetry events written to {path}", flush=True)


def _write_trace(trace, path: Path) -> None:
    from repro.io import write_candump, write_csv

    suffix = path.suffix.lower()
    if suffix == ".csv":
        write_csv(trace, path)
    elif suffix == ".npz":
        from repro.io import ColumnTrace

        ColumnTrace.coerce(trace).save_npz(path)
    elif suffix == ".npb":
        from repro.io import write_blocks

        write_blocks(path, trace)
    else:
        write_candump(trace, path)


def _read_trace(path: Path):
    from repro.io import read_candump, read_csv

    suffix = path.suffix.lower()
    if suffix == ".csv":
        return read_csv(path)
    if suffix == ".npz":
        from repro.io import ColumnTrace

        return ColumnTrace.load_npz(path).to_trace()
    if suffix == ".npb":
        from repro.io import load_capture_columns

        return load_capture_columns(path).to_trace()
    return read_candump(path)


def _cmd_simulate(args) -> int:
    from repro.vehicle.traffic import simulate_drive

    trace = simulate_drive(args.duration, scenario=args.scenario, seed=args.seed)
    _write_trace(trace, args.out)
    print(f"wrote {len(trace)} frames ({trace.message_rate_hz():.0f} msg/s) to {args.out}")
    return 0


def _cmd_attack(args) -> int:
    from repro.attacks import (
        FloodingAttacker,
        MultiIDAttacker,
        SingleIDAttacker,
        WeakAttacker,
    )
    from repro.vehicle import VehicleSimulation, ford_fusion_catalog
    from repro.vehicle.ecu_profiles import assignments_for

    catalog = ford_fusion_catalog(seed=0)
    sim = VehicleSimulation(catalog=catalog, scenario=args.scenario, seed=args.seed)
    common = dict(
        frequency_hz=args.freq,
        start_s=args.start,
        duration_s=args.attack_duration,
        seed=args.seed,
    )
    ids = args.can_ids or []
    if args.attack == "flood":
        attacker = FloodingAttacker(**common)
    elif args.attack == "single":
        attacker = SingleIDAttacker(can_id=ids[0] if ids else catalog.ids[60], **common)
    elif args.attack == "multi":
        chosen = ids if len(ids) >= 2 else [catalog.ids[60], catalog.ids[120]]
        attacker = MultiIDAttacker(chosen, **common)
    else:
        assignments = assignments_for(catalog)
        ecu = sorted(assignments)[0]
        attacker = WeakAttacker(sorted(assignments[ecu]), **common)
    sim.add_node(attacker)
    trace = sim.run(args.duration)
    _write_trace(trace, args.out)
    print(f"wrote {len(trace)} frames to {args.out}")
    print(attacker.describe())
    return 0


def _cmd_template(args) -> int:
    from repro.core import IDSConfig, TemplateBuilder
    from repro.vehicle.traffic import record_template_windows

    config = IDSConfig(
        alpha=args.alpha,
        window_us=int(args.window_s * 1e6),
        template_windows=max(2, args.windows),
    )
    builder = TemplateBuilder(config)
    if args.traces:
        for path in args.traces:
            builder.add_trace_windows(_read_trace(path))
    else:
        for window in record_template_windows(
            n_windows=args.windows, window_s=args.window_s, seed=args.seed
        ):
            builder.add_trace(window)
    template = builder.build()
    template.save(args.out)
    print(f"template from {template.n_windows} windows written to {args.out}")
    print(template.describe())
    return 0


def _cmd_detect(args) -> int:
    from repro.core import GoldenTemplate, IDSConfig, IDSPipeline
    from repro.io.archive import load_capture_columns
    from repro.vehicle import ford_fusion_catalog

    template = GoldenTemplate.load(args.template)
    config = IDSConfig(alpha=template.alpha)
    pool = ford_fusion_catalog(seed=0).ids if args.infer else None
    pipeline = IDSPipeline(template, config, id_pool=pool)
    trace = load_capture_columns(args.trace)  # columnar-native load
    report = pipeline.analyze(trace, infer_k=args.infer_k)
    print(report.summary())
    return 0 if not report.alarmed_windows else 2


def _cmd_convert(args) -> int:
    from repro.exceptions import TraceFormatError
    from repro.io.archive import iter_capture_chunks
    from repro.io.blocks import (
        DEFAULT_BLOCK_FRAMES,
        DEFAULT_LEVEL,
        BlockWriter,
    )

    if args.out.suffix.lower() != ".npb":
        print(
            f"convert writes the block-compressed container; --out must "
            f"end in .npb, got {args.out.name!r}"
        )
        return 1
    block_frames = (
        DEFAULT_BLOCK_FRAMES if args.block_frames is None else args.block_frames
    )
    level = DEFAULT_LEVEL if args.level is None else args.level
    version = 2 if args.format_version is None else args.format_version
    codecs = None
    if args.codec:
        codecs = {}
        for part in args.codec.split(","):
            column, sep, codec = part.partition("=")
            if not sep or not column or not codec:
                print(
                    f"--codec expects COLUMN=CODEC[,COLUMN=CODEC...], "
                    f"got {part!r}"
                )
                return 1
            codecs[column.strip()] = codec.strip()
    frames = 0
    try:
        # Stream parse -> filter -> compress -> append: captures are
        # never materialised, so converting works under the same memory
        # ceiling the converted file will later be scanned under.
        with BlockWriter(
            args.out,
            block_frames=block_frames,
            level=level,
            codecs=codecs,
            version=version,
        ) as w:
            for trace in args.traces:
                for chunk in iter_capture_chunks(trace, block_frames):
                    w.append(chunk)
                    frames += len(chunk)
                # Capture boundary: drain the column scratch so no
                # block straddles two captures.
                w.flush()
    except TraceFormatError as exc:
        print(str(exc))
        return 1
    in_bytes = sum(trace.stat().st_size for trace in args.traces)
    out_bytes = args.out.stat().st_size
    ratio = in_bytes / out_bytes if out_bytes else float("inf")
    print(
        f"wrote {frames} frames to {args.out} "
        f"({in_bytes} -> {out_bytes} bytes, {ratio:.2f}x)"
    )
    return 0


def _cmd_inspect(args) -> int:
    from repro.exceptions import TraceFormatError
    from repro.io.blocks import BlockReader

    try:
        with BlockReader(args.capture, cache=False) as reader:
            info = reader.describe()
    except (TraceFormatError, OSError) as exc:
        print(str(exc))
        return 1
    if args.json_stream:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(
        f"{info['path']}: {info['format']} v{info['version']}, "
        f"{info['n_frames']} frames in {info['blocks']} blocks "
        f"(block_frames={info['block_frames']}, level={info['level']})"
    )
    print(
        f"  file {info['file_bytes']} bytes; columns "
        f"{info['raw_bytes']} -> {info['compressed_bytes']} bytes "
        f"({info['ratio']:.2f}x)"
    )
    header = f"  {'column':<16} {'codec':<9} {'raw':>12} {'compressed':>12} {'ratio':>8}"
    print(header)
    for name, col in info["columns"].items():
        used = col["codecs_used"]
        codec = col["codec"]
        if len(used) > 1:
            codec = "+".join(f"{c}:{n}" for c, n in used.items())
        print(
            f"  {name:<16} {codec:<9} {col['raw_bytes']:>12} "
            f"{col['compressed_bytes']:>12} {col['ratio']:>7.1f}x"
        )
    return 0


def _cli_executor(args):
    """Resolve the executor flags into an Executor (or None).

    Flag *mismatches* — a transport flag aimed at the wrong backend —
    are configuration errors and exit immediately with a clear message
    (SystemExit, not a traceback); a *missing* required flag surfaces
    as a DetectorError for the command's normal diagnose-and-return-1
    path.
    """
    from repro.runtime import resolve_executor

    backend = args.executor or "pool (the default)"
    if args.queue_dir is not None and args.executor != "queue":
        raise SystemExit(
            f"repro-ids: error: --queue-dir only applies to --executor "
            f"queue, not --executor {backend}"
        )
    if args.connect is not None and args.executor != "net":
        raise SystemExit(
            f"repro-ids: error: --connect only applies to --executor "
            f"net, not --executor {backend}"
        )
    if args.queue_no_drain and args.executor not in ("queue", "net"):
        raise SystemExit(
            f"repro-ids: error: --no-drain only applies to --executor "
            f"queue or net, not --executor {backend}"
        )
    return resolve_executor(
        args.executor,
        workers=args.workers,
        queue_dir=args.queue_dir,
        queue_drain=not args.queue_no_drain,
        connect=args.connect,
    )


def _cli_chunk_windows(args) -> Optional[int]:
    """Resolve --out-of-core / --chunk-windows into a chunk size.

    ``--chunk-windows N`` is the explicit form (and implies
    ``--out-of-core``); bare ``--out-of-core`` uses the default chunk
    size.  ``None`` (neither flag) keeps the in-RAM scan.
    """
    if args.chunk_windows is not None:
        if args.chunk_windows < 1:
            raise SystemExit(
                "repro-ids: error: --chunk-windows must be >= 1, got "
                f"{args.chunk_windows}"
            )
        return args.chunk_windows
    return DEFAULT_CHUNK_WINDOWS if args.out_of_core else None


def _cmd_scan_archive(args) -> int:
    from repro.core import GoldenTemplate, IDSConfig, IDSPipeline
    from repro.exceptions import DetectorError
    from repro.io import CaptureArchive, capture_suffix
    from repro.io.columnar import npz_is_compressed
    from repro.vehicle import ford_fusion_catalog

    template = GoldenTemplate.load(args.template)
    config = IDSConfig(alpha=template.alpha)
    pool = ford_fusion_catalog(seed=0).ids if args.infer else None
    pipeline = IDSPipeline(template, config, id_pool=pool)
    archive = CaptureArchive(args.archive_dir, recursive=args.recursive)
    if not len(archive):
        print(f"no captures found under {args.archive_dir}")
        return 1
    chunk_windows = _cli_chunk_windows(args)
    if chunk_windows is not None:
        compressed = [
            p for p in archive.paths
            if capture_suffix(p) == ".npz" and npz_is_compressed(p)
        ]
        if compressed:
            for p in compressed:
                print(
                    f"{p}: compressed npz cannot memory-map for "
                    "--out-of-core; convert it to the block-compressed "
                    f"container first: repro-ids convert --trace {p} "
                    f"--out {p.with_suffix('.npb')}"
                )
            return 1
    try:
        executor = _cli_executor(args)
        report = pipeline.analyze_archive(
            archive, workers=args.workers, infer_k=args.infer_k,
            executor=executor, chunk_windows=chunk_windows,
        )
    except DetectorError as exc:
        print(str(exc))
        return 1
    print(report.summary())
    for path, capture in report.captures:
        if capture.inference is not None:
            ids = ", ".join(f"0x{c:03X}" for c in capture.inference.candidates)
            print(f"{path.name}: inferred candidates (rank order): {ids}")
    if args.json_out is not None:
        import json as _json

        args.json_out.write_text(
            _json.dumps(report.to_dict(), indent=2), encoding="utf-8"
        )
        print(f"JSON report written to {args.json_out}")
    return 0 if not report.alarmed_captures else 2


def _cmd_serve(args) -> int:
    import asyncio

    from repro.runtime.net import serve as serve_fabric

    def _log(line: str) -> None:
        print(line, flush=True)

    def _ready(server) -> None:
        # Parsed by scripts (and the CI smoke job) to learn the bound
        # port when --port 0 asked for a free one.
        print(f"serving on {server.host}:{server.port}", flush=True)

    asyncio.run(
        serve_fabric(
            host=args.host,
            port=args.port,
            lease_s=args.lease,
            log=_log,
            handle_signals=True,
            ready=_ready,
        )
    )
    print("coordinator drained")
    return 0


def _cmd_worker(args) -> int:
    import os

    from repro.exceptions import DetectorError

    if (args.queue is None) == (args.connect is None):
        raise SystemExit(
            "repro-ids: error: worker needs exactly one fabric: "
            "--queue DIR (filesystem) or --connect HOST:PORT (network)"
        )
    if args.connect is not None:
        if args.stop_file is not None:
            raise SystemExit(
                "repro-ids: error: --stop-file only applies to --queue "
                "workers; stop a --connect worker by draining the "
                "coordinator (SIGTERM to repro-ids serve) or SIGTERM"
            )
        from repro.runtime import run_net_worker

        print(f"worker connecting to {args.connect} (pid {os.getpid()})",
              flush=True)
        try:
            stats = run_net_worker(
                args.connect,
                poll_s=args.poll,
                max_idle_s=args.max_idle,
                max_tasks=args.max_tasks,
                handle_signals=True,
                log=lambda line: print(line, flush=True),
            )
        except DetectorError as exc:
            print(str(exc))
            return 1
        print(f"worker done: {stats.summary()}")
        return 0

    from repro.runtime import run_worker

    print(f"worker serving {args.queue} (pid {os.getpid()})")
    stats = run_worker(
        args.queue,
        poll_s=args.poll,
        max_idle_s=args.max_idle,
        max_tasks=args.max_tasks,
        stop_file=args.stop_file,
        handle_signals=True,
        log=print,
    )
    print(f"worker done: {stats.summary()}")
    return 0


def _cmd_status(args) -> int:
    import json as _json
    import time

    from repro.exceptions import DetectorError
    from repro.runtime import render_stats

    if (args.connect is None) == (args.queue_dir is None):
        raise SystemExit(
            "repro-ids: error: status needs exactly one fabric: "
            "--connect HOST:PORT (network) or --queue-dir DIR (filesystem)"
        )

    def fetch():
        if args.connect is not None:
            from repro.runtime import fetch_stats

            return fetch_stats(args.connect)
        from repro.runtime import queue_stats

        return queue_stats(args.queue_dir)

    try:
        while True:
            stats = fetch()
            if args.json_stream:
                print(_json.dumps(stats, sort_keys=True), flush=True)
            else:
                if args.watch and sys.stdout.isatty():
                    # Clear + home: a live console, not a scrolling log.
                    print("\x1b[2J\x1b[H", end="")
                print(render_stats(stats), flush=True)
            if not args.watch:
                return 0
            time.sleep(args.interval)
    except DetectorError as exc:
        print(str(exc))
        return 1
    except KeyboardInterrupt:
        return 0


def _fleet_window_us(args, store):
    """Resolve the detection window and enforce it matches training.

    A template only judges correctly at its training window, so:
    explicit ``--window-s`` wins but must agree with every recorded
    training window; otherwise the recorded windows decide (and must
    agree with each other); 2 s (the config default) when nothing is
    recorded.  Returns None, message printed, on a mismatch.
    """
    recorded = {}
    for vehicle_id in store.vehicles():
        window = store.template_window_us(vehicle_id)
        if window is not None:
            recorded[vehicle_id] = window
    if args.window_s is not None:
        window_us = int(args.window_s * 1e6)
    elif recorded:
        if len(set(recorded.values())) > 1:
            print(
                "stored templates were trained with different windows ("
                + ", ".join(f"{v}={w / 1e6:g}s" for v, w in sorted(recorded.items()))
                + "); re-train consistently or pass --window-s explicitly"
            )
            return None
        window_us = next(iter(recorded.values()))
    else:
        window_us = 2_000_000
    mismatched = [
        f"{v} (trained at {w / 1e6:g}s)"
        for v, w in sorted(recorded.items())
        if w != window_us
    ]
    if mismatched:
        print(
            f"detection window {window_us / 1e6:g}s does not match training "
            "for: " + ", ".join(mismatched)
        )
        return None
    return window_us


def _fleet_pipeline(args, store):
    """Build the fallback pipeline ``analyze_fleet`` hangs off.

    ``--template`` is the explicit fallback for vehicles without a
    stored template.  Without it, *every* vehicle must have its own
    stored template — silently judging one vehicle's traffic (and
    drift) against another vehicle's baseline would defeat the
    per-vehicle premise — and the first stored template merely seeds
    the pipeline object (``analyze_fleet`` always prefers each
    vehicle's own).  Returns None, message printed, on misconfiguration.
    """
    from repro.core import GoldenTemplate, IDSConfig, IDSPipeline
    from repro.vehicle import ford_fusion_catalog

    window_us = _fleet_window_us(args, store)
    if window_us is None:
        return None
    template = None
    if args.template is not None:
        template = GoldenTemplate.load(args.template)
    else:
        missing = [v for v in store.vehicles() if not store.has_template(v)]
        if missing:
            print(
                "no template for vehicle(s) " + ", ".join(missing) + ": "
                "train them (repro-ids fleet train) or pass --template "
                "as an explicit fallback"
            )
            return None
        for vehicle_id in store.vehicles():
            template = store.load_template(vehicle_id)
            break
    if template is None:
        print(
            "no template available: the store has no vehicles; "
            "add captures and train, or pass --template"
        )
        return None
    config = IDSConfig(alpha=template.alpha, window_us=window_us)
    pool = ford_fusion_catalog(seed=0).ids if args.infer else None
    return IDSPipeline(template, config, id_pool=pool)


def _cmd_fleet(args) -> int:
    from repro.exceptions import TraceFormatError
    from repro.fleet import FleetStore

    store = FleetStore(args.store)

    if args.fleet_command == "add":
        from repro.io.archive import load_capture_columns

        capture = load_capture_columns(args.trace)
        name = args.name or args.trace.name
        try:
            path = store.add_capture(
                args.vehicle, name, capture, overwrite=args.overwrite
            )
        except TraceFormatError as exc:
            print(str(exc))
            return 1
        print(f"added {len(capture)} frames as {args.vehicle}/{path.name}")
        return 0

    if args.fleet_command == "train":
        from repro.core import IDSConfig, TemplateBuilder

        if not store.has_vehicle(args.vehicle):
            print(f"vehicle {args.vehicle!r} has no captures to train from")
            return 1
        archive = store.archive(args.vehicle)
        if not len(archive):
            print(f"vehicle {args.vehicle!r} has no captures to train from")
            return 1
        config = IDSConfig(alpha=args.alpha, window_us=int(args.window_s * 1e6))
        builder = TemplateBuilder(config)
        # Archives legitimately contain attacked captures (that is what
        # the scanner is for); the builder's ground-truth exclusion
        # keeps them out of the template.
        for columns in archive:
            builder.add_trace_windows(columns, exclude_attacked=True)
        excluded = builder.excluded_attacked
        if builder.n_windows < 2:
            print(
                f"vehicle {args.vehicle!r} has {builder.n_windows} clean "
                f"window(s) ({excluded} attacked excluded); need >= 2"
            )
            return 1
        template = builder.build()
        path = store.save_template(
            args.vehicle, template, window_us=config.window_us
        )
        suffix = f" ({excluded} attacked windows excluded)" if excluded else ""
        print(
            f"template for {args.vehicle} from {template.n_windows} clean "
            f"windows over {len(archive)} captures{suffix} written to {path}"
        )
        return 0

    if args.fleet_command == "prune":
        if not store.root.is_dir():
            print(f"no fleet store at {store.root}")
            return 1
        pruned = store.compact_ledgers()
        for vehicle_id, count in pruned.items():
            if count:
                print(f"{vehicle_id}: pruned {count} stale ledger entries")
        print(
            f"pruned {sum(pruned.values())} entries across "
            f"{len(store.vehicles())} vehicles"
        )
        return 0

    if args.fleet_command == "status":
        import json as _json

        if not store.root.is_dir():
            # Surface a typo'd --store path instead of reporting a
            # healthy empty store (construction is side-effect-free).
            print(f"no fleet store at {store.root}")
            return 1
        vehicles = store.vehicles()
        if not vehicles and not args.json_stream:
            print(f"empty fleet store at {store.root}")
            return 0
        for vehicle_id in vehicles:
            archive = store.archive(vehicle_id)
            has_template = store.has_template(vehicle_id)
            # File count only — status must not crash on (or pay for
            # parsing) a corrupt template the way a real load would.
            n_bus = len(store.bus_template_files(vehicle_id))
            ledger_path = store.ledger_path(vehicle_id)
            ledger_state, entries = "missing", None
            if ledger_path.is_file():
                try:
                    entries = len(
                        _json.loads(ledger_path.read_text())["entries"]
                    )
                    ledger_state = "ok"
                except (ValueError, KeyError, TypeError):
                    # TypeError covers a scalar root / null entries —
                    # as corrupt as unparseable JSON for status purposes.
                    ledger_state = "corrupt"
            if args.json_stream:
                # One object per line: the dashboard/scripting hook.
                print(_json.dumps({
                    "vehicle": vehicle_id,
                    "captures": len(archive),
                    "template": has_template,
                    "bus_templates": n_bus,
                    "ledger": ledger_state,
                    "ledger_entries": entries,
                }, sort_keys=True))
            else:
                shown = {
                    "ok": str(entries), "corrupt": "corrupt", "missing": "-",
                }[ledger_state]
                print(
                    f"{vehicle_id}: {len(archive)} captures, "
                    f"template={'yes' if has_template else 'no'}, "
                    f"bus templates={n_bus}, ledger entries={shown}"
                )
        # Surface the watch daemon's last-cycle state when one is (or
        # was) running against this store: its status file is rewritten
        # atomically every cycle.
        import time as _time

        from repro.fleet.daemon import STATUS_FILENAME

        status_path = store.root / STATUS_FILENAME
        if status_path.is_file():
            try:
                daemon_state = _json.loads(
                    status_path.read_text(encoding="utf-8")
                )
            except (OSError, ValueError):
                daemon_state = None
            if isinstance(daemon_state, dict):
                if args.json_stream:
                    print(_json.dumps(
                        {"daemon": daemon_state}, sort_keys=True
                    ))
                else:
                    cycle = daemon_state.get("cycle") or {}
                    age = max(0.0, _time.time() - daemon_state.get("ts", 0.0))
                    print(
                        f"watch daemon (pid {daemon_state.get('pid', '?')}): "
                        f"cycle {cycle.get('cycle', '?')}, "
                        f"{cycle.get('scanned', 0)} scanned, "
                        f"{cycle.get('cached', 0)} cached, "
                        f"{cycle.get('drifting', 0)} drifting, "
                        f"interval {daemon_state.get('interval_s', 0):g}s, "
                        f"updated {age:.0f}s ago"
                    )
        return 0

    # scan / report / watch
    if not store.root.is_dir():
        # Same guard status has: a typo'd path must not report an
        # all-clean (empty) fleet with exit 0.
        print(f"no fleet store at {store.root}")
        return 1
    if not store.vehicles():
        print(f"fleet store at {store.root} has no vehicles")
        return 1
    from repro.exceptions import DetectorError, TemplateError

    if args.fleet_command == "watch":
        from repro.fleet.daemon import WatchDaemon

        try:
            pipeline = _fleet_pipeline(args, store)
            if pipeline is None:
                return 1
            daemon = WatchDaemon(
                store,
                pipeline,
                interval_s=args.interval,
                max_interval_s=args.max_interval,
                retrain=not args.no_retrain,
                retrain_captures=args.retrain_captures,
                stop_file=args.stop_file,
                executor=_cli_executor(args),
                workers=args.workers,
                infer_k=args.infer_k,
                chunk_windows=_cli_chunk_windows(args),
                log=print,
            )
            daemon.install_signal_handlers()
            daemon.run(max_cycles=args.cycles)
        except (TemplateError, DetectorError) as exc:
            print(str(exc))
            return 1
        return 0

    try:
        pipeline = _fleet_pipeline(args, store)
        if pipeline is None:
            return 1
        report = pipeline.analyze_fleet(
            store, workers=args.workers, infer_k=args.infer_k,
            executor=_cli_executor(args),
            chunk_windows=_cli_chunk_windows(args),
        )
    except TemplateError as exc:
        # Corrupt or unreadable per-vehicle template: diagnose, don't
        # traceback (the same courtesy every other corruption path gets).
        print(str(exc))
        return 1
    except DetectorError as exc:
        # Misconfigured runtime backend (e.g. --executor queue without
        # --queue-dir): same diagnose-don't-traceback courtesy.
        print(str(exc))
        return 1

    if args.fleet_command == "scan":
        for vehicle_id, watch in report.watch.items():
            print(f"{vehicle_id}: {watch.summary()}")
        alarmed = report.alarmed_vehicles
        if alarmed:
            print(f"alarmed vehicles: {', '.join(alarmed)}")
        return 2 if alarmed else 0

    # fleet report
    text = report.summary()
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n", encoding="utf-8")
        print(f"report written to {args.out}")
    if args.json_out is not None:
        import json as _json

        args.json_out.write_text(
            _json.dumps(report.to_dict(), indent=2), encoding="utf-8"
        )
        print(f"JSON report written to {args.json_out}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import fig2, fig3, stability, table1
    from repro.experiments import cost as cost_experiment

    seeds = tuple(args.seeds)
    if args.command == "fig2":
        print(fig2.run(seed=seeds[0]).render())
    elif args.command == "fig3":
        print(fig3.run(seeds=seeds).render())
    elif args.command == "table1":
        print(table1.run(seeds=seeds).render())
    elif args.command == "stability":
        print(stability.run(seed=seeds[0]).render())
    else:
        print(cost_experiment.run(seeds=seeds).render())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "attack": _cmd_attack,
        "template": _cmd_template,
        "detect": _cmd_detect,
        "convert": _cmd_convert,
        "inspect": _cmd_inspect,
        "scan-archive": _cmd_scan_archive,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "status": _cmd_status,
        "fleet": _cmd_fleet,
        "fig2": _cmd_experiment,
        "fig3": _cmd_experiment,
        "table1": _cmd_experiment,
        "stability": _cmd_experiment,
        "cost": _cmd_experiment,
    }
    label = args.command
    fleet_command = getattr(args, "fleet_command", None)
    if fleet_command:
        label = f"{label}-{fleet_command}"
    with _metrics(args, label):
        return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

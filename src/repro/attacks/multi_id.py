"""Scenario 3 — strong model, message injection with multiple IDs.

Either several attackers with different identifiers, or one attacker
cycling through a small identifier set (the paper evaluates 2, 3 and 4
identifiers).  Detection gets *easier* — more identifiers disturb more
bits — but inferring the exact combination gets harder, which is the
trade-off Table I quantifies.
"""

from __future__ import annotations

from typing import Sequence

from repro.attacks.base import AttackerNode
from repro.can.constants import MAX_BASE_ID
from repro.exceptions import BusConfigError


class MultiIDAttacker(AttackerNode):
    """Inject from a fixed set of identifiers.

    Parameters
    ----------
    can_ids:
        The identifier set (the paper uses sizes 2..4).
    frequency_hz:
        Attempt frequency **per identifier**: the scenario models k
        attackers (or one attacker with k sources) each injecting at
        this rate, so the aggregate attempt rate is ``k * frequency_hz``.
        This matches the paper's observation that the (aggregate)
        injection volume "keeps going up as we enlarge the number of
        IDs", which is why detection improves with k while inference
        degrades.
    mode:
        ``"round_robin"`` cycles deterministically; ``"random"`` draws
        uniformly per attempt.
    """

    def __init__(
        self,
        can_ids: Sequence[int],
        name: str = "mallory_multi",
        frequency_hz: float = 50.0,
        mode: str = "round_robin",
        **kwargs,
    ) -> None:
        super().__init__(name, frequency_hz * len(list(can_ids)), **kwargs)
        self.per_id_frequency_hz = frequency_hz
        ids = list(can_ids)
        if len(ids) < 2:
            raise BusConfigError("MultiIDAttacker needs at least two identifiers")
        if len(set(ids)) != len(ids):
            raise BusConfigError("MultiIDAttacker identifiers must be distinct")
        for can_id in ids:
            if not 0 <= can_id <= MAX_BASE_ID:
                raise BusConfigError(f"identifier 0x{can_id:X} out of 11-bit range")
        if mode not in ("round_robin", "random"):
            raise BusConfigError(f"unknown mode {mode!r}")
        self.can_ids = ids
        self.mode = mode
        self._cursor = 0

    def select_id(self) -> int:
        if self.mode == "random":
            return int(self.rng.choice(self.can_ids))
        can_id = self.can_ids[self._cursor % len(self.can_ids)]
        self._cursor += 1
        return can_id

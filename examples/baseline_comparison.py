#!/usr/bin/env python
"""Head-to-head: bit-entropy IDS vs. the literature baselines.

Reproduces the Section V.E comparison: analytic cost table, detection
on identical captures, and the unseen-ID blind spot of the per-ID
schemes (interval [11], clock-skew [9]).

Run:  python examples/baseline_comparison.py
"""

from repro.experiments import build_setup
from repro.experiments import cost as cost_experiment


def main() -> None:
    print("training all five systems on the same clean captures...\n")
    setup = build_setup()
    result = cost_experiment.run(setup=setup, seeds=(1, 2))
    print(result.render())
    print()
    print("reading guide:")
    print("  * memory: 11 constant slots (ours) vs. one-or-more per identifier;")
    print("  * the interval and clock-skew schemes cannot see identifiers that")
    print("    were absent from training — the bit-entropy method can, because")
    print("    any identifier perturbs the 11 bit statistics it monitors.")


if __name__ == "__main__":
    main()

"""Configuration of the entropy IDS.

One dataclass holds every tunable so experiments can sweep them and the
ablation benchmarks can name exactly what they vary.  Defaults follow the
paper where the paper commits to a value (``alpha = 5`` from its chosen
threshold coefficient, ``rank = 10`` for inference, 11 identifier bits)
and otherwise use the values calibrated in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.can.constants import BASE_ID_BITS, SECOND_US
from repro.exceptions import DetectorError


@dataclass(frozen=True)
class IDSConfig:
    """All knobs of the entropy IDS.

    Parameters
    ----------
    n_bits:
        Identifier width monitored (11 for base frames; the method also
        applies to 29-bit extended identifiers, as the paper notes).
    window_us:
        Tumbling detection window length.  The paper advertises reaction
        "in a time period of as short as 1 s"; the calibrated default is
        2 s — the synthetic vehicle's slowest message period — so that
        every periodic identifier contributes a fixed per-window count
        and the template ranges stay as steady as the paper observed on
        its real captures.  The window ablation bench sweeps this.
    min_window_messages:
        Windows with fewer messages are not judged (avoids verdicts on
        nearly-empty partial windows at trace edges).
    alpha:
        Threshold coefficient: ``Th_i = alpha * (max H_i - min H_i)``
        over the template windows.  The paper chooses alpha empirically
        from [3, 10] and uses 5 on its captures; on the synthetic
        vehicle the calibrated default is 3 (the template range is
        already a max-statistic ~5 sigma wide, so alpha = 5 costs
        low-frequency detections; see the alpha ablation bench).
    threshold_floor:
        Lower bound on each per-bit threshold, guarding against a
        degenerate template whose range underestimates window noise
        (e.g. when all template windows came from one scenario).
    template_windows:
        Number of clean windows used to build the golden template
        (paper: 35 measurements).
    rank:
        Size of the candidate set for malicious-ID inference (paper: 10).
    constraint_z:
        A bit contributes a direction constraint / soft evidence to
        inference when its probability shift exceeds ``constraint_z``
        times that bit's template probability range.
    min_injected_fraction:
        Lower clamp for the estimated fraction of injected messages in a
        window, keeping the multi-ID composition estimate stable.
    """

    n_bits: int = BASE_ID_BITS
    window_us: int = 2 * SECOND_US
    min_window_messages: int = 50
    alpha: float = 3.0
    threshold_floor: float = 1e-3
    template_windows: int = 35
    rank: int = 10
    constraint_z: float = 3.0
    min_injected_fraction: float = 0.01

    def __post_init__(self) -> None:
        if self.n_bits not in (11, 29):
            raise DetectorError(f"n_bits must be 11 or 29, got {self.n_bits}")
        if self.window_us <= 0:
            raise DetectorError(f"window_us must be positive, got {self.window_us}")
        if self.min_window_messages < 1:
            raise DetectorError("min_window_messages must be >= 1")
        if self.alpha <= 0:
            raise DetectorError(f"alpha must be positive, got {self.alpha}")
        if self.threshold_floor < 0:
            raise DetectorError("threshold_floor must be >= 0")
        if self.template_windows < 2:
            raise DetectorError("template needs at least 2 windows for a range")
        if self.rank < 1:
            raise DetectorError(f"rank must be >= 1, got {self.rank}")
        if self.constraint_z <= 0:
            raise DetectorError("constraint_z must be positive")
        if not 0 < self.min_injected_fraction < 1:
            raise DetectorError("min_injected_fraction must be in (0, 1)")

    def with_(self, **overrides) -> "IDSConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

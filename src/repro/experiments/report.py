"""Plain-text table rendering for experiment results.

The paper's tables and figures are regenerated as aligned text tables so
the benchmarks can print them without plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    Numeric cells may be pre-formatted strings; everything is converted
    with ``str``.
    """
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def pct(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def hexid(can_id: int) -> str:
    """Format an identifier in the paper's 0x3-digit style."""
    return f"0x{can_id:03X}"

"""Entropy functions: values, symmetry, edge cases, gradients."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitprob import BitCounter
from repro.core.entropy import (
    binary_entropy,
    entropy_gradient,
    entropy_vector,
    shannon_entropy,
)

probability = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestBinaryEntropy:
    def test_half_is_one_bit(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_endpoints_are_zero(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_known_value(self):
        # H(0.25) = 2 - 0.75*log2(3)
        assert binary_entropy(0.25) == pytest.approx(2 - 0.75 * math.log2(3))

    def test_array_input(self):
        result = binary_entropy(np.array([0.0, 0.5, 1.0]))
        assert isinstance(result, np.ndarray)
        assert result.tolist() == pytest.approx([0.0, 1.0, 0.0])

    def test_scalar_returns_float(self):
        assert isinstance(binary_entropy(0.3), float)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            binary_entropy(1.5)
        with pytest.raises(ValueError):
            binary_entropy(-0.1)

    @given(probability)
    def test_symmetry(self, p):
        assert binary_entropy(p) == pytest.approx(binary_entropy(1.0 - p), abs=1e-12)

    @given(probability)
    def test_bounded(self, p):
        assert 0.0 <= binary_entropy(p) <= 1.0

    @given(st.floats(min_value=0.01, max_value=0.49))
    def test_monotone_toward_half(self, p):
        assert binary_entropy(p) < binary_entropy(p + 0.005)

    @given(probability, probability)
    def test_concavity(self, p, q):
        mid = (p + q) / 2
        assert binary_entropy(mid) >= (binary_entropy(p) + binary_entropy(q)) / 2 - 1e-12


class TestShannonEntropy:
    def test_uniform_distribution(self):
        assert shannon_entropy([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_point_mass_is_zero(self):
        assert shannon_entropy([10, 0, 0]) == 0.0

    def test_empty_and_zero(self):
        assert shannon_entropy([]) == 0.0
        assert shannon_entropy([0, 0]) == 0.0

    def test_counts_equivalent_to_probabilities(self):
        counts = [3, 1, 4]
        probs = np.asarray(counts) / 8
        assert shannon_entropy(counts) == pytest.approx(shannon_entropy(probs))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            shannon_entropy([-1, 2])

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=64))
    def test_bounded_by_log_support(self, counts):
        h = shannon_entropy(counts)
        support = sum(1 for c in counts if c > 0)
        assert 0.0 <= h <= math.log2(max(support, 1)) + 1e-9

    def test_injection_lowers_uniform_entropy(self):
        """A mass concentration (single-ID injection) lowers H — the
        Muter baseline's detection signal."""
        base = [10] * 20
        attacked = base.copy()
        attacked[0] += 100
        assert shannon_entropy(attacked) < shannon_entropy(base)


class TestEntropyVector:
    def test_matches_counter_probabilities(self):
        counter = BitCounter.from_ids([0b111, 0b000, 0b101], n_bits=3)
        expected = binary_entropy(counter.probabilities())
        assert entropy_vector(counter).tolist() == pytest.approx(list(expected))

    def test_empty_counter_gives_zeros(self):
        assert entropy_vector(BitCounter(11)).tolist() == [0.0] * 11


class TestGradient:
    def test_zero_at_half(self):
        assert entropy_gradient(0.5) == pytest.approx(0.0)

    def test_steep_at_small_p(self):
        assert entropy_gradient(0.01) > 6.0

    def test_antisymmetric(self):
        assert entropy_gradient(0.2) == pytest.approx(-entropy_gradient(0.8))

    def test_matches_numerical_derivative(self):
        p, eps = 0.3, 1e-6
        numeric = (binary_entropy(p + eps) - binary_entropy(p - eps)) / (2 * eps)
        assert entropy_gradient(p) == pytest.approx(numeric, rel=1e-4)

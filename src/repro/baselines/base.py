"""Common protocol for the baseline IDSes.

Every baseline follows the same two-phase life cycle as the core IDS:

1. :meth:`BaselineIDS.fit` on clean traffic (the training drives);
2. :meth:`BaselineIDS.scan` over a capture, producing one
   :class:`BaselineVerdict` per tumbling window.

The shared window semantics make the detection-rate and false-positive
comparisons in the cost/benchmark experiments apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.can.constants import SECOND_US
from repro.exceptions import DetectorError
from repro.io.columnar import ColumnTrace
from repro.io.trace import Trace


@dataclass(frozen=True)
class BaselineVerdict:
    """One window's verdict from a baseline IDS."""

    index: int
    t_start_us: int
    t_end_us: int
    n_messages: int
    n_attack_messages: int
    score: float
    alarm: bool
    judged: bool = True


class BaselineIDS:
    """Abstract baseline: fit on clean windows, scan traces into verdicts."""

    #: Human-readable name used in benchmark tables.
    name: str = "baseline"

    #: Whether the scheme can, in principle, flag identifiers it never
    #: saw in training (the paper criticises [11] for lacking this).
    handles_unseen_ids: bool = True

    #: Whether the scheme can localise the malicious identifier.
    localizes_ids: bool = False

    def __init__(self, window_us: int = 2 * SECOND_US, min_window_messages: int = 50):
        if window_us <= 0:
            raise DetectorError(f"window must be positive, got {window_us}")
        self.window_us = window_us
        self.min_window_messages = min_window_messages
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, windows: Sequence[Trace]) -> "BaselineIDS":
        """Learn normal behaviour from clean window traces."""
        if not windows:
            raise DetectorError(f"{self.name}: fit needs at least one clean window")
        self._fit(windows)
        self._fitted = True
        return self

    def scan(self, trace: Union[Trace, ColumnTrace]) -> List[BaselineVerdict]:
        """Judge every tumbling window of a capture.

        A :class:`~repro.io.columnar.ColumnTrace` goes through the
        vectorised :meth:`scan_columns` path; a record trace takes the
        original per-window loop.  Both produce the same verdicts.
        """
        if not self._fitted:
            raise DetectorError(f"{self.name}: scan before fit")
        if isinstance(trace, ColumnTrace):
            return self.scan_columns(trace)
        verdicts: List[BaselineVerdict] = []
        for index, window in enumerate(trace.time_windows(self.window_us)):
            if len(window) == 0:
                continue
            judged = len(window) >= self.min_window_messages
            score, alarm = self._judge(window) if judged else (0.0, False)
            verdicts.append(
                BaselineVerdict(
                    index=index,
                    t_start_us=window.start_us,
                    t_end_us=window.start_us + self.window_us,
                    n_messages=len(window),
                    n_attack_messages=window.attack_count,
                    score=score,
                    alarm=alarm,
                    judged=judged,
                )
            )
        return verdicts

    def scan_columns(self, ct: ColumnTrace) -> List[BaselineVerdict]:
        """Vectorised tumbling-window scan over a columnar capture.

        Window segmentation, message/attack counting and verdict
        assembly are vectorised here once for every baseline; the
        per-scheme scoring comes from :meth:`_scores_columns` when the
        subclass provides a vectorised implementation, otherwise from
        :meth:`_judge` on per-window record views (still cheaper than a
        record-trace scan because slicing is zero-copy).

        The verdict sequence matches :meth:`scan` on the equivalent
        record trace: indices count every grid window (including empty
        ones, which emit no verdict) and ``t_start_us`` is the first
        record's timestamp inside the window, exactly like the
        record-path's ``window.start_us``.
        """
        if not self._fitted:
            raise DetectorError(f"{self.name}: scan before fit")
        grid, seg_starts, seg_ends = ct.window_segments(self.window_us)
        n_windows = grid.size
        if n_windows == 0:
            return []
        n_messages = seg_ends - seg_starts
        attacks = ct.attack_counts(seg_starts)
        judged = n_messages >= self.min_window_messages
        scored = self._scores_columns(ct, grid, seg_starts, seg_ends, judged)
        verdicts: List[BaselineVerdict] = []
        for w in range(n_windows):
            if scored is not None:
                score, alarm = float(scored[0][w]), bool(scored[1][w])
                if not judged[w]:
                    score, alarm = 0.0, False
            elif judged[w]:
                window = ct.slice(int(seg_starts[w]), int(seg_ends[w])).to_trace()
                score, alarm = self._judge(window)
            else:
                score, alarm = 0.0, False
            t_start = int(ct.timestamp_us[seg_starts[w]])
            verdicts.append(
                BaselineVerdict(
                    index=int(grid[w]),
                    t_start_us=t_start,
                    t_end_us=t_start + self.window_us,
                    n_messages=int(n_messages[w]),
                    n_attack_messages=int(attacks[w]),
                    score=score,
                    alarm=alarm,
                    judged=bool(judged[w]),
                )
            )
        return verdicts

    # ------------------------------------------------------------------
    # Cost model hooks (Section V.E comparison)
    # ------------------------------------------------------------------
    def memory_slots(self) -> int:
        """Number of state slots the scheme keeps at runtime."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _fit(self, windows: Sequence[Trace]) -> None:
        raise NotImplementedError

    def _judge(self, window: Trace) -> tuple:
        """Return ``(score, alarm)`` for one window."""
        raise NotImplementedError

    def _scores_columns(
        self,
        ct: ColumnTrace,
        grid: np.ndarray,
        seg_starts: np.ndarray,
        seg_ends: np.ndarray,
        judged: np.ndarray,
    ) -> Optional[tuple]:
        """Vectorised ``(scores, alarms)`` arrays over all windows.

        Subclasses return per-window arrays covering every segment (the
        base path zeroes out non-judged windows) or None to fall back to
        per-window :meth:`_judge` calls.
        """
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def detection_rate(verdicts: Sequence[BaselineVerdict]) -> float:
        """The paper's Dr computed over baseline verdicts."""
        total = sum(v.n_attack_messages for v in verdicts if v.judged)
        if total == 0:
            return 0.0
        detected = sum(
            v.n_attack_messages for v in verdicts if v.judged and v.alarm
        )
        return detected / total

    @staticmethod
    def false_positive_rate(verdicts: Sequence[BaselineVerdict]) -> float:
        """Alarmed clean windows over all clean judged windows."""
        clean = [v for v in verdicts if v.judged and v.n_attack_messages == 0]
        if not clean:
            return 0.0
        return sum(1 for v in clean if v.alarm) / len(clean)

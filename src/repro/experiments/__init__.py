"""Experiment harness: one module per paper artifact.

==================  ========================================================
:mod:`~repro.experiments.fig2`       Fig. 2 — golden template + attack case study
:mod:`~repro.experiments.fig3`       Fig. 3 — injection/detection rate vs identifier
:mod:`~repro.experiments.table1`     Table I — detection & inference per scenario
:mod:`~repro.experiments.stability`  Sec. IV.B — entropy stability across driving
:mod:`~repro.experiments.cost`       Sec. V.E — cost & capability comparison
:mod:`~repro.experiments.throughput` Streaming vs batch detection at scale
:mod:`~repro.experiments.fleet`      Incremental fleet scanning vs cold scans
:mod:`~repro.experiments.runtime`    Executor backends (serial/pool/queue) sized
:mod:`~repro.experiments.ooc_smoke`  Out-of-core scan under an RSS ceiling
==================  ========================================================

Each module exposes ``run(...)`` returning a structured result object
with a ``render()`` method producing the table/series as text; the
performance-facing results also expose ``bench_records()``, flat JSON
measurements collected into ``results/BENCH_*.json`` by
:mod:`repro.experiments.bench`.  The ``benchmarks/`` directory wraps
these in pytest-benchmark entries.
"""

from repro.experiments.runner import (
    AttackRun,
    ExperimentSetup,
    ScenarioResult,
    build_setup,
    run_attack,
    run_scenario,
)
from repro.experiments.scenarios import TABLE1_SCENARIOS, ScenarioSpec, scenario

__all__ = [
    "AttackRun",
    "ExperimentSetup",
    "ScenarioResult",
    "ScenarioSpec",
    "TABLE1_SCENARIOS",
    "build_setup",
    "run_attack",
    "run_scenario",
    "scenario",
]

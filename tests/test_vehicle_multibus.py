"""Dual-bus vehicle and the gateway bridge."""

import numpy as np
import pytest

from repro.can.frame import CANFrame
from repro.exceptions import BusConfigError, NodeStateError
from repro.vehicle import DualBusVehicle, ford_fusion_catalog
from repro.vehicle.multibus import HS_CLUSTERS, BridgeNode, fuse_bus_traces


class TestBridgeNode:
    def test_queue_order_by_release(self):
        bridge = BridgeNode(latency_us=100)
        bridge.enqueue(CANFrame(0x200), arrival_us=50)
        bridge.enqueue(CANFrame(0x100), arrival_us=10)
        assert bridge.next_release() == 110
        assert bridge.peek().can_id == 0x100

    def test_empty_bridge(self):
        bridge = BridgeNode()
        assert bridge.next_release() is None
        with pytest.raises(NodeStateError):
            bridge.peek()

    def test_win_pops(self):
        bridge = BridgeNode(latency_us=0)
        bridge.enqueue(CANFrame(0x100), 0)
        bridge.on_win(0)
        assert bridge.next_release() is None

    def test_overflow_drops(self):
        bridge = BridgeNode()
        for index in range(bridge.max_queue + 10):
            bridge.enqueue(CANFrame(0x100), index)
        assert bridge.queue_depth == bridge.max_queue
        assert bridge.dropped_overflow == 10

    def test_rejects_negative_latency(self):
        with pytest.raises(BusConfigError):
            BridgeNode(latency_us=-1)


class TestDualBusVehicle:
    @pytest.fixture(scope="class")
    def vehicle(self):
        vehicle = DualBusVehicle(seed=3)
        vehicle.run(4.0)
        return vehicle

    def test_cluster_split(self, vehicle):
        hs_clusters = {e.cluster for e in vehicle.hs_catalog}
        ms_clusters = {e.cluster for e in vehicle.ms_catalog}
        assert hs_clusters == set(HS_CLUSTERS)
        assert not (ms_clusters & set(HS_CLUSTERS))

    def test_bus_rates(self, vehicle):
        assert vehicle.hs_bus.bit_us == 2   # 500 kbit/s
        assert vehicle.ms_bus.bit_us == 8   # 125 kbit/s

    def test_both_buses_carry_traffic(self, vehicle):
        assert len(vehicle.hs_bus.trace) > 1000
        assert len(vehicle.ms_bus.trace) > 500

    def test_busloads_sane(self, vehicle):
        loads = vehicle.busloads()
        assert 0.02 < loads["high_speed"] < 0.9
        assert 0.02 < loads["middle_speed"] < 0.9

    def test_forwarded_frames_reach_ms_bus(self, vehicle):
        ms_ids = set(r.can_id for r in vehicle.ms_bus.trace)
        forwarded_seen = ms_ids & vehicle.forward_ids
        assert forwarded_seen  # bridge traffic arrived
        # Forwarded frames originate from the bridge node.
        bridge_frames = [
            r for r in vehicle.ms_bus.trace if r.source == "gateway_bridge"
        ]
        assert bridge_frames
        assert {r.can_id for r in bridge_frames} <= vehicle.forward_ids

    def test_forward_timing_after_source(self, vehicle):
        """A forwarded frame appears on MS only after it ran on HS."""
        target = sorted(vehicle.forward_ids)[0]
        hs_first = next(
            r.timestamp_us for r in vehicle.hs_bus.trace if r.can_id == target
        )
        ms_first = next(
            r.timestamp_us
            for r in vehicle.ms_bus.trace
            if r.can_id == target and r.source == "gateway_bridge"
        )
        assert ms_first > hs_first

    def test_rejects_foreign_forward_ids(self):
        catalog = ford_fusion_catalog(seed=0)
        ms_only = [e.can_id for e in catalog if e.cluster == "comfort"][:1]
        with pytest.raises(BusConfigError):
            DualBusVehicle(catalog=catalog, forward_ids=ms_only)

    def test_ids_on_both_buses_detectable(self, vehicle):
        """Both captures feed the IDS: build a template per bus and
        verify clean traffic stays quiet (the paper's claim that the
        method works for high-speed CAN too)."""
        from repro.core import IDSConfig, IDSPipeline, TemplateBuilder

        for bus_trace in (vehicle.hs_bus.trace, vehicle.ms_bus.trace):
            config = IDSConfig(template_windows=2, min_window_messages=30)
            builder = TemplateBuilder(config)
            added = builder.add_trace_windows(bus_trace)
            assert added >= 2
            template = builder.build()
            report = IDSPipeline(template, config).analyze(bus_trace)
            assert report.false_positive_rate <= 0.5


class TestMultiBusFanIn:
    """Columnar fan-in: tagged per-bus captures merge into one trace and
    detect per segment with a fused verdict."""

    @pytest.fixture(scope="class")
    def fused(self):
        return DualBusVehicle(seed=5).run_columns(4.0)

    def test_run_columns_tags_both_buses(self, fused):
        assert set(fused.bus_labels()) == {"high_speed", "middle_speed"}
        assert len(fused.for_bus("high_speed")) > 0
        assert len(fused.for_bus("middle_speed")) > 0

    def test_fan_in_matches_separate_runs(self):
        vehicle = DualBusVehicle(seed=6)
        hs, ms = vehicle.run(3.0)
        fused = fuse_bus_traces(high_speed=hs, middle_speed=ms)
        assert fused.for_bus("high_speed") == hs.to_columns().with_bus("high_speed")
        assert len(fused) == len(hs) + len(ms)
        # merged stream is time-ordered across buses
        assert (np.diff(fused.timestamp_us) >= 0).all()

    def test_fuse_requires_captures(self):
        with pytest.raises(BusConfigError):
            fuse_bus_traces()

    def test_analyze_multibus_per_segment_and_fused(self, fused):
        """Train one template per bus (as a per-segment deployment
        would), inject extra traffic on the middle-speed bus only, and
        check the fused report localises the alarmed segment."""
        from repro.core import IDSConfig, IDSPipeline, MultiBusReport, TemplateBuilder
        from repro.io import ColumnTrace, Trace, TraceRecord

        config = IDSConfig(template_windows=2, min_window_messages=30)
        ms = fused.for_bus("middle_speed")
        builder = TemplateBuilder(config)
        assert builder.add_trace_windows(ms.to_trace()) >= 2
        pipeline = IDSPipeline(builder.build(), config)

        # Clean per-bus analysis through the multibus path.
        report = pipeline.analyze_multibus(ms.with_bus("middle_speed"))
        assert isinstance(report, MultiBusReport)
        assert report.buses == ("middle_speed",)

        # Inject a high-rate identifier into the MS segment only.
        start = ms.start_us
        flood = Trace(
            [TraceRecord(start + i * 2_000, 0x7DF) for i in range(1500)]
        ).to_columns().with_bus("middle_speed")
        attacked = ColumnTrace.merge(ms.with_bus("middle_speed"), flood)
        attacked_report = pipeline.analyze_multibus(attacked)
        assert attacked_report.fused_alarm
        assert attacked_report.alarmed_buses == ["middle_speed"]
        assert "fused verdict: ATTACK" in attacked_report.summary()

    def test_analyze_multibus_rejects_untagged(self, fused):
        from repro.core import IDSConfig, IDSPipeline, TemplateBuilder
        from repro.exceptions import DetectorError

        config = IDSConfig(template_windows=2, min_window_messages=30)
        ms = fused.for_bus("middle_speed")
        builder = TemplateBuilder(config)
        builder.add_trace_windows(ms.to_trace())
        pipeline = IDSPipeline(builder.build(), config)
        untagged = ms.to_trace().to_columns()
        with pytest.raises(DetectorError, match="untagged"):
            pipeline.analyze_multibus(untagged)
        with pytest.raises(DetectorError, match="ColumnTrace"):
            pipeline.analyze_multibus(ms.to_trace())
        # A merge mixing tagged and untagged parts must not yield a
        # phantom bus labelled "".
        from repro.io import ColumnTrace

        mixed = ColumnTrace.merge(ms.with_bus("middle_speed"), untagged)
        with pytest.raises(DetectorError, match="untagged"):
            pipeline.analyze_multibus(mixed)


class TestPerBusTemplates:
    """The per-bus template satellite: train all buses in one call,
    analyze with the mapping, persist one file per (vehicle, bus)."""

    @pytest.fixture(scope="class")
    def fused(self):
        return DualBusVehicle(seed=7).run_columns(5.0)

    @pytest.fixture(scope="class")
    def config(self):
        from repro.core import IDSConfig

        return IDSConfig(template_windows=2, min_window_messages=30)

    @pytest.fixture(scope="class")
    def bus_templates(self, fused, config):
        from repro.vehicle.multibus import build_bus_templates

        return build_bus_templates(fused, config)

    def test_build_bus_templates_one_per_bus(self, fused, config, bus_templates):
        assert set(bus_templates) == {"high_speed", "middle_speed"}
        # Each template matches a hand-trained one for its segment.
        from repro.core import TemplateBuilder

        for label, template in bus_templates.items():
            builder = TemplateBuilder(config)
            builder.add_trace_windows(fused.for_bus(label))
            manual = builder.build()
            assert np.array_equal(template.mean_entropy, manual.mean_entropy)
            assert np.array_equal(template.thresholds, manual.thresholds)

    def test_build_rejects_untagged(self, fused, config):
        from repro.vehicle.multibus import build_bus_templates

        with pytest.raises(BusConfigError):
            build_bus_templates(fused.to_trace().to_columns(), config)
        with pytest.raises(BusConfigError):
            build_bus_templates(fused.to_trace(), config)

    def test_analyze_multibus_uses_and_returns_mapping(
        self, fused, config, bus_templates
    ):
        from repro.core import IDSPipeline

        pipeline = IDSPipeline(bus_templates["middle_speed"], config)
        report = pipeline.analyze_multibus(fused, templates=bus_templates)
        assert set(report.templates) == {"high_speed", "middle_speed"}
        assert report.templates["high_speed"] is bus_templates["high_speed"]
        # Per-bus verdicts match analyzing each segment with its own
        # template directly.
        for label in report.buses:
            direct = IDSPipeline(bus_templates[label], config).analyze(
                fused.for_bus(label)
            )
            assert direct.to_dict() == report.per_bus[label].to_dict()
        # Without a mapping, every bus is judged by the pipeline's own
        # template and the report says so.
        fallback = pipeline.analyze_multibus(fused)
        assert all(
            t is pipeline.template for t in fallback.templates.values()
        )

    def test_unknown_bus_in_mapping_rejected(self, fused, config, bus_templates):
        from repro.core import IDSPipeline
        from repro.exceptions import DetectorError

        pipeline = IDSPipeline(bus_templates["middle_speed"], config)
        bad = dict(bus_templates)
        bad["body"] = bus_templates["middle_speed"]
        with pytest.raises(DetectorError, match="body"):
            pipeline.analyze_multibus(fused, templates=bad)

    def test_store_persists_report_templates(
        self, fused, config, bus_templates, tmp_path
    ):
        """The end-to-end satellite flow: analyze -> persist the
        report's mapping -> reload -> identical verdicts, no hand
        training."""
        from repro.core import IDSPipeline
        from repro.fleet import FleetStore

        pipeline = IDSPipeline(bus_templates["middle_speed"], config)
        report = pipeline.analyze_multibus(fused, templates=bus_templates)
        store = FleetStore(tmp_path / "fleet")
        store.save_bus_templates("car-a", report.templates)
        reloaded = store.load_bus_templates("car-a")
        assert set(reloaded) == set(report.templates)
        again = pipeline.analyze_multibus(fused, templates=reloaded)
        for label in report.buses:
            assert again.per_bus[label].to_dict() == report.per_bus[label].to_dict()

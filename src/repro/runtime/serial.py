"""The reference executor: one process, one loop.

Every other backend is validated against this one — a
:class:`SerialExecutor` run *defines* the correct result of a spec over
a path list.  It is also the right backend for tests, notebooks,
already-forked servers and single-capture scans, where pool setup costs
more than it saves.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

from repro.runtime.base import Executor, ScanSpec

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    """Run every task inline, in input order."""

    def run(
        self, spec: ScanSpec, paths: Sequence[Union[str, Path]]
    ) -> List[list]:
        scan = spec.make_scanner()
        return [scan(str(p)) for p in paths]

    def describe(self) -> str:
        return "serial"

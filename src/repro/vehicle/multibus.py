"""Dual-bus vehicle: middle-speed and high-speed CAN with a gateway.

The paper's test car exposes two buses through OBD-II — 125 kbit/s
middle-speed and 500 kbit/s high-speed — and the paper evaluates on the
middle-speed one while noting the method "would also work for high-speed
CAN".  This module builds that topology:

* the high-speed bus carries powertrain and chassis traffic;
* the middle-speed bus carries body, comfort and diagnostics;
* a :class:`BridgeNode` on the gateway forwards a configured identifier
  set from the high-speed bus onto the middle-speed bus (instrument
  cluster data in a real car), so the MS capture contains re-timed HS
  frames exactly like a production gateway produces.

Each bus can carry its own IDS instance; the multibus extension tests
confirm the method works on both, as the paper asserts.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.can.bus import Bus, BusConfig
from repro.can.constants import BAUD_HS_CAN, BAUD_MS_CAN, SECOND_US
from repro.can.frame import CANFrame
from repro.can.node import Node
from repro.exceptions import BusConfigError, NodeStateError
from repro.io.columnar import ColumnTrace
from repro.io.trace import Trace, TraceRecord
from repro.vehicle.driving import DrivingScenario, scenario_by_name
from repro.vehicle.ecu_profiles import build_ecus
from repro.vehicle.ids_catalog import VehicleCatalog, ford_fusion_catalog

#: Clusters carried by the high-speed bus.
HS_CLUSTERS = frozenset({"powertrain", "chassis"})


class BridgeNode(Node):
    """A queue-backed node the gateway uses to re-transmit frames.

    Frames arrive via :meth:`enqueue` (from a listener on the source
    bus) and contend for the destination bus like any node; gateway
    store-and-forward adds a configurable processing latency.
    """

    def __init__(self, name: str = "gateway_bridge", latency_us: int = 500) -> None:
        super().__init__(name)
        if latency_us < 0:
            raise BusConfigError(f"latency must be >= 0, got {latency_us}")
        self.latency_us = latency_us
        self._queue: List[Tuple[int, int, CANFrame]] = []
        self._sequence = 0
        self.dropped_overflow = 0
        self.max_queue = 64  # typical gateway buffer depth

    def enqueue(self, frame: CANFrame, arrival_us: int) -> None:
        """Accept a frame from the source bus for forwarding."""
        if len(self._queue) >= self.max_queue:
            self.dropped_overflow += 1  # gateways drop on overflow
            return
        heapq.heappush(
            self._queue,
            (arrival_us + self.latency_us, self._sequence, frame),
        )
        self._sequence += 1

    def next_release(self) -> Optional[int]:
        return self._queue[0][0] if self._queue else None

    def peek(self) -> CANFrame:
        if not self._queue:
            raise NodeStateError(f"bridge {self.name} has no pending frame")
        return self._queue[0][2]

    def on_win(self, t_us: int) -> None:
        super().on_win(t_us)
        heapq.heappop(self._queue)

    @property
    def queue_depth(self) -> int:
        """Frames currently waiting to be forwarded."""
        return len(self._queue)


class DualBusVehicle:
    """The two-bus topology with a forwarding gateway.

    Parameters
    ----------
    catalog:
        The full vehicle catalog; entries are split by cluster.
    scenario:
        Driving scenario applied to both buses.
    forward_ids:
        Identifiers forwarded HS -> MS (defaults to every 10th
        powertrain identifier — cluster-style data).
    seed:
        Seeds both buses' ECU schedules.
    """

    def __init__(
        self,
        catalog: Optional[VehicleCatalog] = None,
        scenario: object = "city",
        forward_ids: Optional[Iterable[int]] = None,
        seed: int = 0,
    ) -> None:
        self.catalog = catalog or ford_fusion_catalog(seed=0)
        if isinstance(scenario, str):
            scenario = scenario_by_name(scenario)
        self.scenario: DrivingScenario = scenario

        hs_entries = [e for e in self.catalog if e.cluster in HS_CLUSTERS]
        ms_entries = [e for e in self.catalog if e.cluster not in HS_CLUSTERS]
        if not hs_entries or not ms_entries:
            raise BusConfigError("catalog must populate both buses")
        self.hs_catalog = VehicleCatalog(hs_entries)
        self.ms_catalog = VehicleCatalog(ms_entries)

        self.hs_bus = Bus(BusConfig(baud_rate=BAUD_HS_CAN))
        self.ms_bus = Bus(BusConfig(baud_rate=BAUD_MS_CAN))
        for ecu in build_ecus(self.hs_catalog, self.scenario, seed=seed):
            self.hs_bus.attach(ecu)
        for ecu in build_ecus(self.ms_catalog, self.scenario, seed=seed + 1):
            self.ms_bus.attach(ecu)

        if forward_ids is None:
            forward_ids = [e.can_id for e in hs_entries[::10]]
        self.forward_ids: FrozenSet[int] = frozenset(forward_ids)
        unknown = self.forward_ids - self.hs_catalog.id_set()
        if unknown:
            raise BusConfigError(
                f"forward set contains non-HS identifiers: "
                + ", ".join(f"0x{i:03X}" for i in sorted(unknown))
            )
        self.bridge = BridgeNode()
        self.ms_bus.attach(self.bridge)
        self.hs_bus.attach_listener(self._maybe_forward)

    # ------------------------------------------------------------------
    def _maybe_forward(self, record: TraceRecord) -> None:
        if record.can_id in self.forward_ids:
            self.bridge.enqueue(
                CANFrame(record.can_id, record.data, extended=record.extended),
                record.timestamp_us,
            )

    def run(self, duration_s: float) -> Tuple[Trace, Trace]:
        """Advance both buses in lockstep slices; returns (HS, MS) traces.

        The buses are independent except for the bridge queue, so
        coarse-grained interleaving (10 ms slices) keeps forwarded-frame
        timing accurate to well under a bridge latency.
        """
        slice_us = 10_000
        total_us = int(duration_s * SECOND_US)
        elapsed = 0
        while elapsed < total_us:
            step = min(slice_us, total_us - elapsed)
            self.hs_bus.run(step)
            self.ms_bus.run(step)
            elapsed += step
        return self.hs_bus.trace, self.ms_bus.trace

    def run_columns(self, duration_s: float) -> ColumnTrace:
        """Run both buses and return the fused, bus-tagged capture.

        Convenience over :meth:`run` +
        :func:`fuse_bus_traces`: the high-speed capture is tagged
        ``"high_speed"``, the middle-speed one ``"middle_speed"``, and
        the merge interleaves them in time order while every record
        keeps its bus label — the input
        :meth:`~repro.core.pipeline.IDSPipeline.analyze_multibus`
        expects.
        """
        hs, ms = self.run(duration_s)
        return fuse_bus_traces(high_speed=hs, middle_speed=ms)

    def busloads(self) -> Dict[str, float]:
        """Busload per segment."""
        return {
            "high_speed": self.hs_bus.stats.busload(self.hs_bus.now_us),
            "middle_speed": self.ms_bus.stats.busload(self.ms_bus.now_us),
        }


def build_bus_templates(
    trace: ColumnTrace, config=None, exclude_attacked: bool = True
) -> dict:
    """Train one golden template per bus of a clean, bus-tagged capture.

    The paper runs one IDS instance per bus segment, which means one
    golden template per segment; this trains all of them from a single
    fused clean capture (e.g. :meth:`DualBusVehicle.run_columns`) by
    splitting each bus's records into config windows.  Windows carrying
    ground-truth attack messages are excluded by default — training on
    injected traffic inflates the thresholds until the template
    under-detects exactly those attacks.  Returns a
    ``{bus label: GoldenTemplate}`` mapping ready for
    :meth:`IDSPipeline.analyze_multibus`'s ``templates`` argument and
    :meth:`repro.fleet.store.FleetStore.save_bus_templates`.
    """
    from repro.core.template import TemplateBuilder  # cycle-free import

    if not isinstance(trace, ColumnTrace):
        raise BusConfigError(
            "build_bus_templates needs a bus-tagged ColumnTrace; tag "
            "per-bus captures with with_bus() and merge them first"
        )
    labels = trace.bus_labels()
    if not labels or "" in labels:
        raise BusConfigError(
            "trace carries untagged records; tag every per-bus capture "
            "with with_bus() before training"
        )
    templates = {}
    for label in labels:
        builder = TemplateBuilder(config)
        builder.add_trace_windows(
            trace.for_bus(label), exclude_attacked=exclude_attacked
        )
        templates[label] = builder.build()
    return templates


def fuse_bus_traces(**captures) -> ColumnTrace:
    """Fan per-bus captures into one bus-tagged columnar trace.

    Keyword names become bus labels::

        fused = fuse_bus_traces(high_speed=hs_trace, middle_speed=ms_trace)

    Accepts either trace representation per bus; records merge in time
    order (stable across buses) and each keeps its bus label, so
    detection layers can judge every segment independently and fuse the
    verdicts (see ``IDSPipeline.analyze_multibus``).
    """
    if not captures:
        raise BusConfigError("fuse_bus_traces needs at least one capture")
    tagged = [
        ColumnTrace.coerce(trace).with_bus(label)
        for label, trace in captures.items()
    ]
    return ColumnTrace.merge(*tagged)

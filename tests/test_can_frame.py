"""CANFrame validation and derived properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.can.frame import CANFrame
from repro.exceptions import FrameError


class TestValidation:
    def test_basic_frame(self):
        frame = CANFrame(0x1A4, b"\xDE\xAD")
        assert frame.can_id == 0x1A4
        assert frame.dlc == 2
        assert not frame.extended

    def test_base_id_upper_bound(self):
        CANFrame(0x7FF)  # largest legal base id
        with pytest.raises(FrameError):
            CANFrame(0x800)

    def test_extended_id_upper_bound(self):
        CANFrame(0x1FFFFFFF, extended=True)
        with pytest.raises(FrameError):
            CANFrame(0x20000000, extended=True)

    def test_negative_id(self):
        with pytest.raises(FrameError):
            CANFrame(-1)

    def test_payload_too_long(self):
        with pytest.raises(FrameError):
            CANFrame(0x100, b"\x00" * 9)

    def test_rtr_with_payload_rejected(self):
        with pytest.raises(FrameError):
            CANFrame(0x100, b"\x01", rtr=True)

    def test_bytearray_payload_normalised(self):
        frame = CANFrame(0x100, bytearray(b"\x01\x02"))
        assert isinstance(frame.data, bytes)

    def test_non_bytes_payload_rejected(self):
        with pytest.raises(FrameError):
            CANFrame(0x100, "junk")  # type: ignore[arg-type]

    def test_frozen(self):
        frame = CANFrame(0x100)
        with pytest.raises(Exception):
            frame.can_id = 0x200  # type: ignore[misc]


class TestDerived:
    def test_id_width(self):
        assert CANFrame(0x100).id_width == 11
        assert CANFrame(0x100, extended=True).id_width == 29

    def test_id_bit_tuple_matches_id(self):
        frame = CANFrame(0x555)
        assert frame.id_bit_tuple() == (1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1)

    def test_wire_bits_positive(self):
        assert CANFrame(0x100, b"\x00" * 8).wire_bits() > 100

    @given(st.integers(min_value=0, max_value=0x7FF), st.binary(max_size=8))
    def test_equality_is_structural(self, can_id, data):
        assert CANFrame(can_id, data) == CANFrame(can_id, data)

    def test_str_contains_id(self):
        assert "1A4" in str(CANFrame(0x1A4, b"\x01"))

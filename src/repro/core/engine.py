"""Vectorised batch detection over columnar traces.

:class:`BatchEntropyEngine` computes exactly what the streaming
:class:`~repro.core.detector.EntropyDetector` computes — the same
tumbling windows, per-bit probabilities, entropies, deviations, verdicts
and alerts — but over a whole recorded capture at once: window
segmentation is one integer division plus a boundary scan, the per-bit
1-counts of *all* windows come from ``n_bits`` ``np.add.reduceat``
passes, and every window is judged against the golden template with a
single broadcasted comparison.

The result is bit-for-bit identical to ``EntropyDetector.scan`` (the
parity test suite asserts array equality, not approximation): both paths
divide the same ``int64`` counts, feed the same ``float64``
probabilities through :func:`~repro.core.entropy.binary_entropy`, and
subtract the same template arrays.  The streaming detector remains the
deployment path for live buses; this engine is the path for recorded
captures, where it is orders of magnitude faster than feeding records
through the interpreter one by one.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.core.alerts import AlertSink
from repro.core.bitprob import check_id_range, window_bit_counts
from repro.core.config import IDSConfig
from repro.core.detector import WindowResult
from repro.core.entropy import binary_entropy
from repro.core.template import GoldenTemplate
from repro.exceptions import DetectorError
from repro.io.columnar import ColumnTrace
from repro.io.trace import Trace

__all__ = ["BatchEntropyEngine", "batch_scan"]


class BatchEntropyEngine:
    """Whole-capture tumbling-window entropy detection.

    Construction mirrors :class:`~repro.core.detector.EntropyDetector`;
    :meth:`scan` accepts either representation and converts record
    traces on entry (callers holding large captures should pass a
    :class:`~repro.io.columnar.ColumnTrace` to skip the conversion).
    """

    def __init__(
        self,
        template: GoldenTemplate,
        config: Optional[IDSConfig] = None,
        sink: Optional[AlertSink] = None,
    ) -> None:
        self.config = config or IDSConfig()
        if template.n_bits != self.config.n_bits:
            raise DetectorError(
                f"template monitors {template.n_bits} bits, config expects "
                f"{self.config.n_bits}"
            )
        self.template = template
        self.sink = sink if sink is not None else AlertSink()

    # ------------------------------------------------------------------
    def scan(self, trace: Union[Trace, ColumnTrace]) -> List[WindowResult]:
        """Judge every tumbling window of a recorded capture.

        Produces the identical :class:`WindowResult` sequence the
        streaming detector emits: one result per *non-empty* grid window
        (silent gaps are skipped without verdicts), indices sequential
        over the emitted windows, the trailing partial window included.
        """
        ct = ColumnTrace.coerce(trace)
        if len(ct) == 0:
            return []
        n_bits = self.config.n_bits
        ids = ct.can_id
        check_id_range(ids, n_bits)

        grid, seg_starts, seg_ends = ct.window_segments(self.config.window_us)
        n_windows = grid.size
        t_starts = ct.start_us + grid * np.int64(self.config.window_us)

        counts = window_bit_counts(ids, seg_starts, n_bits)
        totals = seg_ends - seg_starts
        attacks = ct.attack_counts(seg_starts)

        # Same float path as BitCounter.probabilities(): int64 counts
        # divided by the float total — then the shared entropy function.
        probabilities = counts / totals[:, None].astype(float)
        entropy = np.asarray(binary_entropy(probabilities), dtype=float)
        judged = totals >= self.config.min_window_messages
        deviations = np.where(
            judged[:, None], entropy - self.template.mean_entropy, 0.0
        )
        violated = np.abs(deviations) > self.template.thresholds
        violated &= judged[:, None]

        window_us = self.config.window_us
        results: List[WindowResult] = []
        for w in range(n_windows):
            result = WindowResult(
                index=w,
                t_start_us=int(t_starts[w]),
                t_end_us=int(t_starts[w]) + window_us,
                n_messages=int(totals[w]),
                n_attack_messages=int(attacks[w]),
                probabilities=probabilities[w],
                entropy=entropy[w],
                deviations=deviations[w],
                violated=violated[w],
                judged=bool(judged[w]),
            )
            if result.alarm:
                self.sink.emit(result.to_alert())
            results.append(result)
        return results


def batch_scan(
    trace: Union[Trace, ColumnTrace],
    template: GoldenTemplate,
    config: Optional[IDSConfig] = None,
    sink: Optional[AlertSink] = None,
) -> List[WindowResult]:
    """One-call batch detection (convenience wrapper)."""
    return BatchEntropyEngine(template, config, sink).scan(trace)

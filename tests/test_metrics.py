"""Evaluation metrics."""

import pytest

from repro.exceptions import ReproError
from repro.metrics.confusion import ConfusionMatrix, window_confusion
from repro.metrics.cost import bitslice_cost, compare_costs
from repro.metrics.latency import detection_latency_us
from repro.metrics.rates import (
    detection_rate,
    expected_injected,
    hit_rate,
    injection_rate,
)


class FakeWindow:
    def __init__(self, judged=True, alarm=False, attacks=0, start=0, end=1000):
        self.judged = judged
        self.alarm = alarm
        self.n_attack_messages = attacks
        self.t_start_us = start
        self.t_end_us = end


class TestInjectionRate:
    def test_basic(self):
        assert injection_rate(3, 4) == 0.75

    def test_zero_attempts(self):
        assert injection_rate(0, 0) == 0.0

    def test_wins_cannot_exceed_attempts(self):
        with pytest.raises(ReproError):
            injection_rate(5, 4)

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            injection_rate(-1, 4)


class TestDetectionRate:
    def test_weighted_by_messages(self):
        windows = [
            FakeWindow(alarm=True, attacks=30),
            FakeWindow(alarm=False, attacks=10),
        ]
        assert detection_rate(windows) == 0.75

    def test_ignores_unjudged(self):
        windows = [
            FakeWindow(alarm=True, attacks=10),
            FakeWindow(judged=False, alarm=False, attacks=100),
        ]
        assert detection_rate(windows) == 1.0

    def test_no_attacks_gives_zero(self):
        assert detection_rate([FakeWindow()]) == 0.0


class TestHitRate:
    def test_full_hit(self):
        assert hit_rate([1, 2, 3], {2}) == 1.0

    def test_partial(self):
        assert hit_rate([1, 2], {2, 9}) == 0.5

    def test_miss(self):
        assert hit_rate([1, 2], {5}) == 0.0

    def test_requires_truth(self):
        with pytest.raises(ReproError):
            hit_rate([1], set())


class TestExpectedInjected:
    def test_formula(self):
        # Nm = Ir x f x T0 (the paper's equation).
        assert expected_injected(0.8, 50.0, 10.0) == pytest.approx(400.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            expected_injected(1.5, 50.0, 10.0)
        with pytest.raises(ReproError):
            expected_injected(0.5, -1.0, 10.0)


class TestConfusion:
    def test_counts(self):
        windows = [
            FakeWindow(alarm=True, attacks=5),    # TP
            FakeWindow(alarm=True, attacks=0),    # FP
            FakeWindow(alarm=False, attacks=5),   # FN
            FakeWindow(alarm=False, attacks=0),   # TN
            FakeWindow(judged=False, alarm=True, attacks=5),  # skipped
        ]
        matrix = window_confusion(windows)
        assert (matrix.tp, matrix.fp, matrix.fn, matrix.tn) == (1, 1, 1, 1)

    def test_derived_scores(self):
        matrix = ConfusionMatrix(tp=8, fp=2, fn=2, tn=88)
        assert matrix.precision == 0.8
        assert matrix.recall == 0.8
        assert matrix.f1 == pytest.approx(0.8)
        assert matrix.false_positive_rate == pytest.approx(2 / 90)
        assert matrix.accuracy == pytest.approx(0.96)

    def test_degenerate_scores_are_zero(self):
        empty = ConfusionMatrix()
        assert empty.precision == 0.0
        assert empty.recall == 0.0
        assert empty.f1 == 0.0
        assert empty.accuracy == 0.0

    def test_addition(self):
        a = ConfusionMatrix(tp=1, fp=2, fn=3, tn=4)
        b = ConfusionMatrix(tp=10, fp=20, fn=30, tn=40)
        combined = a + b
        assert combined.tp == 11
        assert combined.total == 110


class TestLatency:
    def test_same_window_latency(self):
        windows = [
            FakeWindow(attacks=0, start=0, end=1000),
            FakeWindow(alarm=True, attacks=5, start=1000, end=2000),
        ]
        assert detection_latency_us(windows) == 1000

    def test_delayed_alarm(self):
        windows = [
            FakeWindow(attacks=5, start=0, end=1000),
            FakeWindow(alarm=True, attacks=5, start=1000, end=2000),
        ]
        assert detection_latency_us(windows) == 2000

    def test_no_alarm_returns_none(self):
        assert detection_latency_us([FakeWindow(attacks=5)]) is None

    def test_no_attack_returns_none(self):
        assert detection_latency_us([FakeWindow(alarm=True)]) is None


class TestCostModels:
    def test_bitslice_constant_memory(self):
        assert bitslice_cost().memory_slots == 11

    def test_comparison_ordering(self):
        """The paper's claim: 11 slots vs hundreds for the alternatives."""
        models = {m.name: m for m in compare_costs(n_ids=223)}
        ours = models["bit-entropy (this paper)"]
        for name, model in models.items():
            if name != ours.name:
                assert model.memory_slots > 10 * ours.memory_slots

    def test_as_row_keys(self):
        row = bitslice_cost().as_row()
        assert row["scheme"].startswith("bit-entropy")
        assert row["localizes"] == "yes"

"""Fleet drift analytics: aggregation, pooled metrics, CUSUM alarms."""

import numpy as np
import pytest

from repro.attacks import SingleIDAttacker
from repro.core import DetectionReport, IDSPipeline, WindowResult
from repro.exceptions import DetectorError
from repro.fleet import FleetStore, aggregate_vehicle, analyze_fleet
from repro.vehicle import VehicleSimulation
from repro.vehicle.traffic import simulate_drive


def clean_window(index, template, offset_thresholds):
    """A judged, clean, non-alarming window whose entropy sits
    ``offset_thresholds`` per-bit thresholds above the template mean."""
    n_bits = template.n_bits
    entropy = template.mean_entropy + offset_thresholds * template.thresholds
    return WindowResult(
        index=index,
        t_start_us=index * 2_000_000,
        t_end_us=(index + 1) * 2_000_000,
        n_messages=100,
        n_attack_messages=0,
        probabilities=np.full(n_bits, 0.5),
        entropy=entropy,
        deviations=entropy - template.mean_entropy,
        violated=np.zeros(n_bits, dtype=bool),
        judged=True,
    )


def report_with_offset(template, offset, n_windows=4):
    windows = [clean_window(i, template, offset) for i in range(n_windows)]
    return DetectionReport(windows=windows, alerts=[], inference=None)


class TestCUSUMDrift:
    def test_steady_vehicle_never_alarms(self, golden_template):
        captures = [
            (f"cap{i}.log", report_with_offset(golden_template, 0.0))
            for i in range(20)
        ]
        drift = aggregate_vehicle("car-a", captures, golden_template)
        assert not drift.drift_alarm
        assert drift.drift_score == 0.0
        assert drift.drift_bits == ()
        assert drift.first_drift_capture is None

    def test_subthreshold_shift_accumulates_to_alarm(self, golden_template):
        """The CUSUM property: a persistent 0.8-threshold shift never
        alarms any single window, but must flag the vehicle."""
        captures = [
            (f"cap{i}.log", report_with_offset(golden_template, 0.8))
            for i in range(6)
        ]
        for _, report in captures:
            assert not report.alarmed_windows  # below window thresholds
        drift = aggregate_vehicle(
            "car-a", captures, golden_template, drift_slack=0.5, drift_limit=1.0
        )
        assert drift.drift_alarm
        assert drift.drift_bits == tuple(range(1, golden_template.n_bits + 1))
        # 0.8 - 0.5 slack = 0.3/capture; crosses 1.0 at the 4th capture.
        assert drift.first_drift_capture == "cap3.log"

    def test_negative_drift_caught_too(self, golden_template):
        captures = [
            (f"cap{i}.log", report_with_offset(golden_template, -0.8))
            for i in range(6)
        ]
        drift = aggregate_vehicle(
            "car-a", captures, golden_template, drift_slack=0.5, drift_limit=1.0
        )
        assert drift.drift_alarm
        assert drift.cusum_neg.max() > drift.cusum_pos.max()

    def test_slack_filters_noise(self, golden_template):
        """Shifts below the slack never accumulate, however long."""
        captures = [
            (f"cap{i}.log", report_with_offset(golden_template, 0.4))
            for i in range(50)
        ]
        drift = aggregate_vehicle(
            "car-a", captures, golden_template, drift_slack=0.5, drift_limit=1.0
        )
        assert not drift.drift_alarm

    def test_time_ordering_not_name_ordering(self, golden_template):
        """Captures aggregate by first-window time, not input order."""
        early = report_with_offset(golden_template, 0.0)
        late = DetectionReport(
            windows=[clean_window(100, golden_template, 0.0)],
            alerts=[],
            inference=None,
        )
        drift = aggregate_vehicle(
            "car-a", [("zz_early.log", early), ("aa_late.log", late)],
            golden_template,
        )
        assert drift.capture_names == ["zz_early.log", "aa_late.log"]

    def test_tied_starts_order_names_naturally(self, golden_template):
        """Capture-relative logs all start near t=0, so the name
        carries the chronology — drive9 must precede drive10."""
        captures = [
            (name, report_with_offset(golden_template, 0.0))
            for name in ("drive10.log", "drive9.log", "drive2.log")
        ]
        drift = aggregate_vehicle("car-a", captures, golden_template)
        assert drift.capture_names == [
            "drive2.log", "drive9.log", "drive10.log",
        ]

    def test_all_attack_capture_contributes_no_drift_point(self, golden_template):
        windows = [clean_window(0, golden_template, 0.0)]
        attacked = WindowResult(
            index=0, t_start_us=0, t_end_us=2_000_000, n_messages=100,
            n_attack_messages=10,
            probabilities=np.full(golden_template.n_bits, 0.5),
            entropy=golden_template.mean_entropy.copy(),
            deviations=np.zeros(golden_template.n_bits),
            violated=np.zeros(golden_template.n_bits, dtype=bool),
            judged=True,
        )
        captures = [
            ("clean.log", DetectionReport(windows=windows, alerts=[], inference=None)),
            ("attack.log", DetectionReport(windows=[attacked], alerts=[], inference=None)),
        ]
        drift = aggregate_vehicle("car-a", captures, golden_template)
        assert drift.drift_names == ["clean.log"]
        assert drift.deviations.shape[0] == 1

    def test_zero_threshold_bit_never_poisons_cusum(self, golden_template):
        """A zero per-bit threshold (threshold_floor=0 + constant bit)
        must not turn the CUSUM into NaN and silently disable the
        alarm; a zero-range bit that moves must still drift."""
        import dataclasses

        thresholds = golden_template.thresholds.copy()
        thresholds[0] = 0.0
        template = dataclasses.replace(golden_template, thresholds=thresholds)
        steady = [
            (f"cap{i}.log", report_with_offset(template, 0.0)) for i in range(5)
        ]
        drift = aggregate_vehicle("car-a", steady, template)
        assert np.isfinite(drift.drift_score)
        assert not drift.drift_alarm
        # Now move bit 1 (zero training range) by a little: instant drift.
        moved = []
        for i in range(3):
            report = report_with_offset(template, 0.0)
            for w in report.windows:
                w.entropy[0] += 1e-3
                w.deviations[0] += 1e-3
            moved.append((f"cap{i}.log", report))
        drift = aggregate_vehicle(
            "car-a", moved, template, drift_slack=0.5, drift_limit=1.0
        )
        assert drift.drift_alarm and 1 in drift.drift_bits

    def test_rejects_bad_parameters(self, golden_template):
        with pytest.raises(DetectorError):
            aggregate_vehicle("v", [], golden_template, drift_slack=-1.0)
        with pytest.raises(DetectorError):
            aggregate_vehicle("v", [], golden_template, drift_limit=0.0)


@pytest.fixture()
def fleet_store(tmp_path, catalog, golden_template):
    """Two vehicles x two captures (one attacked), templates stored."""
    store = FleetStore(tmp_path / "fleet")
    for v, vid in enumerate(("car-a", "car-b")):
        store.add_capture(
            vid, "d0.log", simulate_drive(6.0, seed=80 + v, catalog=catalog)
        )
        if vid == "car-b":
            sim = VehicleSimulation(catalog=catalog, scenario="city", seed=90)
            sim.add_node(
                SingleIDAttacker(
                    can_id=catalog.ids[60], frequency_hz=100.0,
                    start_s=1.0, duration_s=4.0, seed=9,
                )
            )
            store.add_capture(vid, "d1.log", sim.run(6.0))
        else:
            store.add_capture(
                vid, "d1.log", simulate_drive(6.0, seed=85, catalog=catalog)
            )
        store.save_template(vid, golden_template)
    return store


class TestAnalyzeFleet:
    def test_fleet_aggregation_matches_per_capture_reports(
        self, fleet_store, golden_template, ids_config, catalog
    ):
        """The acceptance criterion: >= 2 vehicles x >= 2 captures with
        drift series and pooled Dr/FPR matching the per-capture reports."""
        pipeline = IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)
        report = analyze_fleet(fleet_store, pipeline, workers=1)
        assert report.vehicle_ids == ("car-a", "car-b")
        assert report.n_captures == 4

        # Pooled metrics must match recomputing from per-capture reports.
        for vid, vehicle in report.vehicles.items():
            assert len(vehicle.capture_names) == 2
            assert len(vehicle.drift_names) >= 1  # drift series present
            judged = [w for r in vehicle.reports for w in r.judged_windows]
            attacked = sum(w.n_attack_messages for w in judged)
            detected = sum(
                w.n_attack_messages for r in vehicle.reports
                for w in r.alarmed_windows
            )
            expected_dr = detected / attacked if attacked else 0.0
            assert vehicle.detection_rate == expected_dr
            clean = [w for w in judged if w.n_attack_messages == 0]
            expected_fpr = (
                sum(1 for w in clean if w.alarm) / len(clean) if clean else 0.0
            )
            assert vehicle.false_positive_rate == expected_fpr

        assert report.alarmed_vehicles == ["car-b"]
        assert report.vehicles["car-b"].detection_rate > 0.9
        assert report.detection_rate == report.vehicles["car-b"].detection_rate
        summary = report.summary()
        assert "fleet: 2 vehicles, 4 captures" in summary

    def test_to_dict_is_json_compatible(self, fleet_store, golden_template,
                                        ids_config, catalog):
        import json

        pipeline = IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)
        report = analyze_fleet(fleet_store, pipeline, workers=1)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["pooled"]["n_vehicles"] == 2
        assert payload["vehicles"]["car-b"]["alarmed_captures"] == ["d1.log"]
        assert len(payload["vehicles"]["car-a"]["drift"]["deviations"]) >= 1

    def test_retraining_one_vehicle_keeps_others_cached(
        self, fleet_store, golden_template, ids_config, catalog
    ):
        """Retraining car-a (even with different training knobs) must
        not cold-invalidate car-b's ledger."""
        from repro.core import build_template
        from repro.vehicle.traffic import record_template_windows

        pipeline = IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)
        analyze_fleet(fleet_store, pipeline, workers=1)
        retrained = build_template(
            record_template_windows(
                ids_config.template_windows, 2.0, seed=12, catalog=catalog
            ),
            ids_config.with_(alpha=5.0),
        )
        fleet_store.save_template("car-a", retrained)
        report = analyze_fleet(fleet_store, pipeline, workers=1)
        assert len(report.watch["car-a"].scanned) == 2  # its context changed
        assert report.watch["car-b"].fully_cached  # untouched vehicle

    def test_second_pass_cached_and_identical(
        self, fleet_store, golden_template, ids_config, catalog
    ):
        pipeline = IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)
        first = analyze_fleet(fleet_store, pipeline, workers=1)
        second = analyze_fleet(fleet_store, pipeline, workers=1)
        assert all(w.fully_cached for w in second.watch.values())
        assert {k: v.to_dict() for k, v in first.vehicles.items()} == {
            k: v.to_dict() for k, v in second.vehicles.items()
        }

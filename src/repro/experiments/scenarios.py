"""Attack scenario specifications for the Table I evaluation.

A :class:`ScenarioSpec` names one row of the paper's Table I and knows
how to build the corresponding attacker for a given injection frequency
and seed.  Identifier choices are drawn deterministically from the
scenario's own RNG stream so every run of the harness reproduces the
same experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.attacks import (
    AttackerNode,
    FloodingAttacker,
    MultiIDAttacker,
    SingleIDAttacker,
    WeakAttacker,
)
from repro.exceptions import ScenarioError
from repro.vehicle.ids_catalog import VehicleCatalog

#: Index range of the catalog used for injected identifiers: mid-pool,
#: skipping the extremes so Ir varies but never collapses.
_INJECT_RANGE = (20, 200)


@dataclass(frozen=True)
class ScenarioSpec:
    """One Table-I row.

    Parameters
    ----------
    name:
        Machine name (``single``, ``multi_3``, ...).
    label:
        The paper's row label.
    k:
        Number of injected identifiers (0 for flooding: not inferable).
    frequencies_hz:
        Injection frequencies aggregated into the row (the paper sweeps
        100/50/20/10 Hz for injection scenarios; flooding uses higher
        rates because it is a volume attack by definition).
    paper_detection / paper_inference:
        The published reference values (fractions; None where the paper
        reports ``--``).
    """

    name: str
    label: str
    k: int
    frequencies_hz: Tuple[float, ...]
    paper_detection: Optional[float]
    paper_inference: Optional[float]

    def build_attacker(
        self,
        catalog: VehicleCatalog,
        assignments: Dict[str, frozenset],
        frequency_hz: float,
        seed: int,
        start_s: float,
        duration_s: float,
    ) -> AttackerNode:
        """Instantiate the attacker for one run of this scenario."""
        # zlib.crc32 rather than hash(): string hashing is randomised per
        # process, which would make the drawn identifiers irreproducible.
        import zlib

        name_tag = zlib.crc32(self.name.encode("ascii")) & 0xFFFF
        rng = np.random.default_rng(name_tag * 1000 + seed)
        lo, hi = _INJECT_RANGE
        if self.name == "flood":
            return FloodingAttacker(
                frequency_hz=frequency_hz,
                start_s=start_s,
                duration_s=duration_s,
                seed=seed,
            )
        if self.name == "single":
            can_id = catalog.ids[int(rng.integers(lo, hi))]
            return SingleIDAttacker(
                can_id=can_id,
                frequency_hz=frequency_hz,
                start_s=start_s,
                duration_s=duration_s,
                seed=seed,
            )
        if self.name.startswith("multi_"):
            indices = rng.choice(np.arange(lo, hi), size=self.k, replace=False)
            ids = sorted(int(catalog.ids[i]) for i in indices)
            return MultiIDAttacker(
                ids,
                frequency_hz=frequency_hz,
                start_s=start_s,
                duration_s=duration_s,
                seed=seed,
            )
        if self.name == "weak":
            # Compromise an ECU with several assigned identifiers; the
            # transmitter filter restricts the attacker to that set.
            names = sorted(assignments)
            ecu = names[int(rng.integers(len(names)))]
            return WeakAttacker(
                sorted(assignments[ecu]),
                frequency_hz=frequency_hz,
                start_s=start_s,
                duration_s=duration_s,
                seed=seed,
            )
        raise ScenarioError(f"unknown scenario {self.name!r}")

    @property
    def inferable(self) -> bool:
        """Whether the paper reports an inference accuracy for this row."""
        return self.paper_inference is not None


#: The six rows of the paper's Table I, with the published values.
TABLE1_SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="flood",
        label="Flood",
        k=0,
        frequencies_hz=(500.0, 200.0, 100.0),
        paper_detection=1.0,
        paper_inference=None,
    ),
    ScenarioSpec(
        name="single",
        label="Single Injection",
        k=1,
        frequencies_hz=(100.0, 50.0, 20.0, 10.0),
        paper_detection=0.91,
        paper_inference=0.972,
    ),
    ScenarioSpec(
        name="multi_2",
        label="Multiple_Injection_2",
        k=2,
        frequencies_hz=(100.0, 50.0, 20.0, 10.0),
        paper_detection=0.97,
        paper_inference=0.918,
    ),
    ScenarioSpec(
        name="multi_3",
        label="Multiple_Injection_3",
        k=3,
        frequencies_hz=(100.0, 50.0, 20.0, 10.0),
        paper_detection=0.972,
        paper_inference=0.885,
    ),
    ScenarioSpec(
        name="multi_4",
        label="Multiple_Injection_4",
        k=4,
        frequencies_hz=(100.0, 50.0, 20.0, 10.0),
        paper_detection=0.9997,
        paper_inference=0.697,
    ),
    ScenarioSpec(
        name="weak",
        label="Weak Injection",
        k=2,
        frequencies_hz=(100.0, 50.0, 20.0, 10.0),
        paper_detection=0.93,
        paper_inference=0.966,
    ),
)


def scenario(name: str) -> ScenarioSpec:
    """Look up a Table-I scenario by machine name."""
    for spec in TABLE1_SCENARIOS:
        if spec.name == name:
            return spec
    raise ScenarioError(
        f"unknown scenario {name!r}; available: "
        + ", ".join(s.name for s in TABLE1_SCENARIOS)
    )

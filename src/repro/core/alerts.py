"""Alerts emitted by the IDS.

The paper: "If the bit change is above the threshold, we will treat the
CAN bus is under intrusion attack, and the system will send an alert
signal."  An :class:`Alert` captures one such signal with enough context
for an operator (which bits fired, by how much); :class:`AlertSink`
collects them and is the natural integration point for a real system
(replace with a callback into the gateway, a logger, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.can.constants import SECOND_US


@dataclass(frozen=True)
class Alert:
    """One intrusion alert.

    ``violated_bits`` uses the paper's 1-based bit numbering (Bit 1 is
    the identifier MSB); ``deviations`` are the signed entropy deviations
    of exactly those bits, in the same order.
    """

    timestamp_us: int
    window_index: int
    violated_bits: Tuple[int, ...]
    deviations: Tuple[float, ...]
    n_messages: int

    @property
    def timestamp_s(self) -> float:
        """Alert time in seconds."""
        return self.timestamp_us / SECOND_US

    def to_dict(self) -> dict:
        """JSON-compatible representation (lossless, see the ledger)."""
        return {
            "timestamp_us": int(self.timestamp_us),
            "window_index": int(self.window_index),
            "violated_bits": [int(b) for b in self.violated_bits],
            "deviations": [float(d) for d in self.deviations],
            "n_messages": int(self.n_messages),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Alert":
        """Inverse of :meth:`to_dict`."""
        return cls(
            timestamp_us=int(payload["timestamp_us"]),
            window_index=int(payload["window_index"]),
            violated_bits=tuple(int(b) for b in payload["violated_bits"]),
            deviations=tuple(float(d) for d in payload["deviations"]),
            n_messages=int(payload["n_messages"]),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        bits = ", ".join(
            f"bit {b} ({d:+.4f})" for b, d in zip(self.violated_bits, self.deviations)
        )
        return (
            f"[{self.timestamp_s:.3f}s] INTRUSION window #{self.window_index}: "
            f"{bits} over {self.n_messages} messages"
        )


class AlertSink:
    """Collects alerts; optionally forwards each to a callback."""

    def __init__(self, callback: Optional[Callable[[Alert], None]] = None) -> None:
        self.alerts: List[Alert] = []
        self._callback = callback

    def emit(self, alert: Alert) -> None:
        """Record (and forward) one alert."""
        self.alerts.append(alert)
        if self._callback is not None:
            self._callback(alert)

    def __len__(self) -> int:
        return len(self.alerts)

    def __iter__(self):
        return iter(self.alerts)

    def clear(self) -> None:
        """Drop all collected alerts."""
        self.alerts.clear()

    def first_alert_time_us(self) -> Optional[int]:
        """Timestamp of the earliest alert, or None."""
        return self.alerts[0].timestamp_us if self.alerts else None

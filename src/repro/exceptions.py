"""Exception hierarchy shared by every ``repro`` subpackage.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library throws with a single ``except`` clause while
still being able to distinguish configuration problems from runtime ones.
"""


class ReproError(Exception):
    """Base class for all exceptions raised by the ``repro`` library."""


class FrameError(ReproError):
    """An ill-formed CAN frame (bad identifier, DLC or payload length)."""


class ArbitrationError(ReproError):
    """Two nodes transmitted the same arbitration field simultaneously.

    Real CAN controllers treat this as a bus error; the simulator raises it
    unless the bus was configured with a deterministic tie-break.
    """


class BusConfigError(ReproError):
    """The bus or a node was configured inconsistently."""

    # Examples: two nodes with the same name, a zero baud rate, or a node
    # attached to two buses at once.


class NodeStateError(ReproError):
    """An operation was attempted on a node in an incompatible state.

    For example transmitting from a node that the transceiver guard has
    shut down, or re-enabling a node that is BUS_OFF without a reset.
    """


class TraceFormatError(ReproError):
    """A trace file could not be parsed (candump or CSV log formats)."""


class TemplateError(ReproError):
    """A golden template was built from insufficient or inconsistent data."""


class DetectorError(ReproError):
    """The detector was driven incorrectly (e.g. fed records out of order)."""


class InferenceError(ReproError):
    """Malicious-ID inference was invoked with invalid inputs."""


class ScenarioError(ReproError):
    """An experiment scenario specification is invalid."""

"""Golden template construction, thresholds, serialisation."""

import numpy as np
import pytest

from repro.core.bitprob import BitCounter
from repro.core.config import IDSConfig
from repro.core.template import GoldenTemplate, TemplateBuilder, build_template
from repro.exceptions import TemplateError
from repro.io.trace import Trace, TraceRecord


def trace_of_ids(ids, spacing_us=1000):
    return Trace(
        TraceRecord(timestamp_us=i * spacing_us, can_id=can_id)
        for i, can_id in enumerate(ids)
    )


def small_config(**overrides):
    defaults = dict(min_window_messages=2, template_windows=2)
    defaults.update(overrides)
    return IDSConfig(**defaults)


class TestBuilder:
    def test_needs_two_windows(self):
        builder = TemplateBuilder(small_config())
        builder.add_trace(trace_of_ids([0x100, 0x200, 0x300]))
        with pytest.raises(TemplateError):
            builder.build()

    def test_rejects_underpopulated_window(self):
        builder = TemplateBuilder(small_config(min_window_messages=10))
        with pytest.raises(TemplateError):
            builder.add_trace(trace_of_ids([0x100]))

    def test_rejects_wrong_width_counter(self):
        builder = TemplateBuilder(small_config())
        counter = BitCounter(29)
        counter.update_many([1, 2, 3])
        with pytest.raises(TemplateError):
            builder.add_counter(counter)

    def test_statistics(self):
        builder = TemplateBuilder(small_config())
        builder.add_trace(trace_of_ids([0b000, 0b111, 0b000, 0b111]))  # p = .5
        builder.add_trace(trace_of_ids([0b111, 0b111, 0b111, 0b000]))  # p = .75
        template = builder.build()
        assert template.n_windows == 2
        assert template.mean_p[-1] == pytest.approx(0.625)
        assert template.min_p[-1] == pytest.approx(0.5)
        assert template.max_p[-1] == pytest.approx(0.75)
        assert template.mean_count == pytest.approx(4.0)

    def test_thresholds_alpha_scaled_with_floor(self):
        config = small_config(alpha=4.0, threshold_floor=0.01)
        builder = TemplateBuilder(config)
        builder.add_trace(trace_of_ids([0b000, 0b111] * 4))
        builder.add_trace(trace_of_ids([0b000, 0b111] * 4))
        template = builder.build()
        # Identical windows: range 0 -> every threshold equals the floor.
        assert template.thresholds.tolist() == [0.01] * 11

    def test_add_trace_windows_splits(self):
        config = small_config(window_us=1_000_000)
        builder = TemplateBuilder(config)
        long_trace = trace_of_ids(
            ((0x100 + i) % 0x7FF for i in range(3000)), spacing_us=1000
        )
        added = builder.add_trace_windows(long_trace)
        assert added == builder.n_windows >= 2

    def test_add_trace_windows_excludes_attacked(self):
        """Ground-truth attacked windows are kept out of the template on
        request — training on injections would inflate the thresholds."""
        config = small_config(window_us=1_000_000)
        records = [
            TraceRecord(
                timestamp_us=i * 1000,
                can_id=(0x100 + i) % 0x7FF,
                # The second 1 s window carries injected traffic.
                is_attack=1_000_000 <= i * 1000 < 2_000_000,
            )
            for i in range(3000)
        ]
        trace = Trace(records)
        clean_only = TemplateBuilder(config)
        added = clean_only.add_trace_windows(trace, exclude_attacked=True)
        assert clean_only.excluded_attacked == 1
        everything = TemplateBuilder(config)
        assert everything.add_trace_windows(trace) == added + 1
        assert everything.excluded_attacked == 0
        # Works identically on the columnar representation.
        columnar = TemplateBuilder(config)
        columnar.add_trace_windows(trace.to_columns(), exclude_attacked=True)
        assert columnar.excluded_attacked == 1
        assert columnar.n_windows == added


class TestTemplateApi:
    def test_deviations_signed(self, golden_template):
        measured = golden_template.mean_entropy + 0.01
        dev = golden_template.deviations(measured)
        assert np.allclose(dev, 0.01)

    def test_deviation_shape_checked(self, golden_template):
        with pytest.raises(TemplateError):
            golden_template.deviations(np.zeros(5))

    def test_within_band_not_anomalous(self, golden_template):
        assert not golden_template.is_anomalous(golden_template.mean_entropy)

    def test_large_shift_anomalous(self, golden_template):
        shifted = golden_template.mean_entropy.copy()
        shifted[5] += golden_template.thresholds[5] * 2
        assert golden_template.is_anomalous(shifted)
        assert golden_template.violated_bits(shifted)[5]

    def test_ranges_nonnegative(self, golden_template):
        assert np.all(golden_template.entropy_range >= 0)
        assert np.all(golden_template.p_range >= 0)

    def test_describe_has_one_row_per_bit(self, golden_template):
        lines = golden_template.describe().splitlines()
        assert len(lines) == 2 + golden_template.n_bits


class TestSerialisation:
    def test_roundtrip_dict(self, golden_template):
        clone = GoldenTemplate.from_dict(golden_template.to_dict())
        assert np.allclose(clone.mean_entropy, golden_template.mean_entropy)
        assert np.allclose(clone.thresholds, golden_template.thresholds)
        assert clone.n_windows == golden_template.n_windows

    def test_roundtrip_file(self, golden_template, tmp_path):
        path = tmp_path / "template.json"
        golden_template.save(path)
        clone = GoldenTemplate.load(path)
        assert np.allclose(clone.mean_p, golden_template.mean_p)
        assert clone.alpha == golden_template.alpha

    def test_missing_field_rejected(self):
        with pytest.raises(TemplateError):
            GoldenTemplate.from_dict({"n_bits": 11})


class TestBuildTemplateOnVehicle:
    def test_template_is_tight_on_clean_traffic(self, golden_template):
        """The Section-IV.B observation: normal-driving entropy is steady,
        so per-bit ranges are small next to the entropy scale."""
        assert float(golden_template.entropy_range.max()) < 0.05

    def test_mean_count_matches_traffic(self, golden_template, catalog, ids_config):
        window_s = ids_config.window_us / 1e6
        expected = catalog.nominal_rate_hz() * window_s
        assert golden_template.mean_count == pytest.approx(expected, rel=0.2)

    def test_build_template_helper(self, template_windows, ids_config):
        template = build_template(template_windows, ids_config)
        assert template.n_windows == len(template_windows)

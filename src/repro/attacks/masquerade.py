"""Extension attack: masquerade (suspend a victim ECU and speak for it).

Cho & Shin's bus-off work (the paper's ref [10]) shows an attacker can
silence a victim ECU through error-handling abuse and then transmit in
its place.  We model the end state: the victim node is disabled at the
attack start and the attacker emits the victim's identifier at its own
frequency.

For the entropy IDS this is the subtlest strong-model case: if the
attacker matches the victim's original frequency the per-bit mix barely
moves; detection hinges on the frequency mismatch.  The extension
benchmarks sweep that mismatch.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import AttackerNode
from repro.can.constants import MAX_BASE_ID
from repro.can.node import Node
from repro.exceptions import BusConfigError


class MasqueradeAttacker(AttackerNode):
    """Impersonate one identifier of a silenced victim ECU.

    Parameters
    ----------
    can_id:
        The impersonated identifier.
    victim:
        The victim node; it is disabled when the attack window opens
        (call :meth:`arm` after attaching both nodes to the bus, or pass
        the victim here and the first ``peek`` disables it).
    """

    def __init__(
        self,
        can_id: int,
        victim: Optional[Node] = None,
        name: str = "mallory_masq",
        frequency_hz: float = 50.0,
        **kwargs,
    ) -> None:
        super().__init__(name, frequency_hz, **kwargs)
        if not 0 <= can_id <= MAX_BASE_ID:
            raise BusConfigError(f"identifier 0x{can_id:X} out of 11-bit range")
        self.can_id = can_id
        self.victim = victim
        self._victim_silenced = False

    def arm(self, victim: Node) -> None:
        """Set (or replace) the victim node before the attack starts."""
        self.victim = victim
        self._victim_silenced = False

    def _silence_victim(self) -> None:
        if self.victim is not None and not self._victim_silenced:
            self.victim.disable(f"masquerade by {self.name}")
            self._victim_silenced = True

    def select_id(self) -> int:
        self._silence_victim()
        return self.can_id

"""Mini message database: signal codec and the text format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TraceFormatError
from repro.io.dbc import (
    MessageDatabase,
    MessageDef,
    SignalDef,
    database_for_catalog,
)


@pytest.fixture()
def engine_message():
    return MessageDef(
        can_id=0x1A4,
        name="EngineData",
        dlc=8,
        signals=(
            SignalDef("EngineSpeed", 0, 16, scale=0.25, unit="rpm"),
            SignalDef("Throttle", 16, 8, scale=0.4, unit="%"),
            SignalDef("Temp", 24, 8, scale=1.0, offset=-40.0, unit="C"),
        ),
    )


class TestSignalCodec:
    def test_decode_known_payload(self, engine_message):
        payload = bytes([0x0F, 0xA0, 0x7D, 0x5A, 0, 0, 0, 0])
        values = engine_message.decode(payload)
        assert values["EngineSpeed"] == pytest.approx(0x0FA0 * 0.25)
        assert values["Throttle"] == pytest.approx(0x7D * 0.4)
        assert values["Temp"] == pytest.approx(0x5A - 40)

    def test_encode_decode_roundtrip(self, engine_message):
        payload = engine_message.encode(
            {"EngineSpeed": 3000.0, "Throttle": 42.0, "Temp": 90.0}
        )
        values = engine_message.decode(payload)
        assert values["EngineSpeed"] == pytest.approx(3000.0, abs=0.25)
        assert values["Throttle"] == pytest.approx(42.0, abs=0.4)
        assert values["Temp"] == pytest.approx(90.0, abs=1.0)

    def test_encode_clamps_to_range(self, engine_message):
        payload = engine_message.encode({"Throttle": 1e9})
        assert engine_message.decode(payload)["Throttle"] == pytest.approx(255 * 0.4)

    def test_signal_exceeding_payload_rejected(self):
        with pytest.raises(TraceFormatError):
            MessageDef(0x100, "X", 1, (SignalDef("Big", 0, 16),))

    def test_payload_too_short_for_signal(self, engine_message):
        with pytest.raises(TraceFormatError):
            engine_message.signal("EngineSpeed").decode(b"\x01")

    def test_unknown_signal(self, engine_message):
        with pytest.raises(KeyError):
            engine_message.signal("Boost")

    def test_duplicate_signal_names_rejected(self):
        with pytest.raises(TraceFormatError):
            MessageDef(
                0x100, "X", 4,
                (SignalDef("A", 0, 4), SignalDef("A", 4, 4)),
            )

    @given(st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=60)
    def test_raw_roundtrip_property(self, raw):
        signal = SignalDef("S", 3, 16)
        payload = bytearray(4)
        signal.encode_into(payload, float(raw))
        assert signal.extract_raw(bytes(payload)) == raw


class TestDatabase:
    def test_duplicate_ids_rejected(self, engine_message):
        database = MessageDatabase([engine_message])
        with pytest.raises(TraceFormatError):
            database.add(engine_message)

    def test_lookup(self, engine_message):
        database = MessageDatabase([engine_message])
        assert 0x1A4 in database
        assert database.message(0x1A4).name == "EngineData"
        with pytest.raises(KeyError):
            database.message(0x999 & 0x7FF)

    def test_decode_record_unknown_id_is_empty(self, engine_message):
        database = MessageDatabase([engine_message])
        assert database.decode_record(0x555, b"\x00") == {}

    def test_text_roundtrip(self, engine_message):
        database = MessageDatabase([engine_message])
        clone = MessageDatabase.loads(database.dumps())
        assert len(clone) == 1
        message = clone.message(0x1A4)
        assert message.name == "EngineData"
        assert message.signal("Temp").offset == -40.0
        assert message.signal("Temp").unit == "C"

    def test_file_roundtrip(self, engine_message, tmp_path):
        database = MessageDatabase([engine_message])
        path = tmp_path / "vehicle.mdb"
        database.save(path)
        assert len(MessageDatabase.load(path)) == 1

    def test_loads_rejects_sig_before_msg(self):
        with pytest.raises(TraceFormatError):
            MessageDatabase.loads("SIG X 0 8 1 0 -\n")

    def test_loads_rejects_unknown_directive(self):
        with pytest.raises(TraceFormatError):
            MessageDatabase.loads("FOO bar\n")

    def test_loads_skips_comments(self):
        database = MessageDatabase.loads("# comment\n\nMSG 1A4 X 8\n")
        assert len(database) == 1


class TestCatalogDatabase:
    def test_covers_whole_catalog(self, catalog):
        database = database_for_catalog(catalog)
        assert len(database) == len(catalog)
        for entry in catalog:
            assert entry.can_id in database

    def test_decodes_simulated_payloads(self, catalog):
        """Signals decode cleanly from the traffic generators' payloads."""
        from repro.vehicle.traffic import simulate_drive

        database = database_for_catalog(catalog)
        trace = simulate_drive(1.0, scenario="city", seed=5, catalog=catalog)
        decoded = 0
        for record in list(trace)[:500]:
            values = database.decode_record(record.can_id, record.data)
            if values:
                decoded += 1
                assert all(isinstance(v, float) for v in values.values())
        assert decoded > 400

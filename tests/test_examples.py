"""Smoke tests: every example script runs to completion.

Each example is executed in-process (imported as a module and ``main()``
called) so coverage tools see it and failures carry real tracebacks.
The slower campaign examples are exercised through their underlying
experiment runners elsewhere; here the goal is "a fresh user can run
every script".
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path), *argv]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "attack_campaign.py",
        "malicious_id_inference.py",
        "baseline_comparison.py",
        "fleet_monitoring.py",
        "live_monitoring.py",
        "response_blocking.py",
    } <= names


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "detection rate" in out
    assert "HIT" in out


def test_malicious_id_inference(capsys):
    run_example("malicious_id_inference.py")
    out = capsys.readouterr().out
    assert "hit rate vs ground truth" in out
    assert "reconstructed set" in out


def test_live_monitoring(capsys):
    run_example("live_monitoring.py")
    out = capsys.readouterr().out
    assert "IDS alerts:" in out
    assert "gateway" in out


def test_response_blocking(capsys):
    run_example("response_blocking.py")
    out = capsys.readouterr().out
    assert "suppression" in out
    assert "attack frames reaching the vehicle" in out


def test_fleet_monitoring(capsys):
    run_example("fleet_monitoring.py")
    out = capsys.readouterr().out
    assert "cold scan" in out
    assert "0 scanned, 2 cached" in out  # warm pass fully ledger-served
    assert "fleet verdict: car-b under attack" in out


@pytest.mark.slow
def test_attack_campaign(capsys):
    run_example("attack_campaign.py", argv=["--seeds", "1"])
    out = capsys.readouterr().out
    assert "Table I" in out


@pytest.mark.slow
def test_baseline_comparison(capsys):
    run_example("baseline_comparison.py")
    out = capsys.readouterr().out
    assert "Head-to-head" in out

"""Structure-of-arrays trace storage.

:class:`~repro.io.trace.Trace` stores one :class:`~repro.io.trace.TraceRecord`
object per frame, which is convenient for building captures frame by
frame but bounds every whole-trace operation by Python interpreter
overhead.  :class:`ColumnTrace` stores the same capture as parallel
NumPy columns — one array per field — so slicing is zero-copy, time
windowing is a ``searchsorted``, and the detection engines can judge
millions of frames in a handful of vectorised passes.

The two representations are losslessly interconvertible
(:meth:`ColumnTrace.from_trace` / :meth:`ColumnTrace.to_trace`): payload
bytes live in one flat ``uint8`` buffer indexed by an offsets array, and
source names are interned into a string table referenced by per-record
codes.  The conversion contract and when to use which representation are
documented in ``ARCHITECTURE.md``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.can.constants import SECOND_US
from repro.exceptions import TraceFormatError
from repro.io.trace import Trace, TraceRecord

__all__ = ["ColumnTrace"]


def _as_array(values, dtype) -> np.ndarray:
    arr = np.asarray(values, dtype=dtype)
    if arr.ndim != 1:
        raise TraceFormatError(f"columns must be 1-D, got shape {arr.shape}")
    return arr


def _gather_payload(
    payload: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Gather per-row byte runs ``payload[starts[r]:starts[r]+lengths[r]]``
    into one contiguous buffer, fully vectorised (no per-row Python loop)."""
    total = int(lengths.sum())
    if not total:
        return np.empty(0, dtype=np.uint8)
    out_offsets = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=out_offsets[1:])
    indices = (
        np.repeat(starts - out_offsets, lengths) + np.arange(total, dtype=np.int64)
    )
    return payload[indices]


class ColumnTrace:
    """A CAN capture as parallel columns.

    Columns (all length ``n`` except ``payload_offsets``, length
    ``n + 1``):

    * ``timestamp_us`` — ``int64``, non-decreasing frame completion times;
    * ``can_id`` — ``int64`` identifiers;
    * ``payload`` / ``payload_offsets`` — flat ``uint8`` buffer; frame
      ``i``'s data bytes are ``payload[payload_offsets[i]:payload_offsets[i+1]]``;
    * ``extended`` — ``bool`` frame-format flags;
    * ``is_attack`` — ``bool`` ground-truth injection labels;
    * ``source_code`` — ``int32`` indices into :attr:`source_table`, the
      interned tuple of distinct source names;
    * ``bus_code`` — ``int32`` indices into :attr:`bus_table`, the
      interned tuple of bus labels (a columnar-only extension for
      multi-bus fan-in; see :meth:`with_bus`).

    Instances are immutable by convention: operations return new views
    or new traces, never mutate columns in place.
    """

    __slots__ = (
        "timestamp_us",
        "can_id",
        "payload",
        "payload_offsets",
        "extended",
        "is_attack",
        "source_code",
        "source_table",
        "bus_code",
        "bus_table",
    )

    def __init__(
        self,
        timestamp_us,
        can_id,
        *,
        payload=None,
        payload_offsets=None,
        extended=None,
        is_attack=None,
        source_code=None,
        source_table: Sequence[str] = ("",),
        bus_code=None,
        bus_table: Sequence[str] = ("",),
        validate: bool = True,
    ) -> None:
        self.timestamp_us = _as_array(timestamp_us, np.int64)
        self.can_id = _as_array(can_id, np.int64)
        n = self.timestamp_us.size
        self.payload = (
            _as_array(payload, np.uint8) if payload is not None
            else np.empty(0, dtype=np.uint8)
        )
        self.payload_offsets = (
            _as_array(payload_offsets, np.int64) if payload_offsets is not None
            else np.zeros(n + 1, dtype=np.int64)
        )
        self.extended = (
            _as_array(extended, bool) if extended is not None
            else np.zeros(n, dtype=bool)
        )
        self.is_attack = (
            _as_array(is_attack, bool) if is_attack is not None
            else np.zeros(n, dtype=bool)
        )
        self.source_code = (
            _as_array(source_code, np.int32) if source_code is not None
            else np.zeros(n, dtype=np.int32)
        )
        self.source_table: Tuple[str, ...] = tuple(source_table)
        self.bus_code = (
            _as_array(bus_code, np.int32) if bus_code is not None
            else np.zeros(n, dtype=np.int32)
        )
        self.bus_table: Tuple[str, ...] = tuple(bus_table)
        if validate:
            self._validate()

    def _validate(self) -> None:
        self._check_layout()
        if len(self) and np.any(np.diff(self.timestamp_us) < 0):
            raise TraceFormatError("timestamps must be non-decreasing")

    #: Expected (dtype, ndim) of every per-record column; the layout
    #: check guards operations (like :meth:`merge`) that would otherwise
    #: surface malformed inputs as cryptic numpy broadcast errors.
    _COLUMN_DTYPES = {
        "timestamp_us": np.dtype(np.int64),
        "can_id": np.dtype(np.int64),
        "extended": np.dtype(bool),
        "is_attack": np.dtype(bool),
        "source_code": np.dtype(np.int32),
        "bus_code": np.dtype(np.int32),
    }

    def _check_layout(self) -> None:
        """Validate column dtypes, shapes and offset consistency.

        Everything except timestamp monotonicity — cheap enough to run
        on every merge, raising :class:`TraceFormatError` instead of
        letting ragged arrays reach a numpy concatenate/broadcast.
        """
        n = self.timestamp_us.size
        for name, dtype in self._COLUMN_DTYPES.items():
            column = getattr(self, name)
            if not isinstance(column, np.ndarray) or column.ndim != 1:
                raise TraceFormatError(f"column {name!r} must be a 1-D array")
            if column.dtype != dtype:
                raise TraceFormatError(
                    f"column {name!r} has dtype {column.dtype}, expected {dtype}"
                )
            if column.size != n:
                raise TraceFormatError(
                    f"column {name!r} has {column.size} rows, expected {n}"
                )
        for name in ("payload", "payload_offsets"):
            buf = getattr(self, name)
            if not isinstance(buf, np.ndarray) or buf.ndim != 1:
                raise TraceFormatError(f"column {name!r} must be a 1-D array")
        if self.payload.dtype != np.dtype(np.uint8):
            raise TraceFormatError(
                f"payload has dtype {self.payload.dtype}, expected uint8"
            )
        if self.payload_offsets.dtype != np.dtype(np.int64):
            raise TraceFormatError(
                f"payload_offsets has dtype {self.payload_offsets.dtype}, "
                f"expected int64"
            )
        if self.payload_offsets.size != n + 1:
            raise TraceFormatError(
                f"payload_offsets has {self.payload_offsets.size} entries, "
                f"expected {n + 1}"
            )
        if n:
            if np.any(np.diff(self.payload_offsets) < 0):
                raise TraceFormatError("payload_offsets must be non-decreasing")
            if int(self.payload_offsets[0]) < 0 or int(self.payload_offsets[-1]) > self.payload.size:
                raise TraceFormatError("payload_offsets exceed the payload buffer")
            if not self.source_table:
                raise TraceFormatError("source_table must not be empty")
            codes = self.source_code
            if int(codes.min()) < 0 or int(codes.max()) >= len(self.source_table):
                raise TraceFormatError("source_code out of source_table range")
            if not self.bus_table:
                raise TraceFormatError("bus_table must not be empty")
            codes = self.bus_code
            if int(codes.min()) < 0 or int(codes.max()) >= len(self.bus_table):
                raise TraceFormatError("bus_code out of bus_table range")

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Union[Trace, Sequence[TraceRecord]]) -> "ColumnTrace":
        """Convert a record trace (lossless, one pass)."""
        records = list(trace) if not isinstance(trace, list) else trace
        n = len(records)
        timestamp_us = np.fromiter((r.timestamp_us for r in records), np.int64, n)
        can_id = np.fromiter((r.can_id for r in records), np.int64, n)
        extended = np.fromiter((r.extended for r in records), bool, n)
        is_attack = np.fromiter((r.is_attack for r in records), bool, n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter((len(r.data) for r in records), np.int64, n),
            out=offsets[1:] if n else None,
        )
        payload = np.frombuffer(
            b"".join(r.data for r in records), dtype=np.uint8
        ).copy() if n else np.empty(0, dtype=np.uint8)
        intern: Dict[str, int] = {}
        codes = np.empty(n, dtype=np.int32)
        for i, record in enumerate(records):
            code = intern.get(record.source)
            if code is None:
                code = intern.setdefault(record.source, len(intern))
            codes[i] = code
        table = tuple(intern) if intern else ("",)
        return cls(
            timestamp_us,
            can_id,
            payload=payload,
            payload_offsets=offsets,
            extended=extended,
            is_attack=is_attack,
            source_code=codes,
            source_table=table,
            validate=False,
        )

    def to_trace(self) -> Trace:
        """Convert back to a record trace (lossless inverse of
        :meth:`from_trace`)."""
        return Trace(self.iter_records())

    def iter_records(self) -> Iterator[TraceRecord]:
        """Yield each row as a :class:`TraceRecord` (lazy).

        Only the payload span this trace references is copied out — a
        zero-copy window slice of a huge capture must not materialise
        the whole shared buffer just to iterate its few rows.
        """
        base = int(self.payload_offsets[0]) if len(self) else 0
        data = self.payload_bytes().tobytes()
        for i in range(len(self)):
            lo = int(self.payload_offsets[i]) - base
            hi = int(self.payload_offsets[i + 1]) - base
            yield TraceRecord(
                timestamp_us=int(self.timestamp_us[i]),
                can_id=int(self.can_id[i]),
                data=data[lo:hi],
                extended=bool(self.extended[i]),
                source=self.source_table[self.source_code[i]],
                is_attack=bool(self.is_attack[i]),
            )

    __iter__ = iter_records

    @classmethod
    def coerce(cls, trace: Union[Trace, "ColumnTrace"]) -> "ColumnTrace":
        """Return ``trace`` itself if already columnar, else convert."""
        return trace if isinstance(trace, cls) else cls.from_trace(trace)

    # ------------------------------------------------------------------
    # Columnar file export (.npz)
    # ------------------------------------------------------------------

    #: On-disk schema version of the ``.npz`` export.
    _NPZ_VERSION = 1

    def save_npz(self, path, compressed: bool = False) -> None:
        """Write the trace as a NumPy ``.npz`` archive (columnar-native).

        This is the columnar counterpart of the text log writers: one
        array per column, written as-is — no per-frame text rendering,
        no parsing on the way back — so it is both the fastest
        round-trip format and the only one that preserves *everything*,
        including bus tags (which the text formats drop) and
        ground-truth attack labels.  ``compressed`` trades write speed
        for size (zlib per column).  :meth:`load_npz` is the lossless
        inverse; ``tests/test_io_npz.py`` asserts field-exact equality.
        """
        writer = np.savez_compressed if compressed else np.savez
        # Write through an open handle: np.savez given a *name* appends
        # ".npz" when the suffix is missing, and the file the caller
        # asked for would then not exist for load_npz.
        with open(path, "wb") as handle:
            writer(
                handle,
                version=np.int64(self._NPZ_VERSION),
                timestamp_us=self.timestamp_us,
                can_id=self.can_id,
                payload=self.payload_bytes(),
                dlc=self.dlc,
                extended=self.extended,
                is_attack=self.is_attack,
                source_code=self.source_code,
                source_table=np.asarray(self.source_table, dtype=np.str_),
                bus_code=self.bus_code,
                bus_table=np.asarray(self.bus_table, dtype=np.str_),
            )

    @classmethod
    def load_npz(cls, path) -> "ColumnTrace":
        """Read a trace written by :meth:`save_npz` (lossless inverse)."""
        try:
            with np.load(path) as data:
                version = int(data["version"])
                if version != cls._NPZ_VERSION:
                    raise TraceFormatError(
                        f"npz trace schema version {version} not supported "
                        f"(expected {cls._NPZ_VERSION})"
                    )
                dlc = np.asarray(data["dlc"], dtype=np.int64)
                offsets = np.zeros(dlc.size + 1, dtype=np.int64)
                np.cumsum(dlc, out=offsets[1:] if dlc.size else None)
                return cls(
                    data["timestamp_us"],
                    data["can_id"],
                    payload=data["payload"],
                    payload_offsets=offsets,
                    extended=data["extended"],
                    is_attack=data["is_attack"],
                    source_code=data["source_code"],
                    source_table=tuple(str(s) for s in data["source_table"]),
                    bus_code=data["bus_code"],
                    bus_table=tuple(str(s) for s in data["bus_table"]),
                )
        except (KeyError, ValueError, OSError) as exc:
            raise TraceFormatError(
                f"not a columnar npz trace: {path} ({exc})"
            ) from exc

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.timestamp_us.size

    def __getitem__(self, index):
        if isinstance(index, slice):
            lo, hi, step = index.indices(len(self))
            if step != 1:
                raise TraceFormatError("ColumnTrace slices must be contiguous")
            return self.slice(lo, hi)
        i = int(index)
        if i < 0:
            i += len(self)
        return self.slice(i, i + 1).to_trace()[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnTrace):
            return NotImplemented
        if len(self) != len(other):
            return False
        return (
            bool(np.array_equal(self.timestamp_us, other.timestamp_us))
            and bool(np.array_equal(self.can_id, other.can_id))
            and bool(np.array_equal(self.dlc, other.dlc))
            and bool(np.array_equal(self.payload_bytes(), other.payload_bytes()))
            and bool(np.array_equal(self.extended, other.extended))
            and bool(np.array_equal(self.is_attack, other.is_attack))
            # Decoded source/bus comparison last: the intern tables may
            # order names differently, so compare decoded arrays — but
            # only after every cheap vectorised check has passed.
            and bool(
                np.array_equal(
                    np.asarray(self.source_table, dtype=object)[self.source_code],
                    np.asarray(other.source_table, dtype=object)[other.source_code],
                )
            )
            and bool(
                np.array_equal(
                    np.asarray(self.bus_table, dtype=object)[self.bus_code],
                    np.asarray(other.bus_table, dtype=object)[other.bus_code],
                )
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        span = f"{self.duration_us / SECOND_US:.3f}s" if len(self) else "empty"
        return f"ColumnTrace({len(self)} records, {span})"

    # ------------------------------------------------------------------
    # Basic properties (Trace-compatible surface)
    # ------------------------------------------------------------------
    @property
    def start_us(self) -> int:
        """Timestamp of the first record (0 for an empty trace)."""
        return int(self.timestamp_us[0]) if len(self) else 0

    @property
    def end_us(self) -> int:
        """Timestamp of the last record (0 for an empty trace)."""
        return int(self.timestamp_us[-1]) if len(self) else 0

    @property
    def duration_us(self) -> int:
        """Time spanned by the records."""
        return self.end_us - self.start_us

    @property
    def attack_count(self) -> int:
        """Number of ground-truth attack records."""
        return int(np.count_nonzero(self.is_attack))

    @property
    def dlc(self) -> np.ndarray:
        """Per-record payload byte counts (derived from the offsets)."""
        return np.diff(self.payload_offsets)

    def payload_bytes(self) -> np.ndarray:
        """The payload bytes actually referenced by the offsets.

        Rows are stored contiguously, so this is the single buffer span
        ``payload[offsets[0]:offsets[-1]]``.
        """
        if not len(self):
            return np.empty(0, dtype=np.uint8)
        return self.payload[int(self.payload_offsets[0]) : int(self.payload_offsets[-1])]

    def ids(self) -> np.ndarray:
        """All identifiers (the column itself; treat as read-only)."""
        return self.can_id

    def timestamps_us(self) -> np.ndarray:
        """All timestamps (the column itself; treat as read-only)."""
        return self.timestamp_us

    def attack_mask(self) -> np.ndarray:
        """Ground-truth attack labels (the column itself)."""
        return self.is_attack

    def unique_ids(self) -> np.ndarray:
        """Sorted array of distinct identifiers."""
        return np.unique(self.can_id) if len(self) else np.empty(0, dtype=np.int64)

    def sources(self) -> List[str]:
        """Per-record source names (decoded from the intern table)."""
        return [self.source_table[c] for c in self.source_code]

    # ------------------------------------------------------------------
    # Bus tagging (multi-bus fan-in)
    # ------------------------------------------------------------------
    def with_bus(self, label: str) -> "ColumnTrace":
        """A view of this trace with every record tagged as bus ``label``.

        Bus tags are a columnar-layer extension for multi-bus fan-in:
        they survive slicing, filtering and :meth:`merge` (which
        re-interns tables from all parts), but :class:`TraceRecord` has
        no bus field, so :meth:`to_trace` drops them — see the contract
        notes in ``ARCHITECTURE.md``.
        """
        if not label:
            raise TraceFormatError("bus label must be a non-empty string")
        return ColumnTrace(
            self.timestamp_us,
            self.can_id,
            payload=self.payload,
            payload_offsets=self.payload_offsets,
            extended=self.extended,
            is_attack=self.is_attack,
            source_code=self.source_code,
            source_table=self.source_table,
            bus_code=np.zeros(len(self), dtype=np.int32),
            bus_table=(label,),
            validate=False,
        )

    def buses(self) -> List[str]:
        """Per-record bus labels (decoded from the intern table)."""
        return [self.bus_table[c] for c in self.bus_code]

    def bus_labels(self) -> Tuple[str, ...]:
        """Distinct bus labels actually referenced, in table order."""
        if not len(self):
            return ()
        present = np.unique(self.bus_code)
        return tuple(self.bus_table[c] for c in present)

    def for_bus(self, label: str) -> "ColumnTrace":
        """Only the records captured on bus ``label`` (copies)."""
        try:
            code = self.bus_table.index(label)
        except ValueError:
            raise TraceFormatError(
                f"bus {label!r} not present; trace carries "
                f"{sorted(set(self.bus_table))}"
            ) from None
        return self.take(self.bus_code == code)

    # ------------------------------------------------------------------
    # Slicing and filtering
    # ------------------------------------------------------------------
    def slice(self, lo: int, hi: int) -> "ColumnTrace":
        """Rows ``lo:hi`` as zero-copy column views."""
        lo = max(0, min(lo, len(self)))
        hi = max(lo, min(hi, len(self)))
        return ColumnTrace(
            self.timestamp_us[lo:hi],
            self.can_id[lo:hi],
            payload=self.payload,
            payload_offsets=self.payload_offsets[lo : hi + 1]
            if hi > lo
            else np.zeros(1, dtype=np.int64),
            extended=self.extended[lo:hi],
            is_attack=self.is_attack[lo:hi],
            source_code=self.source_code[lo:hi],
            source_table=self.source_table,
            bus_code=self.bus_code[lo:hi],
            bus_table=self.bus_table,
            validate=False,
        )

    def between(self, start_us: int, end_us: int) -> "ColumnTrace":
        """Records with ``start_us <= timestamp < end_us`` (zero-copy)."""
        lo = int(np.searchsorted(self.timestamp_us, start_us, side="left"))
        hi = int(np.searchsorted(self.timestamp_us, end_us, side="left"))
        return self.slice(lo, hi)

    def take(self, mask_or_indices) -> "ColumnTrace":
        """Rows selected by a boolean mask or index array (copies)."""
        indices = np.asarray(mask_or_indices)
        if indices.dtype == bool:
            if indices.size != len(self):
                raise TraceFormatError(
                    f"boolean mask has {indices.size} entries for a trace of "
                    f"{len(self)} records"
                )
            indices = np.flatnonzero(indices)
        lengths = self.dlc[indices]
        new_offsets = np.zeros(indices.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_offsets[1:] if indices.size else None)
        payload = _gather_payload(
            self.payload, self.payload_offsets[indices], lengths
        ) if indices.size else np.empty(0, dtype=np.uint8)
        return ColumnTrace(
            self.timestamp_us[indices],
            self.can_id[indices],
            payload=payload,
            payload_offsets=new_offsets,
            extended=self.extended[indices],
            is_attack=self.is_attack[indices],
            source_code=self.source_code[indices],
            source_table=self.source_table,
            bus_code=self.bus_code[indices],
            bus_table=self.bus_table,
            validate=False,
        )

    def without_attacks(self) -> "ColumnTrace":
        """Only the legitimate traffic (by ground truth)."""
        return self.take(~self.is_attack)

    def only_attacks(self) -> "ColumnTrace":
        """Only the injected traffic (by ground truth)."""
        return self.take(self.is_attack)

    def shifted(self, offset_us: int) -> "ColumnTrace":
        """A copy whose timestamps are moved by ``offset_us``."""
        return ColumnTrace(
            self.timestamp_us + np.int64(offset_us),
            self.can_id,
            payload=self.payload,
            payload_offsets=self.payload_offsets,
            extended=self.extended,
            is_attack=self.is_attack,
            source_code=self.source_code,
            source_table=self.source_table,
            bus_code=self.bus_code,
            bus_table=self.bus_table,
            validate=False,
        )

    @staticmethod
    def _reintern(parts: Sequence["ColumnTrace"], code_attr: str, table_attr: str):
        """Re-intern per-part string tables into one shared table.

        Returns ``(recoded_concat, table)`` where ``recoded_concat`` is
        the concatenated per-record codes remapped into ``table``.
        """
        table: Dict[str, int] = {}
        recoded: List[np.ndarray] = []
        for part in parts:
            names = getattr(part, table_attr)
            mapping = np.empty(len(names), dtype=np.int32)
            for i, name in enumerate(names):
                mapping[i] = table.setdefault(name, len(table))
            recoded.append(mapping[getattr(part, code_attr)])
        return np.concatenate(recoded), tuple(table)

    @staticmethod
    def merge(*traces: "ColumnTrace") -> "ColumnTrace":
        """Merge time-ordered columnar traces into one (stable sort).

        Source and bus tags survive: each part's intern tables are
        re-interned into shared ones, so merging per-bus captures tagged
        via :meth:`with_bus` yields one fused trace whose records still
        know which bus carried them.

        Raises
        ------
        TraceFormatError
            If any input is not a :class:`ColumnTrace` or carries ragged
            columns (wrong dtype, dimensionality, length or offsets) —
            checked up front, so malformed inputs fail with a clear
            message instead of a numpy broadcast error mid-merge.
        """
        for trace in traces:
            if not isinstance(trace, ColumnTrace):
                raise TraceFormatError(
                    f"merge expects ColumnTrace parts, got {type(trace).__name__}"
                )
            trace._check_layout()
        parts = [t for t in traces if len(t)]
        if not parts:
            return ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
        source_code, source_table = ColumnTrace._reintern(
            parts, "source_code", "source_table"
        )
        bus_code, bus_table = ColumnTrace._reintern(parts, "bus_code", "bus_table")
        timestamp_us = np.concatenate([p.timestamp_us for p in parts])
        order = np.argsort(timestamp_us, kind="stable")
        lengths = np.concatenate([p.dlc for p in parts])
        payload_parts = [p.payload_bytes() for p in parts]
        payload_all = (
            np.concatenate(payload_parts) if payload_parts else np.empty(0, np.uint8)
        )
        # Row start offsets into the concatenated payload buffer.
        offsets_all = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets_all[1:])
        starts = offsets_all[:-1][order]
        lengths_sorted = lengths[order]
        new_offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths_sorted, out=new_offsets[1:])
        payload = _gather_payload(payload_all, starts, lengths_sorted)
        return ColumnTrace(
            timestamp_us[order],
            np.concatenate([p.can_id for p in parts])[order],
            payload=payload,
            payload_offsets=new_offsets,
            extended=np.concatenate([p.extended for p in parts])[order],
            is_attack=np.concatenate([p.is_attack for p in parts])[order],
            source_code=source_code[order],
            source_table=source_table,
            bus_code=bus_code[order],
            bus_table=bus_table,
            validate=False,
        )

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def window_segments(
        self, window_us: int, *, origin_us: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Tumbling-window segmentation of the record array.

        Returns ``(window_index, seg_starts, seg_ends)`` where
        ``window_index[j]`` is the grid index (``(t - origin) // window``)
        of the ``j``-th *non-empty* window and rows
        ``seg_starts[j]:seg_ends[j]`` are its records.  Empty grid
        windows simply do not appear — matching how the streaming
        detector skips silent gaps.
        """
        if window_us <= 0:
            raise ValueError(f"window must be positive, got {window_us}")
        n = len(self)
        empty = np.empty(0, dtype=np.int64)
        if n == 0:
            return empty, empty, empty
        t0 = self.start_us if origin_us is None else origin_us
        grid = (self.timestamp_us - np.int64(t0)) // np.int64(window_us)
        boundaries = np.flatnonzero(np.diff(grid)) + 1
        seg_starts = np.concatenate(([0], boundaries))
        seg_ends = np.concatenate((boundaries, [n]))
        return grid[seg_starts], seg_starts, seg_ends

    def attack_counts(self, seg_starts: np.ndarray) -> np.ndarray:
        """Ground-truth attack message counts per segment.

        ``seg_starts`` are row starts as returned by
        :meth:`window_segments`; both detection paths (batch engine and
        baseline scans) share this accumulation.
        """
        if seg_starts.size == 0:
            return np.zeros(0, dtype=np.int64)
        if not self.is_attack.any():
            return np.zeros(seg_starts.size, dtype=np.int64)
        return np.add.reduceat(self.is_attack.astype(np.int64), seg_starts)

    def time_windows(
        self, window_us: int, *, start_us: Optional[int] = None
    ) -> Iterator["ColumnTrace"]:
        """Yield consecutive tumbling time windows (zero-copy slices).

        Mirrors :meth:`Trace.time_windows`: empty windows inside the
        capture are yielded too, so callers relying on positional window
        indices see the same sequence.
        """
        if window_us <= 0:
            raise ValueError(f"window must be positive, got {window_us}")
        if not len(self):
            return
        t0 = self.start_us if start_us is None else start_us
        t_end = self.end_us
        while t0 <= t_end:
            yield self.between(t0, t0 + window_us)
            t0 += window_us

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def message_rate_hz(self) -> float:
        """Average message rate over the trace duration."""
        if len(self) < 2 or self.duration_us == 0:
            return 0.0
        return (len(self) - 1) / (self.duration_us / SECOND_US)

    def id_histogram(self) -> dict:
        """Mapping of identifier -> occurrence count."""
        if not len(self):
            return {}
        values, counts = np.unique(self.can_id, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

"""Shared fixtures for the benchmark harness.

The experiment setup (catalog + golden template) is built once per
session; every benchmark then runs its attack campaign against the same
trained IDS, exactly like the paper's evaluation flow.

Environment knobs:

* ``REPRO_BENCH_SEEDS`` — comma-separated seeds per scenario run
  (default ``1,2``); more seeds -> smoother numbers, longer runtime.

Every regenerated table/figure is also written to ``results/<name>.txt``
at the repository root, so the artifacts survive pytest's output capture
(run with ``-s`` to see them inline).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import IDSConfig
from repro.experiments import build_setup

#: Where regenerated paper artifacts are written.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def save_artifact(name: str, text: str) -> Path:
    """Persist a rendered table/figure under results/ and return the path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def append_artifact(name: str, text: str) -> Path:
    """Append a blank-line-separated section to an artifact.

    The section replaces any previous copy of itself — matched by its
    first line heading a section — leaving every other section (before
    or after) untouched, so multi-test artifacts survive partial
    re-runs in any order.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    header = text.splitlines()[0]
    sections = []
    if path.exists():
        content = path.read_text(encoding="utf-8")
        sections = [s for s in content.split("\n\n") if s.strip()]
    replaced = False
    for i, section in enumerate(sections):
        if section.lstrip("\n").splitlines()[0] == header:
            sections[i] = text
            replaced = True
            break
    if not replaced:
        sections.append(text)
    path.write_text(
        "\n\n".join(s.strip("\n") for s in sections) + "\n", encoding="utf-8"
    )
    return path


def append_bench(name: str, records) -> Path:
    """Merge benchmark records into ``results/BENCH_<name>.json``.

    The JSON twin of :func:`append_artifact`: sections present in
    ``records`` are replaced, everything else in the file survives, so
    partial benchmark re-runs keep the other experiments' numbers.
    """
    from repro.experiments.bench import write_bench_json

    RESULTS_DIR.mkdir(exist_ok=True)
    return write_bench_json(RESULTS_DIR / f"BENCH_{name}.json", records)


def bench_seeds() -> tuple:
    """Seeds used by the campaign benchmarks (env-overridable)."""
    raw = os.environ.get("REPRO_BENCH_SEEDS", "1,2")
    return tuple(int(s) for s in raw.split(",") if s.strip())


@pytest.fixture(scope="session")
def setup():
    """Catalog + golden template, the paper's training phase."""
    return build_setup(config=IDSConfig(), seed=7)


@pytest.fixture(scope="session")
def seeds():
    return bench_seeds()

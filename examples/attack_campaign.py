#!/usr/bin/env python
"""Attack campaign: every Table-I scenario against the trained IDS.

Runs flooding, single-ID, multi-ID (2/3/4) and weak-model injection at
the paper's frequencies and prints the reproduced Table I with the
published values alongside.

Run:  python examples/attack_campaign.py [--seeds 1 2]
"""

import argparse

from repro.experiments import build_setup, table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, nargs="+", default=[1],
                        help="seeds per scenario/frequency (more = smoother)")
    args = parser.parse_args()

    print("training the IDS (catalog + golden template)...")
    setup = build_setup()
    print(f"  busload target ~55%, {len(setup.catalog)} identifiers, "
          f"{setup.template.n_windows} template windows\n")

    print("running the six attack scenarios (this takes a minute)...\n")
    result = table1.run(setup=setup, seeds=tuple(args.seeds))
    print(result.render())

    print()
    for row in result.rows:
        per_freq = ", ".join(
            f"{freq:g}Hz: {rate:.0%}" for freq, rate in row.by_frequency().items()
        )
        print(f"  {row.spec.label:<22} detection by frequency: {per_freq}")


if __name__ == "__main__":
    main()

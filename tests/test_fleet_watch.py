"""Incremental watch scans: bit-identical to cold scans, minimal work.

The acceptance bar for the fleet subsystem: after appending captures to
an archive, a watch scan must (a) re-scan *only* the new captures —
asserted via ledger hit/miss counts — and (b) assemble an
``ArchiveReport`` bit-identical to a cold full scan of the same
archive, at 1 and N workers.  (Multiprocess *perf* is never asserted —
the container may expose one CPU — only equality.)
"""

import pytest

from repro.attacks import SingleIDAttacker
from repro.core import IDSPipeline
from repro.fleet.watch import detection_context, watch_scan
from repro.io import CaptureArchive
from repro.vehicle import VehicleSimulation
from repro.vehicle.traffic import simulate_drive


def make_capture(catalog, seed, attacked=False, duration_s=6.0):
    if not attacked:
        return simulate_drive(duration_s, seed=seed, catalog=catalog)
    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=seed)
    sim.add_node(
        SingleIDAttacker(
            can_id=catalog.ids[60], frequency_hz=100.0,
            start_s=1.0, duration_s=4.0, seed=seed,
        )
    )
    return sim.run(duration_s)


@pytest.fixture()
def archive_dir(tmp_path, catalog):
    directory = tmp_path / "captures"
    directory.mkdir()
    archive = CaptureArchive(directory)
    for i in range(3):
        archive.write_capture(
            f"cap{i}.log", make_capture(catalog, 60 + i, attacked=(i == 1))
        )
    return directory


def assert_reports_identical(a, b):
    """Field-exact equality of two ArchiveReports (dicts are lossless)."""
    assert [p for p, _ in a.captures] == [p for p, _ in b.captures]
    assert a.to_dict() == b.to_dict()


@pytest.fixture()
def pipeline(golden_template, ids_config, catalog):
    return IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)


class TestWatchScan:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_incremental_equals_cold_scan(
        self, pipeline, archive_dir, tmp_path, catalog, workers
    ):
        """The headline guarantee, at 1 and N workers."""
        ledger = tmp_path / "ledger.json"
        first = watch_scan(pipeline, archive_dir, ledger, workers=workers)
        assert len(first.scanned) == 3 and not first.cached
        assert first.ledger.misses == 3 and first.ledger.hits == 0

        # Append two captures (one attacked) and re-scan incrementally.
        archive = CaptureArchive(archive_dir)
        archive.write_capture("cap3.log", make_capture(catalog, 70))
        archive.write_capture(
            "cap4.csv", make_capture(catalog, 71, attacked=True)
        )
        second = watch_scan(pipeline, archive, ledger, workers=workers)
        assert [p.name for p in second.scanned] == ["cap3.log", "cap4.csv"]
        assert [p.name for p in second.cached] == ["cap0.log", "cap1.log", "cap2.log"]
        assert second.ledger.hits == 3 and second.ledger.misses == 2

        cold = pipeline.analyze_archive(
            CaptureArchive(archive_dir), workers=workers
        )
        assert_reports_identical(second.report, cold)
        # The attacked captures alarm identically through either path.
        assert [p.name for p in second.report.alarmed_captures] == [
            "cap1.log", "cap4.csv",
        ]

    def test_fully_cached_second_pass(self, pipeline, archive_dir, tmp_path):
        ledger = tmp_path / "ledger.json"
        first = watch_scan(pipeline, archive_dir, ledger)
        second = watch_scan(pipeline, archive_dir, ledger)
        assert second.fully_cached
        assert second.ledger.hits == 3 and second.ledger.misses == 0
        assert_reports_identical(second.report, first.report)

    def test_changed_capture_rescans(
        self, pipeline, archive_dir, tmp_path, catalog
    ):
        """Replacing a capture's bytes under the same name must miss."""
        ledger = tmp_path / "ledger.json"
        watch_scan(pipeline, archive_dir, ledger)
        CaptureArchive(archive_dir).write_capture(
            "cap0.log", make_capture(catalog, 99)
        )
        result = watch_scan(pipeline, archive_dir, ledger)
        assert [p.name for p in result.scanned] == ["cap0.log"]
        cold = pipeline.analyze_archive(CaptureArchive(archive_dir), workers=1)
        assert_reports_identical(result.report, cold)

    def test_removed_capture_pruned(self, pipeline, archive_dir, tmp_path):
        ledger = tmp_path / "ledger.json"
        watch_scan(pipeline, archive_dir, ledger)
        (archive_dir / "cap2.log").unlink()
        result = watch_scan(pipeline, archive_dir, ledger)
        assert result.pruned == 1
        assert len(result.report) == 2
        assert result.fully_cached

    def test_template_change_invalidates_ledger(
        self, pipeline, archive_dir, tmp_path, ids_config, catalog
    ):
        """A retrained template must cold-scan everything: stale
        verdicts answering for a new template would be silent corruption."""
        from repro.core import build_template
        from repro.vehicle.traffic import record_template_windows

        ledger = tmp_path / "ledger.json"
        watch_scan(pipeline, archive_dir, ledger)
        other_template = build_template(
            record_template_windows(
                ids_config.template_windows, 2.0, seed=8, catalog=catalog
            ),
            ids_config,
        )
        retrained = IDSPipeline(other_template, ids_config, id_pool=catalog.ids)
        result = watch_scan(retrained, archive_dir, ledger)
        assert result.ledger.rebuilt
        assert len(result.scanned) == 3 and not result.cached

    def test_malformed_cached_report_rescans(
        self, pipeline, archive_dir, tmp_path
    ):
        """An entry whose report payload is garbage (foreign writer,
        schema drift) must demote to a miss and re-scan, not crash."""
        import json

        ledger_path = tmp_path / "ledger.json"
        watch_scan(pipeline, archive_dir, ledger_path)
        payload = json.loads(ledger_path.read_text())
        victim = sorted(payload["entries"])[0]
        payload["entries"][victim]["report"] = {"bogus": 1}
        ledger_path.write_text(json.dumps(payload))
        result = watch_scan(pipeline, archive_dir, ledger_path)
        assert [p.name for p in result.scanned] == [victim]
        assert result.ledger.hits == 2 and result.ledger.misses == 1
        cold = pipeline.analyze_archive(CaptureArchive(archive_dir), workers=1)
        assert_reports_identical(result.report, cold)
        # The repaired entry persists: the next pass is fully cached.
        assert watch_scan(pipeline, archive_dir, ledger_path).fully_cached

    def test_infer_k_changes_context(self, golden_template, ids_config, catalog):
        base = detection_context(golden_template, ids_config, catalog.ids, 1)
        assert detection_context(golden_template, ids_config, catalog.ids, 2) != base
        assert detection_context(golden_template, ids_config, None, 1) != base
        assert detection_context(
            golden_template, ids_config.with_(window_us=1_000_000),
            catalog.ids, 1,
        ) != base
        # Training-time-only knobs must NOT invalidate: their effect is
        # baked into the template, and hashing them would cold-scan
        # every vehicle when an unrelated one retrains.
        assert detection_context(
            golden_template, ids_config.with_(alpha=5.0), catalog.ids, 1
        ) == base
        assert detection_context(
            golden_template, ids_config.with_(threshold_floor=0.0),
            catalog.ids, 1,
        ) == base
        # Deterministic across processes (no hash randomisation).
        assert detection_context(golden_template, ids_config, catalog.ids, 1) == base

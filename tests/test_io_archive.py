"""Columnar-native IO and capture archives.

The contract under test: files written by the *record* writers load
bit-identically through the *columnar* readers (including the
ground-truth comments), the columnar writers emit byte-identical files,
chunked readers stream the same frames in bounded pieces, and
:class:`CaptureArchive` enumerates deterministically and loads lazily.
"""

import numpy as np
import pytest

from repro.exceptions import TraceFormatError
from repro.io import (
    CaptureArchive,
    ColumnTrace,
    Trace,
    TraceRecord,
    iter_candump_columns,
    iter_csv_columns,
    read_candump,
    read_candump_columns,
    read_csv,
    read_csv_columns,
    write_candump,
    write_candump_columns,
    write_csv,
    write_csv_columns,
)


def sample_trace(n=400, seed=0, with_attacks=True):
    rng = np.random.default_rng(seed)
    t = 0
    records = []
    for k in range(n):
        t += int(rng.integers(0, 3000))
        extended = bool(rng.random() < 0.1)
        records.append(
            TraceRecord(
                timestamp_us=t,
                can_id=int(rng.integers(0, 1 << 29 if extended else 0x800)),
                data=bytes(rng.integers(0, 256, int(rng.integers(0, 9)))),
                extended=extended,
                source=["ECU_DDM", "ECU_ECM", "", "gw"][int(rng.integers(0, 4))],
                is_attack=with_attacks and bool(rng.random() < 0.2),
            )
        )
    return Trace(records)


@pytest.fixture(scope="module")
def trace():
    return sample_trace()


class TestColumnarRoundTrips:
    """Record-written files must load bit-identically via the columnar
    readers — the satellite contract of the archive subsystem."""

    def test_candump_record_file_loads_columnar(self, trace, tmp_path):
        path = tmp_path / "t.log"
        write_candump(trace, path)
        assert read_candump_columns(path) == ColumnTrace.from_trace(trace)

    def test_csv_record_file_loads_columnar(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(trace, path)
        assert read_csv_columns(path) == ColumnTrace.from_trace(trace)

    def test_ground_truth_survives(self, trace, tmp_path):
        path = tmp_path / "t.log"
        write_candump(trace, path)
        ct = read_candump_columns(path)
        assert ct.sources() == [r.source for r in trace]
        assert ct.attack_mask().tolist() == [r.is_attack for r in trace]

    def test_columnar_writers_byte_identical(self, trace, tmp_path):
        ct = trace.to_columns()
        write_candump(trace, tmp_path / "rec.log")
        write_candump_columns(ct, tmp_path / "col.log")
        assert (tmp_path / "rec.log").read_bytes() == (tmp_path / "col.log").read_bytes()
        write_csv(trace, tmp_path / "rec.csv")
        write_csv_columns(ct, tmp_path / "col.csv")
        assert (tmp_path / "rec.csv").read_bytes() == (tmp_path / "col.csv").read_bytes()

    def test_empty_trace_round_trips(self, tmp_path):
        write_candump_columns(
            ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64)),
            tmp_path / "e.log",
        )
        assert len(read_candump_columns(tmp_path / "e.log")) == 0
        write_csv([], tmp_path / "e.csv")
        assert len(read_csv_columns(tmp_path / "e.csv")) == 0

    def test_plain_candump_without_ground_truth(self, tmp_path):
        path = tmp_path / "plain.log"
        path.write_text(
            "(0.000100) can0 1A4#DEAD\n(0.000200) vcan0 18DB33F1#01020304\n"
        )
        ct = read_candump_columns(path)
        assert ct == read_candump(path).to_columns()
        assert ct.extended.tolist() == [False, True]
        assert ct.sources() == ["", ""]

    def test_commented_candump_matches_record_reader(self, tmp_path):
        path = tmp_path / "c.log"
        path.write_text(
            "# comment line\n\n"
            "(0.000100) can0 1A4#DEAD ; src=a attack=0\n"
            "(0.000200) can0 0F3# ; src=- attack=1\n"
        )
        assert read_candump_columns(path) == read_candump(path).to_columns()

    def test_quoted_csv_matches_record_reader(self, tmp_path):
        path = tmp_path / "q.csv"
        path.write_text(
            "time_us,can_id_hex,extended,dlc,data_hex,source,is_attack\n"
            '100,1A4,0,2,DEAD,"we,ird",0\n',
        )
        assert read_csv_columns(path) == read_csv(path).to_columns()

    def test_missing_trailing_newline(self, tmp_path):
        path = tmp_path / "n.log"
        path.write_text("(0.000100) can0 1A4#DEAD ; src=a attack=0")
        assert len(read_candump_columns(path)) == 1


class TestColumnarReaderErrors:
    def test_bad_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("(0.000100) can0 1A4#DE\nnot a line\n")
        with pytest.raises(TraceFormatError, match=r"bad\.log:2"):
            read_candump_columns(path)

    def test_backwards_timestamps_rejected(self, tmp_path):
        path = tmp_path / "mono.csv"
        path.write_text(
            "time_us,can_id_hex,extended,dlc,data_hex,source,is_attack\n"
            "100,1A4,0,0,,x,0\n50,1A4,0,0,,x,0\n"
        )
        with pytest.raises(TraceFormatError, match="time-ordered"):
            read_csv_columns(path)

    def test_dlc_disagreement_rejected(self, tmp_path):
        path = tmp_path / "dlc.csv"
        path.write_text(
            "time_us,can_id_hex,extended,dlc,data_hex,source,is_attack\n"
            "100,1A4,0,3,DEAD,x,0\n"
        )
        with pytest.raises(TraceFormatError, match="disagrees"):
            read_csv_columns(path)

    def test_non_numeric_dlc_rejected_with_lineno(self, tmp_path):
        path = tmp_path / "dlcnan.csv"
        path.write_text(
            "time_us,can_id_hex,extended,dlc,data_hex,source,is_attack\n"
            "100,1A4,0,xx,DEAD,x,0\n"
        )
        with pytest.raises(TraceFormatError, match=r"dlcnan\.csv:2"):
            read_csv_columns(path)
        with pytest.raises(TraceFormatError, match=r"dlcnan\.csv:2"):
            read_csv(path)

    def test_bad_payload_hex_rejected(self, tmp_path):
        path = tmp_path / "hex.log"
        path.write_text("(0.000100) can0 1A4#DEAZ ; src=a attack=0\n")
        with pytest.raises(TraceFormatError):
            read_candump_columns(path)

    def test_bad_csv_header_rejected(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("wrong,header\n")
        with pytest.raises(TraceFormatError, match="header"):
            read_csv_columns(path)

    def test_0x_prefixed_id_rejected_like_record_reader(self, tmp_path):
        """int(, 16) accepts '0x' prefixes; the strict format does not —
        both readers must agree."""
        path = tmp_path / "0x.log"
        path.write_text("(1.000000) can0 0x1A4#1122\n")
        with pytest.raises(TraceFormatError):
            read_candump(path)
        with pytest.raises(TraceFormatError):
            read_candump_columns(path)

    def test_spaced_payload_hex_accepted_like_record_reader(self, tmp_path):
        """bytes.fromhex tolerates whitespace between byte pairs, so the
        columnar CSV reader must too."""
        path = tmp_path / "sp.csv"
        path.write_text(
            "time_us,can_id_hex,extended,dlc,data_hex,source,is_attack\n"
            "1000,1A4,0,2,11 22,ecu,0\n"
        )
        assert read_csv_columns(path) == read_csv(path).to_columns()


class TestChunkedReaders:
    @pytest.mark.parametrize("chunk_frames", [1, 7, 100, 10_000])
    def test_candump_chunks_reassemble(self, trace, tmp_path, chunk_frames):
        path = tmp_path / "t.log"
        write_candump(trace, path)
        chunks = list(iter_candump_columns(path, chunk_frames))
        assert all(len(c) <= chunk_frames for c in chunks)
        assert ColumnTrace.merge(*chunks) == trace.to_columns()

    def test_csv_chunks_reassemble(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(trace, path)
        chunks = list(iter_csv_columns(path, 64))
        assert all(len(c) <= 64 for c in chunks)
        assert ColumnTrace.merge(*chunks) == trace.to_columns()

    def test_chunk_boundary_monotonicity_enforced(self, tmp_path):
        path = tmp_path / "m.log"
        path.write_text(
            "(0.000300) can0 1A4# ; src=a attack=0\n"
            "(0.000100) can0 1A4# ; src=a attack=0\n"
        )
        with pytest.raises(TraceFormatError, match="time-ordered"):
            list(iter_candump_columns(path, 1))

    def test_rejects_nonpositive_chunk(self, tmp_path):
        path = tmp_path / "t.log"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            list(iter_candump_columns(path, 0))


class TestCaptureArchive:
    @pytest.fixture()
    def archive_dir(self, trace, tmp_path):
        write_candump(trace[:100], tmp_path / "b.log")
        write_csv(trace[100:220], tmp_path / "a.csv")
        write_candump(trace[220:], tmp_path / "c.log")
        (tmp_path / "notes.txt").write_text("not a capture")
        return tmp_path

    def test_enumeration_is_sorted_and_filtered(self, archive_dir):
        archive = CaptureArchive(archive_dir)
        assert [p.name for p in archive.paths] == ["a.csv", "b.log", "c.log"]
        assert len(archive) == 3

    def test_lazy_loading_matches_record_readers(self, archive_dir, trace):
        archive = CaptureArchive(archive_dir)
        loaded = list(archive)
        assert loaded[0] == ColumnTrace.from_trace(trace[100:220])
        assert loaded[1] == ColumnTrace.from_trace(trace[:100])
        assert archive.load(2) == ColumnTrace.from_trace(trace[220:])

    def test_items_pairs_paths(self, archive_dir):
        archive = CaptureArchive(archive_dir)
        for path, ct in archive.items():
            assert path in archive.paths
            assert len(ct) > 0

    def test_iter_chunks_bounded(self, archive_dir, trace):
        archive = CaptureArchive(archive_dir)
        per_file = {}
        for path, chunk in archive.iter_chunks(32):
            assert len(chunk) <= 32
            per_file.setdefault(path, []).append(chunk)
        assert set(per_file) == set(archive.paths)
        reassembled = ColumnTrace.merge(*per_file[archive.paths[1]])
        assert reassembled == ColumnTrace.from_trace(trace[:100])

    def test_write_capture_appends_in_order(self, tmp_path, trace):
        archive = CaptureArchive(tmp_path)
        assert len(archive) == 0
        archive.write_capture("z.log", trace[:10])
        archive.write_capture("a.csv", trace[:10])
        assert [p.name for p in archive.paths] == ["a.csv", "z.log"]
        assert archive.load(1) == ColumnTrace.from_trace(trace[:10])

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            CaptureArchive(tmp_path / "nope")

    def test_write_capture_must_match_patterns(self, tmp_path, trace):
        archive = CaptureArchive(tmp_path, patterns=("*.log",))
        with pytest.raises(TraceFormatError, match="patterns"):
            archive.write_capture("x.csv", trace[:5])

    def test_write_capture_subdir_needs_recursive(self, tmp_path, trace):
        flat = CaptureArchive(tmp_path)
        with pytest.raises(TraceFormatError, match="subdirectory"):
            flat.write_capture("sub/x.log", trace[:5])
        with pytest.raises(TraceFormatError, match="invalid"):
            flat.write_capture("../x.log", trace[:5])
        deep = CaptureArchive(tmp_path, recursive=True)
        (tmp_path / "sub").mkdir()
        deep.write_capture("sub/x.log", trace[:5])
        assert [p.name for p in CaptureArchive(tmp_path, recursive=True).paths] == ["x.log"]

    def test_recursive_enumeration(self, tmp_path, trace):
        (tmp_path / "sub").mkdir()
        write_candump(trace[:10], tmp_path / "sub" / "deep.log")
        write_candump(trace[:10], tmp_path / "top.log")
        assert len(CaptureArchive(tmp_path)) == 1
        archive = CaptureArchive(tmp_path, recursive=True)
        assert [p.name for p in archive.paths] == ["deep.log", "top.log"]

"""PeriodicECU scheduling and the Node protocol."""

import pytest

from repro.can.node import MessageSpec, Node, PeriodicECU, counter_payload
from repro.exceptions import BusConfigError, NodeStateError


class TestMessageSpec:
    def test_periodic(self):
        spec = MessageSpec(0x100, period_us=10_000)
        assert spec.is_periodic

    def test_event(self):
        spec = MessageSpec(0x100, rate_hz=2.0)
        assert not spec.is_periodic

    def test_requires_exactly_one_mode(self):
        with pytest.raises(BusConfigError):
            MessageSpec(0x100)
        with pytest.raises(BusConfigError):
            MessageSpec(0x100, period_us=1000, rate_hz=1.0)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(BusConfigError):
            MessageSpec(0x100, period_us=0)

    def test_rejects_negative_offset(self):
        with pytest.raises(BusConfigError):
            MessageSpec(0x100, period_us=1000, offset_us=-1)

    def test_rejects_wild_jitter(self):
        with pytest.raises(BusConfigError):
            MessageSpec(0x100, period_us=1000, jitter_frac=0.5)


class TestCounterPayload:
    def test_increments(self):
        payload = counter_payload(4)
        assert payload(0) == b"\x00\x00\x00\x00"
        assert payload(1) == b"\x00\x00\x00\x01"

    def test_wraps(self):
        payload = counter_payload(1)
        assert payload(256) == b"\x00"

    def test_zero_dlc(self):
        assert counter_payload(0)(5) == b""

    def test_rejects_bad_dlc(self):
        with pytest.raises(BusConfigError):
            counter_payload(9)


class TestPeriodicECU:
    def test_first_release_at_offset(self):
        ecu = PeriodicECU("A", [MessageSpec(0x100, period_us=1000, offset_us=250)])
        assert ecu.next_release() == 250

    def test_schedule_advances_by_period(self):
        ecu = PeriodicECU("A", [MessageSpec(0x100, period_us=1000)])
        first = ecu.next_release()
        ecu.on_win(first)
        assert ecu.next_release() == first + 1000

    def test_peek_builds_frame_with_payload_sequence(self):
        ecu = PeriodicECU("A", [MessageSpec(0x100, period_us=1000)])
        frame0 = ecu.peek()
        ecu.on_win(0)
        frame1 = ecu.peek()
        assert frame0.can_id == frame1.can_id == 0x100
        assert frame0.data != frame1.data  # counter advanced

    def test_backlog_offers_highest_priority_first(self):
        ecu = PeriodicECU(
            "A",
            [
                MessageSpec(0x300, period_us=1000, offset_us=0),
                MessageSpec(0x100, period_us=1000, offset_us=0),
            ],
        )
        # Both due at 0: the lower identifier must be offered first.
        assert ecu.peek().can_id == 0x100

    def test_loss_keeps_frame_pending(self):
        ecu = PeriodicECU("A", [MessageSpec(0x100, period_us=1000)])
        release = ecu.next_release()
        ecu.on_loss(release)
        assert ecu.next_release() == release
        assert ecu.tx_lost == 1

    def test_filtered_drops_frame(self):
        ecu = PeriodicECU("A", [MessageSpec(0x100, period_us=1000)])
        first = ecu.next_release()
        ecu.on_filtered(first)
        assert ecu.next_release() == first + 1000
        assert ecu.tx_filtered == 1

    def test_event_message_reschedules_randomly(self):
        ecu = PeriodicECU("A", [MessageSpec(0x100, rate_hz=100.0)], seed=3)
        t0 = ecu.next_release()
        ecu.on_win(t0)
        t1 = ecu.next_release()
        assert t1 > t0

    def test_jitter_keeps_period_positive(self):
        ecu = PeriodicECU(
            "A", [MessageSpec(0x100, period_us=1000, jitter_frac=0.3)], seed=5
        )
        previous = ecu.next_release()
        for _ in range(200):
            ecu.on_win(previous)
            nxt = ecu.next_release()
            assert nxt > previous
            previous = nxt

    def test_assigned_ids(self):
        ecu = PeriodicECU(
            "A",
            [MessageSpec(0x100, period_us=1000), MessageSpec(0x200, period_us=1000)],
        )
        assert ecu.assigned_ids() == frozenset({0x100, 0x200})

    def test_needs_messages(self):
        with pytest.raises(BusConfigError):
            PeriodicECU("A", [])

    def test_peek_without_pending_raises(self):
        ecu = PeriodicECU("A", [MessageSpec(0x100, period_us=1000)])
        ecu._heap.clear()  # simulate exhaustion
        with pytest.raises(NodeStateError):
            ecu.peek()


class TestNodeBase:
    def test_requires_name(self):
        with pytest.raises(BusConfigError):
            PeriodicECU("", [MessageSpec(0x1, period_us=10)])

    def test_disable_and_reset(self):
        ecu = PeriodicECU("A", [MessageSpec(0x100, period_us=1000)])
        ecu.disable("test")
        assert not ecu.enabled
        assert ecu.disabled_reason == "test"
        ecu.reset()
        assert ecu.enabled
        assert ecu.disabled_reason is None

    def test_win_decrements_error_counter(self):
        ecu = PeriodicECU("A", [MessageSpec(0x100, period_us=1000)])
        ecu.on_error(0)
        assert ecu.error_counters.tec == 8
        ecu.on_win(0)
        assert ecu.error_counters.tec == 7

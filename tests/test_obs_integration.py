"""Telemetry threaded through the stack: fabric, engine, daemon, CLI.

The two acceptance bars from the observability PR live here:

* **identical verdicts** — every scan path produces a whole-report
  bit-identical result with telemetry on and off (instrumentation that
  changed the answer would be worse than useless);
* **a live console** — ``repro-ids status --connect`` against a real
  coordinator serving two real worker *subprocesses* shows per-worker
  claim/completion state that matches the job's final report.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core import BatchEntropyEngine, IDSPipeline
from repro.exceptions import DetectorError
from repro.fleet import FleetStore, WatchDaemon
from repro.fleet.daemon import STATUS_FILENAME
from repro.io import CaptureArchive
from repro.runtime import (
    STATS_VERSION,
    NetExecutor,
    ServerThread,
    fetch_stats,
    queue_stats,
    render_stats,
    run_net_worker,
)
from repro.runtime.queue import queue_dirs
from repro.vehicle.traffic import simulate_drive

from test_runtime_net import spawn_cli_worker, wait_until

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(autouse=True)
def telemetry_off():
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module")
def archive_dir(tmp_path_factory, catalog):
    directory = tmp_path_factory.mktemp("obs-archive")
    archive = CaptureArchive(directory)
    for i in range(4):
        archive.write_capture(
            f"cap{i}.log", simulate_drive(6.0, seed=150 + i, catalog=catalog)
        )
    return directory


@pytest.fixture()
def pipeline(golden_template, ids_config, catalog):
    return IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)


class TestScanParity:
    """Telemetry on must be report-bit-identical to telemetry off."""

    def test_engine_scan_paths_identical_on_and_off(
        self, golden_template, ids_config, catalog
    ):
        capture = simulate_drive(8.0, seed=61, catalog=catalog).to_columns()
        engine = BatchEntropyEngine(golden_template, ids_config)
        off_scan = [w.to_dict() for w in engine.scan(capture)]
        off_stream = [w.to_dict() for w in engine.scan_stream(capture)]
        with obs.capture() as reg:
            on_scan = [w.to_dict() for w in engine.scan(capture)]
            on_stream = [w.to_dict() for w in engine.scan_stream(capture)]
        assert on_scan == off_scan
        assert on_stream == off_stream
        # ...and the traced pass actually recorded the engine stages.
        assert reg.histograms["engine.kernel"].count >= 2
        assert reg.histograms["engine.assemble"].count >= 2

    def test_archive_report_identical_on_and_off(
        self, pipeline, archive_dir
    ):
        reference = pipeline.analyze_archive(archive_dir, workers=1).to_dict()
        with obs.capture():
            traced = pipeline.analyze_archive(archive_dir, workers=1).to_dict()
        assert traced == reference

    def test_reader_spans_recorded(self, tmp_path, catalog):
        from repro.io import load_capture_columns, write_blocks

        capture = simulate_drive(4.0, seed=63, catalog=catalog).to_columns()
        npb = tmp_path / "cap.npb"
        npz = tmp_path / "cap.npz"
        write_blocks(npb, capture)
        capture.save_npz(npz)
        with obs.capture() as reg:
            via_npb = load_capture_columns(npb)
            via_npz = load_capture_columns(npz)
        assert via_npb == capture and via_npz == capture
        assert reg.histograms["io.decompress"].count >= 1
        assert reg.histograms["io.parse"].count >= 1


class TestQueueStats:
    def test_missing_directory_is_a_clean_error(self, tmp_path):
        with pytest.raises(DetectorError, match="no queue directory"):
            queue_stats(tmp_path / "nope")

    def test_directory_state_fills_the_shared_schema(self, tmp_path):
        queue = tmp_path / "q"
        tasks, claimed, results, failed = queue_dirs(queue)
        (tasks / "job0aa-000001.json").write_text("{}")
        (tasks / "job0aa-000002.json").write_text("{}")
        (claimed / "job0aa-000000.json").write_text("{}")
        (results / "job0bb-000000.json").write_text("{}")
        (failed / "job0bb-000001.json.1700000000").write_text("{}")
        stats = queue_stats(queue)
        assert stats["version"] == STATS_VERSION
        assert stats["transport"] == "queue"
        assert not stats["draining"]
        assert stats["tasks"] == {
            "queued": 2, "claimed": 1, "completed": 1,
            "reposted": 0, "quarantined": 1,
        }
        assert stats["jobs"]["job0aa"] == {
            "total": 3, "pending": 2, "claimed": 1, "done": 0,
        }
        (claim,) = stats["claims"]
        assert claim["task"] == "job0aa-000000"
        assert claim["claimant"] is None
        assert claim["lease_age_s"] >= 0.0
        # The console renders the same document either transport fills.
        text = render_stats(stats)
        assert "fabric: queue (serving)" in text
        assert "2 queued, 1 claimed, 1 completed" in text

    def test_stop_file_reports_draining(self, tmp_path):
        queue = tmp_path / "q"
        queue_dirs(queue)
        (queue / "stop").touch()
        assert queue_stats(queue)["draining"]
        assert "fabric: queue (draining)" in render_stats(queue_stats(queue))

    def test_render_rejects_foreign_versions(self):
        with pytest.raises(DetectorError, match="version"):
            render_stats({"version": 99, "transport": "net"})


class TestNetStats:
    def test_stats_verb_speaks_the_shared_schema(self):
        with ServerThread() as st:
            stats = fetch_stats(st.address)
        assert stats["version"] == STATS_VERSION
        assert stats["transport"] == "net"
        assert stats["tasks"] == {
            "queued": 0, "claimed": 0, "completed": 0,
            "reposted": 0, "quarantined": 0,
        }
        assert stats["workers"] == [] and stats["claims"] == []
        # The status-role connection itself moved bytes both ways.
        assert stats["wire"]["bytes_in"] > 0
        assert stats["wire"]["bytes_out"] > 0

    def test_fetch_stats_refused_connection_is_clean(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(DetectorError):
            fetch_stats(f"127.0.0.1:{port}")

    def test_heartbeats_carry_worker_self_reports(self):
        """Renewals piggyback WorkerStats: the coordinator learns each
        worker's executed/cache numbers with zero extra round trips."""
        with ServerThread(lease_s=1.0) as st:
            t = threading.Thread(
                target=run_net_worker,
                kwargs=dict(connect=st.address, poll_s=0.02, max_idle_s=30.0),
                daemon=True,
            )
            t.start()

            def self_report_arrived():
                workers = st.server.stats()["workers"]
                return bool(workers) and "executed" in workers[0]

            assert wait_until(self_report_arrived, timeout_s=20.0)
            row = st.server.stats()["workers"][0]
            assert row["executed"] == 0
            assert row["cache_hits"] == 0
            st.drain()
            t.join(timeout=30)

    def test_drain_logs_the_lifetime_summary(self, pipeline, archive_dir):
        lines = []
        with ServerThread(log=lines.append) as st:
            report = pipeline.analyze_archive(
                archive_dir, executor=NetExecutor(st.address)
            )
            st.drain()
            assert wait_until(
                lambda: any(l.startswith("serve: drained:") for l in lines),
                timeout_s=30.0,
            )
        (summary,) = [l for l in lines if l.startswith("serve: drained:")]
        n_tasks = len(report.captures)
        assert f"1 jobs served ({n_tasks} tasks)" in summary
        assert "B in / " in summary


class TestStatusConsole:
    """The headline acceptance test: a live coordinator, two real
    worker subprocesses, and the ``repro-ids status`` console agreeing
    with the job's final report."""

    def _status_cli(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR)
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "status", *argv],
            capture_output=True, text=True, env=env, timeout=60,
        )

    def test_console_matches_the_final_report(
        self, pipeline, archive_dir, tmp_path
    ):
        n_captures = len(list(archive_dir.glob("*.log")))
        with ServerThread() as st:
            workers = [
                spawn_cli_worker(st.address, tmp_path / f"w{i}.log")
                for i in range(2)
            ]
            try:
                assert wait_until(
                    lambda: len(st.server.snapshot()["workers"]) >= 2,
                    timeout_s=60.0, poll_s=0.05,
                )
                report = pipeline.analyze_archive(
                    archive_dir,
                    executor=NetExecutor(
                        st.address, drain=False, timeout_s=180.0
                    ),
                )
                # Workers are still connected: poll the live console.
                stats = fetch_stats(st.address)
                proc = self._status_cli("--connect", st.address)
                proc_json = self._status_cli(
                    "--connect", st.address, "--json"
                )
            finally:
                st.drain()
                for proc_w in workers:
                    try:
                        proc_w.wait(timeout=60)
                    except subprocess.TimeoutExpired:
                        proc_w.kill()
                        proc_w.wait()
                    proc_w._log_handle.close()

        assert report.to_dict() == pipeline.analyze_archive(
            archive_dir, workers=1
        ).to_dict()
        # The machine-readable document agrees with the finished job.
        assert stats["tasks"]["completed"] == n_captures
        assert stats["tasks"]["queued"] == 0 and stats["tasks"]["claimed"] == 0
        assert len(stats["workers"]) == 2
        assert sum(w["completed"] for w in stats["workers"]) == n_captures
        # The rendered console shows the same rows, non-empty.
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "fabric: net (serving)" in proc.stdout
        assert "workers (2):" in proc.stdout
        assert f"{n_captures} completed" in proc.stdout
        for row in stats["workers"]:
            assert row["name"] in proc.stdout
        # And --json streams the raw document.
        assert proc_json.returncode == 0
        streamed = json.loads(proc_json.stdout.splitlines()[-1])
        assert streamed["version"] == STATS_VERSION
        assert streamed["transport"] == "net"
        assert streamed["tasks"]["completed"] == n_captures

    def test_exactly_one_fabric_flag_required(self):
        proc = self._status_cli()
        assert proc.returncode != 0
        assert "exactly one fabric" in proc.stderr + proc.stdout


class TestDaemonTelemetry:
    @pytest.fixture()
    def healthy_store(self, tmp_path, catalog, golden_template, ids_config):
        store = FleetStore(tmp_path / "fleet")
        store.add_capture(
            "car-a", "d0.log", simulate_drive(6.0, seed=170, catalog=catalog)
        )
        store.save_template(
            "car-a", golden_template, window_us=ids_config.window_us
        )
        return store

    def test_cycle_event_and_status_file(
        self, healthy_store, golden_template, ids_config
    ):
        pipeline = IDSPipeline(golden_template, ids_config)
        lines = []
        sink = obs.MemorySink()
        with obs.capture(sinks=[sink]) as reg:
            daemon = WatchDaemon(
                healthy_store, pipeline, interval_s=0.01, workers=1,
                log=lines.append,
            )
            cycles = daemon.run(max_cycles=2)
        events = {e["kind"] for e in sink.events}
        assert "fleet.cycle" in events
        assert "fleet.backoff" in events
        assert reg.counters["fleet.cycles"].value == 2
        assert reg.gauges["fleet.scanned"].value == 0.0  # cycle 2 cached
        # The human line is a rendering of the structured event.
        event = cycles[0].to_event()
        assert event["cycle"] == 0 and event["vehicles"] == 1
        assert any(cycles[0].status_line() == line for line in lines)
        # The status file is the cross-process face of the same event.
        status = json.loads(
            (healthy_store.root / STATUS_FILENAME).read_text()
        )
        assert status["v"] == obs.OBS_VERSION
        assert status["pid"] == os.getpid()
        assert status["cycle"] == cycles[1].to_event()

    def test_status_file_written_even_with_telemetry_off(
        self, healthy_store, golden_template, ids_config
    ):
        pipeline = IDSPipeline(golden_template, ids_config)
        daemon = WatchDaemon(
            healthy_store, pipeline, interval_s=0.01, workers=1,
            log=lambda line: None,
        )
        daemon.run(max_cycles=1)
        status = json.loads(
            (healthy_store.root / STATUS_FILENAME).read_text()
        )
        assert status["cycle"]["cycle"] == 0
        assert status["cycle"]["scanned"] == 1

    def test_fleet_status_cli_surfaces_the_daemon(
        self, healthy_store, golden_template, ids_config
    ):
        pipeline = IDSPipeline(golden_template, ids_config)
        daemon = WatchDaemon(
            healthy_store, pipeline, interval_s=0.01, workers=1,
            log=lambda line: None,
        )
        daemon.run(max_cycles=1)
        from repro.cli import main

        import io
        from contextlib import redirect_stdout

        buf = io.StringIO()
        with redirect_stdout(buf):
            rc = main(["fleet", "status", "--store", str(healthy_store.root)])
        assert rc == 0
        out = buf.getvalue()
        assert "watch daemon (pid " in out
        assert "cycle 0" in out

        buf = io.StringIO()
        with redirect_stdout(buf):
            rc = main(["fleet", "status", "--store", str(healthy_store.root),
                       "--json"])
        assert rc == 0
        objects = [json.loads(l) for l in buf.getvalue().splitlines()]
        daemon_rows = [o for o in objects if "daemon" in o]
        assert len(daemon_rows) == 1
        assert daemon_rows[0]["daemon"]["cycle"]["cycle"] == 0


class TestMetricsOutFlag:
    def test_scan_archive_event_log(
        self, archive_dir, golden_template, tmp_path
    ):
        from repro.cli import main

        template_path = tmp_path / "t.json"
        golden_template.save(template_path)
        events_path = tmp_path / "events.jsonl"

        import io
        from contextlib import redirect_stdout

        buf = io.StringIO()
        with redirect_stdout(buf):
            rc = main([
                "scan-archive", "--template", str(template_path),
                "--dir", str(archive_dir), "--executor", "serial",
                "--metrics-out", str(events_path),
            ])
        assert rc in (0, 2)
        assert not obs.enabled()  # the flag must not leak past the run
        assert f"telemetry events written to {events_path}" in buf.getvalue()
        events = [
            json.loads(l) for l in events_path.read_text().splitlines()
        ]
        assert all(
            e["v"] == obs.OBS_VERSION and "ts" in e and "kind" in e
            for e in events
        )
        spans = [e for e in events if e["kind"] == "span"]
        assert {"engine.kernel", "cli.scan-archive"} <= {
            s["name"] for s in spans
        }
        # Stage spans nest under the command span, and their durations
        # are bounded by it.
        (cli_span,) = [s for s in spans if s["name"] == "cli.scan-archive"]
        stage_total = sum(
            s["dur_s"] for s in spans if s["parent"] == "cli.scan-archive"
        )
        assert stage_total <= cli_span["dur_s"]
        (snapshot_event,) = [e for e in events if e["kind"] == "metrics"]
        assert snapshot_event["snapshot"]["v"] == obs.OBS_VERSION
        assert "engine.kernel" in snapshot_event["snapshot"]["histograms"]

"""Protocol constants for the CAN simulator.

All times in the simulator are integer **microseconds** so that the two
baud rates the paper uses (125 kbit/s for the middle-speed bus, 500 kbit/s
for the high-speed bus) yield exact integer bit times (8 us and 2 us).
"""

#: Number of identifier bits in a base-format frame.
BASE_ID_BITS = 11

#: Number of identifier bits in an extended-format frame.
EXT_ID_BITS = 29

#: Largest valid base-format identifier (0x7FF).
MAX_BASE_ID = (1 << BASE_ID_BITS) - 1

#: Largest valid extended-format identifier (0x1FFFFFFF).
MAX_EXT_ID = (1 << EXT_ID_BITS) - 1

#: Largest data length code for classic CAN (8 bytes).
MAX_DLC = 8

#: Middle-speed CAN baud rate used by the paper's Ford Fusion logs (bit/s).
BAUD_MS_CAN = 125_000

#: High-speed CAN baud rate (bit/s).
BAUD_HS_CAN = 500_000

#: CRC-15 generator polynomial of CAN (x^15+x^14+x^10+x^8+x^7+x^4+x^3+1).
CRC15_POLY = 0x4599

#: Width of the CRC field in bits.
CRC_BITS = 15

#: Run length after which a stuff bit is inserted.
STUFF_RUN = 5

#: CRC delimiter + ACK slot + ACK delimiter, transmitted without stuffing.
ACK_FIELD_BITS = 3

#: End-of-frame field (7 recessive bits), transmitted without stuffing.
EOF_BITS = 7

#: Interframe space (3 recessive bits) between consecutive frames.
IFS_BITS = 3

#: Number of bits in an (active) error frame plus error delimiter; used to
#: charge bus time when the simulator injects a transmission error.
ERROR_FRAME_BITS = 14

#: One second expressed in simulator microseconds.
SECOND_US = 1_000_000


def bit_time_us(baud_rate: int) -> int:
    """Return the duration of one bit in integer microseconds.

    Raises
    ------
    ValueError
        If the baud rate does not divide 1 MHz evenly; the simulator clock
        is integer microseconds, so only such rates are representable
        exactly (all the standard automotive rates are: 125k/250k/500k/1M).
    """
    if baud_rate <= 0:
        raise ValueError(f"baud rate must be positive, got {baud_rate}")
    if SECOND_US % baud_rate:
        raise ValueError(
            f"baud rate {baud_rate} does not give an integer microsecond bit time"
        )
    return SECOND_US // baud_rate

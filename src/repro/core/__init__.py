"""The paper's contribution: bit-entropy intrusion detection.

Pipeline overview (Section IV of the paper)::

    trace/bus ──► BitCounter ──► entropy vector H (11 bits)
                                    │
        GoldenTemplate (mean/range over 35 clean windows)
                                    │
            per-bit thresholds Th_i = alpha * (max H_i − min H_i)
                                    │
      EntropyDetector: |H_i − H_temp,i| > Th_i  ⇒  window alarm
                                    │
      InferenceEngine: Δp direction/magnitude ⇒ ranked malicious-ID
                        candidates (rank selection, paper rank = 10)

Public classes:

* :class:`IDSConfig` — every tunable (window, alpha, rank, ...).
* :class:`BitCounter` — streaming per-bit occurrence counts.
* :func:`binary_entropy` — the Bernoulli entropy function H_b(p).
* :class:`TemplateBuilder` / :class:`GoldenTemplate` — golden template.
* :class:`EntropyDetector` — windowed detection (streaming or batch).
* :class:`InferenceEngine` — malicious-ID inference via rank selection.
* :class:`IDSPipeline` — detector + inference + reporting in one call.
"""

from repro.core.alerts import Alert, AlertSink
from repro.core.bitprob import BitCounter
from repro.core.config import IDSConfig
from repro.core.detector import EntropyDetector, WindowResult
from repro.core.engine import BatchEntropyEngine, batch_scan
from repro.core.entropy import binary_entropy, entropy_vector, shannon_entropy
from repro.core.inference import InferenceEngine, InferenceResult
from repro.core.kernel import KernelWorkspace, WindowBlock, scan_windows
from repro.core.pipeline import (
    ArchiveReport,
    DetectionReport,
    IDSPipeline,
    MultiBusReport,
)
from repro.core.response import Blocklist, ResponseGate, ResponseOutcome
from repro.core.ring import FrameRing
from repro.core.shard import CaptureScan, ShardedScanner
from repro.core.sliding import SlidingEntropyDetector
from repro.core.template import GoldenTemplate, TemplateBuilder, build_template

__all__ = [
    "Alert",
    "AlertSink",
    "ArchiveReport",
    "BatchEntropyEngine",
    "BitCounter",
    "Blocklist",
    "CaptureScan",
    "DetectionReport",
    "EntropyDetector",
    "FrameRing",
    "GoldenTemplate",
    "IDSConfig",
    "IDSPipeline",
    "InferenceEngine",
    "InferenceResult",
    "KernelWorkspace",
    "MultiBusReport",
    "ResponseGate",
    "ResponseOutcome",
    "ShardedScanner",
    "SlidingEntropyDetector",
    "TemplateBuilder",
    "WindowBlock",
    "WindowResult",
    "batch_scan",
    "scan_windows",
    "binary_entropy",
    "build_template",
    "entropy_vector",
    "shannon_entropy",
]

"""The synthetic Ford Fusion catalog."""

import numpy as np
import pytest

from repro.can.constants import MAX_BASE_ID
from repro.exceptions import BusConfigError
from repro.vehicle.ids_catalog import (
    FORD_FUSION_ID_COUNT,
    CatalogEntry,
    VehicleCatalog,
    ford_fusion_catalog,
)


class TestCatalogEntry:
    def test_periodic_entry(self):
        entry = CatalogEntry(0x100, "X", "powertrain", "ECM", period_us=10_000)
        assert entry.is_periodic

    def test_event_entry(self):
        entry = CatalogEntry(0x100, "X", "body", "BCM", base_rate_hz=0.5, tag="lights")
        assert not entry.is_periodic

    def test_requires_exactly_one_mode(self):
        with pytest.raises(BusConfigError):
            CatalogEntry(0x100, "X", "body", "BCM")
        with pytest.raises(BusConfigError):
            CatalogEntry(0x100, "X", "body", "BCM", period_us=1, base_rate_hz=1.0)

    def test_rejects_out_of_range_id(self):
        with pytest.raises(BusConfigError):
            CatalogEntry(0x800, "X", "body", "BCM", period_us=1000)


class TestVehicleCatalog:
    def test_rejects_duplicates(self):
        entry = CatalogEntry(0x100, "X", "body", "BCM", period_us=1000)
        with pytest.raises(BusConfigError):
            VehicleCatalog([entry, entry])

    def test_rejects_empty(self):
        with pytest.raises(BusConfigError):
            VehicleCatalog([])

    def test_sorted_by_id(self, catalog):
        ids = catalog.ids
        assert list(ids) == sorted(ids)

    def test_entry_lookup(self, catalog):
        can_id = catalog.ids[10]
        assert catalog.entry(can_id).can_id == can_id
        with pytest.raises(KeyError):
            catalog.entry(0x7FE if 0x7FE not in catalog.id_set() else 0x7FD)


class TestFordFusionCatalog:
    def test_exactly_223_ids(self, catalog):
        assert len(catalog) == FORD_FUSION_ID_COUNT

    def test_coverage_matches_paper(self, catalog):
        # The paper: 223 IDs = 10.88 % of the 2048-value space.
        assert catalog.coverage() == pytest.approx(0.1088, abs=0.0005)

    def test_deterministic_in_seed(self):
        assert ford_fusion_catalog(seed=5).ids == ford_fusion_catalog(seed=5).ids

    def test_different_seeds_differ(self):
        assert ford_fusion_catalog(seed=1).ids != ford_fusion_catalog(seed=2).ids

    def test_all_ids_in_base_range(self, catalog):
        assert all(0 <= i <= MAX_BASE_ID for i in catalog.ids)

    def test_clusters_partition_priority_ranges(self, catalog):
        by_cluster = catalog.by_cluster()
        assert set(by_cluster) == {
            "powertrain", "chassis", "body", "comfort", "diagnostics",
        }
        powertrain = max(e.can_id for e in by_cluster["powertrain"])
        chassis = min(e.can_id for e in by_cluster["chassis"])
        assert powertrain < chassis  # powertrain outranks chassis

    def test_every_entry_has_an_ecu(self, catalog):
        by_ecu = catalog.by_ecu()
        assert sum(len(v) for v in by_ecu.values()) == len(catalog)
        assert all(entries for entries in by_ecu.values())

    def test_period_and_event_split(self, catalog):
        periodic = catalog.periodic_entries()
        events = catalog.event_entries()
        assert len(periodic) + len(events) == len(catalog)
        assert len(periodic) > len(events)  # periodic traffic dominates

    def test_fastest_periods_at_low_ids_within_cluster(self, catalog):
        # Priority mirrors importance: within each cluster the fastest
        # period must not belong to the numerically largest identifiers.
        for cluster, entries in catalog.by_cluster().items():
            periodic = [e for e in entries if e.is_periodic]
            fastest = min(e.period_us for e in periodic)
            lowest_with_fastest = min(
                e.can_id for e in periodic if e.period_us == fastest
            )
            highest = max(e.can_id for e in periodic)
            assert lowest_with_fastest <= highest

    def test_nominal_rate_supports_realistic_busload(self, catalog):
        # ~715 msg/s at ~96 bits/frame ≈ 55 % of a 125 kbit/s bus.
        rate = catalog.nominal_rate_hz()
        assert 500 <= rate <= 900

    def test_bit_probabilities_are_skewed(self, catalog):
        """Traffic-weighted bit probabilities sit away from p = 0.5 on
        several bits — the property the bit-entropy method needs to
        respond in first order (H_b is flat at p = 1/2)."""
        rates = np.asarray(
            [
                1e6 / e.period_us if e.is_periodic else e.base_rate_hz
                for e in catalog
            ]
        )
        ids = np.asarray([e.can_id for e in catalog])
        bits = (ids[:, None] >> np.arange(10, -1, -1)[None, :]) & 1
        p = (bits * rates[:, None]).sum(axis=0) / rates.sum()
        assert (np.abs(p - 0.5) > 0.08).sum() >= 4

"""The scan-fabric protocol: one state machine, any transport.

Every distributed backend moves the same three messages and obeys the
same rules, no matter what carries the bytes:

* :class:`TaskMessage` — a unit of work: *run this portable spec over
  this capture path*, identified by ``(job, index)``;
* :class:`ClaimToken` — a lease on a claimed task: the claimant must
  finish (or renew) within ``lease_s`` or the task is re-posted for
  another claimant;
* :class:`TaskResult` — the outcome: ledger-protocol window verdicts
  (bit-exact float round trips) or an error string.

The state machine per task::

    posted ──claim──> claimed ──publish──> done
      ^                 │
      └──lease expiry───┘        (claimant died: re-post, never wedge)

    malformed task ──> quarantined (poison must not crash a claimant;
                       the coordinator raises a diagnostic — no result
                       will ever arrive for it, waiting would hang)

    error result ──> local retry (drain mode: workers accelerate a
                     scan, they are never *required* for one) or a
                     DetectorError (no-drain mode)

Two transports implement it: the filesystem queue
(:mod:`repro.runtime.queue` — posting is a file write, claiming an
atomic rename, the lease stamp an mtime) and the asyncio TCP fabric
(:mod:`repro.runtime.net` — posting is a ``submit`` message, claiming a
``next`` reply, the lease renewed by worker heartbeats).  Both are
bit-identical to a serial scan because both move the same
:class:`TaskResult` codec.

:func:`execute_task` is the claimant half shared by every worker —
filesystem, network, or a draining coordinator — including the
per-spec scanner cache; :class:`ResultCollector` is the coordinator
half: offer results in any order (duplicates welcome — a re-posted
task's duplicate result is byte-identical), get input-ordered results
out.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import DetectorError
from repro.runtime.base import ScanSpec, spec_from_payload

__all__ = [
    "DEFAULT_LEASE_S",
    "PROTOCOL_VERSION",
    "ClaimToken",
    "ResultCollector",
    "TaskFormatError",
    "TaskMessage",
    "TaskResult",
    "execute_task",
    "make_tasks",
    "new_job_id",
    "require_portable",
]

#: Wire-format version, stamped into every task and result message.
#: Bump on incompatible changes; claimants quarantine (or reject)
#: anything they cannot speak.
PROTOCOL_VERSION = 1

#: Default claim lease: a claimant that neither publishes nor renews
#: within this window is presumed dead and its task is re-posted.
DEFAULT_LEASE_S = 300.0


class TaskFormatError(DetectorError):
    """A task or result message could not be decoded.

    Transports translate this into their quarantine rule: the
    filesystem queue moves the file into ``failed/``, the network
    fabric relays an error result.  Never fatal to a claimant — a
    poison message must not crash a fleet's shared worker.
    """


def new_job_id() -> str:
    """A fresh job identifier (also the task-name prefix on disk)."""
    return uuid.uuid4().hex[:12]


def require_portable(spec: ScanSpec) -> None:
    """Refuse specs that cannot serialise across a host boundary."""
    if not spec.portable:
        raise DetectorError(
            f"{type(spec).__name__} cannot be shipped through a work "
            f"queue or network fabric; use the serial or pool executor"
        )


def _decode_error(payload: object, exc: Exception) -> TaskFormatError:
    head = repr(payload)
    if len(head) > 80:
        head = head[:77] + "..."
    return TaskFormatError(f"malformed fabric message {head}: {exc}")


@dataclass(frozen=True)
class TaskMessage:
    """One unit of work: a portable spec payload over one capture path."""

    job: str
    index: int
    path: str
    spec: dict

    @property
    def name(self) -> str:
        """Canonical task name, also the filesystem transport's stem."""
        return f"{self.job}-{self.index:06d}"

    def to_wire(self) -> dict:
        return {
            "version": PROTOCOL_VERSION,
            "job": self.job,
            "index": self.index,
            "path": self.path,
            "spec": self.spec,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "TaskMessage":
        try:
            if payload["version"] != PROTOCOL_VERSION:
                raise ValueError(
                    f"fabric protocol version {payload['version']!r}"
                )
            return cls(
                job=str(payload["job"]),
                index=int(payload["index"]),
                path=str(payload["path"]),
                spec=dict(payload["spec"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise _decode_error(payload, exc) from exc


@dataclass(frozen=True)
class TaskResult:
    """A task's outcome: encoded window verdicts, or an error string."""

    job: str
    index: int
    result: Optional[list] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_wire(self) -> dict:
        wire = {
            "version": PROTOCOL_VERSION,
            "job": self.job,
            "index": self.index,
        }
        if self.error is not None:
            wire["error"] = self.error
        else:
            wire["result"] = self.result
        return wire

    @classmethod
    def from_wire(cls, payload: dict) -> "TaskResult":
        try:
            if payload["version"] != PROTOCOL_VERSION:
                raise ValueError(
                    f"fabric protocol version {payload['version']!r}"
                )
            error = payload.get("error")
            if error is None and "result" not in payload:
                raise ValueError("neither result nor error present")
            return cls(
                job=str(payload["job"]),
                index=int(payload["index"]),
                result=payload.get("result"),
                error=None if error is None else str(error),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise _decode_error(payload, exc) from exc


@dataclass
class ClaimToken:
    """A lease on a claimed task, renewable by claimant heartbeats."""

    task: TaskMessage
    claimant: str
    claimed_at: float
    lease_s: float = DEFAULT_LEASE_S

    def expired(self, now: float) -> bool:
        return now - self.claimed_at > self.lease_s

    def renew(self, now: float) -> None:
        self.claimed_at = now


def make_tasks(
    spec: ScanSpec, paths: Sequence[str], job: Optional[str] = None
) -> List[TaskMessage]:
    """Describe a job: one :class:`TaskMessage` per capture path."""
    require_portable(spec)
    job = job or new_job_id()
    payload = spec.to_payload()
    return [
        TaskMessage(job=job, index=i, path=str(p), spec=payload)
        for i, p in enumerate(paths)
    ]


def execute_task(
    task: TaskMessage, scanners: Optional[Dict[str, object]] = None
) -> TaskResult:
    """Run one task; a scan failure becomes an *error result*.

    The claimant half shared by every worker.  ``scanners`` caches
    built scanners keyed by the canonical spec payload, so a claimant
    draining a whole archive builds its engine once.  Errors are
    published, not raised: the coordinator is the process with a human
    attached, so failures surface there, and the fabric never wedges on
    a poison capture.
    """
    key = json.dumps(task.spec, sort_keys=True)
    try:
        spec = spec_from_payload(task.spec)
        if scanners is not None and key in scanners:
            scan = scanners[key]
        else:
            scan = spec.make_scanner()
            if scanners is not None:
                scanners[key] = scan
        result = scan(task.path)
        return TaskResult(
            task.job, task.index, result=spec.encode_result(result)
        )
    except Exception as exc:  # noqa: BLE001 - published, not swallowed
        return TaskResult(
            task.job, task.index, error=f"{type(exc).__name__}: {exc}"
        )


class ResultCollector:
    """The coordinator half: out-of-order results in, input order out.

    Encapsulates the error-result rule once for every transport: with
    ``local_retry`` (drain mode) a worker's error result is retried
    locally — a remote failure (missing mount on the worker's host,
    transient IO fault) degrades to local execution and only a local
    failure (the capture really is bad) propagates, with the true local
    exception.  Without it, an error result raises immediately.

    Duplicate and foreign results are ignored (``offer`` returns
    False): a re-posted task may legitimately complete twice, and the
    duplicate results of a deterministic task are byte-identical — the
    collector takes whichever arrives first.
    """

    def __init__(
        self,
        spec: ScanSpec,
        paths: Sequence[str],
        job: str,
        local_retry: bool = True,
    ) -> None:
        self.spec = spec
        self.names = [str(p) for p in paths]
        self.job = job
        self.local_retry = bool(local_retry)
        self._collected: Dict[int, list] = {}
        self._local_scan = None

    @property
    def done(self) -> bool:
        return len(self._collected) >= len(self.names)

    @property
    def n_collected(self) -> int:
        return len(self._collected)

    def collected(self, index: int) -> bool:
        return index in self._collected

    def pending_indices(self) -> List[int]:
        return [
            i for i in range(len(self.names)) if i not in self._collected
        ]

    def offer(self, outcome: TaskResult) -> bool:
        """Accept one outcome; True when it progressed the job."""
        if outcome.job != self.job:
            return False
        index = outcome.index
        if not 0 <= index < len(self.names) or index in self._collected:
            return False
        if outcome.error is not None:
            if not self.local_retry:
                raise DetectorError(
                    f"worker failed scanning {self.names[index]}: "
                    f"{outcome.error}"
                )
            if self._local_scan is None:
                self._local_scan = self.spec.make_scanner()
            self._collected[index] = self._local_scan(self.names[index])
        else:
            self._collected[index] = self.spec.decode_result(outcome.result)
        return True

    def results(self) -> List[list]:
        """Input-ordered results; only valid once :attr:`done`."""
        if not self.done:
            raise DetectorError(
                f"job {self.job} incomplete: "
                f"{len(self.names) - len(self._collected)} of "
                f"{len(self.names)} tasks outstanding"
            )
        return [self._collected[i] for i in range(len(self.names))]

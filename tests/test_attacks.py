"""Attack scenario nodes."""

import numpy as np
import pytest

from repro.attacks import (
    FloodingAttacker,
    MasqueradeAttacker,
    MultiIDAttacker,
    ReplayAttacker,
    SingleIDAttacker,
    WeakAttacker,
)
from repro.can.bus import Bus, BusConfig
from repro.can.node import MessageSpec, PeriodicECU
from repro.exceptions import BusConfigError
from repro.io.trace import TraceRecord


def busy_bus(seed=0):
    """A bus with enough legitimate traffic to contest arbitration.

    Five ECUs at 10 ms periods ≈ 500 msg/s ≈ 50 % busload on the default
    middle-speed bus: contested, but with winnable idle slots.
    """
    bus = Bus()
    for index in range(5):
        bus.attach(
            PeriodicECU(
                f"ecu{index}",
                [MessageSpec(0x100 + 0x40 * index, period_us=10_000,
                             offset_us=index * 911)],
                seed=seed + index,
            )
        )
    return bus


class TestAttackerBase:
    def test_scheduling_respects_window(self):
        attacker = SingleIDAttacker(0x300, frequency_hz=100.0, start_s=0.5,
                                    duration_s=1.0)
        assert attacker.next_release() == 500_000

    def test_injection_rate_zero_before_attempts(self):
        attacker = SingleIDAttacker(0x300, frequency_hz=10.0)
        assert attacker.injection_rate == 0.0

    def test_rejects_bad_frequency(self):
        with pytest.raises(BusConfigError):
            SingleIDAttacker(0x300, frequency_hz=0.0)

    def test_rejects_negative_start(self):
        with pytest.raises(BusConfigError):
            SingleIDAttacker(0x300, frequency_hz=10.0, start_s=-1.0)

    def test_attack_stops_after_duration(self):
        bus = Bus()
        attacker = SingleIDAttacker(0x300, frequency_hz=100.0, start_s=0.0,
                                    duration_s=0.5)
        bus.attach(attacker)
        trace = bus.run(2_000_000)
        assert len(trace) == 50
        assert trace.end_us < 600_000

    def test_attack_frames_labelled(self):
        bus = Bus()
        bus.attach(SingleIDAttacker(0x300, frequency_hz=50.0, duration_s=0.2))
        trace = bus.run(300_000)
        assert all(r.is_attack for r in trace)

    def test_drop_on_loss_counts_attempts(self):
        bus = busy_bus()
        attacker = SingleIDAttacker(0x7F0, frequency_hz=200.0, seed=1)
        bus.attach(attacker)
        bus.run(2_000_000)
        stats = attacker.stats
        assert stats.attempts == stats.wins + stats.losses
        assert stats.losses > 0  # low priority must lose sometimes
        assert 0.0 < attacker.injection_rate < 1.0

    def test_queueing_attacker_never_drops(self):
        bus = busy_bus()
        attacker = SingleIDAttacker(0x7F0, frequency_hz=100.0, seed=1,
                                    drop_on_loss=False)
        bus.attach(attacker)
        bus.run(1_000_000)
        assert attacker.stats.losses == 0
        assert attacker.stats.wins == attacker.stats.attempts

    def test_describe_mentions_rate(self):
        attacker = SingleIDAttacker(0x300, frequency_hz=50.0)
        assert "50" in attacker.describe()


class TestFlooding:
    def test_ids_change_per_attempt(self):
        attacker = FloodingAttacker(frequency_hz=100.0, ceiling=0x80, seed=2)
        ids = {attacker.select_id() for _ in range(50)}
        assert len(ids) > 10
        assert all(i < 0x80 for i in ids)

    def test_fixed_zero_mode(self):
        attacker = FloodingAttacker(fixed_zero=True)
        assert {attacker.select_id() for _ in range(10)} == {0x000}

    def test_rejects_bad_ceiling(self):
        with pytest.raises(BusConfigError):
            FloodingAttacker(ceiling=0)

    def test_high_priority_floods_win_contested_bus(self):
        bus = busy_bus()
        attacker = FloodingAttacker(frequency_hz=100.0, ceiling=0x080, seed=3)
        bus.attach(attacker)
        bus.run(2_000_000)
        assert attacker.injection_rate > 0.95


class TestSingleID:
    def test_fixed_id(self):
        attacker = SingleIDAttacker(0x1A4, frequency_hz=10.0)
        assert attacker.select_id() == 0x1A4

    def test_fixed_payload(self):
        attacker = SingleIDAttacker(0x1A4, payload=b"\x01\x02")
        assert attacker.build_payload() == b"\x01\x02"

    def test_random_payload_varies(self):
        attacker = SingleIDAttacker(0x1A4, seed=1)
        assert attacker.build_payload() != attacker.build_payload()

    def test_rejects_out_of_range(self):
        with pytest.raises(BusConfigError):
            SingleIDAttacker(0x800)

    def test_rejects_long_payload(self):
        with pytest.raises(BusConfigError):
            SingleIDAttacker(0x100, payload=b"\x00" * 9)


class TestMultiID:
    def test_round_robin_cycles(self):
        attacker = MultiIDAttacker([0x100, 0x200, 0x300], mode="round_robin")
        assert [attacker.select_id() for _ in range(6)] == [
            0x100, 0x200, 0x300, 0x100, 0x200, 0x300,
        ]

    def test_random_mode_draws_from_set(self):
        attacker = MultiIDAttacker([0x100, 0x200], mode="random", seed=4)
        assert {attacker.select_id() for _ in range(40)} == {0x100, 0x200}

    def test_aggregate_frequency_scales_with_k(self):
        attacker = MultiIDAttacker([0x100, 0x200, 0x300], frequency_hz=10.0)
        assert attacker.frequency_hz == pytest.approx(30.0)
        assert attacker.per_id_frequency_hz == pytest.approx(10.0)

    def test_needs_two_distinct_ids(self):
        with pytest.raises(BusConfigError):
            MultiIDAttacker([0x100])
        with pytest.raises(BusConfigError):
            MultiIDAttacker([0x100, 0x100])

    def test_rejects_unknown_mode(self):
        with pytest.raises(BusConfigError):
            MultiIDAttacker([0x100, 0x200], mode="zigzag")


class TestWeak:
    def test_restricted_to_dominant_assigned(self):
        attacker = WeakAttacker([0x500, 0x300, 0x400], max_active=2, seed=5)
        chosen = {attacker.select_id() for _ in range(100)}
        assert chosen <= {0x300, 0x400}

    def test_prefers_dominant(self):
        attacker = WeakAttacker([0x300, 0x400], seed=6)
        draws = [attacker.select_id() for _ in range(500)]
        assert draws.count(0x300) > draws.count(0x400) * 2

    def test_uniform_mode(self):
        attacker = WeakAttacker([0x300, 0x400], prefer_dominant=False, seed=6)
        draws = [attacker.select_id() for _ in range(1000)]
        assert abs(draws.count(0x300) - draws.count(0x400)) < 200

    def test_transmitter_filter_blocks_unassigned(self):
        """A weak attacker trying a foreign ID is stopped by the filter."""
        bus = Bus()
        cheat = SingleIDAttacker(0x050, frequency_hz=100.0, duration_s=0.5)
        bus.attach(cheat, tx_filter={0x500})
        trace = bus.run(1_000_000)
        assert len(trace) == 0
        assert cheat.stats.filtered == 50

    def test_needs_assigned_ids(self):
        with pytest.raises(BusConfigError):
            WeakAttacker([])


class TestReplay:
    def _recording(self):
        return [
            TraceRecord(0, 0x111, b"\x01"),
            TraceRecord(10, 0x222, b"\x02"),
        ]

    def test_replays_ids_and_payloads(self):
        attacker = ReplayAttacker(self._recording(), frequency_hz=10.0)
        assert attacker.select_id() == 0x111
        assert attacker.build_payload() == b"\x01"
        assert attacker.select_id() == 0x222
        assert attacker.build_payload() == b"\x02"

    def test_loops_by_default(self):
        attacker = ReplayAttacker(self._recording(), frequency_hz=10.0)
        ids = [attacker.select_id() for _ in range(5)]
        assert ids == [0x111, 0x222, 0x111, 0x222, 0x111]

    def test_no_loop_ends_attack(self):
        bus = Bus()
        attacker = ReplayAttacker(self._recording(), frequency_hz=100.0, loop=False)
        bus.attach(attacker)
        trace = bus.run(1_000_000)
        assert len(trace) == 2

    def test_needs_recording(self):
        with pytest.raises(BusConfigError):
            ReplayAttacker([])


class TestMasquerade:
    def test_victim_silenced_on_first_frame(self):
        bus = Bus()
        victim = PeriodicECU("victim", [MessageSpec(0x150, period_us=10_000)])
        bus.attach(victim)
        attacker = MasqueradeAttacker(0x150, victim=victim, frequency_hz=20.0,
                                      start_s=0.05)
        bus.attach(attacker)
        trace = bus.run(1_000_000)
        assert not victim.enabled
        late = trace.between(100_000, 1_000_000)
        assert all(r.is_attack for r in late if r.can_id == 0x150)

    def test_arm_after_construction(self):
        victim = PeriodicECU("victim", [MessageSpec(0x150, period_us=10_000)])
        attacker = MasqueradeAttacker(0x150, frequency_hz=20.0)
        attacker.arm(victim)
        attacker.select_id()
        assert not victim.enabled

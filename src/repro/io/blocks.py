"""Block-compressed columnar capture container (``.npb``).

The uncompressed aligned ``.npz`` (see :mod:`repro.io.columnar`) is the
memory-mapping format: bounded-memory scans, zero-copy loads, but
full-size on disk.  Fleet corpora are large *and* compressed, so this
module adds the complementary container: every column is cut into
per-block zlib streams with a JSON block index, so archives stay small
on disk without giving up the RSS ceiling — :class:`BlockReader`
inflates one block at a time and plugs straight into
``BatchEntropyEngine.scan_stream``.

File layout (all integers little-endian)::

    magic            8 bytes   b"REPRONB1"
    column chunks    back-to-back zlib streams, one per (block, column)
    index            JSON (UTF-8): schema version, global intern
                     tables, per-block row counts / time bounds /
                     per-column [offset, compressed size, raw size,
                     numpy dtype string]
    trailer          <QQ8s: index offset, index size, magic again

The writer is append-only (stream parse → compress → append, nothing
buffered beyond one block), the reader seeks the trailer first, so both
directions are O(block) memory.  Alignment rule: blocks are cut on
frame boundaries only — every block holds exactly ``block_frames``
rows (the last may be short) with its payload offsets rebased to 0 —
and window alignment is applied at *read* time by merging each block
with the carry of the previous one, so any ``(window_us,
chunk_windows)`` grid scans bit-identically to the in-RAM path.
Unknown index versions are refused up front (``version`` gate), like
the npz schema gate.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro import obs
from repro.exceptions import TraceFormatError
from repro.io.columnar import ColumnTrace
from repro.io.trace import Trace

__all__ = ["BlockReader", "BlockWriter", "write_blocks", "BLOCKS_SUFFIX"]

#: Canonical file suffix (``capture.npb`` — "numpy blocks").
BLOCKS_SUFFIX = ".npb"

_MAGIC = b"REPRONB1"
_TRAILER = struct.Struct("<QQ8s")
_FORMAT_NAME = "repro-blocks"
_VERSION = 1
_READABLE = (1,)

#: Default rows per compressed block.  256 K rows ≈ 8 MB of raw column
#: data — large enough that zlib sees real redundancy, small enough
#: that one inflated block is a rounding error under an RSS ceiling.
DEFAULT_BLOCK_FRAMES = 262_144

#: zlib level 6: the default speed/size trade-off.
DEFAULT_LEVEL = 6

#: Per-block column order (also the byte order inside the file).
_COLUMNS = (
    "timestamp_us",
    "can_id",
    "payload",
    "payload_offsets",
    "extended",
    "is_attack",
    "source_code",
    "bus_code",
)


class BlockWriter:
    """Append-only writer for the ``.npb`` container.

    ``append`` takes time-ordered :class:`ColumnTrace` chunks of any
    size (the streaming readers' chunks, mapped npz slices, other
    readers' blocks); the writer re-cuts them into exact
    ``block_frames`` blocks, re-interns source/bus tags into global
    tables, compresses each column and appends it.  Peak memory is
    O(block), never O(capture).  Use as a context manager — the index
    and trailer are written on a clean :meth:`close`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        block_frames: int = DEFAULT_BLOCK_FRAMES,
        level: int = DEFAULT_LEVEL,
    ) -> None:
        if block_frames <= 0:
            raise TraceFormatError(
                f"block_frames must be positive, got {block_frames}"
            )
        if not -1 <= int(level) <= 9:
            raise TraceFormatError(
                f"compression level must be in -1..9, got {level}"
            )
        self.path = Path(path)
        self.block_frames = int(block_frames)
        self.level = int(level)
        self._source_table: Dict[str, int] = {}
        self._bus_table: Dict[str, int] = {}
        self._parts: List[Dict[str, np.ndarray]] = []
        self._buffered = 0
        self._blocks: List[dict] = []
        self._n_frames = 0
        self._last_end: Optional[int] = None
        self._closed = False
        self._handle = open(self.path, "wb")
        self._handle.write(_MAGIC)

    # ------------------------------------------------------------------
    def _recode(
        self, codes: np.ndarray, names, table: Dict[str, int]
    ) -> np.ndarray:
        mapping = np.empty(len(names), dtype=np.int32)
        for i, name in enumerate(names):
            mapping[i] = table.setdefault(name, len(table))
        return mapping[codes]

    def append(self, trace) -> None:
        """Append a time-ordered chunk (``Trace`` or ``ColumnTrace``)."""
        if self._closed:
            raise TraceFormatError(f"{self.path}: writer already closed")
        ct = ColumnTrace.coerce(trace)
        if not len(ct):
            return
        if self._last_end is not None and ct.start_us < self._last_end:
            raise TraceFormatError(
                f"{self.path}: appended chunk starts at {ct.start_us} us, "
                f"before the previous chunk's end {self._last_end} us; "
                f"blocks must be time-ordered"
            )
        if np.any(np.diff(ct.timestamp_us) < 0):
            raise TraceFormatError(
                f"{self.path}: appended chunk is not time-ordered"
            )
        self._last_end = ct.end_us
        base = int(ct.payload_offsets[0])
        self._parts.append(
            {
                "timestamp_us": ct.timestamp_us,
                "can_id": ct.can_id,
                "payload": ct.payload_bytes(),
                "lengths": ct.dlc,
                "extended": ct.extended,
                "is_attack": ct.is_attack,
                "source_code": self._recode(
                    ct.source_code, ct.source_table, self._source_table
                ),
                "bus_code": self._recode(
                    ct.bus_code, ct.bus_table, self._bus_table
                ),
            }
        )
        del base
        self._buffered += len(ct)
        if self._buffered >= self.block_frames:
            self._drain(final=False)

    # ------------------------------------------------------------------
    def _drain(self, final: bool) -> None:
        """Flush buffered parts as exact ``block_frames`` blocks."""
        if not self._parts:
            return
        cat = {
            name: np.concatenate([p[name] for p in self._parts])
            for name in (
                "timestamp_us",
                "can_id",
                "payload",
                "lengths",
                "extended",
                "is_attack",
                "source_code",
                "bus_code",
            )
        }
        n = cat["timestamp_us"].size
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(cat["lengths"], out=offsets[1:] if n else None)
        lo = 0
        while n - lo >= self.block_frames or (final and lo < n):
            hi = min(lo + self.block_frames, n)
            self._write_block(cat, offsets, lo, hi)
            lo = hi
        if lo:
            rest = {
                name: cat[name][lo:]
                for name in cat
                if name != "payload"
            }
            rest["payload"] = cat["payload"][offsets[lo]:]
            self._parts = [rest] if n - lo else []
        else:
            self._parts = [dict(cat)]
        self._buffered = n - lo

    def _write_block(self, cat, offsets, lo: int, hi: int) -> None:
        ts = cat["timestamp_us"]
        arrays = {
            "timestamp_us": ts[lo:hi],
            "can_id": cat["can_id"][lo:hi],
            "payload": cat["payload"][offsets[lo]:offsets[hi]],
            "payload_offsets": offsets[lo : hi + 1] - offsets[lo],
            "extended": cat["extended"][lo:hi],
            "is_attack": cat["is_attack"][lo:hi],
            "source_code": cat["source_code"][lo:hi],
            "bus_code": cat["bus_code"][lo:hi],
        }
        columns = {}
        for name in _COLUMNS:
            data = np.ascontiguousarray(arrays[name])
            raw = data.tobytes()
            comp = zlib.compress(raw, self.level)
            columns[name] = [
                self._handle.tell(),
                len(comp),
                len(raw),
                data.dtype.str,
            ]
            self._handle.write(comp)
        self._blocks.append(
            {
                "rows": hi - lo,
                "start_us": int(ts[lo]),
                "end_us": int(ts[hi - 1]),
                "columns": columns,
            }
        )
        self._n_frames += hi - lo

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush the final block, then write the index and trailer."""
        if self._closed:
            return
        self._drain(final=True)
        index = {
            "format": _FORMAT_NAME,
            "version": _VERSION,
            "n_frames": self._n_frames,
            "block_frames": self.block_frames,
            "level": self.level,
            "source_table": list(self._source_table) or [""],
            "bus_table": list(self._bus_table) or [""],
            "blocks": self._blocks,
        }
        payload = json.dumps(index, separators=(",", ":")).encode("utf-8")
        offset = self._handle.tell()
        self._handle.write(payload)
        self._handle.write(_TRAILER.pack(offset, len(payload), _MAGIC))
        self._handle.close()
        self._closed = True

    def abort(self) -> None:
        """Close the raw handle without finalising (file stays invalid)."""
        if not self._closed:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "BlockWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_blocks(
    path: Union[str, Path],
    trace,
    block_frames: int = DEFAULT_BLOCK_FRAMES,
    level: int = DEFAULT_LEVEL,
) -> None:
    """Write a capture (or an iterable of time-ordered chunks) as ``.npb``.

    Accepts a :class:`Trace`/:class:`ColumnTrace`, or any iterator of
    :class:`ColumnTrace` chunks (e.g. ``iter_candump_columns``) — the
    streaming form never materialises the capture.
    """
    with BlockWriter(path, block_frames=block_frames, level=level) as writer:
        if isinstance(trace, (Trace, ColumnTrace)):
            writer.append(trace)
        else:
            for chunk in trace:
                writer.append(chunk)


class BlockReader:
    """One-block-at-a-time reader for the ``.npb`` container.

    Exposes the same streaming surface as a :class:`ColumnTrace`
    (``len``, ``start_us``/``end_us``, ``iter_window_chunks``), so
    ``BatchEntropyEngine.scan_stream`` accepts it directly: peak memory
    is one inflated block merged with one window-grid carry, no matter
    how large the capture is.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "rb")
        try:
            index = self._read_index()
        except Exception:
            self._handle.close()
            raise
        self._index = index
        self.n_frames = int(index["n_frames"])
        self.source_table = tuple(index["source_table"])
        self.bus_table = tuple(index["bus_table"])
        self.blocks = index["blocks"]

    def _read_index(self) -> dict:
        fh = self._handle
        fh.seek(0, 2)
        size = fh.tell()
        if size < len(_MAGIC) + _TRAILER.size:
            raise TraceFormatError(
                f"not a block-compressed trace: {self.path} (truncated)"
            )
        fh.seek(0)
        if fh.read(len(_MAGIC)) != _MAGIC:
            raise TraceFormatError(
                f"not a block-compressed trace: {self.path} (bad magic)"
            )
        fh.seek(size - _TRAILER.size)
        offset, length, magic = _TRAILER.unpack(fh.read(_TRAILER.size))
        if magic != _MAGIC or offset + length + _TRAILER.size != size:
            raise TraceFormatError(
                f"not a block-compressed trace: {self.path} (bad trailer)"
            )
        fh.seek(offset)
        try:
            index = json.loads(fh.read(length).decode("utf-8"))
        except ValueError as exc:
            raise TraceFormatError(
                f"not a block-compressed trace: {self.path} (bad index: {exc})"
            ) from exc
        if index.get("format") != _FORMAT_NAME:
            raise TraceFormatError(
                f"not a block-compressed trace: {self.path} "
                f"(format {index.get('format')!r})"
            )
        version = index.get("version")
        if version not in _READABLE:
            raise TraceFormatError(
                f"block trace schema version {version} not supported "
                f"(expected one of {list(_READABLE)})"
            )
        return index

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_frames

    @property
    def start_us(self) -> int:
        """Timestamp of the first record (0 when empty)."""
        return int(self.blocks[0]["start_us"]) if self.blocks else 0

    @property
    def end_us(self) -> int:
        """Timestamp of the last record (0 when empty)."""
        return int(self.blocks[-1]["end_us"]) if self.blocks else 0

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "BlockReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _inflate_columns(self, i: int, entry: dict) -> Dict[str, np.ndarray]:
        """Seek + inflate every column of block ``i`` (the IO cost)."""
        arrays: Dict[str, np.ndarray] = {}
        for name in _COLUMNS:
            offset, csize, rawsize, dtype = entry["columns"][name]
            self._handle.seek(int(offset))
            raw = zlib.decompress(self._handle.read(int(csize)))
            if len(raw) != int(rawsize):
                raise TraceFormatError(
                    f"{self.path}: block {i} column {name!r} inflated to "
                    f"{len(raw)} bytes, index says {rawsize}"
                )
            arrays[name] = np.frombuffer(raw, dtype=np.dtype(dtype))
        return arrays

    def read_block(self, i: int) -> ColumnTrace:
        """Inflate block ``i`` into an in-RAM :class:`ColumnTrace`."""
        entry = self.blocks[i]
        rows = int(entry["rows"])
        reg = obs.active()
        if reg is None:
            arrays = self._inflate_columns(i, entry)
        else:
            with reg.span("io.decompress", block=i, rows=rows):
                arrays = self._inflate_columns(i, entry)
        expected = {name: rows for name in _COLUMNS}
        expected["payload_offsets"] = rows + 1
        expected["payload"] = arrays["payload"].size
        for name in _COLUMNS:
            if arrays[name].size != expected[name]:
                raise TraceFormatError(
                    f"{self.path}: block {i} column {name!r} has "
                    f"{arrays[name].size} entries, expected {expected[name]}"
                )
        return ColumnTrace(
            arrays["timestamp_us"],
            arrays["can_id"],
            payload=arrays["payload"],
            payload_offsets=arrays["payload_offsets"],
            extended=arrays["extended"],
            is_attack=arrays["is_attack"],
            source_code=arrays["source_code"],
            source_table=self.source_table,
            bus_code=arrays["bus_code"],
            bus_table=self.bus_table,
        )

    def iter_blocks(self) -> Iterator[ColumnTrace]:
        """Yield every block in order, one inflated at a time."""
        for i in range(len(self.blocks)):
            yield self.read_block(i)

    def to_columns(self) -> ColumnTrace:
        """Eagerly inflate the whole capture (the non-streaming load)."""
        parts = list(self.iter_blocks())
        if not parts:
            return ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
        if len(parts) == 1:
            return parts[0]
        return ColumnTrace.merge(*parts)

    def iter_window_chunks(
        self,
        window_us: int,
        chunk_windows: int,
        *,
        origin_us: Optional[int] = None,
    ) -> Iterator[ColumnTrace]:
        """Window-grid-aligned chunks, one block in memory at a time.

        Blocks are cut on frame boundaries, not window boundaries; the
        alignment rule is applied here: each block merges with the
        carry (the previous block's final, possibly-incomplete grid
        chunk) and every chunk except the running last one is yielded.
        The result is exactly the chunk stream
        ``self.to_columns().iter_window_chunks(...)`` would produce,
        with O(block + chunk) peak memory.
        """
        if window_us <= 0:
            raise ValueError(f"window must be positive, got {window_us}")
        if chunk_windows <= 0:
            raise ValueError(
                f"chunk_windows must be positive, got {chunk_windows}"
            )
        t0 = self.start_us if origin_us is None else int(origin_us)
        carry: Optional[ColumnTrace] = None
        for block in self.iter_blocks():
            if carry is not None and len(carry):
                block = ColumnTrace.merge(carry, block)
            carry = None
            chunks = list(
                block.iter_window_chunks(
                    window_us, chunk_windows, origin_us=t0
                )
            )
            if not chunks:
                continue
            carry = chunks.pop()
            for chunk in chunks:
                yield chunk
        if carry is not None and len(carry):
            yield carry

"""Gateway whitelist filter.

The paper repeatedly leans on a gateway-level filter as the complementary
coarse defence: flooding "with different IDs ... will be easily detected
by the filter in the gateway", and "with 4 and more injection IDs, the
compromised ECU would be easily figured out by the gateway filter".

:class:`GatewayFilter` implements that component as a passive bus
listener producing :class:`GatewayAlert` events for three conditions:

* ``unknown_id`` — an identifier outside the vehicle's catalog appeared;
* ``unassigned_id`` — a node transmitted an identifier that is not in its
  assignment (visible to the simulator's ground truth; a real gateway
  sees this at the port level);
* ``id_spread`` — a single node used more distinct identifiers within the
  sliding window than its assignment size allows.

The gateway never feeds the entropy IDS; it exists so experiments can
show which attack configurations are *already* caught by conventional
filtering, reproducing the paper's qualitative discussion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.can.constants import SECOND_US
from repro.exceptions import BusConfigError
from repro.io.trace import TraceRecord


@dataclass(frozen=True)
class GatewayAlert:
    """One gateway filter decision."""

    timestamp_us: int
    kind: str
    source: str
    can_id: int
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.timestamp_us}us] gateway {self.kind}: source={self.source or '?'} "
            f"id=0x{self.can_id:03X} {self.detail}"
        )


class GatewayFilter:
    """Sliding-window whitelist monitor over bus traffic."""

    def __init__(
        self,
        known_ids: Iterable[int],
        assignments: Optional[Dict[str, Iterable[int]]] = None,
        window_us: int = SECOND_US,
        max_distinct_margin: int = 0,
    ) -> None:
        """
        Parameters
        ----------
        known_ids:
            The vehicle's catalog of legitimate identifiers.
        assignments:
            Optional per-node identifier assignments.  When present,
            frames whose source transmits outside its assignment raise
            ``unassigned_id`` alerts, and ``id_spread`` uses the
            assignment size (plus ``max_distinct_margin``) as the limit.
        window_us:
            Sliding window length for the distinct-ID spread check.
        max_distinct_margin:
            Slack added to each node's assignment size before an
            ``id_spread`` alert fires.
        """
        if window_us <= 0:
            raise BusConfigError(f"gateway window must be positive, got {window_us}")
        self.known_ids: FrozenSet[int] = frozenset(known_ids)
        if not self.known_ids:
            raise BusConfigError("gateway needs a non-empty whitelist")
        self.assignments: Dict[str, FrozenSet[int]] = {
            name: frozenset(ids) for name, ids in (assignments or {}).items()
        }
        self.window_us = window_us
        self.max_distinct_margin = max_distinct_margin
        self.alerts: List[GatewayAlert] = []
        self._history: Dict[str, Deque[Tuple[int, int]]] = {}
        self._spread_flagged: Set[str] = set()

    # ------------------------------------------------------------------
    def on_frame(self, record: TraceRecord) -> List[GatewayAlert]:
        """Inspect one frame; return (and retain) any alerts it raised."""
        raised: List[GatewayAlert] = []
        if record.can_id not in self.known_ids:
            raised.append(
                GatewayAlert(
                    timestamp_us=record.timestamp_us,
                    kind="unknown_id",
                    source=record.source,
                    can_id=record.can_id,
                    detail="identifier not in vehicle catalog",
                )
            )
        assignment = self.assignments.get(record.source)
        if assignment is not None and record.can_id not in assignment:
            raised.append(
                GatewayAlert(
                    timestamp_us=record.timestamp_us,
                    kind="unassigned_id",
                    source=record.source,
                    can_id=record.can_id,
                    detail=f"not among the {len(assignment)} assigned identifiers",
                )
            )
        raised.extend(self._check_spread(record, assignment))
        self.alerts.extend(raised)
        return raised

    def _check_spread(
        self, record: TraceRecord, assignment: Optional[FrozenSet[int]]
    ) -> List[GatewayAlert]:
        history = self._history.setdefault(record.source, deque())
        history.append((record.timestamp_us, record.can_id))
        horizon = record.timestamp_us - self.window_us
        while history and history[0][0] < horizon:
            history.popleft()
        distinct = {can_id for _t, can_id in history}
        limit = (len(assignment) if assignment else 1) + self.max_distinct_margin
        if len(distinct) > limit:
            if record.source in self._spread_flagged:
                return []  # one alert per offending burst, not per frame
            self._spread_flagged.add(record.source)
            return [
                GatewayAlert(
                    timestamp_us=record.timestamp_us,
                    kind="id_spread",
                    source=record.source,
                    can_id=record.can_id,
                    detail=f"{len(distinct)} distinct identifiers in window (limit {limit})",
                )
            ]
        self._spread_flagged.discard(record.source)
        return []

    # ------------------------------------------------------------------
    def alerts_by_kind(self, kind: str) -> List[GatewayAlert]:
        """All retained alerts of one kind."""
        return [a for a in self.alerts if a.kind == kind]

    def flagged_sources(self) -> Set[str]:
        """Names of all nodes that raised at least one alert."""
        return {a.source for a in self.alerts}

    def reset(self) -> None:
        """Drop all alert and window state."""
        self.alerts.clear()
        self._history.clear()
        self._spread_flagged.clear()

"""The watch daemon: monitoring loop, retraining loop, safe shutdown.

Two acceptance bars live here:

* **drift closes the loop** — a drift alarm on synthetically shifted
  traffic triggers *exactly one* retrain event, and the post-retrain
  cycle cold-rescans that vehicle only;
* **shutdown is crash-safe** — SIGTERM or a stop file mid-run leaves
  every ledger uncorrupted, and the next cold start replays the cached
  verdicts bit-identically (even after SIGKILL, which skips all
  cleanup).
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import IDSPipeline
from repro.fleet import FleetStore, WatchDaemon, watch_scan
from repro.vehicle.traffic import simulate_drive

#: Drift knobs used throughout: a persistent ~0.5-threshold shift never
#: alarms a window (needs z > 1) but crosses this CUSUM limit in two
#: captures (accumulates ~0.4 per capture over the 0.1 slack).
DRIFT = dict(drift_slack=0.1, drift_limit=0.6)


def shifted_copy(template, fraction=0.5):
    """A template whose baseline is off by ``fraction`` thresholds —
    equivalently, a vehicle whose real traffic drifted that far."""
    return dataclasses.replace(
        template,
        mean_entropy=template.mean_entropy + fraction * template.thresholds,
    )


@pytest.fixture()
def drifting_store(tmp_path, catalog, golden_template, ids_config):
    """car-a drifts (shifted baseline), car-b is healthy."""
    store = FleetStore(tmp_path / "fleet")
    for i in range(3):
        store.add_capture(
            "car-a", f"d{i}.log",
            simulate_drive(6.0, seed=200 + i, catalog=catalog),
        )
    store.save_template(
        "car-a", shifted_copy(golden_template), window_us=ids_config.window_us
    )
    store.add_capture(
        "car-b", "d0.log", simulate_drive(6.0, seed=210, catalog=catalog)
    )
    store.save_template(
        "car-b", golden_template, window_us=ids_config.window_us
    )
    return store


@pytest.fixture()
def pipeline(golden_template, ids_config):
    return IDSPipeline(golden_template, ids_config)


class TestDriftRetrainLoop:
    def test_drift_triggers_exactly_one_retrain(
        self, drifting_store, pipeline
    ):
        """The acceptance criterion, end to end inside the daemon."""
        lines = []
        daemon = WatchDaemon(
            drifting_store,
            pipeline,
            interval_s=0.01,
            workers=1,
            log=lines.append,
            **DRIFT,
        )
        first, second = daemon.run(max_cycles=2)

        # Cycle 1: the shifted vehicle drifts and is re-baselined.
        assert first.report.drifting_vehicles == ["car-a"]
        assert first.report.alarmed_vehicles == []  # drift, not detection
        assert first.retrained == ["car-a"]
        assert len(drifting_store.retrain_events("car-a")) == 1
        assert drifting_store.retrain_events("car-b") == []

        # Cycle 2: the new context hash cold-rescans car-a — only car-a.
        assert len(second.report.watch["car-a"].scanned) == 3
        assert second.report.watch["car-a"].ledger.rebuild_reason == (
            "context-changed"
        )
        assert second.report.watch["car-b"].fully_cached
        # Re-baselined against its own traffic, the drift is gone and no
        # second retrain event appears.
        assert second.report.drifting_vehicles == []
        assert second.retrained == []
        assert len(drifting_store.retrain_events("car-a")) == 1
        assert any("retrained car-a" in line for line in lines)

    def test_no_retrain_mode_reports_only(self, drifting_store, pipeline):
        daemon = WatchDaemon(
            drifting_store,
            pipeline,
            interval_s=0.01,
            retrain=False,
            workers=1,
            log=lambda line: None,
            **DRIFT,
        )
        (cycle,) = daemon.run(max_cycles=1)
        assert cycle.report.drifting_vehicles == ["car-a"]
        assert cycle.retrained == []
        assert drifting_store.retrain_events("car-a") == []

    def test_persistent_drift_without_new_data_retrains_once(
        self, drifting_store, pipeline
    ):
        """Even if drift re-alarmed, the should_retrain guard keeps one
        drift episode at one retrain event across many cycles."""
        daemon = WatchDaemon(
            drifting_store, pipeline, interval_s=0.01, workers=1,
            log=lambda line: None, **DRIFT,
        )
        daemon.run(max_cycles=4)
        assert len(drifting_store.retrain_events("car-a")) == 1


class TestCycleMaintenance:
    def test_cycle_compacts_rotated_captures(self, drifting_store, pipeline):
        """The prune satellite's daemon half: entries for deleted
        captures are dropped at the next cycle."""
        daemon = WatchDaemon(
            drifting_store, pipeline, interval_s=0.01, retrain=False,
            workers=1, log=lambda line: None, **DRIFT,
        )
        daemon.run(max_cycles=1)
        (drifting_store.captures_dir("car-a") / "d0.log").unlink()
        cycle = daemon.run_cycle()
        assert cycle.compacted == 1
        assert "1 ledger entries pruned" in cycle.status_line()

    def test_idle_cycles_back_off(self, drifting_store, pipeline):
        lines = []
        daemon = WatchDaemon(
            drifting_store, pipeline, interval_s=0.05, backoff=3.0,
            max_interval_s=0.45, retrain=False, workers=1,
            log=lines.append, **DRIFT,
        )
        daemon.run(max_cycles=3)
        waits = [line for line in lines if "next cycle in" in line]
        # Cycle 0 scanned (work -> base interval, no "idle" label);
        # cycles 1-2 were idle and backed off 3x.
        assert waits == [
            "next cycle in 0.05s", "idle; next cycle in 0.15s",
        ]


def assert_ledgers_replay_bit_identically(store, vehicle_pipelines):
    """The crash-safety property: every surviving ledger parses, and an
    incremental scan equals a cold scan of the same archive exactly."""
    for vehicle_id, pipeline in vehicle_pipelines.items():
        path = store.ledger_path(vehicle_id)
        if path.is_file():
            json.loads(path.read_text())  # must parse: atomic writes
        incremental = watch_scan(
            pipeline, store.archive(vehicle_id), path, workers=1
        )
        path.unlink()
        cold = watch_scan(
            pipeline, store.archive(vehicle_id), path, workers=1
        )
        assert incremental.report.to_dict() == cold.report.to_dict()


class TestShutdown:
    def test_stop_file_mid_run(self, drifting_store, pipeline, tmp_path,
                               golden_template, ids_config):
        """A stop file lands while the daemon loops; the stop is
        graceful and the on-disk state replays bit-identically."""
        stop = tmp_path / "halt"
        daemon = WatchDaemon(
            drifting_store, pipeline, interval_s=0.05, retrain=False,
            workers=1, stop_file=stop, log=lambda line: None, **DRIFT,
        )
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 60
        while not daemon.cycles and time.monotonic() < deadline:
            time.sleep(0.02)
        assert daemon.cycles, "daemon never completed a cycle"
        stop.touch()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert "stop file" in daemon.stop_reason
        assert_ledgers_replay_bit_identically(
            drifting_store,
            {
                "car-a": IDSPipeline(
                    drifting_store.load_template("car-a"), ids_config
                ),
                "car-b": IDSPipeline(golden_template, ids_config),
            },
        )

    def test_sigterm_mid_run(self, drifting_store, pipeline):
        """SIGTERM lands while a cycle is (likely) in flight; the daemon
        finishes the cycle and exits at the next safe point."""
        daemon = WatchDaemon(
            drifting_store, pipeline, interval_s=0.05, retrain=False,
            workers=1, log=lambda line: None, **DRIFT,
        )
        saved = {
            sig: signal.getsignal(sig)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        timer = threading.Timer(
            0.2, os.kill, args=(os.getpid(), signal.SIGTERM)
        )
        try:
            daemon.install_signal_handlers()
            timer.start()
            daemon.run()  # unbounded: only the signal stops it
        finally:
            timer.cancel()
            for sig, handler in saved.items():
                signal.signal(sig, handler)
        assert daemon.stop_reason == "SIGTERM"
        assert daemon.cycles  # it was genuinely running


@pytest.fixture()
def cli_store(tmp_path, catalog, golden_template, ids_config):
    """A small two-vehicle store for subprocess daemon tests."""
    store = FleetStore(tmp_path / "fleet")
    for vid, seed in (("car-a", 220), ("car-b", 230)):
        store.add_capture(
            vid, "d0.log", simulate_drive(5.0, seed=seed, catalog=catalog)
        )
        store.save_template(vid, golden_template, window_us=ids_config.window_us)
    return store


def spawn_watch(store, *extra):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "fleet", "watch",
            "--store", str(store.root), "--interval", "0.1",
            "--workers", "1", *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


class TestCliDaemon:
    def test_sigterm_exits_zero_with_status_lines(
        self, cli_store, golden_template, ids_config
    ):
        process = spawn_watch(cli_store)
        time.sleep(6.0)  # enough for startup + at least one cycle
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=120)
        assert process.returncode == 0, output
        assert "cycle 0:" in output
        assert "watch daemon stopped (SIGTERM)" in output
        pipelines = {
            vid: IDSPipeline(golden_template, ids_config)
            for vid in cli_store.vehicles()
        }
        assert_ledgers_replay_bit_identically(cli_store, pipelines)

    def test_sigkill_leaves_replayable_state(
        self, cli_store, golden_template, ids_config
    ):
        """SIGKILL skips every cleanup path; atomic writes must still
        leave ledgers a cold start replays bit-identically."""
        process = spawn_watch(cli_store)
        time.sleep(6.0)
        process.kill()
        process.communicate(timeout=120)
        pipelines = {
            vid: IDSPipeline(golden_template, ids_config)
            for vid in cli_store.vehicles()
        }
        assert_ledgers_replay_bit_identically(cli_store, pipelines)

"""Baseline IDSes: protocol, detection behaviour, documented weaknesses."""

import numpy as np
import pytest

from repro.attacks import SingleIDAttacker
from repro.baselines import (
    BaselineIDS,
    ClockSkewIDS,
    FrequencyIDS,
    IntervalIDS,
    MuterEntropyIDS,
)
from repro.exceptions import DetectorError
from repro.vehicle import VehicleSimulation
from repro.vehicle.traffic import record_template_windows, simulate_drive

ALL_BASELINES = [MuterEntropyIDS, IntervalIDS, ClockSkewIDS, FrequencyIDS]


@pytest.fixture(scope="module")
def clean_windows(catalog):
    return record_template_windows(8, 2.0, seed=21, catalog=catalog)


@pytest.fixture(scope="module")
def fitted(clean_windows):
    out = {}
    for cls in ALL_BASELINES:
        out[cls.name] = cls(window_us=2_000_000).fit(clean_windows)
    return out


@pytest.fixture(scope="module")
def attack_trace(catalog):
    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=77)
    sim.add_node(
        SingleIDAttacker(
            can_id=catalog.ids[80], frequency_hz=100.0, start_s=2.0,
            duration_s=8.0, seed=2,
        )
    )
    return sim.run(12.0)


@pytest.fixture(scope="module")
def clean_trace(catalog):
    return simulate_drive(10.0, scenario="highway", seed=88, catalog=catalog)


class TestProtocol:
    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_scan_before_fit_rejected(self, cls, clean_trace):
        with pytest.raises(DetectorError):
            cls().scan(clean_trace)

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_fit_requires_windows(self, cls):
        with pytest.raises(DetectorError):
            cls().fit([])

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_memory_slots_positive(self, cls, fitted):
        assert fitted[cls.name].memory_slots() > 0

    def test_verdict_windows_cover_trace(self, fitted, clean_trace):
        verdicts = fitted["muter-entropy"].scan(clean_trace)
        assert sum(v.n_messages for v in verdicts) == len(clean_trace)


class TestDetection:
    @pytest.mark.parametrize("name", ["muter-entropy", "interval", "frequency"])
    def test_detects_high_frequency_injection(self, fitted, attack_trace, name):
        verdicts = fitted[name].scan(attack_trace)
        assert BaselineIDS.detection_rate(verdicts) > 0.5

    @pytest.mark.parametrize(
        "name", ["muter-entropy", "interval", "clock-skew", "frequency"]
    )
    def test_clean_traffic_quiet(self, fitted, clean_trace, name):
        verdicts = fitted[name].scan(clean_trace)
        assert BaselineIDS.false_positive_rate(verdicts) <= 0.10

    def test_attack_windows_labelled(self, fitted, attack_trace):
        verdicts = fitted["frequency"].scan(attack_trace)
        assert sum(v.n_attack_messages for v in verdicts) == attack_trace.attack_count


class TestMuter:
    def test_memory_grows_with_catalog(self, fitted, catalog):
        assert fitted["muter-entropy"].memory_slots() == pytest.approx(
            len(catalog), abs=5
        )

    def test_cannot_localize(self):
        assert not MuterEntropyIDS.localizes_ids

    def test_needs_two_windows(self, clean_windows):
        with pytest.raises(DetectorError):
            MuterEntropyIDS().fit(clean_windows[:1])

    def test_rejects_bad_alpha(self):
        with pytest.raises(DetectorError):
            MuterEntropyIDS(alpha=0.0)


class TestInterval:
    def test_blind_to_unseen_id(self, fitted, catalog):
        """The paper's criticism of [11]: unseen identifiers are invisible."""
        unseen = next(i for i in range(0x100, 0x7FF) if i not in catalog.id_set())
        sim = VehicleSimulation(catalog=catalog, scenario="city", seed=5)
        sim.add_node(
            SingleIDAttacker(can_id=unseen, frequency_hz=100.0, start_s=2.0,
                             duration_s=6.0, seed=5)
        )
        trace = sim.run(10.0)
        verdicts = fitted["interval"].scan(trace)
        assert BaselineIDS.detection_rate(verdicts) == 0.0

    def test_flagged_ids_localize_seen_injection(self, fitted, attack_trace, catalog):
        flagged = fitted["interval"].flagged_ids(attack_trace)
        assert flagged[0] == catalog.ids[80]

    def test_linear_memory(self, fitted):
        ids_learned = len(fitted["interval"].nominal_period_us)
        assert fitted["interval"].memory_slots() == 2 * ids_learned

    def test_parameter_validation(self):
        with pytest.raises(DetectorError):
            IntervalIDS(speedup_factor=1.0)
        with pytest.raises(DetectorError):
            IntervalIDS(alarm_fraction=0.0)


class TestClockSkew:
    def test_blind_to_unseen_id(self):
        assert not ClockSkewIDS.handles_unseen_ids

    def test_parameter_validation(self):
        with pytest.raises(DetectorError):
            ClockSkewIDS(cusum_threshold=0.0)

    def test_detects_fast_injection_of_seen_id(self, fitted, attack_trace):
        verdicts = fitted["clock-skew"].scan(attack_trace)
        assert BaselineIDS.detection_rate(verdicts) > 0.5


class TestFrequency:
    def test_constant_memory(self, fitted):
        assert fitted["frequency"].memory_slots() == 3

    def test_blind_to_volume_preserving_change(self, fitted, clean_trace):
        """Relabelling identifiers keeps the volume identical — the naive
        frequency monitor cannot see it (ours would)."""
        from dataclasses import replace

        from repro.io.trace import Trace

        scrambled = Trace(
            replace(r, can_id=(r.can_id ^ 0x155) & 0x7FF) for r in clean_trace
        )
        verdicts = fitted["frequency"].scan(scrambled)
        assert not any(v.alarm for v in verdicts)

    def test_parameter_validation(self):
        with pytest.raises(DetectorError):
            FrequencyIDS(band_sigmas=0.0)


class TestColumnarParity:
    """scan over a ColumnTrace must reproduce the record-trace verdicts
    (vectorised paths for all four schemes, including the clock-skew
    CUSUM)."""

    @pytest.mark.parametrize("name", [c.name for c in ALL_BASELINES])
    @pytest.mark.parametrize("which", ["attack", "clean"])
    def test_columnar_scan_matches_record_scan(
        self, fitted, attack_trace, clean_trace, name, which
    ):
        trace = attack_trace if which == "attack" else clean_trace
        record_verdicts = fitted[name].scan(trace)
        column_verdicts = fitted[name].scan(trace.to_columns())
        assert len(record_verdicts) == len(column_verdicts)
        for r, c in zip(record_verdicts, column_verdicts):
            assert r.index == c.index
            assert r.t_start_us == c.t_start_us
            assert r.t_end_us == c.t_end_us
            assert r.n_messages == c.n_messages
            assert r.n_attack_messages == c.n_attack_messages
            assert r.judged == c.judged
            assert r.alarm == c.alarm
            assert r.score == pytest.approx(c.score, rel=1e-9, abs=1e-12)

    def test_clock_skew_columnar_scores_exact(self, fitted, attack_trace):
        """The vectorised CUSUM replays the recursion in the same float
        order as the per-record path, so scores match *exactly* — not
        just approximately."""
        record_verdicts = fitted[ClockSkewIDS.name].scan(attack_trace)
        column_verdicts = fitted[ClockSkewIDS.name].scan(attack_trace.to_columns())
        assert [v.score for v in record_verdicts] == [
            v.score for v in column_verdicts
        ]

    def test_scan_columns_before_fit_rejected(self, clean_trace):
        with pytest.raises(DetectorError):
            FrequencyIDS().scan(clean_trace.to_columns())

    def test_empty_columnar_trace(self, fitted):
        from repro.io import ColumnTrace, Trace

        assert fitted["frequency"].scan(ColumnTrace.from_trace(Trace())) == []

"""Runtime layer: pluggable execution backends for archive-scale scans.

Every scan path (cold ``analyze_archive``, incremental ``watch_scan``,
fleet-wide ``analyze_fleet``) funnels through one per-capture shard
task; this package owns *how* those tasks execute:

* :class:`~repro.runtime.base.Executor` — the protocol: submit tasks,
  collect order-stable results;
* :class:`~repro.runtime.serial.SerialExecutor` — inline reference
  backend;
* :class:`~repro.runtime.pool.PoolExecutor` — one host's cores via a
  ``multiprocessing`` pool;
* :class:`~repro.runtime.queue.WorkQueueExecutor` — many hosts via a
  shared filesystem queue directory served by ``repro-ids worker``
  processes (:func:`~repro.runtime.worker.run_worker`).

All backends are bit-identical for any spec and worker count
(``tests/test_runtime_executors.py``); the choice is purely a
deployment decision, surfaced as ``--executor serial|pool|queue`` on
the CLI and ``executor=`` on the pipeline entry points.
"""

from repro.runtime.base import (
    BaselineScanSpec,
    EntropyScanSpec,
    Executor,
    ScanSpec,
    resolve_executor,
    spec_from_payload,
)
from repro.runtime.pool import PoolExecutor, default_workers
from repro.runtime.queue import (
    WorkQueueExecutor,
    claim_next_task,
    execute_claimed_task,
    queue_dirs,
)
from repro.runtime.serial import SerialExecutor
from repro.runtime.worker import WorkerStats, run_worker

__all__ = [
    "BaselineScanSpec",
    "EntropyScanSpec",
    "Executor",
    "PoolExecutor",
    "ScanSpec",
    "SerialExecutor",
    "WorkQueueExecutor",
    "WorkerStats",
    "claim_next_task",
    "default_workers",
    "execute_claimed_task",
    "queue_dirs",
    "resolve_executor",
    "run_worker",
    "spec_from_payload",
]

"""Runtime executor benchmark: serial vs pool vs work queue vs net.

Sizes the four execution backends over dozens of generated
vehicle-drives and appends the table to ``results/throughput.txt``.
Parity (bit-identical reports across backends) is asserted always;
speedup assertions are gated on ``os.cpu_count() > 1`` — the CI
container may expose a single CPU, where a pool cannot win and the
queue/net JSON transports are pure overhead, so the 1-CPU run checks
correctness only.
"""

import os

from conftest import append_artifact, append_bench
from repro.experiments import runtime as runtime_experiment

#: Sizing knobs (kept modest by default; scale up via the environment
#: for fleet-regime measurements).
RUNTIME_CAPTURES = int(os.environ.get("REPRO_BENCH_RUNTIME_CAPTURES", "24"))
RUNTIME_FRAMES = int(os.environ.get("REPRO_BENCH_RUNTIME_FRAMES", "12000"))


class TestRuntimeExecutors:
    def test_bench_executor_backends(self, setup):
        result = runtime_experiment.run(
            setup.template,
            setup.config,
            n_captures=RUNTIME_CAPTURES,
            frames_per_capture=RUNTIME_FRAMES,
            catalog=setup.catalog,
        )
        append_artifact("throughput", result.render())
        append_bench("throughput", result.bench_records())
        # Bit-identical reports are the runtime layer's headline
        # guarantee — a perf number without it is meaningless.
        assert result.parity_ok, result.render()
        assert result.total_frames == RUNTIME_CAPTURES * RUNTIME_FRAMES
        # Every backend actually ran (a zero timing means a scan was
        # skipped, which would make the parity assertion vacuous).
        assert min(
            result.serial_s,
            result.pool_s,
            result.queue_drained_s,
            result.queue_served_s,
            result.net_served_s,
        ) > 0, result.render()
        if (os.cpu_count() or 1) > 1:
            # With real cores the pool must at least roughly keep up
            # with serial (it usually wins; allow scheduling noise).
            assert result.pool_s < result.serial_s * 1.5, result.render()

"""Benchmark E1 — regenerate the paper's Fig. 2.

The golden template (11-bit entropy vector) next to one attack case
study.  The paper's qualitative claims asserted here:

* the template band is tight (normal driving entropy is steady);
* the attack deviates beyond threshold on a *subset* of bits — the
  paper's example calls out Bits 6, 7 and 11 on its data; the exact
  bits depend on the injected identifier, so the assertion is on the
  pattern (some bits alarm, not all).
"""

import numpy as np
import pytest

from repro.experiments import fig2


@pytest.fixture(scope="module")
def result(setup):
    return fig2.run(setup=setup)


def test_bench_fig2(benchmark, setup):
    """Time the Fig. 2 generation and print the per-bit table."""
    outcome = benchmark.pedantic(lambda: fig2.run(setup=setup), rounds=1, iterations=1)
    text = outcome.render()
    print("\n" + text)
    benchmark.extra_info["figure"] = text
    from conftest import save_artifact
    save_artifact("fig2", text)


class TestFig2Shape:
    def test_some_bits_alarm(self, result):
        assert 1 <= len(result.violated_bits) <= 11

    def test_not_every_bit_alarms(self, result):
        # The signature is a *pattern* over bits, not a global shift.
        assert len(result.violated_bits) < 11

    def test_template_band_is_tight(self, result):
        band = result.template_max - result.template_min
        assert float(band.max()) < 0.05

    def test_attack_deviation_dominates_band(self, result):
        deviation = np.abs(result.attack_entropy - result.template_mean)
        band = result.template_max - result.template_min
        worst_bit = int(np.argmax(deviation))
        assert deviation[worst_bit] > 3 * band[worst_bit]

    def test_violated_bits_exceed_thresholds(self, result):
        deviation = np.abs(result.attack_entropy - result.template_mean)
        for bit in result.violated_bits:
            assert deviation[bit - 1] > result.thresholds[bit - 1]

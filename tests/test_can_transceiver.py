"""The transceiver zero-overload guard and its bus integration."""

import pytest

from repro.attacks import FloodingAttacker
from repro.can.bus import Bus, BusConfig
from repro.can.frame import CANFrame
from repro.can.transceiver import TransceiverGuard
from repro.exceptions import BusConfigError


class TestGuardUnit:
    def test_all_dominant_streak_triggers(self):
        guard = TransceiverGuard(limit=3)
        frame = CANFrame(0x000)
        assert guard.observe("X", frame, 0) is None
        assert guard.observe("X", frame, 1) is None
        event = guard.observe("X", frame, 2)
        assert event is not None
        assert event.node == "X"
        assert event.consecutive_dominant == 3

    def test_non_zero_id_resets_streak(self):
        guard = TransceiverGuard(limit=2)
        zero = CANFrame(0x000)
        other = CANFrame(0x001)
        assert guard.observe("X", zero, 0) is None
        assert guard.observe("X", other, 1) is None
        assert guard.observe("X", zero, 2) is None  # streak restarted

    def test_streaks_tracked_per_node(self):
        guard = TransceiverGuard(limit=2)
        zero = CANFrame(0x000)
        assert guard.observe("X", zero, 0) is None
        assert guard.observe("Y", zero, 1) is None
        assert guard.observe("X", zero, 2) is not None

    def test_extended_zero_is_not_all_dominant(self):
        # Extended frames carry recessive SRR/IDE bits.
        guard = TransceiverGuard(limit=1)
        assert guard.observe("X", CANFrame(0, extended=True), 0) is None

    def test_remote_zero_is_not_all_dominant(self):
        guard = TransceiverGuard(limit=1)
        assert guard.observe("X", CANFrame(0, rtr=True), 0) is None

    def test_reset(self):
        guard = TransceiverGuard(limit=2)
        zero = CANFrame(0x000)
        guard.observe("X", zero, 0)
        guard.reset("X")
        assert guard.observe("X", zero, 1) is None

    def test_rejects_bad_limit(self):
        with pytest.raises(BusConfigError):
            TransceiverGuard(limit=0)


class TestGuardOnBus:
    def test_fixed_zero_flooder_is_shut_down(self):
        """The paper's argument: naive 0x00 flooding trips the guard."""
        bus = Bus(BusConfig(guard_limit=5))
        flooder = FloodingAttacker(frequency_hz=200.0, fixed_zero=True, seed=1)
        bus.attach(flooder)
        bus.run(1_000_000)
        assert not flooder.enabled
        assert "zero-overload" in flooder.disabled_reason
        assert len(bus.guard_events) == 1
        # The shutdown happened after exactly guard_limit frames.
        assert len(bus.trace) == 5

    def test_changeable_id_flooder_evades_guard(self):
        """...which is why the efficient flooder rotates identifiers."""
        bus = Bus(BusConfig(guard_limit=5))
        flooder = FloodingAttacker(frequency_hz=200.0, ceiling=0x080, seed=1)
        bus.attach(flooder)
        bus.run(1_000_000)
        assert flooder.enabled
        assert len(bus.guard_events) == 0
        assert len(bus.trace) > 100

    def test_guard_disabled_by_config(self):
        bus = Bus(BusConfig(guard_limit=None))
        flooder = FloodingAttacker(frequency_hz=200.0, fixed_zero=True, seed=1)
        bus.attach(flooder)
        bus.run(100_000)
        assert flooder.enabled
        assert len(bus.trace) > 10

"""Wire-format decoder: field parsing, CRC verification, fuzz round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.bits import frame_bitstream
from repro.can.decoder import decode_frame, roundtrip
from repro.can.frame import CANFrame
from repro.exceptions import FrameError


class TestDecodeBase:
    def test_simple_frame(self):
        frame = CANFrame(0x1A4, b"\xDE\xAD\xBE\xEF")
        decoded = decode_frame(frame_bitstream(0x1A4, b"\xDE\xAD\xBE\xEF"))
        assert decoded.frame == frame
        assert decoded.crc_ok

    def test_empty_payload(self):
        decoded = decode_frame(frame_bitstream(0x2AA, b""))
        assert decoded.frame.dlc == 0
        assert decoded.crc_ok

    def test_remote_frame(self):
        decoded = decode_frame(frame_bitstream(0x123, b"", rtr=True))
        assert decoded.frame.rtr
        assert decoded.frame.data == b""

    def test_stuff_bits_counted(self):
        # Identifier 0 produces dominant runs -> stuff bits present.
        decoded = decode_frame(frame_bitstream(0x000, b""))
        assert decoded.stuff_bits_removed > 0

    def test_bit_flip_breaks_crc_or_structure(self):
        stream = list(frame_bitstream(0x1A4, b"\x01\x02\x03"))
        stream[15] ^= 1  # flip a payload-region bit
        try:
            decoded = decode_frame(tuple(stream))
        except FrameError:
            return  # structural break (stuff violation etc.) is also a catch
        assert not decoded.crc_ok


class TestDecodeExtended:
    def test_extended_frame(self):
        can_id = (0x155 << 18) | 0x2AAAA
        decoded = decode_frame(frame_bitstream(can_id, b"\x42", extended=True))
        assert decoded.frame.extended
        assert decoded.frame.can_id == can_id
        assert decoded.crc_ok

    def test_extended_remote(self):
        can_id = 0x1ABCDEF
        decoded = decode_frame(
            frame_bitstream(can_id, b"", extended=True, rtr=True)
        )
        assert decoded.frame.rtr and decoded.frame.extended


class TestDecodeErrors:
    def test_truncated_raises(self):
        stream = frame_bitstream(0x1A4, b"\x01\x02")
        with pytest.raises(FrameError, match="truncated"):
            decode_frame(stream[: len(stream) // 2])

    def test_recessive_sof_rejected(self):
        # Alternating bits avoid stuff violations; the SOF check fires.
        stream = tuple(i % 2 for i in range(40))  # starts with 0? -> flip
        stream = tuple(1 - b for b in stream)  # starts recessive
        with pytest.raises(FrameError, match="start-of-frame"):
            decode_frame(stream)

    def test_trailing_bits_rejected(self):
        stream = frame_bitstream(0x2AA, b"")
        with pytest.raises(FrameError, match="trailing"):
            decode_frame(stream + (0, 1))


class TestRoundtrip:
    @given(
        st.integers(min_value=0, max_value=0x7FF),
        st.binary(max_size=8),
    )
    @settings(max_examples=150)
    def test_base_frames(self, can_id, data):
        decoded = roundtrip(CANFrame(can_id, data))
        assert decoded.crc_ok

    @given(
        st.integers(min_value=0, max_value=(1 << 29) - 1),
        st.binary(max_size=8),
    )
    @settings(max_examples=150)
    def test_extended_frames(self, can_id, data):
        decoded = roundtrip(CANFrame(can_id, data, extended=True))
        assert decoded.crc_ok

    @given(st.integers(min_value=0, max_value=0x7FF))
    def test_remote_frames(self, can_id):
        roundtrip(CANFrame(can_id, b"", rtr=True))

"""Bootstrap confidence intervals for evaluation rates.

A Table-I row averaged over a handful of seeds deserves error bars; the
nonparametric bootstrap needs no distributional assumptions and handles
the message-weighted detection rates directly.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap CI for an arbitrary statistic.

    Returns ``(point_estimate, low, high)``.  A single sample yields a
    degenerate interval at the point estimate.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("bootstrap needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    point = float(statistic(values))
    if values.size == 1:
        return point, point, point
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, values.size, size=(n_resamples, values.size))
    replicates = np.asarray([statistic(values[row]) for row in indices])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(replicates, [alpha, 1.0 - alpha])
    return point, float(low), float(high)


def bootstrap_rate_ci(
    detected: Sequence[int],
    totals: Sequence[int],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """CI for a message-weighted rate (e.g. the paper's Dr).

    ``detected[i] / totals[i]`` are per-run counts; runs are resampled
    with replacement and the pooled rate recomputed per replicate.
    """
    detected_arr = np.asarray(list(detected), dtype=float)
    totals_arr = np.asarray(list(totals), dtype=float)
    if detected_arr.shape != totals_arr.shape or detected_arr.size == 0:
        raise ValueError("detected/totals must be equal-length, non-empty")
    if np.any(detected_arr > totals_arr) or np.any(totals_arr < 0):
        raise ValueError("need 0 <= detected <= total per run")

    def pooled(indices: np.ndarray) -> float:
        total = totals_arr[indices].sum()
        return float(detected_arr[indices].sum() / total) if total else 0.0

    point = pooled(np.arange(detected_arr.size))
    if detected_arr.size == 1:
        return point, point, point
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, detected_arr.size, size=(n_resamples, detected_arr.size))
    replicates = np.asarray([pooled(row) for row in rows])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(replicates, [alpha, 1.0 - alpha])
    return point, float(low), float(high)

"""ISO 11898 fault confinement: error counters and node error states.

The simulator uses these for failure injection (random transmission
errors) and to model the bus-off behaviour that takes a misbehaving node
off the bus — one of the side channels the paper notes would eventually
expose a long-running flooding attacker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ErrorState(enum.Enum):
    """Fault-confinement state of a CAN controller."""

    ERROR_ACTIVE = "error_active"
    ERROR_PASSIVE = "error_passive"
    BUS_OFF = "bus_off"


#: TEC/REC threshold for the error-passive transition.
ERROR_PASSIVE_LIMIT = 128

#: TEC threshold beyond which the controller goes bus-off.
BUS_OFF_LIMIT = 255


@dataclass
class ErrorCounters:
    """Transmit/receive error counters with the standard state rules.

    Only the transitions the simulator exercises are implemented:
    transmit errors add 8 to TEC, successful transmissions subtract 1,
    receive errors add 1 to REC, successful receptions subtract 1.
    """

    tec: int = 0
    rec: int = 0

    @property
    def state(self) -> ErrorState:
        """Current fault-confinement state."""
        if self.tec > BUS_OFF_LIMIT:
            return ErrorState.BUS_OFF
        if self.tec >= ERROR_PASSIVE_LIMIT or self.rec >= ERROR_PASSIVE_LIMIT:
            return ErrorState.ERROR_PASSIVE
        return ErrorState.ERROR_ACTIVE

    @property
    def bus_off(self) -> bool:
        """True once the transmit error counter exceeded the bus-off limit."""
        return self.state is ErrorState.BUS_OFF

    def on_tx_error(self) -> None:
        """Register a transmission error (TEC += 8)."""
        self.tec += 8

    def on_tx_success(self) -> None:
        """Register a successful transmission (TEC -= 1, floored at 0)."""
        if self.tec > 0:
            self.tec -= 1

    def on_rx_error(self) -> None:
        """Register a reception error (REC += 1)."""
        self.rec += 1

    def on_rx_success(self) -> None:
        """Register a successful reception (REC -= 1, floored at 0)."""
        if self.rec > 0:
            self.rec -= 1

"""Columnar ``.npz`` export: the lossless binary trace format.

Unlike the text log formats, the npz export must preserve *everything*
— including bus tags (which candump/CSV drop) and ground-truth attack
labels — field-exact through a round trip, from both contiguous traces
and zero-copy slices.
"""

import numpy as np
import pytest

from repro.attacks import SingleIDAttacker
from repro.exceptions import TraceFormatError
from repro.io.columnar import ColumnTrace
from repro.vehicle import VehicleSimulation
from repro.vehicle.traffic import simulate_drive


@pytest.fixture()
def tagged_trace(catalog):
    """An attacked capture, converted to columns and bus-tagged."""
    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=17)
    sim.add_node(
        SingleIDAttacker(
            can_id=catalog.ids[60], frequency_hz=80.0,
            start_s=1.0, duration_s=3.0, seed=17,
        )
    )
    return ColumnTrace.from_trace(sim.run(5.0)).with_bus("high_speed")


def assert_field_exact(a: ColumnTrace, b: ColumnTrace) -> None:
    assert np.array_equal(a.timestamp_us, b.timestamp_us)
    assert np.array_equal(a.can_id, b.can_id)
    assert np.array_equal(a.dlc, b.dlc)
    assert np.array_equal(a.payload_bytes(), b.payload_bytes())
    assert np.array_equal(a.extended, b.extended)
    assert np.array_equal(a.is_attack, b.is_attack)
    assert a.sources() == b.sources()
    assert a.buses() == b.buses()


class TestNpzRoundTrip:
    @pytest.mark.parametrize("compressed", [False, True])
    def test_lossless_round_trip(self, tagged_trace, tmp_path, compressed):
        """The satellite's acceptance bar: bus labels and ground truth
        included, bit for bit, compressed or not."""
        path = tmp_path / "capture.npz"
        tagged_trace.save_npz(path, compressed=compressed)
        loaded = ColumnTrace.load_npz(path)
        assert_field_exact(tagged_trace, loaded)
        assert loaded == tagged_trace  # the decoded-equality contract
        assert loaded.bus_labels() == ("high_speed",)
        assert loaded.attack_count == tagged_trace.attack_count > 0

    def test_round_trip_of_zero_copy_slice(self, tagged_trace, tmp_path):
        """Slices share the parent's payload buffer with nonzero
        offsets; the export must rebase, not leak the whole buffer."""
        window = tagged_trace.between(
            tagged_trace.start_us + 1_000_000, tagged_trace.start_us + 3_000_000
        )
        assert len(window) and int(window.payload_offsets[0]) > 0
        path = tmp_path / "window.npz"
        window.save_npz(path)
        loaded = ColumnTrace.load_npz(path)
        assert_field_exact(window, loaded)
        assert loaded.payload.size == int(window.dlc.sum())

    def test_suffixless_path_round_trips(self, tagged_trace, tmp_path):
        """np.savez silently appends '.npz' to bare names; the export
        must write exactly the path the caller asked for."""
        path = tmp_path / "capture"  # no suffix
        tagged_trace.save_npz(path)
        assert path.exists()
        assert ColumnTrace.load_npz(path) == tagged_trace

    def test_empty_trace_round_trips(self, tmp_path):
        empty = ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
        path = tmp_path / "empty.npz"
        empty.save_npz(path)
        loaded = ColumnTrace.load_npz(path)
        assert len(loaded) == 0 and loaded == empty

    def test_record_trace_survives_via_npz(self, catalog, tmp_path):
        """Record -> columns -> npz -> columns -> record equality."""
        trace = simulate_drive(4.0, seed=23, catalog=catalog)
        path = tmp_path / "drive.npz"
        ColumnTrace.from_trace(trace).save_npz(path)
        assert ColumnTrace.load_npz(path).to_trace() == trace

    def test_corrupt_file_diagnosed(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(TraceFormatError, match="not a columnar npz"):
            ColumnTrace.load_npz(path)

    def test_version_mismatch_rejected(self, tagged_trace, tmp_path):
        import zipfile

        path = tmp_path / "capture.npz"
        tagged_trace.save_npz(path)
        # Rewrite the version member to a future schema number.
        bumped = tmp_path / "future.npz"
        with zipfile.ZipFile(path) as src, zipfile.ZipFile(bumped, "w") as dst:
            for name in src.namelist():
                if name == "version.npy":
                    import io

                    buffer = io.BytesIO()
                    np.save(buffer, np.int64(99))
                    dst.writestr(name, buffer.getvalue())
                else:
                    dst.writestr(name, src.read(name))
        with pytest.raises(TraceFormatError, match="version 99"):
            ColumnTrace.load_npz(bumped)

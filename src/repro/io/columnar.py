"""Structure-of-arrays trace storage.

:class:`~repro.io.trace.Trace` stores one :class:`~repro.io.trace.TraceRecord`
object per frame, which is convenient for building captures frame by
frame but bounds every whole-trace operation by Python interpreter
overhead.  :class:`ColumnTrace` stores the same capture as parallel
NumPy columns — one array per field — so slicing is zero-copy, time
windowing is a ``searchsorted``, and the detection engines can judge
millions of frames in a handful of vectorised passes.

The two representations are losslessly interconvertible
(:meth:`ColumnTrace.from_trace` / :meth:`ColumnTrace.to_trace`): payload
bytes live in one flat ``uint8`` buffer indexed by an offsets array, and
source names are interned into a string table referenced by per-record
codes.  The conversion contract and when to use which representation are
documented in ``ARCHITECTURE.md``.
"""

from __future__ import annotations

import io
import struct
import warnings
import zipfile
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.can.constants import SECOND_US
from repro.exceptions import TraceFormatError
from repro.io.trace import Trace, TraceRecord

__all__ = ["ColumnTrace", "npz_is_compressed"]


def npz_is_compressed(path) -> bool:
    """True when any member of an ``.npz`` archive is deflated.

    Cheap (central directory only, no member reads).  The out-of-core
    CLI path uses it to refuse compressed npz captures *up front* with
    a ``repro-ids convert`` hint, instead of silently busting the
    memory budget through the eager-load fallback.  Non-zip files
    return False — the capture loader reports those with its own
    diagnostics.
    """
    try:
        with zipfile.ZipFile(path) as zf:
            return any(
                info.compress_type != zipfile.ZIP_STORED
                for info in zf.infolist()
            )
    except (OSError, zipfile.BadZipFile):
        return False


def _as_array(values, dtype) -> np.ndarray:
    arr = np.asarray(values, dtype=dtype)
    if arr.ndim != 1:
        raise TraceFormatError(f"columns must be 1-D, got shape {arr.shape}")
    return arr


def _gather_payload(
    payload: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Gather per-row byte runs ``payload[starts[r]:starts[r]+lengths[r]]``
    into one contiguous buffer, fully vectorised (no per-row Python loop)."""
    total = int(lengths.sum())
    if not total:
        return np.empty(0, dtype=np.uint8)
    out_offsets = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=out_offsets[1:])
    indices = (
        np.repeat(starts - out_offsets, lengths) + np.arange(total, dtype=np.int64)
    )
    return payload[indices]


#: Alignment of array data inside uncompressed ``.npz`` archives.  The
#: npy format already pads its own header to 64 bytes; padding each zip
#: member's *local header* (via a benign extra field) keeps that
#: guarantee through the archive, so ``np.memmap`` hands back ALIGNED
#: arrays.  Without it, whole-column kernels on a mapped trace (e.g.
#: ``searchsorted`` over 100M timestamps) silently copy the column into
#: anonymous memory — exactly what the out-of-core path must never do.
_NPZ_ALIGN = 64


def _write_aligned_npz(handle, members: Dict[str, np.ndarray]) -> None:
    """Write an uncompressed ``.npz`` whose array data is 64-byte aligned.

    Layout-compatible with ``np.savez`` (``np.load`` and the mmap reader
    accept both); the only difference is a padding extra field (id 0,
    skipped by every zip reader) sized so each member's array data lands
    on a :data:`_NPZ_ALIGN` boundary.  Timestamps are pinned to the zip
    epoch so identical traces produce identical bytes.
    """
    with zipfile.ZipFile(handle, "w", zipfile.ZIP_STORED) as zf:
        for name, value in members.items():
            buffer = io.BytesIO()
            np.lib.format.write_array(
                buffer, np.asanyarray(value), allow_pickle=False
            )
            filename = f"{name}.npy"
            offset = handle.tell()
            pad = -(offset + 30 + len(filename.encode("ascii"))) % _NPZ_ALIGN
            if 0 < pad < 4:
                pad += _NPZ_ALIGN
            info = zipfile.ZipInfo(filename, date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_STORED
            if pad:
                info.extra = struct.pack("<HH", 0, pad - 4) + bytes(pad - 4)
            zf.writestr(info, buffer.getvalue())


class _CompressedNpz(Exception):
    """Internal: an npz member needs inflating, so it cannot be mapped."""

    def __init__(self, member: str) -> None:
        super().__init__(member)
        self.member = member


def _mmap_npz_member(
    zf: zipfile.ZipFile, fh, name: str
) -> np.ndarray:
    """Map one stored ``.npy`` member of an open ``.npz`` read-only.

    A ``ZIP_STORED`` member's bytes sit verbatim in the archive: seek
    to its local file header (whose filename/extra lengths may differ
    from the central directory's, so parse them from the header
    itself), step over the npy magic + header, and hand the remaining
    offset to ``np.memmap``.  Zero-length arrays are returned as empty
    ndarrays — ``mmap`` cannot map zero bytes.
    """
    info = zf.getinfo(f"{name}.npy")
    if info.compress_type != zipfile.ZIP_STORED:
        raise _CompressedNpz(name)
    fh.seek(info.header_offset)
    local = fh.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise TraceFormatError(f"corrupt zip local header for member {name!r}")
    fn_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    fh.seek(info.header_offset + 30 + fn_len + extra_len)
    version = np.lib.format.read_magic(fh)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
    else:
        raise TraceFormatError(
            f"unsupported npy format version {version} for member {name!r}"
        )
    if fortran or len(shape) != 1:
        raise TraceFormatError(f"npz member {name!r} is not a 1-D C array")
    if shape[0] == 0:
        return np.empty(0, dtype=dtype)
    return np.memmap(fh, mode="r", dtype=dtype, shape=shape, offset=fh.tell())


class ColumnTrace:
    """A CAN capture as parallel columns.

    Columns (all length ``n`` except ``payload_offsets``, length
    ``n + 1``):

    * ``timestamp_us`` — ``int64``, non-decreasing frame completion times;
    * ``can_id`` — ``int64`` identifiers;
    * ``payload`` / ``payload_offsets`` — flat ``uint8`` buffer; frame
      ``i``'s data bytes are ``payload[payload_offsets[i]:payload_offsets[i+1]]``;
    * ``extended`` — ``bool`` frame-format flags;
    * ``is_attack`` — ``bool`` ground-truth injection labels;
    * ``source_code`` — ``int32`` indices into :attr:`source_table`, the
      interned tuple of distinct source names;
    * ``bus_code`` — ``int32`` indices into :attr:`bus_table`, the
      interned tuple of bus labels (a columnar-only extension for
      multi-bus fan-in; see :meth:`with_bus`).

    Instances are immutable by convention: operations return new views
    or new traces, never mutate columns in place.
    """

    __slots__ = (
        "timestamp_us",
        "can_id",
        "payload",
        "payload_offsets",
        "extended",
        "is_attack",
        "source_code",
        "source_table",
        "bus_code",
        "bus_table",
    )

    def __init__(
        self,
        timestamp_us,
        can_id,
        *,
        payload=None,
        payload_offsets=None,
        extended=None,
        is_attack=None,
        source_code=None,
        source_table: Sequence[str] = ("",),
        bus_code=None,
        bus_table: Sequence[str] = ("",),
        validate: bool = True,
    ) -> None:
        self.timestamp_us = _as_array(timestamp_us, np.int64)
        self.can_id = _as_array(can_id, np.int64)
        n = self.timestamp_us.size
        self.payload = (
            _as_array(payload, np.uint8) if payload is not None
            else np.empty(0, dtype=np.uint8)
        )
        self.payload_offsets = (
            _as_array(payload_offsets, np.int64) if payload_offsets is not None
            else np.zeros(n + 1, dtype=np.int64)
        )
        self.extended = (
            _as_array(extended, bool) if extended is not None
            else np.zeros(n, dtype=bool)
        )
        self.is_attack = (
            _as_array(is_attack, bool) if is_attack is not None
            else np.zeros(n, dtype=bool)
        )
        self.source_code = (
            _as_array(source_code, np.int32) if source_code is not None
            else np.zeros(n, dtype=np.int32)
        )
        self.source_table: Tuple[str, ...] = tuple(source_table)
        self.bus_code = (
            _as_array(bus_code, np.int32) if bus_code is not None
            else np.zeros(n, dtype=np.int32)
        )
        self.bus_table: Tuple[str, ...] = tuple(bus_table)
        if validate:
            self._validate()

    def _validate(self) -> None:
        self._check_layout()
        if len(self) and np.any(np.diff(self.timestamp_us) < 0):
            raise TraceFormatError("timestamps must be non-decreasing")

    #: Expected (dtype, ndim) of every per-record column; the layout
    #: check guards operations (like :meth:`merge`) that would otherwise
    #: surface malformed inputs as cryptic numpy broadcast errors.
    _COLUMN_DTYPES = {
        "timestamp_us": np.dtype(np.int64),
        "can_id": np.dtype(np.int64),
        "extended": np.dtype(bool),
        "is_attack": np.dtype(bool),
        "source_code": np.dtype(np.int32),
        "bus_code": np.dtype(np.int32),
    }

    def _check_layout(self) -> None:
        """Validate column dtypes, shapes and offset consistency.

        Everything except timestamp monotonicity — cheap enough to run
        on every merge, raising :class:`TraceFormatError` instead of
        letting ragged arrays reach a numpy concatenate/broadcast.
        """
        n = self.timestamp_us.size
        for name, dtype in self._COLUMN_DTYPES.items():
            column = getattr(self, name)
            if not isinstance(column, np.ndarray) or column.ndim != 1:
                raise TraceFormatError(f"column {name!r} must be a 1-D array")
            if column.dtype != dtype:
                raise TraceFormatError(
                    f"column {name!r} has dtype {column.dtype}, expected {dtype}"
                )
            if column.size != n:
                raise TraceFormatError(
                    f"column {name!r} has {column.size} rows, expected {n}"
                )
        for name in ("payload", "payload_offsets"):
            buf = getattr(self, name)
            if not isinstance(buf, np.ndarray) or buf.ndim != 1:
                raise TraceFormatError(f"column {name!r} must be a 1-D array")
        if self.payload.dtype != np.dtype(np.uint8):
            raise TraceFormatError(
                f"payload has dtype {self.payload.dtype}, expected uint8"
            )
        if self.payload_offsets.dtype != np.dtype(np.int64):
            raise TraceFormatError(
                f"payload_offsets has dtype {self.payload_offsets.dtype}, "
                f"expected int64"
            )
        if self.payload_offsets.size != n + 1:
            raise TraceFormatError(
                f"payload_offsets has {self.payload_offsets.size} entries, "
                f"expected {n + 1}"
            )
        if n:
            if np.any(np.diff(self.payload_offsets) < 0):
                raise TraceFormatError("payload_offsets must be non-decreasing")
            if int(self.payload_offsets[0]) < 0 or int(self.payload_offsets[-1]) > self.payload.size:
                raise TraceFormatError("payload_offsets exceed the payload buffer")
            if not self.source_table:
                raise TraceFormatError("source_table must not be empty")
            codes = self.source_code
            if int(codes.min()) < 0 or int(codes.max()) >= len(self.source_table):
                raise TraceFormatError("source_code out of source_table range")
            if not self.bus_table:
                raise TraceFormatError("bus_table must not be empty")
            codes = self.bus_code
            if int(codes.min()) < 0 or int(codes.max()) >= len(self.bus_table):
                raise TraceFormatError("bus_code out of bus_table range")

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Union[Trace, Sequence[TraceRecord]]) -> "ColumnTrace":
        """Convert a record trace (lossless, one pass)."""
        records = list(trace) if not isinstance(trace, list) else trace
        n = len(records)
        timestamp_us = np.fromiter((r.timestamp_us for r in records), np.int64, n)
        can_id = np.fromiter((r.can_id for r in records), np.int64, n)
        extended = np.fromiter((r.extended for r in records), bool, n)
        is_attack = np.fromiter((r.is_attack for r in records), bool, n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter((len(r.data) for r in records), np.int64, n),
            out=offsets[1:] if n else None,
        )
        payload = np.frombuffer(
            b"".join(r.data for r in records), dtype=np.uint8
        ).copy() if n else np.empty(0, dtype=np.uint8)
        intern: Dict[str, int] = {}
        codes = np.empty(n, dtype=np.int32)
        for i, record in enumerate(records):
            code = intern.get(record.source)
            if code is None:
                code = intern.setdefault(record.source, len(intern))
            codes[i] = code
        table = tuple(intern) if intern else ("",)
        return cls(
            timestamp_us,
            can_id,
            payload=payload,
            payload_offsets=offsets,
            extended=extended,
            is_attack=is_attack,
            source_code=codes,
            source_table=table,
            validate=False,
        )

    def to_trace(self) -> Trace:
        """Convert back to a record trace (lossless inverse of
        :meth:`from_trace`)."""
        return Trace(self.iter_records())

    def iter_records(self) -> Iterator[TraceRecord]:
        """Yield each row as a :class:`TraceRecord` (lazy).

        Only the payload span this trace references is copied out — a
        zero-copy window slice of a huge capture must not materialise
        the whole shared buffer just to iterate its few rows.
        """
        base = int(self.payload_offsets[0]) if len(self) else 0
        data = self.payload_bytes().tobytes()
        for i in range(len(self)):
            lo = int(self.payload_offsets[i]) - base
            hi = int(self.payload_offsets[i + 1]) - base
            yield TraceRecord(
                timestamp_us=int(self.timestamp_us[i]),
                can_id=int(self.can_id[i]),
                data=data[lo:hi],
                extended=bool(self.extended[i]),
                source=self.source_table[self.source_code[i]],
                is_attack=bool(self.is_attack[i]),
            )

    __iter__ = iter_records

    @classmethod
    def coerce(cls, trace: Union[Trace, "ColumnTrace"]) -> "ColumnTrace":
        """Return ``trace`` itself if already columnar, else convert."""
        return trace if isinstance(trace, cls) else cls.from_trace(trace)

    # ------------------------------------------------------------------
    # Columnar file export (.npz)
    # ------------------------------------------------------------------

    #: On-disk schema version of the ``.npz`` export.  v1 stored the
    #: per-row ``dlc`` column; v2 stores the (rebased) ``payload_offsets``
    #: array directly so a memory-mapped load needs no cumsum pass.
    _NPZ_VERSION = 2

    #: Versions :meth:`load_npz` accepts (v1 files remain readable).
    _NPZ_READABLE = (1, 2)

    def save_npz(self, path, compressed: bool = False) -> None:
        """Write the trace as a NumPy ``.npz`` archive (columnar-native).

        This is the columnar counterpart of the text log writers: one
        array per column, written as-is — no per-frame text rendering,
        no parsing on the way back — so it is both the fastest
        round-trip format and the only one that preserves *everything*,
        including bus tags (which the text formats drop) and
        ground-truth attack labels.  ``compressed`` trades write speed
        for size (zlib per column) but forfeits memory-mapped loading:
        only the default uncompressed (``ZIP_STORED``) layout supports
        ``load_npz(mmap=True)``.  :meth:`load_npz` is the lossless
        inverse; ``tests/test_io_npz.py`` asserts field-exact equality.
        """
        base = int(self.payload_offsets[0]) if len(self) else 0
        members = dict(
            version=np.int64(self._NPZ_VERSION),
            timestamp_us=self.timestamp_us,
            can_id=self.can_id,
            payload=self.payload_bytes(),
            payload_offsets=self.payload_offsets - np.int64(base),
            extended=self.extended,
            is_attack=self.is_attack,
            source_code=self.source_code,
            source_table=np.asarray(self.source_table, dtype=np.str_),
            bus_code=self.bus_code,
            bus_table=np.asarray(self.bus_table, dtype=np.str_),
        )
        # Write through an open handle: np.savez given a *name* appends
        # ".npz" when the suffix is missing, and the file the caller
        # asked for would then not exist for load_npz.
        with open(path, "wb") as handle:
            if compressed:
                np.savez_compressed(handle, **members)
            else:
                _write_aligned_npz(handle, members)

    #: Large per-row columns worth memory-mapping (the intern tables and
    #: version scalar are a few bytes and always loaded eagerly).
    _NPZ_COLUMNS_V2 = (
        "timestamp_us",
        "can_id",
        "payload",
        "payload_offsets",
        "extended",
        "is_attack",
        "source_code",
        "bus_code",
    )
    _NPZ_COLUMNS_V1 = (
        "timestamp_us",
        "can_id",
        "payload",
        "dlc",
        "extended",
        "is_attack",
        "source_code",
        "bus_code",
    )

    @classmethod
    def load_npz(cls, path, *, mmap: bool = False) -> "ColumnTrace":
        """Read a trace written by :meth:`save_npz` (lossless inverse).

        With ``mmap=True`` the per-row columns are returned as lazy,
        read-only ``np.memmap`` views over the file — nothing is paged
        in until touched, so a 100M-frame capture "loads" in
        milliseconds and scanning it costs only the pages the kernel
        actually reads.  Requires the uncompressed (default) npz
        layout; compressed files fall back to an eager load with a
        warning.  Memory-mapped columns are enforced read-only.
        """
        reg = obs.active()
        if reg is None:
            return cls._load_npz(path, mmap=mmap)
        with reg.span("io.parse", format="npz", mmap=bool(mmap)):
            return cls._load_npz(path, mmap=mmap)

    @classmethod
    def _load_npz(cls, path, *, mmap: bool = False) -> "ColumnTrace":
        if mmap:
            try:
                columns = cls._mmap_npz_columns(path)
            except _CompressedNpz as exc:
                warnings.warn(
                    f"npz trace {path} stores member {exc.member!r} "
                    "compressed; memory-mapping needs the uncompressed "
                    "save_npz layout — falling back to an eager load. "
                    "For compressed storage that still scans under a "
                    "memory ceiling, convert to the block-compressed "
                    "container: repro-ids convert <trace> --out "
                    "<trace>.npb",
                    RuntimeWarning,
                    stacklevel=2,
                )
            except (KeyError, ValueError, OSError, zipfile.BadZipFile) as exc:
                raise TraceFormatError(
                    f"not a columnar npz trace: {path} ({exc})"
                ) from exc
            else:
                return cls(validate=False, **columns)
        try:
            with np.load(path) as data:
                version = int(data["version"])
                if version not in cls._NPZ_READABLE:
                    raise TraceFormatError(
                        f"npz trace schema version {version} not supported "
                        f"(expected one of {list(cls._NPZ_READABLE)})"
                    )
                if version == 1:
                    dlc = np.asarray(data["dlc"], dtype=np.int64)
                    offsets = np.zeros(dlc.size + 1, dtype=np.int64)
                    np.cumsum(dlc, out=offsets[1:] if dlc.size else None)
                else:
                    offsets = np.asarray(data["payload_offsets"], dtype=np.int64)
                return cls(
                    data["timestamp_us"],
                    data["can_id"],
                    payload=data["payload"],
                    payload_offsets=offsets,
                    extended=data["extended"],
                    is_attack=data["is_attack"],
                    source_code=data["source_code"],
                    source_table=tuple(str(s) for s in data["source_table"]),
                    bus_code=data["bus_code"],
                    bus_table=tuple(str(s) for s in data["bus_table"]),
                )
        except (KeyError, ValueError, OSError) as exc:
            raise TraceFormatError(
                f"not a columnar npz trace: {path} ({exc})"
            ) from exc

    @classmethod
    def _mmap_npz_columns(cls, path) -> Dict[str, object]:
        """Constructor kwargs with per-row columns memory-mapped.

        An ``.npz`` is a ZIP of ``.npy`` members; for ``ZIP_STORED``
        (uncompressed) members the array bytes sit verbatim in the file
        at ``local header + npy header``, so each column can be mapped
        with ``np.memmap`` at that offset — zero copies, zero reads
        until a page is touched.  Raises :class:`_CompressedNpz` if any
        needed member is deflated.
        """
        with zipfile.ZipFile(path) as zf, open(path, "rb") as fh:
            with zf.open("version.npy") as member:
                version = int(np.lib.format.read_array(member))
            if version not in cls._NPZ_READABLE:
                raise TraceFormatError(
                    f"npz trace schema version {version} not supported "
                    f"(expected one of {list(cls._NPZ_READABLE)})"
                )
            tables: Dict[str, Tuple[str, ...]] = {}
            for name in ("source_table", "bus_table"):
                with zf.open(f"{name}.npy") as member:
                    tables[name] = tuple(
                        str(s) for s in np.lib.format.read_array(member)
                    )
            names = cls._NPZ_COLUMNS_V2 if version == 2 else cls._NPZ_COLUMNS_V1
            raw = {name: _mmap_npz_member(zf, fh, name) for name in names}
        if version == 1:
            # v1 stored dlc, not offsets: rebuild eagerly (one pass over
            # the mapped dlc column), then freeze to match the read-only
            # contract of the mapped columns.
            dlc = np.asarray(raw.pop("dlc"), dtype=np.int64)
            offsets = np.zeros(dlc.size + 1, dtype=np.int64)
            np.cumsum(dlc, out=offsets[1:] if dlc.size else None)
            offsets.flags.writeable = False
            raw["payload_offsets"] = offsets
        raw["source_table"] = tables["source_table"]
        raw["bus_table"] = tables["bus_table"]
        return raw

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.timestamp_us.size

    def __getitem__(self, index):
        if isinstance(index, slice):
            lo, hi, step = index.indices(len(self))
            if step != 1:
                raise TraceFormatError("ColumnTrace slices must be contiguous")
            return self.slice(lo, hi)
        i = int(index)
        if i < 0:
            i += len(self)
        return self.slice(i, i + 1).to_trace()[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnTrace):
            return NotImplemented
        if len(self) != len(other):
            return False
        return (
            bool(np.array_equal(self.timestamp_us, other.timestamp_us))
            and bool(np.array_equal(self.can_id, other.can_id))
            and bool(np.array_equal(self.dlc, other.dlc))
            and bool(np.array_equal(self.payload_bytes(), other.payload_bytes()))
            and bool(np.array_equal(self.extended, other.extended))
            and bool(np.array_equal(self.is_attack, other.is_attack))
            # Decoded source/bus comparison last: the intern tables may
            # order names differently, so compare decoded arrays — but
            # only after every cheap vectorised check has passed.
            and bool(
                np.array_equal(
                    np.asarray(self.source_table, dtype=object)[self.source_code],
                    np.asarray(other.source_table, dtype=object)[other.source_code],
                )
            )
            and bool(
                np.array_equal(
                    np.asarray(self.bus_table, dtype=object)[self.bus_code],
                    np.asarray(other.bus_table, dtype=object)[other.bus_code],
                )
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        span = f"{self.duration_us / SECOND_US:.3f}s" if len(self) else "empty"
        return f"ColumnTrace({len(self)} records, {span})"

    # ------------------------------------------------------------------
    # Basic properties (Trace-compatible surface)
    # ------------------------------------------------------------------
    @property
    def start_us(self) -> int:
        """Timestamp of the first record (0 for an empty trace)."""
        return int(self.timestamp_us[0]) if len(self) else 0

    @property
    def end_us(self) -> int:
        """Timestamp of the last record (0 for an empty trace)."""
        return int(self.timestamp_us[-1]) if len(self) else 0

    @property
    def duration_us(self) -> int:
        """Time spanned by the records."""
        return self.end_us - self.start_us

    @property
    def attack_count(self) -> int:
        """Number of ground-truth attack records."""
        return int(np.count_nonzero(self.is_attack))

    @property
    def dlc(self) -> np.ndarray:
        """Per-record payload byte counts (derived from the offsets)."""
        return np.diff(self.payload_offsets)

    def payload_bytes(self) -> np.ndarray:
        """The payload bytes actually referenced by the offsets.

        Rows are stored contiguously, so this is the single buffer span
        ``payload[offsets[0]:offsets[-1]]``.
        """
        if not len(self):
            return np.empty(0, dtype=np.uint8)
        return self.payload[int(self.payload_offsets[0]) : int(self.payload_offsets[-1])]

    def ids(self) -> np.ndarray:
        """All identifiers (the column itself; treat as read-only)."""
        return self.can_id

    def timestamps_us(self) -> np.ndarray:
        """All timestamps (the column itself; treat as read-only)."""
        return self.timestamp_us

    def attack_mask(self) -> np.ndarray:
        """Ground-truth attack labels (the column itself)."""
        return self.is_attack

    def unique_ids(self) -> np.ndarray:
        """Sorted array of distinct identifiers."""
        return np.unique(self.can_id) if len(self) else np.empty(0, dtype=np.int64)

    def sources(self) -> List[str]:
        """Per-record source names (decoded from the intern table)."""
        return [self.source_table[c] for c in self.source_code]

    # ------------------------------------------------------------------
    # Bus tagging (multi-bus fan-in)
    # ------------------------------------------------------------------
    def with_bus(self, label: str) -> "ColumnTrace":
        """A view of this trace with every record tagged as bus ``label``.

        Bus tags are a columnar-layer extension for multi-bus fan-in:
        they survive slicing, filtering and :meth:`merge` (which
        re-interns tables from all parts), but :class:`TraceRecord` has
        no bus field, so :meth:`to_trace` drops them — see the contract
        notes in ``ARCHITECTURE.md``.
        """
        if not label:
            raise TraceFormatError("bus label must be a non-empty string")
        return ColumnTrace(
            self.timestamp_us,
            self.can_id,
            payload=self.payload,
            payload_offsets=self.payload_offsets,
            extended=self.extended,
            is_attack=self.is_attack,
            source_code=self.source_code,
            source_table=self.source_table,
            bus_code=np.zeros(len(self), dtype=np.int32),
            bus_table=(label,),
            validate=False,
        )

    def buses(self) -> List[str]:
        """Per-record bus labels (decoded from the intern table)."""
        return [self.bus_table[c] for c in self.bus_code]

    def bus_labels(self) -> Tuple[str, ...]:
        """Distinct bus labels actually referenced, in table order."""
        if not len(self):
            return ()
        present = np.unique(self.bus_code)
        return tuple(self.bus_table[c] for c in present)

    def for_bus(self, label: str) -> "ColumnTrace":
        """Only the records captured on bus ``label`` (copies)."""
        try:
            code = self.bus_table.index(label)
        except ValueError:
            raise TraceFormatError(
                f"bus {label!r} not present; trace carries "
                f"{sorted(set(self.bus_table))}"
            ) from None
        return self.take(self.bus_code == code)

    # ------------------------------------------------------------------
    # Slicing and filtering
    # ------------------------------------------------------------------
    def slice(self, lo: int, hi: int) -> "ColumnTrace":
        """Rows ``lo:hi`` as zero-copy column views."""
        lo = max(0, min(lo, len(self)))
        hi = max(lo, min(hi, len(self)))
        return ColumnTrace(
            self.timestamp_us[lo:hi],
            self.can_id[lo:hi],
            payload=self.payload,
            payload_offsets=self.payload_offsets[lo : hi + 1]
            if hi > lo
            else np.zeros(1, dtype=np.int64),
            extended=self.extended[lo:hi],
            is_attack=self.is_attack[lo:hi],
            source_code=self.source_code[lo:hi],
            source_table=self.source_table,
            bus_code=self.bus_code[lo:hi],
            bus_table=self.bus_table,
            validate=False,
        )

    def between(self, start_us: int, end_us: int) -> "ColumnTrace":
        """Records with ``start_us <= timestamp < end_us`` (zero-copy)."""
        lo = int(np.searchsorted(self.timestamp_us, start_us, side="left"))
        hi = int(np.searchsorted(self.timestamp_us, end_us, side="left"))
        return self.slice(lo, hi)

    def take(self, mask_or_indices) -> "ColumnTrace":
        """Rows selected by a boolean mask or index array (copies)."""
        indices = np.asarray(mask_or_indices)
        if indices.dtype == bool:
            if indices.size != len(self):
                raise TraceFormatError(
                    f"boolean mask has {indices.size} entries for a trace of "
                    f"{len(self)} records"
                )
            indices = np.flatnonzero(indices)
        lengths = self.dlc[indices]
        new_offsets = np.zeros(indices.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_offsets[1:] if indices.size else None)
        payload = _gather_payload(
            self.payload, self.payload_offsets[indices], lengths
        ) if indices.size else np.empty(0, dtype=np.uint8)
        return ColumnTrace(
            self.timestamp_us[indices],
            self.can_id[indices],
            payload=payload,
            payload_offsets=new_offsets,
            extended=self.extended[indices],
            is_attack=self.is_attack[indices],
            source_code=self.source_code[indices],
            source_table=self.source_table,
            bus_code=self.bus_code[indices],
            bus_table=self.bus_table,
            validate=False,
        )

    def without_attacks(self) -> "ColumnTrace":
        """Only the legitimate traffic (by ground truth)."""
        return self.take(~self.is_attack)

    def only_attacks(self) -> "ColumnTrace":
        """Only the injected traffic (by ground truth)."""
        return self.take(self.is_attack)

    def shifted(self, offset_us: int) -> "ColumnTrace":
        """A copy whose timestamps are moved by ``offset_us``."""
        return ColumnTrace(
            self.timestamp_us + np.int64(offset_us),
            self.can_id,
            payload=self.payload,
            payload_offsets=self.payload_offsets,
            extended=self.extended,
            is_attack=self.is_attack,
            source_code=self.source_code,
            source_table=self.source_table,
            bus_code=self.bus_code,
            bus_table=self.bus_table,
            validate=False,
        )

    @staticmethod
    def _reintern(parts: Sequence["ColumnTrace"], code_attr: str, table_attr: str):
        """Re-intern per-part string tables into one shared table.

        Returns ``(recoded_concat, table)`` where ``recoded_concat`` is
        the concatenated per-record codes remapped into ``table``.
        """
        table: Dict[str, int] = {}
        recoded: List[np.ndarray] = []
        for part in parts:
            names = getattr(part, table_attr)
            mapping = np.empty(len(names), dtype=np.int32)
            for i, name in enumerate(names):
                mapping[i] = table.setdefault(name, len(table))
            recoded.append(mapping[getattr(part, code_attr)])
        return np.concatenate(recoded), tuple(table)

    @staticmethod
    def merge(*traces: "ColumnTrace") -> "ColumnTrace":
        """Merge time-ordered columnar traces into one (stable sort).

        Source and bus tags survive: each part's intern tables are
        re-interned into shared ones, so merging per-bus captures tagged
        via :meth:`with_bus` yields one fused trace whose records still
        know which bus carried them.

        Raises
        ------
        TraceFormatError
            If any input is not a :class:`ColumnTrace` or carries ragged
            columns (wrong dtype, dimensionality, length or offsets) —
            checked up front, so malformed inputs fail with a clear
            message instead of a numpy broadcast error mid-merge.
        """
        for trace in traces:
            if not isinstance(trace, ColumnTrace):
                raise TraceFormatError(
                    f"merge expects ColumnTrace parts, got {type(trace).__name__}"
                )
            trace._check_layout()
        parts = [t for t in traces if len(t)]
        if not parts:
            return ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
        source_code, source_table = ColumnTrace._reintern(
            parts, "source_code", "source_table"
        )
        bus_code, bus_table = ColumnTrace._reintern(parts, "bus_code", "bus_table")
        timestamp_us = np.concatenate([p.timestamp_us for p in parts])
        order = np.argsort(timestamp_us, kind="stable")
        lengths = np.concatenate([p.dlc for p in parts])
        payload_parts = [p.payload_bytes() for p in parts]
        payload_all = (
            np.concatenate(payload_parts) if payload_parts else np.empty(0, np.uint8)
        )
        # Row start offsets into the concatenated payload buffer.
        offsets_all = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets_all[1:])
        starts = offsets_all[:-1][order]
        lengths_sorted = lengths[order]
        new_offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths_sorted, out=new_offsets[1:])
        payload = _gather_payload(payload_all, starts, lengths_sorted)
        return ColumnTrace(
            timestamp_us[order],
            np.concatenate([p.can_id for p in parts])[order],
            payload=payload,
            payload_offsets=new_offsets,
            extended=np.concatenate([p.extended for p in parts])[order],
            is_attack=np.concatenate([p.is_attack for p in parts])[order],
            source_code=source_code[order],
            source_table=source_table,
            bus_code=bus_code[order],
            bus_table=bus_table,
            validate=False,
        )

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def window_segments(
        self, window_us: int, *, origin_us: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Tumbling-window segmentation of the record array.

        Returns ``(window_index, seg_starts, seg_ends)`` where
        ``window_index[j]`` is the grid index (``(t - origin) // window``)
        of the ``j``-th *non-empty* window and rows
        ``seg_starts[j]:seg_ends[j]`` are its records.  Empty grid
        windows simply do not appear — matching how the streaming
        detector skips silent gaps.
        """
        if window_us <= 0:
            raise ValueError(f"window must be positive, got {window_us}")
        n = len(self)
        empty = np.empty(0, dtype=np.int64)
        if n == 0:
            return empty, empty, empty
        t0 = self.start_us if origin_us is None else origin_us
        grid = (self.timestamp_us - np.int64(t0)) // np.int64(window_us)
        boundaries = np.flatnonzero(np.diff(grid)) + 1
        seg_starts = np.concatenate(([0], boundaries))
        seg_ends = np.concatenate((boundaries, [n]))
        return grid[seg_starts], seg_starts, seg_ends

    def attack_counts(self, seg_starts: np.ndarray) -> np.ndarray:
        """Ground-truth attack message counts per segment.

        ``seg_starts`` are row starts as returned by
        :meth:`window_segments`; both detection paths (batch engine and
        baseline scans) share this accumulation.
        """
        if seg_starts.size == 0:
            return np.zeros(0, dtype=np.int64)
        if not self.is_attack.any():
            return np.zeros(seg_starts.size, dtype=np.int64)
        return np.add.reduceat(self.is_attack.astype(np.int64), seg_starts)

    def iter_window_chunks(
        self,
        window_us: int,
        chunk_windows: int,
        *,
        origin_us: Optional[int] = None,
    ) -> Iterator["ColumnTrace"]:
        """Yield zero-copy chunks aligned to the detection-window grid.

        Each chunk covers ``chunk_windows`` consecutive grid windows
        (``window_us`` each, anchored at ``origin_us`` / the first
        timestamp), so a chunk boundary is always a window boundary —
        chunking can never split a detection window, which is what
        makes the chunked scan bit-identical to a whole-trace scan.
        Empty chunks are skipped (silent gaps of any length cost
        nothing); every yielded chunk is non-empty.  On a memory-mapped
        trace the slices stay lazy: only the pages a chunk's consumer
        touches are ever read.
        """
        if window_us <= 0:
            raise ValueError(f"window must be positive, got {window_us}")
        if chunk_windows <= 0:
            raise ValueError(
                f"chunk_windows must be positive, got {chunk_windows}"
            )
        n = len(self)
        if n == 0:
            return
        t0 = self.start_us if origin_us is None else int(origin_us)
        span = int(window_us) * int(chunk_windows)
        ts = self.timestamp_us
        lo = 0
        while lo < n:
            # Jump straight to the chunk containing the next record —
            # floor division lands in the right chunk even for records
            # before the origin (negative grid indices).
            k = (int(ts[lo]) - t0) // span
            boundary = t0 + (k + 1) * span
            hi = int(np.searchsorted(ts, boundary, side="left"))
            yield self.slice(lo, hi)
            lo = hi

    def time_windows(
        self, window_us: int, *, start_us: Optional[int] = None
    ) -> Iterator["ColumnTrace"]:
        """Yield consecutive tumbling time windows (zero-copy slices).

        Mirrors :meth:`Trace.time_windows`: empty windows inside the
        capture are yielded too, so callers relying on positional window
        indices see the same sequence.
        """
        if window_us <= 0:
            raise ValueError(f"window must be positive, got {window_us}")
        if not len(self):
            return
        t0 = self.start_us if start_us is None else start_us
        t_end = self.end_us
        while t0 <= t_end:
            yield self.between(t0, t0 + window_us)
            t0 += window_us

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def message_rate_hz(self) -> float:
        """Average message rate over the trace duration."""
        if len(self) < 2 or self.duration_us == 0:
            return 0.0
        return (len(self) - 1) / (self.duration_us / SECOND_US)

    def id_histogram(self) -> dict:
        """Mapping of identifier -> occurrence count."""
        if not len(self):
            return {}
        values, counts = np.unique(self.can_id, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

"""Benchmark E4 — the Section IV.B entropy-stability experiment.

The paper's premise: the per-bit entropy barely changes across driving
scenarios (audio on, lights on, cruise control, ...), so a golden
template with range-scaled thresholds separates normal variation from
attacks.  Asserted here:

* normal variation (within- and between-scenario) is small in absolute
  terms;
* a moderate attack's deviation dominates it by a wide margin.
"""

import numpy as np
import pytest

from repro.experiments import stability


@pytest.fixture(scope="module")
def result(setup):
    return stability.run(setup=setup)


def test_bench_stability(benchmark, setup):
    """Time the stability campaign and print the per-bit table."""
    outcome = benchmark.pedantic(
        lambda: stability.run(setup=setup), rounds=1, iterations=1
    )
    text = outcome.render()
    print("\n" + text)
    benchmark.extra_info["table"] = text
    from conftest import save_artifact
    save_artifact("stability", text)


class TestStabilityShape:
    def test_normal_variation_small(self, result):
        assert float(result.within_range.max()) < 0.06
        assert float(result.between_range.max()) < 0.06

    def test_attack_dominates_normal_variation(self, result):
        assert result.stability_margin > 3.0

    def test_every_scenario_measured(self, result):
        assert len(result.scenario_names) >= 5
        assert set(result.scenario_means) == set(result.scenario_names)

    def test_scenario_means_close_to_each_other(self, result):
        means = np.stack(list(result.scenario_means.values()))
        spread = means.max(axis=0) - means.min(axis=0)
        assert np.all(spread == result.between_range)

"""The Muter & Asaj entropy IDS (the paper's reference [8]).

Computes the Shannon entropy of the *distribution of whole identifiers*
within each window and alarms when it deviates from the trained band.
This is the approach the paper improves upon; the comparison points the
paper makes are reproduced by this implementation:

* it keeps one counter per distinct identifier (223 on the test vehicle,
  vs. the bit-slice method's 11) — see :meth:`memory_slots`;
* a single scalar entropy can detect but not *localise* an injection
  (``localizes_ids = False``);
* all-zero / single-ID floods compress the distribution and lower the
  entropy clearly, but small injections move the scalar far less than
  they move the best single bit, so its low-frequency sensitivity is
  worse — the comparison benchmark quantifies this.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.entropy import shannon_entropy
from repro.exceptions import DetectorError
from repro.io.trace import Trace

from repro.baselines.base import BaselineIDS


class MuterEntropyIDS(BaselineIDS):
    """Whole-distribution entropy with an alpha-scaled range threshold.

    The threshold mirrors the paper's template construction so the two
    entropy approaches differ only in *what* entropy they compute:
    ``Th = alpha * (max H - min H)`` over the clean windows.
    """

    name = "muter-entropy"
    handles_unseen_ids = True  # unseen IDs change the distribution too
    localizes_ids = False

    def __init__(
        self,
        alpha: float = 3.0,
        threshold_floor: float = 1e-3,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if alpha <= 0:
            raise DetectorError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        self.threshold_floor = threshold_floor
        self.mean_entropy = 0.0
        self.threshold = 0.0
        self._seen_ids: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _window_entropy(self, window: Trace) -> float:
        counts = np.fromiter(window.id_histogram().values(), dtype=float)
        return shannon_entropy(counts)

    def _fit(self, windows: Sequence[Trace]) -> None:
        entropies = []
        for window in windows:
            entropies.append(self._window_entropy(window))
            for can_id, count in window.id_histogram().items():
                self._seen_ids[can_id] = self._seen_ids.get(can_id, 0) + count
        values = np.asarray(entropies, dtype=float)
        if values.size < 2:
            raise DetectorError("muter-entropy needs >= 2 clean windows")
        self.mean_entropy = float(values.mean())
        self.threshold = max(
            self.alpha * float(values.max() - values.min()), self.threshold_floor
        )

    def _judge(self, window: Trace) -> Tuple[float, bool]:
        deviation = abs(self._window_entropy(window) - self.mean_entropy)
        return deviation, deviation > self.threshold

    def _scores_columns(self, ct, grid, seg_starts, seg_ends, judged):
        # Histogram every (window, identifier) pair in one unique() pass,
        # then accumulate -p log2 p per window.  Equal to the scalar
        # path up to float summation order.
        n_windows = seg_starts.size
        counts_per_window = seg_ends - seg_starts
        win_of_record = np.repeat(np.arange(n_windows), counts_per_window)
        span = int(ct.can_id.max()) + 1
        key = win_of_record * span + ct.can_id
        uniq, counts = np.unique(key, return_counts=True)
        uniq_window = uniq // span
        totals = counts_per_window.astype(float)
        p = counts / totals[uniq_window]
        accumulator = np.zeros(n_windows)
        np.add.at(accumulator, uniq_window, p * np.log2(p))
        scores = np.abs(-accumulator - self.mean_entropy)
        return scores, scores > self.threshold

    # ------------------------------------------------------------------
    def memory_slots(self) -> int:
        """One counter per distinct identifier observed in training.

        This is the linear storage cost the paper contrasts with its 11
        bit-slice counters.
        """
        return len(self._seen_ids)

#!/usr/bin/env python
"""Response: blocking the inferred malicious identifier.

The paper's abstract promises that "the malicious messages containing
those IDs would be discarded or blocked".  This example closes that
loop: a :class:`ResponseGate` (detector + inference + TTL blocklist)
sits between the bus and the rest of the vehicle, and when the entropy
IDS fires it blocks the top inferred identifier.

Watch three phases: (1) the attack runs freely until the first detection
window closes; (2) the blocklist suppresses it; (3) after the attack
ends and the TTL expires, the abused identifier's *legitimate* messages
flow again.

Run:  python examples/response_blocking.py
"""

from repro.attacks import SingleIDAttacker
from repro.can.constants import SECOND_US
from repro.core import ResponseGate
from repro.experiments import build_setup
from repro.vehicle import VehicleSimulation


def main() -> None:
    setup = build_setup()
    attack_id = setup.catalog.ids[75]

    sim = VehicleSimulation(catalog=setup.catalog, scenario="city", seed=81)
    sim.add_node(
        SingleIDAttacker(
            can_id=attack_id, frequency_hz=100.0, start_s=2.0,
            duration_s=12.0, seed=7,
        )
    )
    trace = sim.run(30.0)
    print(
        f"capture: {len(trace)} frames, {trace.attack_count} injected "
        f"(0x{attack_id:03X} at 100 Hz, t=2-14 s)"
    )

    gate = ResponseGate(
        setup.template, setup.catalog.ids, setup.config,
        block_top=1, ttl_us=8 * SECOND_US,
    )
    outcome = gate.process_trace(trace)

    print("\nresponse gate outcome:")
    print("  " + outcome.summary())

    # Phase view: attack frames forwarded per 2 s bucket.
    print("\nattack frames reaching the vehicle, per 2 s:")
    for start_s in range(0, 30, 2):
        window = gate.forwarded_trace.between(
            start_s * SECOND_US, (start_s + 2) * SECOND_US
        )
        through = sum(1 for r in window if r.is_attack)
        legit = sum(1 for r in window if r.can_id == attack_id and not r.is_attack)
        marker = "#" * min(40, through // 5)
        print(f"  t={start_s:>2}-{start_s + 2:<2}s  attack={through:<4} "
              f"legit 0x{attack_id:03X}={legit:<3} {marker}")

    print(
        "\nthe block expires after the attack: the abused identifier's "
        "legitimate traffic resumes in the final buckets."
    )


if __name__ == "__main__":
    main()

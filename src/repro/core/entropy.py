"""Entropy functions.

The paper's Definition (Section IV.A): for bit ``i`` of the identifier,
``p_i`` is the fraction of messages whose bit ``i`` equals 1, and the
binary entropy is the Shannon entropy of the corresponding Bernoulli
variable::

    H_b(p) = -p log2 p - (1-p) log2 (1-p)

:func:`shannon_entropy` (entropy of a full distribution) is also
provided because the Muter & Asaj baseline [8] — which the paper compares
against — computes the entropy of the *whole identifier distribution*
rather than of individual bits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.bitprob import BitCounter

ArrayLike = Union[float, np.ndarray]


def binary_entropy(p: ArrayLike) -> ArrayLike:
    """Bernoulli entropy ``H_b(p)`` in bits, elementwise.

    Accepts scalars or arrays; ``H_b(0) = H_b(1) = 0`` by the usual
    ``0 log 0 = 0`` convention.  Values outside [0, 1] raise.

    >>> binary_entropy(0.5)
    1.0
    >>> binary_entropy(0.0)
    0.0
    """
    arr = np.asarray(p, dtype=float)
    if np.any(arr < 0.0) or np.any(arr > 1.0):
        raise ValueError(f"probabilities must lie in [0, 1], got {p!r}")
    with np.errstate(divide="ignore", invalid="ignore"):
        h = -(arr * np.log2(arr)) - ((1.0 - arr) * np.log2(1.0 - arr))
    h = np.where(np.isfinite(h), h, 0.0)
    if np.isscalar(p) or np.ndim(p) == 0:
        return float(h)
    return h


def entropy_vector(counter: "BitCounter") -> np.ndarray:
    """Per-bit binary entropy of everything a counter has seen.

    The paper's measured vector ``Ĥ = {H_1 ... H_11}``.
    """
    return np.asarray(binary_entropy(counter.probabilities()), dtype=float)


def shannon_entropy(counts: ArrayLike) -> float:
    """Shannon entropy (bits) of a count vector or probability vector.

    Used by the Muter-entropy baseline: the entropy of the distribution
    of whole identifiers within a window.  Accepts raw counts (they are
    normalised) or probabilities summing to ~1; zero entries are skipped.
    """
    arr = np.asarray(counts, dtype=float).ravel()
    if arr.size == 0:
        return 0.0
    if np.any(arr < 0):
        raise ValueError("counts/probabilities must be non-negative")
    total = arr.sum()
    if total == 0.0:
        return 0.0
    probs = arr / total
    nonzero = probs[probs > 0.0]
    return float(-(nonzero * np.log2(nonzero)).sum())


def entropy_gradient(p: ArrayLike) -> ArrayLike:
    """Derivative ``dH_b/dp = log2((1-p)/p)``, elementwise.

    Useful for reasoning about which bits amplify a probability shift
    into a large entropy shift: bits with ``p`` near 0 or 1 (like the
    identifier MSBs, which are mostly 0 on a real vehicle) have steep
    gradients, which is why injections of high-priority identifiers show
    up so prominently in the paper's Fig. 2.
    """
    arr = np.asarray(p, dtype=float)
    if np.any(arr < 0.0) or np.any(arr > 1.0):
        raise ValueError("probabilities must lie in [0, 1]")
    with np.errstate(divide="ignore"):
        grad = np.log2((1.0 - arr) / arr)
    if np.isscalar(p) or np.ndim(p) == 0:
        return float(grad)
    return grad

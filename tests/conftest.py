"""Shared fixtures.

The expensive fixtures (catalog, clean template windows, golden
template) are session-scoped: they are deterministic in their seeds, so
sharing them across tests changes nothing about isolation while keeping
the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IDSConfig, build_template
from repro.vehicle import ford_fusion_catalog
from repro.vehicle.traffic import record_template_windows


@pytest.fixture(scope="session")
def catalog():
    """The default synthetic Ford Fusion catalog."""
    return ford_fusion_catalog(seed=0)


@pytest.fixture(scope="session")
def ids_config():
    """Default IDS configuration with a smaller template for speed."""
    return IDSConfig(template_windows=12)


@pytest.fixture(scope="session")
def template_windows(catalog, ids_config):
    """Twelve clean windows over diverse scenarios."""
    return record_template_windows(
        n_windows=ids_config.template_windows,
        window_s=ids_config.window_us / 1e6,
        seed=7,
        catalog=catalog,
    )


@pytest.fixture(scope="session")
def golden_template(template_windows, ids_config):
    """Golden template built from the shared clean windows."""
    return build_template(template_windows, ids_config)


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)

"""Block-streaming ingestion parity.

The chunked text readers re-parse fixed-size byte *blocks* with the
vectorised parsers instead of walking lines; the contract is that no
block boundary is observable: for every block size — including sizes
that cut lines mid-token, mid-CRLF, inside comments, and at an EOF
without a trailing newline — the chunk stream is bit-identical to the
whole-file readers, and every chunk except the last holds exactly
``chunk_frames`` frames.
"""

import gzip

import numpy as np
import pytest

from repro.exceptions import TraceFormatError
from repro.io import (
    iter_candump_columns,
    iter_csv_columns,
    read_candump_columns,
    read_csv_columns,
    write_candump_columns,
    write_csv_columns,
)
from repro.io.columnar import ColumnTrace
from repro.vehicle.traffic import generate_drive_columns

#: Block sizes chosen to land boundaries everywhere: single bytes,
#: mid-timestamp, mid-payload, mid-comment, and "bigger than the file".
BLOCK_SIZES = [1, 3, 17, 256, 1 << 20]


@pytest.fixture(scope="module")
def capture(catalog):
    """A drive capture with payloads, sources and attack labels."""
    ct = generate_drive_columns(3.0, scenario="city", seed=23, catalog=catalog)
    assert ct.is_attack.any() or True  # labels may be clean; columns exist
    return ct


def _merge(chunks):
    chunks = list(chunks)
    if not chunks:
        return ColumnTrace(np.empty(0, np.int64), np.empty(0, np.int64))
    return ColumnTrace.merge(*chunks)


class TestCandumpBlockParity:
    @pytest.mark.parametrize("block_bytes", BLOCK_SIZES)
    @pytest.mark.parametrize("gz", [False, True], ids=["plain", "gzip"])
    def test_block_edges_are_invisible(
        self, capture, tmp_path, block_bytes, gz
    ):
        path = tmp_path / ("c.log.gz" if gz else "c.log")
        write_candump_columns(capture, path)
        whole = read_candump_columns(path)
        merged = _merge(
            iter_candump_columns(path, 997, block_bytes=block_bytes)
        )
        assert merged == whole

    @pytest.mark.parametrize("block_bytes", [7, 64])
    def test_weird_text_shapes(self, tmp_path, block_bytes):
        """Comments, CRLF, blank lines, and EOF without a newline all
        survive arbitrary block cuts."""
        path = tmp_path / "w.log"
        path.write_bytes(
            b"# leading comment that is longer than a tiny block\n"
            b"(1.000000) can0 1A4#1122 ; src=a attack=0\r\n"
            b"\n"
            b"(1.000100) can0 0C1#DEAD ; src=b attack=1\n"
            b"   \n"
            b"# interior comment\r\n"
            b"(1.000200) can0 7FF#\n"
            b"(1.000300) can1 123#00FF ; src=a attack=0"  # no newline
        )
        whole = read_candump_columns(path)
        assert len(whole) == 4
        assert whole.is_attack.sum() == 1
        for chunk_frames in (1, 2, 100):
            merged = _merge(
                iter_candump_columns(
                    path, chunk_frames, block_bytes=block_bytes
                )
            )
            assert merged == whole

    def test_exact_chunk_sizes(self, capture, tmp_path):
        path = tmp_path / "c.log"
        write_candump_columns(capture, path)
        chunks = list(iter_candump_columns(path, 333, block_bytes=4096))
        assert all(len(c) == 333 for c in chunks[:-1])
        assert 0 < len(chunks[-1]) <= 333
        assert sum(len(c) for c in chunks) == len(capture)

    def test_ground_truth_columns_round_trip(self, tmp_path):
        ct = ColumnTrace(
            np.array([1_000, 2_000, 3_000], np.int64),
            np.array([0x1A4, 0x0C1, 0x1A4], np.int64),
            is_attack=np.array([False, True, False]),
            source_code=np.array([1, 2, 1], np.int32),
            source_table=("", "ecu_a", "spoofer"),
        )
        path = tmp_path / "g.log.gz"
        write_candump_columns(ct, path)
        merged = _merge(iter_candump_columns(path, 2, block_bytes=5))
        assert merged == ct

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_nonpositive_sizes(self, tmp_path, bad):
        path = tmp_path / "c.log"
        path.write_text("(1.000000) can0 1A4#\n")
        with pytest.raises(TraceFormatError, match="positive"):
            list(iter_candump_columns(path, bad))
        with pytest.raises(TraceFormatError, match="positive"):
            list(iter_candump_columns(path, 10, block_bytes=bad))

    @pytest.mark.parametrize("block_bytes", [8, 1 << 20])
    def test_backwards_timestamp_names_the_line(self, tmp_path, block_bytes):
        """The vectorised path must hand badly-ordered blocks back to
        the per-line parser so the error carries the line number —
        including when the violation spans a block boundary."""
        path = tmp_path / "m.log"
        path.write_text(
            "(0.000300) can0 1A4#\n"
            "(0.000100) can0 1A4#\n"
        )
        with pytest.raises(TraceFormatError, match="m.log:2"):
            list(iter_candump_columns(path, 10, block_bytes=block_bytes))


class TestCsvBlockParity:
    @pytest.mark.parametrize("block_bytes", BLOCK_SIZES)
    @pytest.mark.parametrize("gz", [False, True], ids=["plain", "gzip"])
    def test_block_edges_are_invisible(
        self, capture, tmp_path, block_bytes, gz
    ):
        path = tmp_path / ("c.csv.gz" if gz else "c.csv")
        write_csv_columns(capture, path)
        whole = read_csv_columns(path)
        merged = _merge(iter_csv_columns(path, 991, block_bytes=block_bytes))
        assert merged == whole

    @pytest.mark.parametrize("block_bytes", [5, 64])
    def test_quoted_field_hands_over_to_csv_module(
        self, tmp_path, block_bytes
    ):
        """A quote anywhere in a block (even one the fast path would
        otherwise digest) must divert to the csv-module reader — fields
        may span physical lines — without disturbing rows the fast path
        already consumed."""
        path = tmp_path / "q.csv"
        path.write_text(
            "time_us,can_id_hex,extended,dlc,data_hex,source,is_attack\n"
            "1000,1A4,0,2,1122,ecu_a,0\n"
            "2000,0C1,0,0,,ecu_b,1\n"
            '3000,1A4,0,1,33,"quoted,source",0\n'
            "4000,7FF,1,0,,ecu_a,0\n"
        )
        whole = read_csv_columns(path)
        assert whole.sources().count("quoted,source") == 1
        for chunk_frames in (1, 3, 100):
            merged = _merge(
                iter_csv_columns(path, chunk_frames, block_bytes=block_bytes)
            )
            assert merged == whole

    def test_exact_chunk_sizes(self, capture, tmp_path):
        path = tmp_path / "c.csv"
        write_csv_columns(capture, path)
        chunks = list(iter_csv_columns(path, 250, block_bytes=4096))
        assert all(len(c) == 250 for c in chunks[:-1])
        assert sum(len(c) for c in chunks) == len(capture)

    def test_ground_truth_columns_round_trip(self, tmp_path):
        ct = ColumnTrace(
            np.array([1_000, 2_000, 3_000], np.int64),
            np.array([0x1A4, 0x0C1, 0x1A4], np.int64),
            is_attack=np.array([True, False, True]),
            source_code=np.array([1, 2, 1], np.int32),
            source_table=("", "a", "b"),
        )
        path = tmp_path / "g.csv.gz"
        write_csv_columns(ct, path)
        merged = _merge(iter_csv_columns(path, 2, block_bytes=9))
        assert merged == ct

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_sizes(self, tmp_path, bad):
        path = tmp_path / "c.csv"
        path.write_text(
            "time_us,can_id_hex,extended,dlc,data_hex,source,is_attack\n"
        )
        with pytest.raises(TraceFormatError, match="positive"):
            list(iter_csv_columns(path, bad))
        with pytest.raises(TraceFormatError, match="positive"):
            list(iter_csv_columns(path, 10, block_bytes=bad))

    def test_backwards_timestamp_names_the_line(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text(
            "time_us,can_id_hex,extended,dlc,data_hex,source,is_attack\n"
            "3000,1A4,0,0,,a,0\n"
            "1000,1A4,0,0,,a,0\n"
        )
        with pytest.raises(TraceFormatError, match="m.csv:3"):
            list(iter_csv_columns(path, 10, block_bytes=16))


class TestGzipBlockDecompression:
    def test_gzip_blocks_match_plain_blocks(self, capture, tmp_path):
        """Gzip decompression is block-transparent: an externally
        gzipped file parses chunk-for-chunk like its plain twin."""
        plain = tmp_path / "d.log"
        write_candump_columns(capture, plain)
        gzipped = tmp_path / "d.log.gz"
        gzipped.write_bytes(gzip.compress(plain.read_bytes()))
        assert list(iter_candump_columns(gzipped, 777)) == list(
            iter_candump_columns(plain, 777)
        )

"""End-to-end pipeline on the synthetic vehicle (integration)."""

import pytest

from repro.attacks import FloodingAttacker, MultiIDAttacker, SingleIDAttacker
from repro.core import IDSPipeline
from repro.exceptions import DetectorError
from repro.io.trace import Trace
from repro.vehicle import VehicleSimulation
from repro.vehicle.traffic import simulate_drive


@pytest.fixture(scope="module")
def pipeline(golden_template, ids_config, catalog):
    return IDSPipeline(golden_template, ids_config, id_pool=catalog.ids)


def attacked_trace(catalog, attacker, seed=31, duration_s=12.0):
    sim = VehicleSimulation(catalog=catalog, scenario="city", seed=seed)
    sim.add_node(attacker)
    return sim.run(duration_s)


class TestCleanTraffic:
    def test_no_alarms_on_clean_drive(self, pipeline, catalog):
        trace = simulate_drive(10.0, scenario="highway", seed=55, catalog=catalog)
        report = pipeline.analyze(trace)
        assert report.alarmed_windows == []
        assert report.false_positive_rate == 0.0
        assert report.detection_rate == 0.0
        assert report.inference is None

    def test_empty_trace_rejected(self, pipeline):
        with pytest.raises(DetectorError):
            pipeline.analyze(Trace())


class TestSingleIdAttack:
    def test_detection_and_inference(self, pipeline, catalog):
        attack_id = catalog.ids[70]
        attacker = SingleIDAttacker(
            can_id=attack_id, frequency_hz=50.0, start_s=2.0, duration_s=8.0, seed=3
        )
        report = pipeline.analyze(attacked_trace(catalog, attacker), infer_k=1)
        assert report.detection_rate > 0.9
        assert report.false_positive_rate == 0.0
        assert report.inference is not None
        assert report.inference_hit_rate([attack_id]) == 1.0

    def test_latency_within_two_windows(self, pipeline, catalog, ids_config):
        attacker = SingleIDAttacker(
            can_id=catalog.ids[60], frequency_hz=100.0, start_s=2.0,
            duration_s=8.0, seed=4,
        )
        report = pipeline.analyze(attacked_trace(catalog, attacker))
        assert report.detection_latency_us is not None
        assert report.detection_latency_us <= 2 * ids_config.window_us

    def test_alerts_collected(self, pipeline, catalog):
        attacker = SingleIDAttacker(
            can_id=catalog.ids[60], frequency_hz=100.0, start_s=2.0,
            duration_s=8.0, seed=5,
        )
        report = pipeline.analyze(attacked_trace(catalog, attacker))
        assert len(report.alerts) == len(report.alarmed_windows)

    def test_summary_mentions_key_metrics(self, pipeline, catalog):
        attacker = SingleIDAttacker(
            can_id=catalog.ids[60], frequency_hz=100.0, start_s=2.0,
            duration_s=8.0, seed=6,
        )
        report = pipeline.analyze(attacked_trace(catalog, attacker), infer_k=1)
        summary = report.summary()
        assert "detection rate" in summary
        assert "candidates" in summary


class TestMultiIdAttack:
    def test_multi_detection_and_inference(self, pipeline, catalog):
        ids = [catalog.ids[40], catalog.ids[95], catalog.ids[150]]
        attacker = MultiIDAttacker(
            ids, frequency_hz=50.0, start_s=2.0, duration_s=8.0, seed=7
        )
        report = pipeline.analyze(attacked_trace(catalog, attacker), infer_k=3)
        assert report.detection_rate > 0.9
        assert report.inference_hit_rate(ids) >= 2 / 3


class TestFloodingAttack:
    def test_flood_fully_detected(self, pipeline, catalog):
        attacker = FloodingAttacker(
            frequency_hz=300.0, start_s=2.0, duration_s=8.0, seed=8
        )
        report = pipeline.analyze(attacked_trace(catalog, attacker))
        assert report.detection_rate > 0.99


class TestStreamingIntegration:
    def test_streaming_detector_on_live_bus(self, pipeline, catalog, ids_config):
        """Attach the streaming detector directly as a bus listener."""
        sim = VehicleSimulation(catalog=catalog, scenario="city", seed=9)
        sim.add_node(
            SingleIDAttacker(
                can_id=catalog.ids[60], frequency_hz=100.0, start_s=2.0,
                duration_s=6.0, seed=9,
            )
        )
        detector = pipeline.streaming_detector()
        sim.bus.attach_listener(lambda record: detector.feed(record))
        sim.run(10.0)
        detector.flush()
        assert len(detector.sink) >= 1

    def test_no_pool_no_inference(self, golden_template, ids_config, catalog):
        pipeline = IDSPipeline(golden_template, ids_config)  # no pool
        attacker = SingleIDAttacker(
            can_id=catalog.ids[60], frequency_hz=100.0, start_s=2.0,
            duration_s=6.0, seed=10,
        )
        report = pipeline.analyze(attacked_trace(catalog, attacker))
        assert report.inference is None
        assert report.inference_hit_rate([catalog.ids[60]]) == 0.0


class TestDetectionLatencySemantics:
    """A false positive before the attack must not clamp the latency."""

    @staticmethod
    def _window(index, t_start, *, alarm, attacks=0, window_us=2_000_000):
        import numpy as np

        from repro.core import WindowResult

        n_bits = 11
        violated = np.zeros(n_bits, dtype=bool)
        if alarm:
            violated[3] = True
        return WindowResult(
            index=index,
            t_start_us=t_start,
            t_end_us=t_start + window_us,
            n_messages=100,
            n_attack_messages=attacks,
            probabilities=np.full(n_bits, 0.5),
            entropy=np.ones(n_bits),
            deviations=np.where(violated, 0.5, 0.0),
            violated=violated,
            judged=True,
        )

    def test_early_false_positive_does_not_clamp_latency(self):
        from repro.core import DetectionReport

        w = 2_000_000
        report = DetectionReport(
            windows=[
                self._window(0, 0, alarm=True),               # FP before attack
                self._window(1, w, alarm=False, attacks=5),   # attack starts
                self._window(2, 2 * w, alarm=True, attacks=5),  # real detection
            ],
            alerts=[],
            inference=None,
        )
        # Latency runs from the first attacked window's start (t = w) to
        # the end of the first alarm at or after it (t = 3w), not to the
        # earlier false positive.
        assert report.detection_latency_us == 2 * w

    def test_no_alarm_after_attack_means_no_latency(self):
        from repro.core import DetectionReport

        report = DetectionReport(
            windows=[
                self._window(0, 0, alarm=True),
                self._window(1, 2_000_000, alarm=False, attacks=5),
            ],
            alerts=[],
            inference=None,
        )
        assert report.detection_latency_us is None

    def test_alarm_in_first_attacked_window_counts(self):
        from repro.core import DetectionReport

        w = 2_000_000
        report = DetectionReport(
            windows=[self._window(0, 0, alarm=True, attacks=5)],
            alerts=[],
            inference=None,
        )
        assert report.detection_latency_us == w

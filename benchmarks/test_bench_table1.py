"""Benchmark E3 — regenerate the paper's Table I.

Prints the reproduced table next to the published values and asserts the
qualitative shape the paper reports:

* every scenario's detection rate is at least ~90 %;
* flooding is detected (essentially) completely but is not inferable;
* detection rate rises with the number of injected identifiers;
* inference accuracy falls as identifiers are added;
* false positives stay rare.
"""

import pytest

from repro.experiments import table1
from repro.experiments.scenarios import TABLE1_SCENARIOS


@pytest.fixture(scope="module")
def result(setup, seeds):
    return table1.run(setup=setup, seeds=seeds)


def test_bench_table1(benchmark, setup, seeds):
    """Time one full Table-I campaign and print the reproduced table."""
    outcome = benchmark.pedantic(
        lambda: table1.run(setup=setup, seeds=seeds), rounds=1, iterations=1
    )
    text = outcome.render()
    print("\n" + text)
    benchmark.extra_info["table"] = text
    from conftest import save_artifact
    save_artifact("table1", text)


class TestTable1Shape:
    def test_detection_rates_above_ninety_percent(self, result):
        for row in result.rows:
            assert row.detection_rate >= 0.85, row.spec.label

    def test_flood_fully_detected(self, result):
        assert result.row("flood").detection_rate >= 0.99

    def test_detection_rises_with_injected_id_count(self, result):
        single = result.row("single").detection_rate
        multi4 = result.row("multi_4").detection_rate
        assert multi4 >= single

    def test_inference_does_not_improve_with_injected_id_count(self, result):
        """The paper reports accuracy falling from 91.8 % (k=2) to 69.7 %
        (k=4).  The weighted-least-squares beam reconstruction used here
        is stronger than the paper's constraint heuristic, so the decline
        is milder — the assertion is tolerance-based: adding identifiers
        must not make inference *better* beyond noise."""
        accuracies = [
            result.row(name).inference_accuracy
            for name in ("multi_2", "multi_3", "multi_4")
        ]
        assert accuracies[2] <= accuracies[0] + 0.10
        assert all(0.3 <= a <= 1.0 for a in accuracies)

    def test_single_and_weak_inference_strong(self, result):
        assert result.row("single").inference_accuracy >= 0.9
        assert result.row("weak").inference_accuracy >= 0.85

    def test_multi4_inference_degrades_but_not_to_chance(self, result):
        accuracy = result.row("multi_4").inference_accuracy
        # Paper: 69.7 %.  Chance level for rank 10 over a 223-ID pool is
        # ~4.5 %; the reproduction must sit far above chance but clearly
        # below the k=2 case.
        assert 0.3 <= accuracy <= result.row("multi_2").inference_accuracy

    def test_false_positive_rates_low(self, result):
        for row in result.rows:
            assert row.false_positive_rate <= 0.05, row.spec.label

"""The quick_demo convenience entry point."""

import pytest

from repro import quick_demo
from repro.core import IDSConfig


class TestQuickDemo:
    def test_detects_and_infers(self):
        report = quick_demo(seed=7)
        assert report.detection_rate > 0.9
        assert report.false_positive_rate <= 0.1
        assert report.inference is not None
        assert "detection rate" in report.summary()

    def test_custom_attack_parameters(self):
        report = quick_demo(seed=3, attack_frequency_hz=100.0)
        assert report.detection_rate > 0.95

    def test_custom_config(self):
        config = IDSConfig(template_windows=6, alpha=4.0)
        report = quick_demo(seed=5, config=config)
        assert report.windows

"""Malicious-ID inference: constraints, rank selection, set reconstruction."""

import numpy as np
import pytest

from repro.core.bitprob import BitCounter
from repro.core.config import IDSConfig
from repro.core.inference import InferenceEngine, InferenceResult
from repro.core.template import TemplateBuilder
from repro.exceptions import InferenceError
from repro.io.trace import Trace, TraceRecord


def bits_of(can_id, n_bits=11):
    return np.array([(can_id >> (n_bits - 1 - i)) & 1 for i in range(n_bits)], float)


@pytest.fixture(scope="module")
def synthetic_setup():
    """A controlled pool + template where mixtures can be computed exactly.

    Base traffic: uniform over a 40-identifier pool; template windows are
    two identical passes so the template is exact and noise-free.
    """
    rng = np.random.default_rng(9)
    pool = sorted(int(i) for i in rng.choice(0x7FF, size=40, replace=False))
    config = IDSConfig(min_window_messages=10, template_windows=2, alpha=3.0)
    builder = TemplateBuilder(config)
    base_ids = pool * 25  # 1000 messages, uniform
    trace = Trace(
        TraceRecord(timestamp_us=i * 100, can_id=c) for i, c in enumerate(base_ids)
    )
    builder.add_trace(trace)
    builder.add_trace(trace)
    template = builder.build()
    engine = InferenceEngine(pool, template, config)
    return pool, template, config, engine


def mixed_probabilities(pool, injected, fraction):
    """Exact p-vector of base traffic mixed with injected identifiers."""
    base = np.mean([bits_of(i) for i in pool], axis=0)
    inj = np.mean([bits_of(i) for i in injected], axis=0)
    return (1 - fraction) * base + fraction * inj


class TestConstruction:
    def test_empty_pool_rejected(self, synthetic_setup):
        _pool, template, config, _engine = synthetic_setup
        with pytest.raises(InferenceError):
            InferenceEngine([], template, config)

    def test_oversized_pool_id_rejected(self, synthetic_setup):
        _pool, template, config, _engine = synthetic_setup
        with pytest.raises(InferenceError):
            InferenceEngine([0x800], template, config)

    def test_pool_sorted_ascending(self, synthetic_setup):
        pool, _t, _c, engine = synthetic_setup
        assert list(engine.id_pool) == sorted(pool)


class TestEvidence:
    def test_constraints_directions(self, synthetic_setup):
        pool, _t, _c, engine = synthetic_setup
        target = pool[7]
        p = mixed_probabilities(pool, [target], 0.3)
        constraints = engine.constraints_from(p, 2000)
        assert constraints  # a 30% injection must constrain some bits
        for bit, value in constraints.items():
            assert value == int(bits_of(target)[bit - 1])

    def test_no_shift_no_constraints(self, synthetic_setup):
        pool, template, _c, engine = synthetic_setup
        constraints = engine.constraints_from(template.mean_p.copy(), 2000)
        assert constraints == {}

    def test_injected_fraction_clipped(self, synthetic_setup):
        _pool, _t, config, engine = synthetic_setup
        # Fewer messages than the template expects -> clamped to minimum.
        assert engine.injected_fraction(100) == config.min_injected_fraction
        assert engine.injected_fraction(10_000_000) <= 0.95

    def test_injected_fraction_estimates_inflation(self, synthetic_setup):
        _pool, template, _c, engine = synthetic_setup
        n = int(template.mean_count / (1 - 0.2))  # 20% injected
        assert engine.injected_fraction(n) == pytest.approx(0.2, abs=0.02)

    def test_injected_fraction_rejects_nonpositive(self, synthetic_setup):
        _pool, _t, _c, engine = synthetic_setup
        with pytest.raises(InferenceError):
            engine.injected_fraction(0)

    def test_composition_inverts_mixture(self, synthetic_setup):
        pool, _t, _c, engine = synthetic_setup
        injected = [pool[3], pool[11]]
        p = mixed_probabilities(pool, injected, 0.25)
        composition = engine.composition_estimate(p, 0.25)
        truth = np.mean([bits_of(i) for i in injected], axis=0)
        assert np.allclose(composition, truth, atol=1e-9)

    def test_composition_rejects_bad_fraction(self, synthetic_setup):
        _pool, template, _c, engine = synthetic_setup
        with pytest.raises(InferenceError):
            engine.composition_estimate(template.mean_p, 0.0)


class TestSingleInference:
    @pytest.mark.parametrize("position", [0, 13, 26, 39])
    def test_exact_recovery(self, synthetic_setup, position):
        pool, template, _c, engine = synthetic_setup
        target = pool[position]
        p = mixed_probabilities(pool, [target], 0.2)
        n = int(template.mean_count / 0.8)
        result = engine.infer(p, n, k=1)
        assert result.candidates[0] == target
        assert result.best_set == (target,)

    def test_rank_limit_respected(self, synthetic_setup):
        pool, template, config, engine = synthetic_setup
        p = mixed_probabilities(pool, [pool[5]], 0.2)
        result = engine.infer(p, int(template.mean_count / 0.8), k=1)
        assert len(result.candidates) <= config.rank

    def test_hit_rate_single(self, synthetic_setup):
        pool, template, _c, engine = synthetic_setup
        p = mixed_probabilities(pool, [pool[5]], 0.2)
        result = engine.infer(p, int(template.mean_count / 0.8), k=1)
        assert result.hit_rate([pool[5]]) == 1.0
        missing = next(i for i in range(0x7FF) if i not in result.candidates)
        assert result.hit_rate([missing]) == 0.0

    def test_hit_rate_requires_truth(self, synthetic_setup):
        pool, template, _c, engine = synthetic_setup
        p = mixed_probabilities(pool, [pool[5]], 0.2)
        result = engine.infer(p, int(template.mean_count / 0.8), k=1)
        with pytest.raises(InferenceError):
            result.hit_rate([])

    def test_shape_validated(self, synthetic_setup):
        _pool, _t, _c, engine = synthetic_setup
        with pytest.raises(InferenceError):
            engine.infer(np.zeros(5), 100, k=1)

    def test_k_validated(self, synthetic_setup):
        _pool, template, _c, engine = synthetic_setup
        with pytest.raises(InferenceError):
            engine.infer(template.mean_p, 100, k=0)


class TestMultiInference:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_exact_recovery_uniform_mixture(self, synthetic_setup, k):
        pool, template, _c, engine = synthetic_setup
        injected = [pool[i] for i in (2, 9, 17, 31)[:k]]
        p = mixed_probabilities(pool, injected, 0.25)
        n = int(template.mean_count / 0.75)
        result = engine.infer(p, n, k=k)
        assert set(injected) <= set(result.candidates)
        assert result.hit_rate(injected) == 1.0

    def test_unequal_member_shares_recovered(self, synthetic_setup):
        """Members with unequal success shares (the arbitration skew)
        must still be reconstructed — the weighted least-squares fit."""
        pool, template, _c, engine = synthetic_setup
        a, b = pool[4], pool[22]
        base = np.mean([bits_of(i) for i in pool], axis=0)
        mix = 0.75 * base + 0.17 * bits_of(a) + 0.08 * bits_of(b)
        n = int(template.mean_count / 0.75)
        result = engine.infer(mix, n, k=2)
        assert set(result.best_set) == {a, b}
        # Fitted shares reflect the 17/8 split, dominant member first
        # in ascending-id order of (a, b).
        shares = dict(zip(result.best_set, result.member_shares))
        assert shares[a] > shares[b]

    def test_best_set_leads_candidates(self, synthetic_setup):
        pool, template, _c, engine = synthetic_setup
        injected = [pool[2], pool[9]]
        p = mixed_probabilities(pool, injected, 0.25)
        result = engine.infer(p, int(template.mean_count / 0.75), k=2)
        assert set(result.candidates[:2]) == set(result.best_set)

    def test_member_shares_sum_to_one(self, synthetic_setup):
        pool, template, _c, engine = synthetic_setup
        injected = [pool[2], pool[9], pool[30]]
        p = mixed_probabilities(pool, injected, 0.3)
        result = engine.infer(p, int(template.mean_count / 0.7), k=3)
        assert sum(result.member_shares) == pytest.approx(1.0, abs=1e-6)


class TestInferFromWindows:
    def test_aggregates_alarmed_windows(self, synthetic_setup, golden_template):
        _pool, _t, _c, engine = synthetic_setup

        class FakeWindow:
            def __init__(self, p, n, alarm):
                self.probabilities = np.asarray(p)
                self.n_messages = n
                self.alarm = alarm
                self.judged = True

        pool = list(engine.id_pool)
        p_attack = mixed_probabilities(pool, [pool[5]], 0.2)
        windows = [
            FakeWindow(p_attack, 1200, True),
            FakeWindow(np.zeros(11), 1000, False),  # ignored: no alarm
        ]
        result = engine.infer_from_windows(windows, k=1)
        assert result.candidates[0] == pool[5]

    def test_requires_windows(self, synthetic_setup):
        _pool, _t, _c, engine = synthetic_setup
        with pytest.raises(InferenceError):
            engine.infer_from_windows([], k=1)

"""Detection latency.

The paper claims the bit-slice computation lets the system "react
quickly in a time period of as short as 1 s"; this module measures the
actual reaction time: from the first injected message on the bus to the
end of the first alarmed window.
"""

from __future__ import annotations

from typing import Iterable, Optional


def detection_latency_us(windows: Iterable) -> Optional[int]:
    """Microseconds from the first attacked window to the first alarm.

    Returns None when the capture contains no attack or no alarm ever
    fires.  Works with core window results and baseline verdicts alike.
    """
    first_attack_start: Optional[int] = None
    for window in windows:
        if not window.judged:
            continue
        if first_attack_start is None and window.n_attack_messages > 0:
            first_attack_start = window.t_start_us
        if window.alarm and first_attack_start is not None:
            return max(0, window.t_end_us - first_attack_start)
    return None
